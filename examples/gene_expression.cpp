// Scenario: a hospital outsources similarity search over gene-expression
// profiles (the paper's YEAST/HUMAN motivation — medical data is exactly
// the "sensitive MS objects" case where the raw-data-encryption level is
// not enough, Section 2.3). This example contrasts three deployments on
// identical data and queries:
//
//   1. plain M-Index          (privacy level 1: server sees everything)
//   2. Encrypted M-Index      (level 3: permutations + ciphertexts)
//   3. Encrypted M-Index with the distribution-hiding distance transform
//                             (level 4: transformed distances)
//
// and prints what the server observes plus what each level costs.
//
// Build: cmake --build build --target gene_expression && ./build/examples/gene_expression

#include <cstdio>

#include "baselines/plain_mindex.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/transport.h"
#include "secure/client.h"
#include "secure/privacy.h"
#include "secure/server.h"

using namespace simcloud;

int main() {
  metric::Dataset dataset = data::MakeHumanLike();
  std::printf("Patient cohort: %zu expression profiles x %zu conditions "
              "(L1 metric)\n\n",
              dataset.size(), dataset.dimension());

  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 50, 3);
  if (!pivots.ok()) return 1;

  mindex::MIndexOptions options;
  options.num_pivots = 50;
  options.bucket_capacity = 250;
  options.max_level = 6;

  const metric::VectorObject& query = dataset.objects()[17];
  const double radius = 2500.0;
  const auto exact = metric::LinearRangeSearch(dataset, query, radius);
  std::printf("Reference query: R(patient-17, %.0f) -> %zu matches "
              "(ground truth)\n\n",
              radius, exact.size());

  // ---- Level 1: plain M-Index (trusted server).
  {
    auto server = baselines::PlainMIndexServer::Create(options, *pivots,
                                                       dataset.distance());
    if (!server.ok()) return 1;
    net::LoopbackTransport transport(server->get());
    baselines::PlainClient client(&transport);
    if (!client.InsertBulk(dataset.objects()).ok()) return 1;
    auto answer = client.RangeSearch(query, radius);
    if (!answer.ok()) return 1;
    std::printf("[level 1] %-22s results=%zu  wire=%.1f kB\n",
                secure::PrivacyLevelName(secure::PrivacyLevel::kNoEncryption),
                answer->size(), transport.costs().TotalBytes() / 1024.0);
    std::printf("          attacker sees: %s\n\n",
                secure::AttackerView(secure::PrivacyLevel::kNoEncryption));
  }

  // ---- Level 3: Encrypted M-Index.
  {
    auto key = secure::SecretKey::Create(*pivots, Bytes(16, 0x99));
    if (!key.ok()) return 1;
    auto server = secure::EncryptedMIndexServer::Create(options);
    if (!server.ok()) return 1;
    net::LoopbackTransport transport(server->get());
    secure::EncryptionClient client(*key, dataset.distance(), &transport);
    if (!client
             .InsertBulk(dataset.objects(), secure::InsertStrategy::kPrecise)
             .ok()) {
      return 1;
    }
    transport.ResetCosts();
    client.ResetCosts();
    auto answer = client.RangeSearch(query, radius);
    if (!answer.ok()) return 1;
    std::printf(
        "[level 3] %-22s results=%zu  wire=%.1f kB  client=%.2f ms\n",
        secure::PrivacyLevelName(secure::PrivacyLevel::kMsObjectEncryption),
        answer->size(), transport.costs().TotalBytes() / 1024.0,
        client.costs().TotalNanos() * 1e-6);
    std::printf("          attacker sees: %s\n\n",
                secure::AttackerView(
                    secure::PrivacyLevel::kMsObjectEncryption));
  }

  // ---- Level 4: + distribution-hiding transform (still precise!).
  {
    auto key = secure::SecretKey::Create(*pivots, Bytes(16, 0x99));
    if (!key.ok()) return 1;
    if (!key->EnableDistanceTransform(/*seed=*/31337,
                                      /*domain_max=*/30000.0)
             .ok()) {
      return 1;
    }
    auto server = secure::EncryptedMIndexServer::Create(options);
    if (!server.ok()) return 1;
    net::LoopbackTransport transport(server->get());
    secure::EncryptionClient client(*key, dataset.distance(), &transport);
    if (!client
             .InsertBulk(dataset.objects(), secure::InsertStrategy::kPrecise)
             .ok()) {
      return 1;
    }
    transport.ResetCosts();
    client.ResetCosts();
    auto answer = client.RangeSearch(query, radius);
    if (!answer.ok()) return 1;
    std::printf(
        "[level 4] %-22s results=%zu  wire=%.1f kB  client=%.2f ms\n",
        secure::PrivacyLevelName(secure::PrivacyLevel::kDistributionHiding),
        answer->size(), transport.costs().TotalBytes() / 1024.0,
        client.costs().TotalNanos() * 1e-6);
    std::printf("          attacker sees: %s\n",
                secure::AttackerView(secure::PrivacyLevel::kDistributionHiding));
    std::printf(
        "          (results identical to level 1/3 — the concave transform "
        "keeps every pruning rule sound; it only prunes less, so the "
        "candidate set and wire volume grow)\n");
  }
  return 0;
}
