// CSV-to-cloud workflow: the operational lifecycle of a similarity cloud.
//
// Walks the path a real deployment takes, start to finish:
//   1. load a numeric CSV matrix (here: a generated stand-in written to
//      disk first — drop in the real YEAST matrix to use it instead),
//   2. build the encrypted index through the encryption client,
//   3. snapshot the server state to a file (exactly what the untrusted
//      server already stores: permutations + ciphertexts, nothing more),
//   4. simulate a server restart by rebuilding from the snapshot,
//   5. verify queries still work, then delete records and compact.
//
// Build: cmake --build build --target csv_workflow &&
//        ./build/examples/csv_workflow

#include <cstdio>

#include "data/io.h"
#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "mindex/persistence.h"
#include "net/transport.h"
#include "secure/client.h"
#include "secure/server.h"

using namespace simcloud;

int main() {
  // --- 1. A numeric matrix on disk. We synthesize one; a real
  // gene-expression CSV loads identically.
  const std::string csv_path = "/tmp/simcloud_example_matrix.csv";
  {
    data::MixtureOptions options;
    options.num_objects = 2000;
    options.dimension = 17;
    options.num_clusters = 12;
    options.seed = 11;
    auto objects = data::MakeGaussianMixture(options);
    if (!data::SaveVectorsCsv(objects, csv_path).ok()) return 1;
  }
  auto loaded = data::LoadVectorsCsv(csv_path, [] {
    data::CsvOptions options;
    options.id_column = 0;
    return options;
  }());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  metric::Dataset dataset("csv", std::move(loaded).value(),
                          std::make_shared<metric::L1Distance>());
  std::printf("Loaded %zu x %zu matrix from %s\n", dataset.size(),
              dataset.dimension(), csv_path.c_str());

  // --- 2. Owner builds the encrypted index.
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 20, 3);
  if (!pivots.ok()) return 1;
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x09));
  if (!key.ok()) return 1;

  mindex::MIndexOptions options;
  options.num_pivots = 20;
  options.bucket_capacity = 100;
  options.max_level = 5;
  auto server = secure::EncryptedMIndexServer::Create(options);
  if (!server.ok()) return 1;
  net::LoopbackTransport transport(server->get());
  secure::EncryptionClient client(*key, dataset.distance(), &transport);
  if (!client
           .InsertBulk(dataset.objects(), secure::InsertStrategy::kPrecise,
                       500)
           .ok()) {
    return 1;
  }

  // --- 3. Snapshot the server state.
  const std::string snapshot_path = "/tmp/simcloud_example_index.midx";
  if (!mindex::SaveIndex(server->get()->index(), snapshot_path).ok()) {
    return 1;
  }
  std::printf("Server snapshot written: %s (%llu objects)\n",
              snapshot_path.c_str(),
              static_cast<unsigned long long>(server->get()->index().size()));

  // --- 4. "Restart": a brand-new server process loads the snapshot.
  // (We rebuild via the snapshot API; the restarted index is given to a
  // fresh handler for illustration of the data flow.)
  auto restored = mindex::LoadIndex(snapshot_path);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  std::printf("Restored index: %zu objects, invariants %s\n",
              (*restored)->size(),
              (*restored)->CheckInvariants().ok() ? "OK" : "BROKEN");

  // --- 5. Queries against the live server still return exact results.
  const auto& query = dataset.objects()[100];
  const auto exact = metric::LinearRangeSearch(dataset, query, 300.0);
  auto answer = client.RangeSearch(query, 300.0);
  if (!answer.ok()) return 1;
  std::printf("Range query R(q, 300): %zu results (linear scan agrees: %s)\n",
              answer->size(),
              answer->size() == exact.size() ? "yes" : "NO");

  // Delete a tenth of the records, snapshot again — compaction drops the
  // orphaned ciphertext bytes.
  const uint64_t bytes_before = server->get()->index().Stats().storage_bytes;
  for (size_t i = 0; i < dataset.size(); i += 10) {
    if (!client.Delete(dataset.objects()[i]).ok()) return 1;
  }
  if (!mindex::SaveIndex(server->get()->index(), snapshot_path).ok()) {
    return 1;
  }
  auto compacted = mindex::LoadIndex(snapshot_path);
  if (!compacted.ok()) return 1;
  std::printf(
      "Deleted %zu records; snapshot compaction: %llu -> %llu payload "
      "bytes\n",
      dataset.size() / 10 + (dataset.size() % 10 != 0 ? 1 : 0),
      static_cast<unsigned long long>(bytes_before),
      static_cast<unsigned long long>(
          (*compacted)->Stats().storage_bytes));

  std::remove(csv_path.c_str());
  std::remove(snapshot_path.c_str());
  return 0;
}
