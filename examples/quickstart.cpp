// Quickstart: outsource a small encrypted similarity index and query it.
//
// Demonstrates the full paper workflow in ~80 lines:
//   1. data owner extracts MS objects and picks secret pivots,
//   2. builds the Encrypted M-Index on an (untrusted) server through the
//      encryption client,
//   3. an authorized client runs precise range and approximate k-NN
//      queries; the server only ever sees permutations and ciphertexts.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart

#include <cstdio>

#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/transport.h"
#include "secure/client.h"
#include "secure/server.h"

using namespace simcloud;

int main() {
  // --- Data owner side: the collection and its metric.
  metric::Dataset dataset = data::MakeYeastLike();
  std::printf("Collection: %zu objects, %zu dims, metric %s\n",
              dataset.size(), dataset.dimension(),
              dataset.distance()->Name().c_str());

  // Secret key = random pivots from the data + an AES-128 key derived
  // from a passphrase. The server never sees either.
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 30,
                                               /*seed=*/7);
  if (!pivots.ok()) return 1;
  auto key = secure::SecretKey::FromPassword(
      std::move(pivots).value(), "correct horse battery staple",
      /*salt=*/{1, 2, 3, 4});
  if (!key.ok()) return 1;

  // --- Untrusted server: an M-Index that stores only ciphertexts and
  // pivot permutations / distances.
  mindex::MIndexOptions options;
  options.num_pivots = 30;
  options.bucket_capacity = 200;
  options.max_level = 6;
  auto server = secure::EncryptedMIndexServer::Create(options);
  if (!server.ok()) return 1;
  net::LoopbackTransport transport(server->get());

  // --- Construction phase (Algorithm 1): encrypt + ship.
  secure::EncryptionClient owner(*key, dataset.distance(), &transport);
  if (auto st = owner.InsertBulk(dataset.objects(),
                                 secure::InsertStrategy::kPrecise);
      !st.ok()) {
    std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Inserted %zu encrypted objects (%.1f kB shipped)\n",
              dataset.size(), transport.costs().bytes_sent / 1024.0);

  // --- Search phase (Algorithm 2): an authorized client queries.
  const metric::VectorObject& query = dataset.objects()[100];

  auto range_answer = owner.RangeSearch(query, 150.0);
  if (!range_answer.ok()) return 1;
  const auto exact_range = metric::LinearRangeSearch(dataset, query, 150.0);
  std::printf("Range R(q, 150): %zu results (ground truth %zu) — precise\n",
              range_answer->size(), exact_range.size());

  auto knn_answer = owner.ApproxKnn(query, /*k=*/10, /*cand_size=*/300);
  if (!knn_answer.ok()) return 1;
  const auto exact_knn = metric::LinearKnnSearch(dataset, query, 10);
  std::printf("Approx 10-NN with |SC|=300: recall %.0f%%\n",
              metric::RecallPercent(*knn_answer, exact_knn));
  for (size_t i = 0; i < 3 && i < knn_answer->size(); ++i) {
    std::printf("  #%zu  id=%llu  d=%.2f\n", i + 1,
                static_cast<unsigned long long>((*knn_answer)[i].id),
                (*knn_answer)[i].distance);
  }

  auto precise = owner.PreciseKnn(query, 10);
  if (!precise.ok()) return 1;
  std::printf("Precise 10-NN: recall %.0f%% (guaranteed 100)\n",
              metric::RecallPercent(*precise, exact_knn));

  // What did the privacy cost? The client did the crypto + refinement:
  const auto& costs = owner.costs();
  std::printf("Client cost split: enc %.1f ms, dec %.1f ms, dist %.1f ms\n",
              costs.encryption_nanos * 1e-6, costs.decryption_nanos * 1e-6,
              costs.distance_nanos * 1e-6);
  return 0;
}
