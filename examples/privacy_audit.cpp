// Privacy audit: simulate an attacker who compromises the similarity
// cloud, and quantify what leaks at each privacy level of the paper's
// taxonomy (Section 2.3). Concretely, for the Encrypted M-Index the
// attacker observes pivot permutations (level 3) or transformed distances
// (level 4); this tool measures how much of the data's *distance
// distribution* those observations reveal, reproducing the motivation for
// the paper's future-work transform.
//
// Build: cmake --build build --target privacy_audit && ./build/examples/privacy_audit

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "mindex/pivot_set.h"
#include "secure/distance_transform.h"
#include "secure/privacy.h"

using namespace simcloud;

namespace {

// Normalized histogram over `values` with `bins` buckets.
std::vector<double> Histogram(const std::vector<double>& values, int bins) {
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const double lo = *min_it, hi = *max_it + 1e-12;
  std::vector<double> hist(bins, 0.0);
  for (double v : values) {
    int bin = static_cast<int>((v - lo) / (hi - lo) * bins);
    bin = std::clamp(bin, 0, bins - 1);
    hist[bin] += 1.0;
  }
  for (double& h : hist) h /= static_cast<double>(values.size());
  return hist;
}

// Total-variation distance between two histograms in [0, 1]:
// 0 = identical distributions (full leak), 1 = disjoint (nothing shared).
double TotalVariation(const std::vector<double>& a,
                      const std::vector<double>& b) {
  double tv = 0;
  for (size_t i = 0; i < a.size(); ++i) tv += std::fabs(a[i] - b[i]);
  return tv / 2.0;
}

}  // namespace

int main() {
  metric::Dataset dataset = data::MakeYeastLike();
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 30, 7);
  if (!pivots.ok()) return 1;

  std::printf("Attacker model: full server compromise of the similarity "
              "cloud.\n\n");
  for (auto level :
       {secure::PrivacyLevel::kNoEncryption,
        secure::PrivacyLevel::kRawDataEncryption,
        secure::PrivacyLevel::kMsObjectEncryption,
        secure::PrivacyLevel::kDistributionHiding}) {
    std::printf("level %d  %-24s  attacker sees: %s\n",
                static_cast<int>(level), secure::PrivacyLevelName(level),
                secure::AttackerView(level));
  }

  // Quantify distribution leakage: compare the histogram of TRUE
  // object-pivot distances against what the server stores at level 3
  // (raw distances, when the precise strategy is used) and at level 4
  // (concave-transformed distances).
  std::vector<double> true_distances;
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto& object =
        dataset.objects()[rng.NextBounded(dataset.size())];
    const auto& pivot = pivots->pivot(rng.NextBounded(pivots->size()));
    true_distances.push_back(dataset.Distance(object, pivot));
  }

  auto transform = secure::ConcaveTransform::FromSeed(31337, 20000.0);
  if (!transform.ok()) return 1;
  std::vector<double> transformed;
  transformed.reserve(true_distances.size());
  for (double d : true_distances) transformed.push_back(transform->Apply(d));

  // Rescale both observed sets to [0,1] before comparing shapes — the
  // attacker can always normalize, so scale alone is not protection.
  auto normalize = [](std::vector<double> v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    const double min = *lo, range = *hi - *lo + 1e-12;
    for (double& x : v) x = (x - min) / range;
    return v;
  };
  const int kBins = 40;
  const auto true_hist = Histogram(normalize(true_distances), kBins);
  const auto level3_hist = Histogram(normalize(true_distances), kBins);
  const auto level4_hist = Histogram(normalize(transformed), kBins);

  std::printf("\nDistance-distribution leakage (total variation vs true "
              "distribution; 0 = fully leaked, higher = better hidden):\n");
  std::printf("  level 3 (stored pivot distances):      %.3f\n",
              TotalVariation(true_hist, level3_hist));
  std::printf("  level 4 (concave-transformed values):  %.3f\n",
              TotalVariation(true_hist, level4_hist));

  // What about permutations (the approximate strategy)? The attacker sees
  // only orderings. Show the cell-occupancy skew — the only distributional
  // signal permutations leak.
  std::vector<double> first_pivot_counts(pivots->size(), 0.0);
  for (const auto& object : dataset.objects()) {
    double best = 1e300;
    size_t best_pivot = 0;
    for (size_t p = 0; p < pivots->size(); ++p) {
      const double d = dataset.Distance(object, pivots->pivot(p));
      if (d < best) {
        best = d;
        best_pivot = p;
      }
    }
    first_pivot_counts[best_pivot] += 1.0;
  }
  std::sort(first_pivot_counts.rbegin(), first_pivot_counts.rend());
  std::printf(
      "\nPermutation-only storage leaks cell occupancies; top-5 first-level "
      "cells hold %.0f%% of the collection (skew is visible, distances are "
      "not):\n",
      100.0 *
          (first_pivot_counts[0] + first_pivot_counts[1] +
           first_pivot_counts[2] + first_pivot_counts[3] +
           first_pivot_counts[4]) /
          static_cast<double>(dataset.size()));
  std::printf(
      "\nConclusion: storing raw pivot distances (precise strategy) leaks "
      "the distance distribution exactly; the level-4 concave transform "
      "reshapes it (higher TV distance) at zero correctness cost, matching "
      "the paper's Section 4.3 goal.\n");
  return 0;
}
