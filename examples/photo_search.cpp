// Scenario: a photo-sharing startup outsources content-based image
// retrieval (CoPhIR-style MPEG-7 descriptors) to a similarity cloud, but
// its users' photo descriptors are commercially sensitive. This example
// runs the real client/server split over TCP — the server could be on
// another machine — and shows the privacy/efficiency trade-off knob the
// paper exposes: the candidate-set size.
//
// Build: cmake --build build --target photo_search && ./build/examples/photo_search

#include <cstdio>

#include "data/synthetic.h"
#include "metric/ground_truth.h"
#include "net/tcp.h"
#include "secure/client.h"
#include "secure/server.h"

using namespace simcloud;

int main() {
  const size_t kCollectionSize = 20000;  // scaled-down CoPhIR
  std::printf("Generating %zu MPEG-7-style descriptors (280-dim, weighted "
              "Lp aggregate)...\n",
              kCollectionSize);
  metric::Dataset dataset = data::MakeCophirLike(kCollectionSize);

  // Data owner's secret: 100 pivots + AES key.
  auto pivots = mindex::PivotSet::SelectRandom(dataset.objects(), 100, 13);
  if (!pivots.ok()) return 1;
  auto key = secure::SecretKey::Create(std::move(pivots).value(),
                                       Bytes(16, 0x77));
  if (!key.ok()) return 1;

  // "Cloud" side: encrypted M-Index behind a real TCP endpoint.
  mindex::MIndexOptions options;
  options.num_pivots = 100;
  options.bucket_capacity = 1000;
  options.max_level = 8;
  options.stored_prefix_length = 16;
  auto handler = secure::EncryptedMIndexServer::Create(options);
  if (!handler.ok()) return 1;
  net::TcpServer cloud(handler->get());
  if (!cloud.Start(0).ok()) return 1;
  std::printf("Similarity cloud listening on 127.0.0.1:%u\n", cloud.port());

  // Client side: connect and upload the encrypted collection.
  auto transport = net::TcpTransport::Connect("127.0.0.1", cloud.port());
  if (!transport.ok()) return 1;
  secure::EncryptionClient client(*key, dataset.distance(),
                                  transport->get());
  std::printf("Uploading encrypted descriptors...\n");
  if (!client
           .InsertBulk(dataset.objects(),
                       secure::InsertStrategy::kPermutationOnly, 1000)
           .ok()) {
    return 1;
  }
  std::printf("Uploaded: %.1f MB shipped to the cloud\n",
              transport->get()->costs().bytes_sent / (1024.0 * 1024.0));

  // Query-by-example: "find photos similar to this one".
  const metric::VectorObject& query_photo = dataset.objects()[4242];
  const auto exact = metric::LinearKnnSearch(dataset, query_photo, 10);

  std::printf("\n%10s  %10s  %14s  %14s\n", "|SC|", "recall[%]",
              "client[ms]", "wire[kB]");
  for (size_t cand_size : {100u, 500u, 2000u, 5000u}) {
    client.ResetCosts();
    transport->get()->ResetCosts();
    auto answer = client.ApproxKnn(query_photo, 10, cand_size);
    if (!answer.ok()) return 1;
    std::printf("%10zu  %10.0f  %14.2f  %14.1f\n", cand_size,
                metric::RecallPercent(*answer, exact),
                client.costs().TotalNanos() * 1e-6,
                transport->get()->costs().TotalBytes() / 1024.0);
  }
  std::printf(
      "\nThe candidate-set size is the privacy-era efficiency knob: more "
      "candidates -> higher recall, more decryption work and traffic.\n");
  cloud.Stop();
  return 0;
}
