// Standalone shard server: one encrypted M-Index replica behind a TCP
// listener, ready to be placed in a `ShardedServer` replica set. Run a
// few of these (tools/run_replicas.py spawns a whole cluster) and point
// `ShardedServer::Connect` at them.
//
// The process stores only ciphertexts and pivot permutations; the
// secret key never leaves the clients.
//
// Build: cmake --build build --target example_shard_server
// Usage: example_shard_server [--port N] [--pivots N]
//                             [--disk-path PATH]
//                             [--policy plain|secure] [--psk-hex HEX]
//                             [--status-interval-s N]
//   --port       listen port (default 0 = OS-assigned; printed on stdout)
//   --pivots     number of pivots the cluster's key uses (default 16)
//   --disk-path  back buckets with this file instead of memory
//   --policy     wire policy; `secure` requires --psk-hex (32-byte hex)
//   --psk-hex    pre-shared key for the secure channel handshake
//   --status-interval-s  print a status line this often (0 = off). The
//                line decodes the same kGetStats block a facade sees, so
//                it includes the stale-shard count and live watch
//                subscriptions. A second `rates:` line derives req/s,
//                MB/s in/out, distance computations/s and the payload
//                cache hit ratio from metrics-registry deltas (the same
//                registry kGetMetrics scrapes).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/tcp.h"
#include "obs/metrics.h"
#include "secure/server.h"

using namespace simcloud;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool ParseHex(const std::string& hex, Bytes* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    char* end = nullptr;
    const std::string byte = hex.substr(i, 2);
    const long value = std::strtol(byte.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(static_cast<uint8_t>(value));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  size_t num_pivots = 16;
  std::string disk_path;
  std::string policy = "plain";
  std::string psk_hex;
  int status_interval_s = 0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--port") {
      port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (flag == "--pivots") {
      num_pivots = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (flag == "--disk-path") {
      disk_path = value;
    } else if (flag == "--policy") {
      policy = value;
    } else if (flag == "--psk-hex") {
      psk_hex = value;
    } else if (flag == "--status-interval-s") {
      status_interval_s = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  mindex::MIndexOptions options;
  options.num_pivots = num_pivots;
  options.bucket_capacity = 50;
  options.max_level = 4;
  if (!disk_path.empty()) {
    options.storage_kind = mindex::StorageKind::kDisk;
    options.disk_path = disk_path;
  }
  auto handler = secure::EncryptedMIndexServer::Create(options);
  if (!handler.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 handler.status().ToString().c_str());
    return 1;
  }

  net::TcpServerOptions server_options;
  if (policy == "secure") {
    Bytes psk;
    if (!ParseHex(psk_hex, &psk) || psk.size() != 32) {
      std::fprintf(stderr,
                   "--policy secure requires --psk-hex with 32 bytes "
                   "(64 hex chars); tools/gen_psk.py makes one\n");
      return 2;
    }
    server_options.channel_policy = net::ChannelPolicy::kSecure;
    server_options.secure_channel.psk = psk;
  } else if (policy != "plain") {
    std::fprintf(stderr, "--policy must be plain or secure\n");
    return 2;
  }

  net::TcpServer server(handler->get(), server_options);
  if (Status started = server.Start(port); !started.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", started.ToString().c_str());
    return 1;
  }
  // run_replicas.py scrapes this line for the OS-assigned port.
  std::printf("shard_server listening on 127.0.0.1:%u (policy %s, %s)\n",
              server.port(), policy.c_str(),
              disk_path.empty() ? "memory buckets"
                                : ("disk buckets at " + disk_path).c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  int ticks = 0;
  obs::MetricsSnapshot last = obs::Registry::Default().Snapshot();
  while (!g_stop) {
    struct timespec nap = {0, 50 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
    if (status_interval_s <= 0 || ++ticks < status_interval_s * 20) continue;
    ticks = 0;
    // Go through the stats opcode (not white-box index access) so the
    // read takes the server's own lock and shows exactly what a facade
    // decodes — including the stale-shard count a replay-overflowed
    // replica raises.
    auto response = (*handler)->Handle(secure::EncodeGetStatsRequest());
    if (!response.ok()) continue;
    auto stats = secure::DecodeStatsResponse(*response);
    if (!stats.ok()) continue;
    std::printf("status: objects=%llu live_bytes=%llu dead_bytes=%llu "
                "shards_stale=%llu watches=%zu\n",
                static_cast<unsigned long long>(stats->object_count),
                static_cast<unsigned long long>(stats->live_storage_bytes),
                static_cast<unsigned long long>(stats->dead_storage_bytes),
                static_cast<unsigned long long>(stats->shards_stale),
                (*handler)->watch_hub()->active());
    // Top-line rates straight from the registry: deltas against the
    // previous tick's snapshot over the configured interval. Prefix
    // sums collapse the per-opcode {op=...} label fan-out.
    obs::MetricsSnapshot now = obs::Registry::Default().Snapshot();
    auto delta_prefix = [&](const char* prefix) {
      uint64_t total = 0;
      for (const auto& [name, value] : now.counters) {
        if (name.rfind(prefix, 0) != 0) continue;
        const uint64_t* before = last.counter(name);
        total += value - (before != nullptr ? *before : 0);
      }
      return total;
    };
    const double seconds = static_cast<double>(status_interval_s);
    const uint64_t requests = delta_prefix("simcloud_requests_total");
    const uint64_t bytes_in = delta_prefix("simcloud_net_bytes_in_total");
    const uint64_t bytes_out = delta_prefix("simcloud_net_bytes_out_total");
    const uint64_t dist = delta_prefix("simcloud_distance_computations_total");
    const uint64_t hits = delta_prefix("simcloud_payload_cache_hits_total");
    const uint64_t misses =
        delta_prefix("simcloud_payload_cache_misses_total");
    const uint64_t lookups = hits + misses;
    std::printf("rates: %.0f req/s, %.2f/%.2f MB/s in/out, %.0f dist/s, "
                "cache hit %.0f%%\n",
                requests / seconds, bytes_in / seconds / 1e6,
                bytes_out / seconds / 1e6, dist / seconds,
                lookups == 0 ? 0.0 : 100.0 * hits / lookups);
    last = std::move(now);
    std::fflush(stdout);
  }
  server.Stop();
  std::printf("shard_server stopped\n");
  return 0;
}
