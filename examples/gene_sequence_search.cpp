// Gene sequence search: the Encrypted M-Index over NON-vector data.
//
// The paper's introduction singles out gene sequences as the case where
// "the raw data and the MS objects are identical" — the descriptor IS the
// sensitive payload, so outsourcing the index at all requires MS-object
// encryption (privacy level 3). This example runs that scenario end to
// end with the generic client:
//
//   * data = DNA-like sequences (mutated descendants of a few ancestors),
//   * metric = Levenshtein edit distance,
//   * server = the SAME EncryptedMIndexServer binary that serves vectors
//     (it never learns that the payloads are sequences at all),
//   * queries = "find the relatives of this gene" as approximate k-NN and
//     "find every sequence within r edits" as precise range search.
//
// Build: cmake --build build --target gene_sequence_search &&
//        ./build/examples/gene_sequence_search

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metric/sequence.h"
#include "secure/generic_client.h"
#include "secure/server.h"

using namespace simcloud;

namespace {

std::string RandomDna(Rng* rng, size_t len) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(len, 'A');
  for (auto& c : s) c = kBases[rng->NextBounded(4)];
  return s;
}

std::string Mutate(std::string s, size_t edits, Rng* rng) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  for (size_t m = 0; m < edits && !s.empty(); ++m) {
    const size_t pos = rng->NextBounded(s.size());
    switch (rng->NextBounded(3)) {
      case 0: s[pos] = kBases[rng->NextBounded(4)]; break;
      case 1: s.erase(pos, 1); break;
      default: s.insert(pos, 1, kBases[rng->NextBounded(4)]);
    }
  }
  return s;
}

}  // namespace

int main() {
  // --- Data owner: a collection of related gene sequences. Five ancestral
  // genes; each stored sequence is a descendant with a few point edits.
  Rng rng(2024);
  std::vector<std::string> ancestors;
  for (int a = 0; a < 5; ++a) ancestors.push_back(RandomDna(&rng, 120));

  std::vector<metric::SequenceObject> genes;
  const size_t kCollectionSize = 2000;
  genes.reserve(kCollectionSize);
  for (size_t i = 0; i < kCollectionSize; ++i) {
    const std::string& ancestor = ancestors[rng.NextBounded(5)];
    genes.emplace_back(i, Mutate(ancestor, rng.NextBounded(8), &rng));
  }
  std::printf("Collection: %zu gene sequences (len ~120, edit distance)\n",
              genes.size());

  // Secret: pivot sequences sampled from the data + an AES-128 key.
  std::vector<metric::SequenceObject> pivots;
  for (size_t i = 0; i < 12; ++i) {
    pivots.push_back(genes[rng.NextBounded(genes.size())]);
  }
  auto cipher = crypto::Cipher::Create(Bytes(16, 0x5E),
                                       crypto::CipherMode::kCbc);
  if (!cipher.ok()) return 1;

  // --- Untrusted server: identical to the vector deployments; the object
  // type never crosses the wire in the clear.
  mindex::MIndexOptions options;
  options.num_pivots = 12;
  options.bucket_capacity = 100;
  options.max_level = 4;
  auto server = secure::EncryptedMIndexServer::Create(options);
  if (!server.ok()) return 1;
  net::LoopbackTransport transport(server->get());

  secure::GenericEncryptionClient<metric::SequenceObject,
                                  metric::EditDistance>
      client(std::move(pivots), std::move(cipher).value(),
             metric::EditDistance{}, &transport);

  // --- Construction: precise strategy (stores pivot distances) so both
  // range and k-NN queries work.
  if (!client.InsertBulk(genes, /*precise=*/true, 500).ok()) return 1;
  auto stats = server->get()->index().Stats();
  std::printf(
      "Server state: %llu encrypted sequences in %llu cells "
      "(%llu payload bytes, all ciphertext)\n",
      static_cast<unsigned long long>(stats.object_count),
      static_cast<unsigned long long>(stats.leaf_count),
      static_cast<unsigned long long>(stats.storage_bytes));

  // --- Query 1: find the relatives of a sampled gene (approximate 10-NN).
  const metric::SequenceObject& probe = genes[17];
  auto knn = client.ApproxKnn(probe, 10, 300);
  if (!knn.ok()) return 1;
  std::printf("\n10 nearest relatives of gene #%llu:\n",
              static_cast<unsigned long long>(probe.id()));
  for (const auto& neighbor : *knn) {
    std::printf("  gene #%-5llu  %2.0f edits away\n",
                static_cast<unsigned long long>(neighbor.id),
                neighbor.distance);
  }

  // --- Query 2: every sequence within 5 edits (precise range search).
  auto in_range = client.RangeSearch(probe, 5.0);
  if (!in_range.ok()) return 1;
  std::printf("\nSequences within 5 edits of gene #%llu: %zu\n",
              static_cast<unsigned long long>(probe.id()),
              in_range->size());

  // --- What did the server learn? Count server-side work vs. the
  // client's refinement: the heavy O(n^2)-per-pair edit-distance work
  // happened only on candidates, never on the server.
  const auto& totals = server->get()->total_search_stats();
  std::printf(
      "\nServer work: %llu cells visited, %llu entries scanned — routing "
      "only, zero edit-distance computations, zero plaintext bytes.\n",
      static_cast<unsigned long long>(totals.cells_visited),
      static_cast<unsigned long long>(totals.entries_scanned));
  return 0;
}
