#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace simcloud {
namespace crypto {

HmacSha256State::HmacSha256State(const Bytes& key) {
  constexpr size_t kBlock = Sha256::kBlockSize;
  // Reserve up front so padding to a block never reallocates — a
  // reallocation would free the original copy of the key un-wiped.
  Bytes k;
  k.reserve(kBlock);
  if (key.size() > kBlock) {
    Bytes digest = Sha256::Hash(key);
    k.assign(digest.begin(), digest.end());
    WipeBytes(&digest);
  } else {
    k.assign(key.begin(), key.end());
  }
  k.resize(kBlock, 0x00);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  inner_.Update(ipad);
  outer_.Update(opad);
  WipeBytes(&k);
  WipeBytes(&ipad);
  WipeBytes(&opad);
}

Bytes HmacSha256State::Mac(const Bytes& message) const {
  Stream stream = NewStream();
  stream.Update(message);
  return stream.Finish();
}

Bytes HmacSha256State::Stream::Finish() {
  const auto inner_digest = inner_.Finish();
  outer_.Update(inner_digest.data(), inner_digest.size());
  const auto digest = outer_.Finish();
  return Bytes(digest.begin(), digest.end());
}

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  return HmacSha256State(key).Mac(message);
}

Result<Bytes> Pbkdf2Sha256(const Bytes& password, const Bytes& salt,
                           uint32_t iterations, size_t out_len) {
  if (iterations == 0) {
    return Status::InvalidArgument("PBKDF2 iterations must be >= 1");
  }
  if (out_len == 0) {
    return Status::InvalidArgument("PBKDF2 output length must be >= 1");
  }

  Bytes out;
  out.reserve(out_len);
  uint32_t block_index = 1;
  while (out.size() < out_len) {
    Bytes salt_block = salt;
    salt_block.push_back(static_cast<uint8_t>(block_index >> 24));
    salt_block.push_back(static_cast<uint8_t>(block_index >> 16));
    salt_block.push_back(static_cast<uint8_t>(block_index >> 8));
    salt_block.push_back(static_cast<uint8_t>(block_index));

    Bytes u = HmacSha256(password, salt_block);
    Bytes t = u;
    for (uint32_t iter = 1; iter < iterations; ++iter) {
      u = HmacSha256(password, u);
      for (size_t i = 0; i < t.size(); ++i) t[i] ^= u[i];
    }
    const size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++block_index;
  }
  return out;
}

}  // namespace crypto
}  // namespace simcloud
