#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace simcloud {
namespace crypto {

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  constexpr size_t kBlock = Sha256::kBlockSize;

  Bytes k = key;
  if (k.size() > kBlock) k = Sha256::Hash(k);
  k.resize(kBlock, 0x00);

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  auto inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest.data(), inner_digest.size());
  auto digest = outer.Finish();
  return Bytes(digest.begin(), digest.end());
}

Result<Bytes> Pbkdf2Sha256(const Bytes& password, const Bytes& salt,
                           uint32_t iterations, size_t out_len) {
  if (iterations == 0) {
    return Status::InvalidArgument("PBKDF2 iterations must be >= 1");
  }
  if (out_len == 0) {
    return Status::InvalidArgument("PBKDF2 output length must be >= 1");
  }

  Bytes out;
  out.reserve(out_len);
  uint32_t block_index = 1;
  while (out.size() < out_len) {
    Bytes salt_block = salt;
    salt_block.push_back(static_cast<uint8_t>(block_index >> 24));
    salt_block.push_back(static_cast<uint8_t>(block_index >> 16));
    salt_block.push_back(static_cast<uint8_t>(block_index >> 8));
    salt_block.push_back(static_cast<uint8_t>(block_index));

    Bytes u = HmacSha256(password, salt_block);
    Bytes t = u;
    for (uint32_t iter = 1; iter < iterations; ++iter) {
      u = HmacSha256(password, u);
      for (size_t i = 0; i < t.size(); ++i) t[i] ^= u[i];
    }
    const size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++block_index;
  }
  return out;
}

}  // namespace crypto
}  // namespace simcloud
