// FIPS-180-4 SHA-256, implemented from scratch. Used for key derivation
// (PBKDF2-HMAC-SHA256) and integrity checks in the wire protocol tests.

#ifndef SIMCLOUD_CRYPTO_SHA256_H_
#define SIMCLOUD_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstddef>

#include "common/bytes.h"

namespace simcloud {
namespace crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { Reset(); }

  /// Resets to the initial state.
  void Reset();
  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  /// Finalizes and returns the 32-byte digest; the hasher must be Reset()
  /// before reuse.
  std::array<uint8_t, kDigestSize> Finish();

  /// One-shot convenience digest.
  static Bytes Hash(const Bytes& data);

 private:
  // Absorbs `blocks` consecutive 64-byte blocks, dispatching to the
  // SHA-NI kernel when available (see crypto/kernels.h).
  void ProcessBlocks(const uint8_t* data, size_t blocks);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_;
  uint64_t total_len_;
};

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_SHA256_H_
