#include "crypto/aead.h"

#include <cstring>

#include "crypto/hmac.h"

namespace simcloud {
namespace crypto {

namespace {

// Domain-separation labels for subkey derivation. Deriving both subkeys
// from one master key with distinct labels keeps the public API a single
// secret while guaranteeing the AES and MAC keys are independent.
Bytes DeriveSubkey(const Bytes& master_key, const char* label, size_t len) {
  Bytes message(label, label + std::strlen(label));
  Bytes digest = HmacSha256(master_key, message);
  digest.resize(len);
  return digest;
}

}  // namespace

Result<AeadCipher> AeadCipher::Create(const Bytes& master_key) {
  if (master_key.size() != 16 && master_key.size() != 24 &&
      master_key.size() != 32) {
    return Status::InvalidArgument("AEAD master key must be 16/24/32 bytes");
  }
  Bytes enc_key =
      DeriveSubkey(master_key, "simcloud-aead-enc", master_key.size());
  Bytes mac_key = DeriveSubkey(master_key, "simcloud-aead-mac", kTagSize);
  SIMCLOUD_ASSIGN_OR_RETURN(Cipher enc,
                            Cipher::Create(enc_key, CipherMode::kCtr));
  AeadCipher aead(std::move(enc), mac_key);
  WipeBytes(&enc_key);
  WipeBytes(&mac_key);
  return aead;
}

Bytes AeadCipher::ComputeTag(const Bytes& iv_and_ciphertext,
                             const Bytes& associated_data) const {
  // Stream the framed message straight into the MAC — no concat buffer;
  // this runs once per wire record in the secure channel.
  HmacSha256State::Stream mac = mac_state_.NewStream();
  uint8_t ad_len_prefix[8];
  const uint64_t ad_len = associated_data.size();
  for (int i = 0; i < 8; ++i) {
    ad_len_prefix[i] = static_cast<uint8_t>(ad_len >> (56 - 8 * i));
  }
  mac.Update(ad_len_prefix, sizeof(ad_len_prefix));
  mac.Update(associated_data);
  mac.Update(iv_and_ciphertext);
  return mac.Finish();
}

Result<Bytes> AeadCipher::Seal(const Bytes& plaintext,
                               const Bytes& associated_data) const {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes sealed, enc_->Encrypt(plaintext));
  const Bytes tag = ComputeTag(sealed, associated_data);
  sealed.insert(sealed.end(), tag.begin(), tag.end());
  return sealed;
}

Result<Bytes> AeadCipher::Open(const Bytes& sealed,
                               const Bytes& associated_data) const {
  if (sealed.size() < kIvSize + kTagSize) {
    return Status::Corruption("sealed buffer too short for iv + tag");
  }
  const Bytes body(sealed.begin(), sealed.end() - kTagSize);
  const Bytes tag(sealed.end() - kTagSize, sealed.end());
  const Bytes expected = ComputeTag(body, associated_data);
  if (!ConstantTimeEquals(tag, expected)) {
    return Status::Corruption("AEAD tag mismatch: payload was tampered with");
  }
  return enc_->Decrypt(body);
}

}  // namespace crypto
}  // namespace simcloud
