#include "crypto/aead.h"

#include <cstring>

#include "crypto/hmac.h"

namespace simcloud {
namespace crypto {

namespace {

// Domain-separation labels for subkey derivation. Deriving both subkeys
// from one master key with distinct labels keeps the public API a single
// secret while guaranteeing the AES and MAC keys are independent.
Bytes DeriveSubkey(const Bytes& master_key, const char* label, size_t len) {
  Bytes message(label, label + std::strlen(label));
  Bytes digest = HmacSha256(master_key, message);
  digest.resize(len);
  return digest;
}

}  // namespace

Result<AeadCipher> AeadCipher::Create(const Bytes& master_key) {
  if (master_key.size() != 16 && master_key.size() != 24 &&
      master_key.size() != 32) {
    return Status::InvalidArgument("AEAD master key must be 16/24/32 bytes");
  }
  Bytes enc_key =
      DeriveSubkey(master_key, "simcloud-aead-enc", master_key.size());
  Bytes mac_key = DeriveSubkey(master_key, "simcloud-aead-mac", kTagSize);
  SIMCLOUD_ASSIGN_OR_RETURN(Cipher enc,
                            Cipher::Create(enc_key, CipherMode::kCtr));
  AeadCipher aead(std::move(enc), mac_key);
  WipeBytes(&enc_key);
  WipeBytes(&mac_key);
  return aead;
}

Bytes AeadCipher::ComputeTag(const Bytes& iv_and_ciphertext,
                             const Bytes& associated_data) const {
  Bytes message;
  message.reserve(8 + associated_data.size() + iv_and_ciphertext.size());
  const uint64_t ad_len = associated_data.size();
  for (int shift = 56; shift >= 0; shift -= 8) {
    message.push_back(static_cast<uint8_t>(ad_len >> shift));
  }
  message.insert(message.end(), associated_data.begin(),
                 associated_data.end());
  message.insert(message.end(), iv_and_ciphertext.begin(),
                 iv_and_ciphertext.end());
  return mac_state_.Mac(message);
}

Result<Bytes> AeadCipher::Seal(const Bytes& plaintext,
                               const Bytes& associated_data) const {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes sealed, enc_->Encrypt(plaintext));
  const Bytes tag = ComputeTag(sealed, associated_data);
  sealed.insert(sealed.end(), tag.begin(), tag.end());
  return sealed;
}

Result<Bytes> AeadCipher::Open(const Bytes& sealed,
                               const Bytes& associated_data) const {
  if (sealed.size() < kIvSize + kTagSize) {
    return Status::Corruption("sealed buffer too short for iv + tag");
  }
  const Bytes body(sealed.begin(), sealed.end() - kTagSize);
  const Bytes tag(sealed.end() - kTagSize, sealed.end());
  const Bytes expected = ComputeTag(body, associated_data);
  if (!ConstantTimeEquals(tag, expected)) {
    return Status::Corruption("AEAD tag mismatch: payload was tampered with");
  }
  return enc_->Decrypt(body);
}

}  // namespace crypto
}  // namespace simcloud
