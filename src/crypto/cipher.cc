#include "crypto/cipher.h"

#include <cstring>

#include "crypto/cpu_features.h"
#include "crypto/kernels.h"
#include "crypto/secure_random.h"

namespace simcloud {
namespace crypto {

namespace {
constexpr size_t kBlock = Aes::kBlockSize;

// CTR keystream XOR, routed through AES-NI when the dispatcher enabled
// it. Scalar and hardware kernels are bit-identical (cross-checked in
// tests/crypto_test.cc), so callers never observe the difference.
void CtrXor(const Aes& aes, const uint8_t iv[kBlock], const uint8_t* in,
            uint8_t* out, size_t len) {
  if (len == 0) return;
  if (AesAccelerated()) {
    AesNiCtrXor(aes.round_key_bytes(), aes.rounds(), iv, in, out, len);
  } else {
    ScalarAesCtrXor(aes, iv, in, out, len);
  }
}
}  // namespace

Bytes Pkcs7Pad(const Bytes& data, size_t block_size) {
  const size_t pad = block_size - (data.size() % block_size);
  Bytes out = data;
  out.insert(out.end(), pad, static_cast<uint8_t>(pad));
  return out;
}

Result<Bytes> Pkcs7Unpad(const Bytes& data, size_t block_size) {
  if (data.empty() || data.size() % block_size != 0) {
    return Status::Corruption("padded data size not a multiple of block size");
  }
  const uint8_t pad = data.back();
  if (pad == 0 || pad > block_size) {
    return Status::Corruption("invalid PKCS#7 padding byte");
  }
  for (size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) return Status::Corruption("inconsistent PKCS#7 padding");
  }
  return Bytes(data.begin(), data.end() - pad);
}

Result<Cipher> Cipher::Create(const Bytes& key, CipherMode mode) {
  SIMCLOUD_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key));
  return Cipher(std::move(aes), mode);
}

size_t Cipher::CiphertextSize(size_t plaintext_size) const {
  if (mode_ == CipherMode::kCbc) {
    return kBlock + (plaintext_size / kBlock + 1) * kBlock;
  }
  return kBlock + plaintext_size;
}

Result<Bytes> Cipher::Encrypt(const Bytes& plaintext) const {
  Bytes iv(kBlock);
  SIMCLOUD_RETURN_NOT_OK(SecureRandom::Fill(iv.data(), iv.size()));
  return EncryptWithIv(plaintext, iv);
}

Result<Bytes> Cipher::EncryptWithIv(const Bytes& plaintext,
                                    const Bytes& iv) const {
  if (iv.size() != kBlock) {
    return Status::InvalidArgument("IV must be 16 bytes");
  }
  return mode_ == CipherMode::kCbc ? EncryptCbc(plaintext, iv)
                                   : EncryptCtr(plaintext, iv);
}

Result<Bytes> Cipher::Decrypt(const Bytes& ciphertext) const {
  if (ciphertext.size() < kBlock) {
    return Status::Corruption("ciphertext shorter than IV");
  }
  return mode_ == CipherMode::kCbc ? DecryptCbc(ciphertext)
                                   : DecryptCtr(ciphertext);
}

Result<Bytes> Cipher::EncryptCbc(const Bytes& plaintext,
                                 const Bytes& iv) const {
  const Bytes padded = Pkcs7Pad(plaintext, kBlock);
  Bytes out;
  out.reserve(kBlock + padded.size());
  out.insert(out.end(), iv.begin(), iv.end());

  uint8_t chain[kBlock];
  std::memcpy(chain, iv.data(), kBlock);
  uint8_t block[kBlock];
  for (size_t off = 0; off < padded.size(); off += kBlock) {
    for (size_t i = 0; i < kBlock; ++i) block[i] = padded[off + i] ^ chain[i];
    aes_.EncryptBlock(block, chain);
    out.insert(out.end(), chain, chain + kBlock);
  }
  return out;
}

Result<Bytes> Cipher::DecryptCbc(const Bytes& ciphertext) const {
  const size_t body = ciphertext.size() - kBlock;
  if (body == 0 || body % kBlock != 0) {
    return Status::Corruption("CBC ciphertext body not block-aligned");
  }
  Bytes padded(body);
  uint8_t chain[kBlock];
  std::memcpy(chain, ciphertext.data(), kBlock);
  uint8_t block[kBlock];
  for (size_t off = 0; off < body; off += kBlock) {
    const uint8_t* ct = ciphertext.data() + kBlock + off;
    aes_.DecryptBlock(ct, block);
    for (size_t i = 0; i < kBlock; ++i) padded[off + i] = block[i] ^ chain[i];
    std::memcpy(chain, ct, kBlock);
  }
  return Pkcs7Unpad(padded, kBlock);
}

Result<Bytes> Cipher::EncryptCtr(const Bytes& plaintext,
                                 const Bytes& iv) const {
  Bytes out(kBlock + plaintext.size());
  std::memcpy(out.data(), iv.data(), kBlock);
  CtrXor(aes_, iv.data(), plaintext.data(), out.data() + kBlock,
         plaintext.size());
  return out;
}

Result<Bytes> Cipher::DecryptCtr(const Bytes& ciphertext) const {
  // CTR decryption is encryption of the body under the stored IV.
  Bytes out(ciphertext.size() - kBlock);
  CtrXor(aes_, ciphertext.data(), ciphertext.data() + kBlock, out.data(),
         out.size());
  return out;
}

}  // namespace crypto
}  // namespace simcloud
