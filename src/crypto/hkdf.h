// HKDF-SHA256 (RFC 5869): extract-then-expand key derivation.
//
// The secure-channel subsystem derives its handshake MAC key and the
// per-direction, per-epoch record keys from one pre-shared key with
// domain-separated HKDF invocations, so a single provisioned secret
// yields an arbitrary schedule of independent keys.

#ifndef SIMCLOUD_CRYPTO_HKDF_H_
#define SIMCLOUD_CRYPTO_HKDF_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace crypto {

/// HKDF-Extract: concentrates the entropy of `ikm` into a 32-byte
/// pseudorandom key. An empty `salt` is the RFC's all-zero default.
Bytes HkdfExtract(const Bytes& salt, const Bytes& ikm);

/// HKDF-Expand: stretches a pseudorandom key `prk` (>= 32 bytes of
/// extract output) into `out_len` bytes bound to the context `info`.
/// `out_len` must be <= 255 * 32.
Result<Bytes> HkdfExpand(const Bytes& prk, const Bytes& info, size_t out_len);

/// One-shot Extract + Expand.
Result<Bytes> HkdfSha256(const Bytes& salt, const Bytes& ikm,
                         const Bytes& info, size_t out_len);

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_HKDF_H_
