#include "crypto/hkdf.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace simcloud {
namespace crypto {

Bytes HkdfExtract(const Bytes& salt, const Bytes& ikm) {
  // RFC 5869 section 2.2: an absent salt is HashLen zero bytes.
  if (salt.empty()) {
    return HmacSha256(Bytes(Sha256::kDigestSize, 0x00), ikm);
  }
  return HmacSha256(salt, ikm);
}

Result<Bytes> HkdfExpand(const Bytes& prk, const Bytes& info,
                         size_t out_len) {
  constexpr size_t kHashLen = Sha256::kDigestSize;
  if (prk.size() < kHashLen) {
    return Status::InvalidArgument("HKDF-Expand needs a PRK of >= 32 bytes");
  }
  if (out_len == 0 || out_len > 255 * kHashLen) {
    return Status::InvalidArgument("HKDF-Expand output length out of range");
  }

  Bytes out;
  out.reserve(out_len);
  Bytes block;  // T(i-1), empty for T(1)
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes message;
    message.reserve(block.size() + info.size() + 1);
    message.insert(message.end(), block.begin(), block.end());
    message.insert(message.end(), info.begin(), info.end());
    message.push_back(counter++);
    block = HmacSha256(prk, message);
    const size_t take = std::min(block.size(), out_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
  }
  return out;
}

Result<Bytes> HkdfSha256(const Bytes& salt, const Bytes& ikm,
                         const Bytes& info, size_t out_len) {
  return HkdfExpand(HkdfExtract(salt, ikm), info, out_len);
}

}  // namespace crypto
}  // namespace simcloud
