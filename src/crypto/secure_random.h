// Cryptographically secure randomness (IVs, key generation).
// Reads the operating system entropy source (/dev/urandom).

#ifndef SIMCLOUD_CRYPTO_SECURE_RANDOM_H_
#define SIMCLOUD_CRYPTO_SECURE_RANDOM_H_

#include <cstdint>
#include <cstddef>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace crypto {

/// OS-backed secure random source.
class SecureRandom {
 public:
  /// Fills `buf[0..len)` with OS entropy.
  static Status Fill(uint8_t* buf, size_t len);

  /// Returns `len` secure random bytes.
  static Result<Bytes> Generate(size_t len);
};

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_SECURE_RANDOM_H_
