// x86 hardware kernels: AES-NI CTR keystream and SHA-NI SHA-256
// compression. This file — and ONLY this file — is compiled with
// -maes/-msha/-mssse3/-msse4.1 (see CMakeLists.txt), so nothing here may
// be called before a cpuid check: the dispatchers in cpu_features.cc /
// kernels.h guarantee that. Feature *detection* deliberately lives in
// cpu_features.cc, which is built without SIMD flags, so a non-AES host
// never executes an instruction from this translation unit.
//
// Correctness contract: bit-identical to the scalar references in
// aes.cc / sha256.cc; tests/crypto_test.cc cross-checks both kernels on
// random inputs whenever the hardware supports them.

#include "crypto/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace simcloud {
namespace crypto {

namespace internal {
const bool kAesNiKernelCompiled = true;
const bool kShaNiKernelCompiled = true;
}  // namespace internal

namespace {

// Big-endian increment of the rightmost 8 counter bytes — the same
// convention as cipher.cc's IncrementCounter.
inline void IncrementCtr(uint8_t counter[16]) {
  for (int i = 15; i >= 8; --i) {
    if (++counter[i] != 0) break;
  }
}

inline __m128i EncryptOne(__m128i block, const __m128i* keys, int rounds) {
  block = _mm_xor_si128(block, keys[0]);
  for (int r = 1; r < rounds; ++r) block = _mm_aesenc_si128(block, keys[r]);
  return _mm_aesenclast_si128(block, keys[rounds]);
}

}  // namespace

void AesNiCtrXor(const uint8_t* round_keys, int rounds, const uint8_t iv[16],
                 const uint8_t* in, uint8_t* out, size_t len) {
  __m128i keys[15];
  for (int r = 0; r <= rounds; ++r) {
    keys[r] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_keys + 16 * r));
  }
  uint8_t counter[16];
  std::memcpy(counter, iv, 16);

  size_t off = 0;
  // 8-block pipeline: AESENC has multi-cycle latency but single-cycle
  // throughput, so independent blocks hide the latency almost entirely.
  while (len - off >= 128) {
    __m128i blocks[8];
    for (int b = 0; b < 8; ++b) {
      blocks[b] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter));
      IncrementCtr(counter);
    }
    for (int b = 0; b < 8; ++b) blocks[b] = _mm_xor_si128(blocks[b], keys[0]);
    for (int r = 1; r < rounds; ++r) {
      for (int b = 0; b < 8; ++b) {
        blocks[b] = _mm_aesenc_si128(blocks[b], keys[r]);
      }
    }
    for (int b = 0; b < 8; ++b) {
      blocks[b] = _mm_aesenclast_si128(blocks[b], keys[rounds]);
    }
    for (int b = 0; b < 8; ++b) {
      const __m128i data = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + off + 16 * b));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off + 16 * b),
                       _mm_xor_si128(data, blocks[b]));
    }
    off += 128;
  }
  // Remaining whole blocks plus the tail.
  while (off < len) {
    const __m128i keystream = EncryptOne(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter)), keys,
        rounds);
    IncrementCtr(counter);
    const size_t n = len - off < 16 ? len - off : 16;
    if (n == 16) {
      const __m128i data =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + off));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + off),
                       _mm_xor_si128(data, keystream));
    } else {
      uint8_t ks_bytes[16];
      _mm_storeu_si128(reinterpret_cast<__m128i*>(ks_bytes), keystream);
      for (size_t i = 0; i < n; ++i) out[off + i] = in[off + i] ^ ks_bytes[i];
    }
    off += 16;
  }
}

// SHA-NI SHA-256 (the canonical SHA256RNDS2/MSG1/MSG2 schedule; state
// is kept as the ABEF/CDGH register split the instructions expect).
void ShaNiSha256Blocks(uint32_t h[8], const uint8_t* data, size_t blocks) {
  const __m128i kShuffleMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;

    // Rounds 0-3
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)),
        kShuffleMask);
    msg = _mm_add_epi32(msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL,
                                             0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)),
        kShuffleMask);
    msg = _mm_add_epi32(msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL,
                                             0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)),
        kShuffleMask);
    msg = _mm_add_epi32(msg2, _mm_set_epi64x(0x550C7DC3243185BEULL,
                                             0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)),
        kShuffleMask);
    msg = _mm_add_epi32(msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL,
                                             0x80DEB1FE72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-51: the steady-state 4-round schedule, msg0..msg3
    // rotating through the roles.
#define SIMCLOUD_SHA_QROUND(ka, kb, m_a, m_b, m_c, m_d)          \
  msg = _mm_add_epi32(m_a, _mm_set_epi64x(ka, kb));              \
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);           \
  msgtmp = _mm_alignr_epi8(m_a, m_d, 4);                         \
  m_b = _mm_add_epi32(m_b, msgtmp);                              \
  m_b = _mm_sha256msg2_epu32(m_b, m_a);                          \
  msg = _mm_shuffle_epi32(msg, 0x0E);                            \
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);           \
  m_d = _mm_sha256msg1_epu32(m_d, m_a)

    SIMCLOUD_SHA_QROUND(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL,
                        msg0, msg1, msg2, msg3);  // rounds 16-19
    SIMCLOUD_SHA_QROUND(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL,
                        msg1, msg2, msg3, msg0);  // rounds 20-23
    SIMCLOUD_SHA_QROUND(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL,
                        msg2, msg3, msg0, msg1);  // rounds 24-27
    SIMCLOUD_SHA_QROUND(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL,
                        msg3, msg0, msg1, msg2);  // rounds 28-31
    SIMCLOUD_SHA_QROUND(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL,
                        msg0, msg1, msg2, msg3);  // rounds 32-35
    SIMCLOUD_SHA_QROUND(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL,
                        msg1, msg2, msg3, msg0);  // rounds 36-39
    SIMCLOUD_SHA_QROUND(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL,
                        msg2, msg3, msg0, msg1);  // rounds 40-43
    SIMCLOUD_SHA_QROUND(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL,
                        msg3, msg0, msg1, msg2);  // rounds 44-47
#undef SIMCLOUD_SHA_QROUND

    // Rounds 48-51. One more msg1 IS needed: W[60-63] takes
    // sigma0(W[45..48]), and W[48] only exists now that rounds 44-47
    // finished msg0.
    msg = _mm_add_epi32(msg0, _mm_set_epi64x(0x34B0BCB52748774CULL,
                                             0x1E376C0819A4C116ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL,
                                             0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(msg2, _mm_set_epi64x(0x8CC7020884C87814ULL,
                                             0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL,
                                             0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE -> EFGH order
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h[4]), state1);
}

}  // namespace crypto
}  // namespace simcloud

#else  // !x86: the hardware kernels do not exist on this architecture.

namespace simcloud {
namespace crypto {

namespace internal {
const bool kAesNiKernelCompiled = false;
const bool kShaNiKernelCompiled = false;
}  // namespace internal

void AesNiCtrXor(const uint8_t*, int, const uint8_t*, const uint8_t*,
                 uint8_t*, size_t) {}
void ShaNiSha256Blocks(uint32_t*, const uint8_t*, size_t) {}

}  // namespace crypto
}  // namespace simcloud

#endif
