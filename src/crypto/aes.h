// FIPS-197 AES block cipher (128/192/256-bit keys), implemented from
// scratch so the library has no external crypto dependency.
//
// This class is the raw 16-byte block transform; use crypto::Cipher
// (cipher.h) for CBC/CTR modes over arbitrary-length messages. The paper's
// Encrypted M-Index uses AES-128, matching its evaluation setup.
//
// Correctness is validated against the FIPS-197 appendix vectors and the
// NIST AESAVS known-answer tests (see tests/crypto_test.cc).

#ifndef SIMCLOUD_CRYPTO_AES_H_
#define SIMCLOUD_CRYPTO_AES_H_

#include <cstdint>
#include <cstddef>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace crypto {

/// AES block cipher. Thread-safe for concurrent Encrypt/Decrypt calls after
/// construction (the expanded key schedule is immutable).
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  /// Expands `key` (16, 24, or 32 bytes) into round keys.
  static Result<Aes> Create(const Bytes& key);

  /// Encrypts one 16-byte block in place-compatible fashion (in == out ok).
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Decrypts one 16-byte block.
  void DecryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Number of rounds (10/12/14 for AES-128/192/256).
  int rounds() const { return rounds_; }

  /// Encryption key schedule serialized big-endian per word — the exact
  /// 16-byte-per-round-key layout AES-NI kernels _mm_loadu_si128 from.
  /// Valid for 16 * (rounds() + 1) bytes.
  const uint8_t* round_key_bytes() const { return round_key_bytes_; }

 private:
  Aes() = default;
  void ExpandKey(const uint8_t* key, size_t key_len);

  // Round keys as 4-byte words; max 60 words for AES-256 (15 round keys).
  uint32_t round_keys_[60] = {};
  // The same schedule in byte order, for the AES-NI fast path.
  uint8_t round_key_bytes_[240] = {};
  int rounds_ = 0;
};

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_AES_H_
