// HMAC-SHA256 (RFC 2104) and PBKDF2-HMAC-SHA256 (RFC 8018) key derivation.
//
// The data owner derives the AES object-encryption key from a passphrase
// with PBKDF2; HMAC also underpins deterministic per-experiment key
// generation in the benchmarks.

#ifndef SIMCLOUD_CRYPTO_HMAC_H_
#define SIMCLOUD_CRYPTO_HMAC_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace crypto {

/// Computes HMAC-SHA256(key, message); 32-byte output.
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// Derives `out_len` bytes from `password` and `salt` using
/// PBKDF2-HMAC-SHA256 with `iterations` rounds (>= 1).
Result<Bytes> Pbkdf2Sha256(const Bytes& password, const Bytes& salt,
                           uint32_t iterations, size_t out_len);

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_HMAC_H_
