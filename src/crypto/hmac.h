// HMAC-SHA256 (RFC 2104) and PBKDF2-HMAC-SHA256 (RFC 8018) key derivation.
//
// The data owner derives the AES object-encryption key from a passphrase
// with PBKDF2; HMAC also underpins deterministic per-experiment key
// generation in the benchmarks.

#ifndef SIMCLOUD_CRYPTO_HMAC_H_
#define SIMCLOUD_CRYPTO_HMAC_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace simcloud {
namespace crypto {

/// Computes HMAC-SHA256(key, message); 32-byte output.
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// Precomputed HMAC-SHA256 key schedule: the SHA-256 states after
/// absorbing the ipad/opad key blocks. One instance per key; Mac() then
/// pays only the message compressions instead of re-hashing the padded
/// key on every call — the AEAD record layer tags every wire record, so
/// this halves the fixed per-record hash cost. Safe for concurrent
/// Mac() calls (the states are copied per call).
class HmacSha256State {
 public:
  explicit HmacSha256State(const Bytes& key);

  /// HMAC-SHA256(key, message) under the precomputed schedule.
  Bytes Mac(const Bytes& message) const;

  /// Incremental MAC over discontiguous parts under the same schedule:
  /// Update each piece in order, then Finish. Saves the concat copy the
  /// one-shot Mac() would force on callers with framed messages (the
  /// AEAD tags every wire record over length-prefix || ad || iv ||
  /// ciphertext without gluing them together first).
  class Stream {
   public:
    void Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }
    void Update(const Bytes& data) { inner_.Update(data); }
    /// Finalizes HMAC over everything updated so far; single use.
    Bytes Finish();

   private:
    friend class HmacSha256State;
    Stream(const Sha256& inner, const Sha256& outer)
        : inner_(inner), outer_(outer) {}
    Sha256 inner_;
    Sha256 outer_;
  };
  /// A fresh stream resumed from the precomputed key state.
  Stream NewStream() const { return Stream(inner_, outer_); }

 private:
  Sha256 inner_;  ///< state after the ipad block
  Sha256 outer_;  ///< state after the opad block
};

/// Derives `out_len` bytes from `password` and `salt` using
/// PBKDF2-HMAC-SHA256 with `iterations` rounds (>= 1).
Result<Bytes> Pbkdf2Sha256(const Bytes& password, const Bytes& salt,
                           uint32_t iterations, size_t out_len);

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_HMAC_H_
