// Runtime CPU-feature detection for the crypto fast paths.
//
// The crypto layer keeps two implementations of its hot kernels: the
// from-scratch scalar reference (aes.cc / sha256.cc — the vector-tested
// ground truth) and hardware kernels (kernels_x86.cc) that use AES-NI
// and SHA-NI instructions. Which one runs is decided ONCE per process,
// from cpuid, and can be forced back to the reference with
//   SIMCLOUD_FORCE_SCALAR_CRYPTO=1
// so any box — and any CI job — can exercise the scalar paths
// regardless of its hardware. Outputs are bit-identical either way; the
// dispatch changes the instruction schedule, never a byte.

#ifndef SIMCLOUD_CRYPTO_CPU_FEATURES_H_
#define SIMCLOUD_CRYPTO_CPU_FEATURES_H_

#include <string>

namespace simcloud {
namespace crypto {

/// What the running CPU offers the crypto kernels.
struct CpuFeatures {
  /// AESENC/AESENCLAST (+ the SSSE3/SSE4.1 baseline the CTR kernel
  /// needs) are available AND compiled in.
  bool aes_ni = false;
  /// SHA256RNDS2/SHA256MSG1/SHA256MSG2 are available AND compiled in.
  bool sha_ni = false;
  /// SIMCLOUD_FORCE_SCALAR_CRYPTO=1 was set: both flags above were
  /// cleared even though the silicon (raw_*) may support them.
  bool forced_scalar = false;
  /// Silicon capabilities before the environment override (tests
  /// cross-check accelerated vs scalar kernels whenever these are set).
  bool raw_aes_ni = false;
  bool raw_sha_ni = false;
};

/// The process-wide feature set: cpuid + compile-time support, with the
/// SIMCLOUD_FORCE_SCALAR_CRYPTO override applied. Evaluated once, on
/// first use; safe to call concurrently.
const CpuFeatures& GetCpuFeatures();

/// True when AES-CTR runs on the AES-NI kernel in this process.
inline bool AesAccelerated() { return GetCpuFeatures().aes_ni; }
/// True when SHA-256 (and so HMAC/HKDF/AEAD tags) runs on SHA-NI.
inline bool ShaAccelerated() { return GetCpuFeatures().sha_ni; }

/// One-line human-readable backend summary for startup banners and
/// bench output, e.g. "aes=aes-ni sha=sha-ni" or
/// "aes=scalar sha=scalar (forced)".
std::string CryptoBackendSummary();

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_CPU_FEATURES_H_
