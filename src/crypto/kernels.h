// Hot crypto kernels behind the runtime dispatcher (cpu_features.h).
//
// Each primitive exists twice: a scalar reference (implemented next to
// the primitive it accelerates, in aes.cc / sha256.cc, and validated by
// the FIPS/NIST vectors in tests/crypto_test.cc) and an x86 hardware
// kernel (kernels_x86.cc, compiled with -maes/-msha for THAT file only
// and gated by cpuid at runtime). Both are exposed here so the tests
// can cross-check them on random inputs whenever the hardware kernel is
// available, independent of what the process-wide dispatch selected.
//
// Adding a kernel: implement the scalar reference first, land vectors
// for it, then add the hardware twin here plus a cross-check test —
// see src/crypto/README.md for the full checklist.

#ifndef SIMCLOUD_CRYPTO_KERNELS_H_
#define SIMCLOUD_CRYPTO_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace simcloud {
namespace crypto {

class Aes;

// ---------------------------------------------------------------------------
// AES-CTR keystream XOR: out[i] = in[i] ^ AES-CTR keystream under `iv`.
// The counter convention matches cipher.cc: the full 16-byte IV is the
// first counter block and the rightmost 8 bytes increment big-endian
// per block (NIST SP 800-38A style). in == out is allowed.
// ---------------------------------------------------------------------------

/// Scalar reference: one EncryptBlock per 16-byte block.
void ScalarAesCtrXor(const Aes& aes, const uint8_t iv[16], const uint8_t* in,
                     uint8_t* out, size_t len);

/// True when the AES-NI kernel is compiled in AND the CPU supports it
/// (raw capability — the SIMCLOUD_FORCE_SCALAR_CRYPTO override lives in
/// cpu_features.h, not here).
bool AesNiKernelAvailable();

/// AES-NI kernel, 8-block pipelined. `round_keys` holds the byte-order
/// encryption key schedule (Aes::ExportRoundKeyBytes), `rounds` is
/// 10/12/14. Must only be called when AesNiKernelAvailable().
void AesNiCtrXor(const uint8_t* round_keys, int rounds, const uint8_t iv[16],
                 const uint8_t* in, uint8_t* out, size_t len);

// ---------------------------------------------------------------------------
// SHA-256 block compression: absorbs `blocks` 64-byte blocks into the
// running state h[8] (FIPS-180-4 working variables, host byte order).
// ---------------------------------------------------------------------------

/// Scalar reference compression loop.
void ScalarSha256Blocks(uint32_t h[8], const uint8_t* data, size_t blocks);

/// True when the SHA-NI kernel is compiled in AND the CPU supports it.
bool ShaNiKernelAvailable();

/// SHA-NI kernel. Must only be called when ShaNiKernelAvailable().
void ShaNiSha256Blocks(uint32_t h[8], const uint8_t* data, size_t blocks);

namespace internal {
// Set by kernels_x86.cc: whether the hardware kernels were compiled for
// this architecture at all. cpuid (cpu_features.cc) decides the rest.
extern const bool kAesNiKernelCompiled;
extern const bool kShaNiKernelCompiled;
}  // namespace internal

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_KERNELS_H_
