// Symmetric encryption of arbitrary-length messages on top of the AES
// block transform: CBC with PKCS#7 padding (the scheme used for object
// payloads, matching the paper's AES-128 setup) and CTR (used where
// ciphertext length must equal plaintext length).
//
// Ciphertext layout: a fresh random 16-byte IV is prepended, so the
// ciphertext of an n-byte message is
//   CBC: 16 + (floor(n/16)+1)*16 bytes,
//   CTR: 16 + n bytes.

#ifndef SIMCLOUD_CRYPTO_CIPHER_H_
#define SIMCLOUD_CRYPTO_CIPHER_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace simcloud {
namespace crypto {

/// Block cipher mode of operation.
enum class CipherMode { kCbc, kCtr };

/// Stateless authenticated-unauthenticated symmetric cipher wrapper.
/// One instance per key; safe for concurrent use.
class Cipher {
 public:
  /// Creates a cipher for `key` (16/24/32 bytes) in the given mode.
  static Result<Cipher> Create(const Bytes& key, CipherMode mode);

  /// Encrypts `plaintext` under a caller-supplied 16-byte IV.
  /// Returns iv || ciphertext.
  Result<Bytes> EncryptWithIv(const Bytes& plaintext, const Bytes& iv) const;

  /// Encrypts `plaintext` under a fresh random IV (drawn from SecureRandom).
  Result<Bytes> Encrypt(const Bytes& plaintext) const;

  /// Decrypts a buffer produced by Encrypt/EncryptWithIv.
  Result<Bytes> Decrypt(const Bytes& ciphertext) const;

  /// Size in bytes of Encrypt()'s output for an n-byte plaintext.
  size_t CiphertextSize(size_t plaintext_size) const;

  CipherMode mode() const { return mode_; }

 private:
  Cipher(Aes aes, CipherMode mode) : aes_(std::move(aes)), mode_(mode) {}

  Result<Bytes> EncryptCbc(const Bytes& plaintext, const Bytes& iv) const;
  Result<Bytes> DecryptCbc(const Bytes& ciphertext) const;
  Result<Bytes> EncryptCtr(const Bytes& plaintext, const Bytes& iv) const;
  Result<Bytes> DecryptCtr(const Bytes& ciphertext) const;

  Aes aes_;
  CipherMode mode_;
};

/// Applies PKCS#7 padding up to `block_size` (1..255).
Bytes Pkcs7Pad(const Bytes& data, size_t block_size);

/// Strips and validates PKCS#7 padding; Corruption on malformed padding.
Result<Bytes> Pkcs7Unpad(const Bytes& data, size_t block_size);

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_CIPHER_H_
