#include "crypto/sha256.h"

#include <cstring>

#include "crypto/cpu_features.h"
#include "crypto/kernels.h"

namespace simcloud {
namespace crypto {

namespace {
constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
}  // namespace

void Sha256::Reset() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
  buffer_len_ = 0;
  total_len_ = 0;
}

void ScalarSha256Blocks(uint32_t h_state[8], const uint8_t* data,
                        size_t blocks) {
  for (size_t blk = 0; blk < blocks; ++blk, data += Sha256::kBlockSize) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(data[4 * i]) << 24) |
             (static_cast<uint32_t>(data[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(data[4 * i + 2]) << 8) |
             static_cast<uint32_t>(data[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 =
          Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 =
          Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = h_state[0], b = h_state[1], c = h_state[2], d = h_state[3];
    uint32_t e = h_state[4], f = h_state[5], g = h_state[6], h = h_state[7];
    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h_state[0] += a;
    h_state[1] += b;
    h_state[2] += c;
    h_state[3] += d;
    h_state[4] += e;
    h_state[5] += f;
    h_state[6] += g;
    h_state[7] += h;
  }
}

void Sha256::ProcessBlocks(const uint8_t* data, size_t blocks) {
  if (ShaAccelerated()) {
    ShaNiSha256Blocks(h_, data, blocks);
  } else {
    ScalarSha256Blocks(h_, data, blocks);
  }
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  // Top up a partially filled buffer first.
  if (buffer_len_ > 0) {
    const size_t take = std::min(len, kBlockSize - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == kBlockSize) {
      ProcessBlocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  // Bulk-process whole blocks straight from the input (no copy) so the
  // hardware kernel sees long runs.
  const size_t whole = len / kBlockSize;
  if (whole > 0) {
    ProcessBlocks(data, whole);
    data += whole * kBlockSize;
    len -= whole * kBlockSize;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

std::array<uint8_t, Sha256::kDigestSize> Sha256::Finish() {
  const uint64_t bit_len = total_len_ * 8;
  // Append 0x80, zero-fill to 8 bytes before a block edge, then the
  // length — at most two compressions, padded with straight memsets
  // (the record layer finalizes a digest per wire frame, so the fixed
  // cost here is hot).
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > kBlockSize - 8) {
    std::memset(buffer_ + buffer_len_, 0, kBlockSize - buffer_len_);
    ProcessBlocks(buffer_, 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, kBlockSize - 8 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[kBlockSize - 8 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  ProcessBlocks(buffer_, 1);
  buffer_len_ = 0;

  std::array<uint8_t, kDigestSize> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Bytes Sha256::Hash(const Bytes& data) {
  Sha256 hasher;
  hasher.Update(data);
  auto digest = hasher.Finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace crypto
}  // namespace simcloud
