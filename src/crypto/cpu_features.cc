#include "crypto/cpu_features.h"

#include <cstdlib>
#include <cstring>

#include "crypto/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace simcloud {
namespace crypto {

namespace {

// cpuid feature bits (leaf 1 ECX / leaf 7 EBX). Named locally instead
// of relying on <cpuid.h>'s bit_* macros, which vary across compilers.
constexpr unsigned kLeaf1EcxSsse3 = 1u << 9;
constexpr unsigned kLeaf1EcxSse41 = 1u << 19;
constexpr unsigned kLeaf1EcxAes = 1u << 25;
constexpr unsigned kLeaf7EbxSha = 1u << 29;

struct CpuidBits {
  unsigned leaf1_ecx = 0;
  unsigned leaf7_ebx = 0;
};

CpuidBits QueryCpuid() {
  CpuidBits bits;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) bits.leaf1_ecx = ecx;
  eax = ebx = ecx = edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) bits.leaf7_ebx = ebx;
#endif
  return bits;
}

const CpuidBits& GetCpuidBits() {
  static const CpuidBits bits = QueryCpuid();
  return bits;
}

}  // namespace

bool AesNiKernelAvailable() {
  // The CTR kernel uses AESENC plus the SSSE3/SSE4.1 baseline; no AVX
  // state is involved, so no xgetbv check is needed.
  const CpuidBits& bits = GetCpuidBits();
  return internal::kAesNiKernelCompiled &&
         (bits.leaf1_ecx & kLeaf1EcxAes) != 0 &&
         (bits.leaf1_ecx & kLeaf1EcxSsse3) != 0 &&
         (bits.leaf1_ecx & kLeaf1EcxSse41) != 0;
}

bool ShaNiKernelAvailable() {
  const CpuidBits& bits = GetCpuidBits();
  return internal::kShaNiKernelCompiled &&
         (bits.leaf7_ebx & kLeaf7EbxSha) != 0 &&
         (bits.leaf1_ecx & kLeaf1EcxSsse3) != 0 &&
         (bits.leaf1_ecx & kLeaf1EcxSse41) != 0;
}

namespace {

CpuFeatures Detect() {
  CpuFeatures features;
  features.raw_aes_ni = AesNiKernelAvailable();
  features.raw_sha_ni = ShaNiKernelAvailable();
  features.aes_ni = features.raw_aes_ni;
  features.sha_ni = features.raw_sha_ni;

  const char* env = std::getenv("SIMCLOUD_FORCE_SCALAR_CRYPTO");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    features.forced_scalar = true;
    features.aes_ni = false;
    features.sha_ni = false;
  }
  return features;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

std::string CryptoBackendSummary() {
  const CpuFeatures& features = GetCpuFeatures();
  std::string summary = "aes=";
  summary += features.aes_ni ? "aes-ni" : "scalar";
  summary += " sha=";
  summary += features.sha_ni ? "sha-ni" : "scalar";
  if (features.forced_scalar) summary += " (forced)";
  return summary;
}

}  // namespace crypto
}  // namespace simcloud
