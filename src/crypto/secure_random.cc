#include "crypto/secure_random.h"

#include <cstdio>

namespace simcloud {
namespace crypto {

Status SecureRandom::Fill(uint8_t* buf, size_t len) {
  static FILE* urandom = std::fopen("/dev/urandom", "rb");
  if (urandom == nullptr) {
    return Status::IoError("cannot open /dev/urandom");
  }
  size_t done = 0;
  while (done < len) {
    const size_t n = std::fread(buf + done, 1, len - done, urandom);
    if (n == 0) return Status::IoError("short read from /dev/urandom");
    done += n;
  }
  return Status::OK();
}

Result<Bytes> SecureRandom::Generate(size_t len) {
  Bytes out(len);
  SIMCLOUD_RETURN_NOT_OK(Fill(out.data(), out.size()));
  return out;
}

}  // namespace crypto
}  // namespace simcloud
