// Authenticated encryption (encrypt-then-MAC): AES-CTR for
// confidentiality plus HMAC-SHA256 for integrity.
//
// The paper's Encrypted M-Index protects confidentiality only — a
// compromised server could silently corrupt stored ciphertexts and the
// client would compute distances over garbage plaintexts. Sealing object
// payloads with this AEAD lets the authorized client detect any
// modification of the candidate objects it receives (Section 4.3
// threat model, hardened).
//
// Sealed layout: iv (16 B) || ciphertext (n B, CTR keeps length) ||
// tag (32 B). The tag is HMAC-SHA256 over
//   len(associated_data) as 8-byte big-endian || associated_data ||
//   iv || ciphertext
// so tampering with the IV, the ciphertext, or the binding context is
// detected. Encryption and MAC keys are derived from one master key by
// domain-separated HMAC, so callers manage a single secret.

#ifndef SIMCLOUD_CRYPTO_AEAD_H_
#define SIMCLOUD_CRYPTO_AEAD_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/cipher.h"
#include "crypto/hmac.h"

namespace simcloud {
namespace crypto {

/// Encrypt-then-MAC AEAD on top of AES-CTR + HMAC-SHA256.
/// One instance per master key; safe for concurrent use.
class AeadCipher {
 public:
  /// HMAC-SHA256 output length; every sealed buffer ends with a tag of
  /// this size.
  static constexpr size_t kTagSize = 32;
  /// CTR-mode IV length prepended to every sealed buffer.
  static constexpr size_t kIvSize = 16;

  /// Creates an AEAD from a 16/24/32-byte master key. The AES encryption
  /// key (same length as the master key) and the 32-byte MAC key are
  /// derived with domain-separated HMAC-SHA256 invocations.
  ///
  /// Key hygiene: the raw MAC key is wiped inside Create — the cipher
  /// retains only the precomputed HMAC states (in-object arrays, no
  /// heap-resident key bytes to leak on copy/move/destruction).
  static Result<AeadCipher> Create(const Bytes& master_key);

  /// Encrypts and authenticates `plaintext`, binding `associated_data`
  /// (not transmitted) into the tag. Returns iv || ciphertext || tag.
  Result<Bytes> Seal(const Bytes& plaintext,
                     const Bytes& associated_data = {}) const;

  /// Verifies the tag (constant-time) and decrypts. Returns Corruption if
  /// the buffer is malformed or the tag does not match — in that case no
  /// plaintext is revealed.
  Result<Bytes> Open(const Bytes& sealed,
                     const Bytes& associated_data = {}) const;

  /// Size in bytes of Seal()'s output for an n-byte plaintext.
  static size_t SealedSize(size_t plaintext_size) {
    return kIvSize + plaintext_size + kTagSize;
  }

 private:
  AeadCipher(Cipher enc, const Bytes& mac_key)
      : enc_(std::make_shared<Cipher>(std::move(enc))),
        mac_state_(mac_key) {}

  /// Computes the tag over (len(ad) || ad || iv_and_ciphertext).
  Bytes ComputeTag(const Bytes& iv_and_ciphertext,
                   const Bytes& associated_data) const;

  std::shared_ptr<Cipher> enc_;
  /// Precomputed HMAC key schedule: tagging pays only the message
  /// compressions (the record layer tags every wire record), and no
  /// raw key bytes stay resident on the heap.
  HmacSha256State mac_state_;
};

}  // namespace crypto
}  // namespace simcloud

#endif  // SIMCLOUD_CRYPTO_AEAD_H_
