#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/log.h"
#include "obs/metrics.h"

namespace simcloud {
namespace obs {

namespace {

thread_local TraceSpan* t_current_span = nullptr;

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kQueueWait: return "queue";
    case Stage::kIndexEval: return "index";
    case Stage::kPayloadFetch: return "fetch";
    case Stage::kSealSend: return "seal";
  }
  return "unknown";
}

const char* OpcodeLabel(uint8_t opcode) {
  // Mirrors secure::Op; net/ cannot include the protocol header, so the
  // label table lives here and protocol_test pins the two in sync.
  switch (opcode) {
    case 1: return "insert_batch";
    case 2: return "range_search";
    case 3: return "approx_knn";
    case 4: return "get_stats";
    case 5: return "delete";
    case 6: return "range_search_batch";
    case 7: return "approx_knn_batch";
    case 8: return "delete_batch";
    case 9: return "compact";
    case 10: return "ping";
    case 11: return "watch";
    case 12: return "watch_cancel";
    case 13: return "range_search_cursor";
    case 14: return "cursor_next";
    case 15: return "cursor_close";
    case 16: return "get_metrics";
    default: break;
  }
  static constexpr const char* kUnknown[] = {
      "op0",   "op1",   "op2",   "op3",   "op4",   "op5",   "op6",   "op7",
      "op8",   "op9",   "op10",  "op11",  "op12",  "op13",  "op14",  "op15",
      "op16",  "op17",  "op18",  "op19",  "op20",  "op21",  "op22",  "op23",
      "op24",  "op25",  "op26",  "op27",  "op28",  "op29",  "op30",  "op31"};
  return opcode < 32 ? kUnknown[opcode] : "op_other";
}

TraceSpan* TraceSpan::Current() { return t_current_span; }

TraceSpan::Scope::Scope(TraceSpan* span) : previous_(t_current_span) {
  t_current_span = span;
}

TraceSpan::Scope::~Scope() { t_current_span = previous_; }

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

namespace {

int64_t InitialSlowQueryMs() {
  const char* env = std::getenv("SIMCLOUD_SLOW_QUERY_MS");
  if (env == nullptr || *env == '\0') return -1;
  char* end = nullptr;
  const long long ms = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0' || ms < 0) {
    SIMCLOUD_LOG(kWarn) << "ignoring invalid SIMCLOUD_SLOW_QUERY_MS=\"" << env
                        << "\" (want a non-negative integer)";
    return -1;
  }
  return static_cast<int64_t>(ms);
}

std::atomic<int64_t>& SlowQueryMsCell() {
  static std::atomic<int64_t> cell{InitialSlowQueryMs()};
  return cell;
}

std::mutex g_sink_mutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_sink_mutex

}  // namespace

int64_t SlowQueryThresholdMs() {
  return SlowQueryMsCell().load(std::memory_order_relaxed);
}

void SetSlowQueryThresholdMs(int64_t ms) {
  SlowQueryMsCell().store(ms, std::memory_order_relaxed);
}

bool ShouldLogSlowQuery(uint64_t total_nanos) {
  const int64_t threshold_ms = SlowQueryThresholdMs();
  if (threshold_ms < 0) return false;
  return total_nanos >= static_cast<uint64_t>(threshold_ms) * 1000000ull;
}

void SetSlowQuerySinkForTest(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

std::string FormatSlowQueryLine(const TraceSpan& span, uint64_t total_nanos) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "slow_query op=%s total_ms=%.3f shard=%d batch=%llu dist_comps=%llu "
      "parse_us=%.1f queue_us=%.1f index_us=%.1f fetch_us=%.1f seal_us=%.1f",
      OpcodeLabel(span.opcode()), double(total_nanos) / 1e6, span.shard(),
      static_cast<unsigned long long>(span.batch_size()),
      static_cast<unsigned long long>(span.distance_computations()),
      double(span.StageNanos(Stage::kParse)) / 1e3,
      double(span.StageNanos(Stage::kQueueWait)) / 1e3,
      double(span.StageNanos(Stage::kIndexEval)) / 1e3,
      double(span.StageNanos(Stage::kPayloadFetch)) / 1e3,
      double(span.StageNanos(Stage::kSealSend)) / 1e3);
  return std::string(buf);
}

void EmitSlowQuery(const TraceSpan& span, uint64_t total_nanos) {
  const std::string line = FormatSlowQueryLine(span, total_nanos);
  std::function<void(const std::string&)> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(line);
  } else {
    SIMCLOUD_LOG(kWarn) << line;
  }
}

bool TracingActive() {
  return MetricsEnabled() || SlowQueryThresholdMs() >= 0;
}

// ---------------------------------------------------------------------------
// Span completion
// ---------------------------------------------------------------------------

namespace {

/// Lazily-registered per-opcode cells; pointers are process-stable so a
/// lock-free CAS publish is safe (a lost race re-fetches the same cell
/// from the idempotent registry).
struct OpcodeCells {
  std::atomic<Counter*> requests{nullptr};
  std::atomic<Counter*> bytes_in{nullptr};
  std::atomic<Counter*> bytes_out{nullptr};
  std::atomic<Histogram*> latency{nullptr};
};

template <typename Cell, typename Factory>
Cell* LazyCell(std::atomic<Cell*>* slot, Factory&& make) {
  Cell* cell = slot->load(std::memory_order_acquire);
  if (cell == nullptr) {
    cell = make();
    slot->store(cell, std::memory_order_release);
  }
  return cell;
}

}  // namespace

void FinishRequestSpan(const TraceSpan& span, uint64_t total_nanos,
                       uint64_t bytes_in, uint64_t bytes_out) {
  if (MetricsEnabled()) {
    static std::array<OpcodeCells, 256> cells;
    OpcodeCells& slot = cells[span.opcode()];
    const std::string label = OpcodeLabel(span.opcode());
    Registry& registry = Registry::Default();
    LazyCell(&slot.requests, [&] {
      return registry.GetCounter("simcloud_requests_total{op=\"" + label +
                                 "\"}");
    })->Add(1);
    LazyCell(&slot.bytes_in, [&] {
      return registry.GetCounter("simcloud_net_bytes_in_total{op=\"" + label +
                                 "\"}");
    })->Add(bytes_in);
    LazyCell(&slot.bytes_out, [&] {
      return registry.GetCounter("simcloud_net_bytes_out_total{op=\"" + label +
                                 "\"}");
    })->Add(bytes_out);
    LazyCell(&slot.latency, [&] {
      return registry.GetHistogram("simcloud_request_nanos{op=\"" + label +
                                   "\"}");
    })->Record(total_nanos);

    static Histogram* const queue_wait =
        Registry::Default().GetHistogram("simcloud_request_queue_nanos");
    queue_wait->Record(span.StageNanos(Stage::kQueueWait));
  }
  if (ShouldLogSlowQuery(total_nanos)) {
    EmitSlowQuery(span, total_nanos);
  }
}

}  // namespace obs
}  // namespace simcloud
