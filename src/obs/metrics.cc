#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/serialize.h"
#include "crypto/cpu_features.h"

namespace simcloud {
namespace obs {

namespace {

bool InitialEnabled() {
  const char* env = std::getenv("SIMCLOUD_METRICS");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "false") != 0;
}

std::atomic<bool> g_enabled{InitialEnabled()};

}  // namespace

bool MetricsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t ThisThreadShard() {
  // A thread keeps one slot for its lifetime; the hash spreads pool
  // threads (often created back-to-back) across the shards.
  static thread_local const size_t slot =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      kMetricShards;
  return slot;
}

// ---------------------------------------------------------------------------
// Bucket grid
// ---------------------------------------------------------------------------

size_t BucketIndex(uint64_t value) {
  if (value < 4) return static_cast<size_t>(value);  // 0,1,2,3 exact
  const int exponent = 63 - std::countl_zero(value);  // floor(log2), >= 2
  const uint64_t sub = (value >> (exponent - 2)) & 3;  // 2 mantissa bits
  return 4 + static_cast<size_t>(exponent - 2) * 4 + static_cast<size_t>(sub);
}

uint64_t BucketLowerBound(size_t index) {
  if (index < 4) return index;
  const int exponent = 2 + static_cast<int>((index - 4) / 4);
  const uint64_t sub = (index - 4) % 4;
  return (uint64_t{1} << exponent) + sub * (uint64_t{1} << (exponent - 2));
}

uint64_t BucketUpperBound(size_t index) {
  if (index + 1 >= kHistogramBucketCount) return UINT64_MAX;
  return BucketLowerBound(index + 1);
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::ResetForTest() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Histogram::ResetForTest() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets) {
    if (static_cast<double>(cumulative + bucket_count) < target) {
      cumulative += bucket_count;
      continue;
    }
    const double lower = static_cast<double>(BucketLowerBound(index));
    const double upper = static_cast<double>(BucketUpperBound(index));
    const double fraction =
        bucket_count == 0
            ? 0.0
            : (target - static_cast<double>(cumulative)) /
                  static_cast<double>(bucket_count);
    return lower + std::clamp(fraction, 0.0, 1.0) * (upper - lower);
  }
  return buckets.empty()
             ? 0.0
             : static_cast<double>(BucketUpperBound(buckets.back().first));
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

namespace {

template <typename Pair>
const Pair* FindByName(const std::vector<Pair>& sorted,
                       const std::string& name) {
  auto it = std::lower_bound(
      sorted.begin(), sorted.end(), name,
      [](const Pair& entry, const std::string& key) {
        return entry.first < key;
      });
  return it != sorted.end() && it->first == name ? &*it : nullptr;
}

}  // namespace

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  auto merge_values = [](auto* mine, const auto& theirs) {
    for (const auto& entry : theirs) {
      auto it = std::lower_bound(
          mine->begin(), mine->end(), entry.first,
          [](const auto& a, const std::string& key) { return a.first < key; });
      if (it != mine->end() && it->first == entry.first) {
        it->second += entry.second;
      } else {
        mine->insert(it, entry);
      }
    }
  };
  merge_values(&counters, other.counters);
  merge_values(&gauges, other.gauges);
  for (const HistogramSnapshot& theirs : other.histograms) {
    auto it = std::lower_bound(
        histograms.begin(), histograms.end(), theirs.name,
        [](const HistogramSnapshot& h, const std::string& key) {
          return h.name < key;
        });
    if (it != histograms.end() && it->name == theirs.name) {
      it->Merge(theirs);
    } else {
      histograms.insert(it, theirs);
    }
  }
}

const uint64_t* MetricsSnapshot::counter(const std::string& name) const {
  const auto* entry = FindByName(counters, name);
  return entry == nullptr ? nullptr : &entry->second;
}

const int64_t* MetricsSnapshot::gauge(const std::string& name) const {
  const auto* entry = FindByName(gauges, name);
  return entry == nullptr ? nullptr : &entry->second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const HistogramSnapshot& h, const std::string& key) {
        return h.name < key;
      });
  return it != histograms.end() && it->name == name ? &*it : nullptr;
}

namespace {

/// Splits "base{labels}" into base and the inner label list (may be
/// empty). Malformed names pass through as all-base.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

void AppendTypeLineOnce(std::string* out, std::string* last_base,
                        const std::string& base, const char* type) {
  if (base == *last_base) return;
  *last_base = base;
  out->append("# TYPE ").append(base).append(" ").append(type).append("\n");
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  std::string last_base;
  std::string base, labels;
  for (const auto& [name, value] : counters) {
    SplitLabels(name, &base, &labels);
    AppendTypeLineOnce(&out, &last_base, base, "counter");
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  }
  last_base.clear();
  for (const auto& [name, value] : gauges) {
    SplitLabels(name, &base, &labels);
    AppendTypeLineOnce(&out, &last_base, base, "gauge");
    out.append(name).append(" ").append(std::to_string(value)).append("\n");
  }
  last_base.clear();
  for (const HistogramSnapshot& histogram : histograms) {
    SplitLabels(histogram.name, &base, &labels);
    AppendTypeLineOnce(&out, &last_base, base, "histogram");
    uint64_t cumulative = 0;
    for (const auto& [index, bucket_count] : histogram.buckets) {
      cumulative += bucket_count;
      out.append(base).append("_bucket{");
      if (!labels.empty()) out.append(labels).append(",");
      out.append("le=\"")
          .append(std::to_string(BucketUpperBound(index)))
          .append("\"} ")
          .append(std::to_string(cumulative))
          .append("\n");
    }
    out.append(base).append("_bucket{");
    if (!labels.empty()) out.append(labels).append(",");
    out.append("le=\"+Inf\"} ")
        .append(std::to_string(histogram.count))
        .append("\n");
    const std::string label_block =
        labels.empty() ? std::string() : "{" + labels + "}";
    out.append(base).append("_sum").append(label_block).append(" ")
        .append(std::to_string(histogram.sum)).append("\n");
    out.append(base).append("_count").append(label_block).append(" ")
        .append(std::to_string(histogram.count)).append("\n");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Wire block
// ---------------------------------------------------------------------------

namespace {

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

Bytes EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  BinaryWriter writer;
  writer.WriteVarint(snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    writer.WriteString(name);
    writer.WriteVarint(value);
  }
  writer.WriteVarint(snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    writer.WriteString(name);
    writer.WriteVarint(ZigZag(value));
  }
  writer.WriteVarint(snapshot.histograms.size());
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    writer.WriteString(histogram.name);
    writer.WriteVarint(histogram.sum);
    writer.WriteVarint(histogram.buckets.size());
    for (const auto& [index, count] : histogram.buckets) {
      writer.WriteVarint(index);
      writer.WriteVarint(count);
    }
  }
  // Append-only: new revisions add blocks here; old decoders stop after
  // the blocks they know and ignore the rest.
  return writer.TakeBuffer();
}

Result<MetricsSnapshot> DecodeMetricsSnapshot(const Bytes& data) {
  BinaryReader reader(data);
  MetricsSnapshot snapshot;
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t counter_count, reader.ReadVarint());
  snapshot.counters.reserve(reader.BoundedCount(counter_count));
  for (uint64_t i = 0; i < counter_count; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t value, reader.ReadVarint());
    snapshot.counters.emplace_back(std::move(name), value);
  }
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t gauge_count, reader.ReadVarint());
  snapshot.gauges.reserve(reader.BoundedCount(gauge_count));
  for (uint64_t i = 0; i < gauge_count; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t value, reader.ReadVarint());
    snapshot.gauges.emplace_back(std::move(name), UnZigZag(value));
  }
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t histogram_count, reader.ReadVarint());
  snapshot.histograms.reserve(reader.BoundedCount(histogram_count));
  for (uint64_t i = 0; i < histogram_count; ++i) {
    HistogramSnapshot histogram;
    SIMCLOUD_ASSIGN_OR_RETURN(histogram.name, reader.ReadString());
    SIMCLOUD_ASSIGN_OR_RETURN(histogram.sum, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t bucket_count, reader.ReadVarint());
    histogram.buckets.reserve(reader.BoundedCount(bucket_count));
    uint32_t last_index = 0;
    for (uint64_t b = 0; b < bucket_count; ++b) {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t index, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      if (index >= kHistogramBucketCount ||
          (b > 0 && index <= last_index)) {
        return Status::Corruption("metrics histogram bucket index invalid");
      }
      last_index = static_cast<uint32_t>(index);
      histogram.count += count;
      histogram.buckets.emplace_back(static_cast<uint32_t>(index), count);
    }
    snapshot.histograms.push_back(std::move(histogram));
  }
  // Trailing bytes belong to blocks appended by newer revisions.
  return snapshot;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::Default() {
  static Registry* const instance = new Registry();  // never destroyed
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name);
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    std::array<uint64_t, kHistogramBucketCount> totals{};
    for (const Histogram::Shard& shard : histogram->shards_) {
      hs.sum += shard.sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < kHistogramBucketCount; ++b) {
        totals[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
    for (size_t b = 0; b < kHistogramBucketCount; ++b) {
      if (totals[b] == 0) continue;
      hs.count += totals[b];
      hs.buckets.emplace_back(static_cast<uint32_t>(b), totals[b]);
    }
    snapshot.histograms.push_back(std::move(hs));
  }
  // std::map iteration is name-ordered, so the vectors are born sorted.
  return snapshot;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTest();
}

std::string RuntimeBanner(const std::string& component,
                          const std::string& detail) {
  std::string banner = component + ": ";
  if (!detail.empty()) banner += detail + ", ";
  banner += "crypto[" + crypto::CryptoBackendSummary() + "], metrics=";
  banner += MetricsEnabled() ? "on" : "off";
  return banner;
}

}  // namespace obs
}  // namespace simcloud
