// Process-global metrics registry: named counters, gauges, and
// log-bucketed latency histograms, built for hot paths.
//
// Design points:
//  * Thread-sharded atomics. A Counter/Histogram spreads its cells over
//    kMetricShards cache-line-padded shards keyed by a hash of the
//    calling thread id, so the hot path is one relaxed fetch_add with no
//    cross-core cache-line ping-pong. Reads (Snapshot) sum the shards.
//  * Log-bucketed histograms. Bucket boundaries follow a power-of-two
//    grid with 4 sub-buckets per octave (<= 25% relative width), so one
//    histogram covers nanoseconds to hours in 252 buckets and quantile
//    readout (p50/p90/p99/p999) interpolates inside a bucket.
//  * Registration is name-keyed and idempotent; instrumented sites cache
//    the returned pointer in a function-local static, so steady state
//    never touches the registry lock.
//  * `SIMCLOUD_METRICS=off` (or 0/false) disables every record call at
//    one relaxed load + branch, which the ci.sh overhead gate measures.
//  * A snapshot serializes to an append-only wire block (the kGetMetrics
//    envelope — new blocks are appended, old decoders ignore trailing
//    bytes) and to Prometheus text exposition. Snapshots merge with
//    correct histogram semantics (bucket-wise sum), which is how a
//    ShardedServer aggregates shard registries.
//
// Label convention: a metric name is `base` or `base{key="value",...}`.
// The Prometheus writer splits on the first '{'; the wire block and the
// registry treat the whole string as the key.

#ifndef SIMCLOUD_OBS_METRICS_H_
#define SIMCLOUD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace obs {

/// True unless SIMCLOUD_METRICS=off|0|false (or SetMetricsEnabled(false)).
bool MetricsEnabled();
/// Runtime override of the env switch; bench_pipeline's overhead gate
/// flips it to measure the instrumented-vs-off delta in one process.
void SetMetricsEnabled(bool enabled);

/// Number of per-thread shards in every counter/histogram.
inline constexpr size_t kMetricShards = 16;

/// Stable shard slot of the calling thread.
size_t ThisThreadShard();

// ---------------------------------------------------------------------------
// Histogram bucket grid
// ---------------------------------------------------------------------------

/// Buckets: [0], [1], [2], [3], then 4 sub-buckets per power of two up
/// to 2^64. Index 0 holds exactly value 0.
inline constexpr size_t kHistogramBucketCount = 4 + 62 * 4;

/// Bucket index of `value` (total order, exhaustive over uint64).
size_t BucketIndex(uint64_t value);
/// Inclusive lower bound of bucket `index`.
uint64_t BucketLowerBound(size_t index);
/// Exclusive upper bound of bucket `index` (saturates at UINT64_MAX).
uint64_t BucketUpperBound(size_t index);

// ---------------------------------------------------------------------------
// Live metric cells
// ---------------------------------------------------------------------------

/// Monotonic counter. Hot path: one relaxed add on a per-thread shard.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  void ResetForTest();

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  const std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

/// Instantaneous signed value (queue depths, live connections). Low-rate
/// by design, so one atomic cell is enough.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

  const std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram. Hot path: two relaxed adds (bucket + sum) on
/// a per-thread shard.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    if (!MetricsEnabled()) return;
    Shard& shard = shards_[ThisThreadShard()];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  void ResetForTest();

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBucketCount> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  const std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram; sparse (only buckets with
/// observations), indices ascending.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;  ///< (index, count)

  /// Interpolated quantile readout, q in [0, 1]. Resolution is the
  /// bucket grid (<= 25% relative error). Returns 0 on an empty
  /// histogram.
  double Quantile(double q) const;
  double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }

  /// Bucket-wise sum with `other` (must share the name to be meaningful).
  void Merge(const HistogramSnapshot& other);
};

/// Point-in-time copy of a whole registry; the unit of the kGetMetrics
/// wire envelope and of shard aggregation. Entries are sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Element-wise aggregation: counters and gauges sum by name,
  /// histograms merge bucket-wise. Names only one side knows are kept.
  void Merge(const MetricsSnapshot& other);

  /// Lookup helpers; null when the name is absent.
  const uint64_t* counter(const std::string& name) const;
  const int64_t* gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// Prometheus text exposition (counters, gauges, histograms with
  /// cumulative `le` buckets plus `_sum`/`_count`).
  std::string ToPrometheusText() const;
};

/// Append-only wire block: counters, gauges, histograms. Future protocol
/// revisions append new blocks at the end; decoders ignore trailing
/// bytes they do not understand, so old clients keep decoding new
/// servers and vice versa.
Bytes EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);
Result<MetricsSnapshot> DecodeMetricsSnapshot(const Bytes& data);

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Name-keyed owner of every metric. One process-global instance; cells
/// are never deleted, so returned pointers are stable for the process
/// lifetime and safe to cache in function-local statics.
class Registry {
 public:
  static Registry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Sums every shard of every cell into a sorted snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered cell (tests and the bench overhead gate;
  /// concurrent writers see a clean but racy cut, which is fine there).
  void ResetForTest();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One-line runtime banner shared by TcpServer startup and the bench
/// binaries: "<component>: <detail>, crypto[<backend>], metrics=on|off".
std::string RuntimeBanner(const std::string& component,
                          const std::string& detail);

}  // namespace obs
}  // namespace simcloud

#endif  // SIMCLOUD_OBS_METRICS_H_
