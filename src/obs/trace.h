// Per-request tracing: a TraceSpan times the life of one request through
// the stages parse -> queue wait -> index eval -> payload fetch ->
// seal/send, counts the distance computations it triggered, and on
// Finish() feeds the per-opcode histograms plus an env-gated slow-query
// log.
//
// Plumbing: the network worker owns the span and installs it as the
// thread's current span (TraceSpan::Scope) for the duration of the
// handler call, so deep layers (QueryEngine, PayloadCache, the distance
// bridge) attribute work to the request without threading a pointer
// through every signature. Batch fan-out worker threads see a null
// Current() and simply skip attribution — a documented undercount, never
// a data race.
//
// Cost when idle: TracingActive() is false unless metrics are on or
// SIMCLOUD_SLOW_QUERY_MS is set, and the worker skips every clock read
// when it is false — the overhead gate in ci.sh measures exactly this.

#ifndef SIMCLOUD_OBS_TRACE_H_
#define SIMCLOUD_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace simcloud {
namespace obs {

/// Monotonic clock read, the time base of every span stage.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Request lifecycle stages, in wire order.
enum class Stage : uint8_t {
  kParse = 0,         ///< opcode + body decode
  kQueueWait = 1,     ///< frames parsed -> worker picked the item up
  kIndexEval = 2,     ///< tree walk / candidate collection
  kPayloadFetch = 3,  ///< payload log reads (cache misses)
  kSealSend = 4,      ///< response encode + frame + (secure) seal
};
inline constexpr size_t kStageCount = 5;
const char* StageName(Stage stage);

/// Stable label of a wire opcode ("ping", "range_search", ...); unknown
/// opcodes render as "op<N>". Lives here, not in secure/, because net/
/// must not depend on the protocol layer.
const char* OpcodeLabel(uint8_t opcode);

/// Timing + accounting record of one in-flight request.
class TraceSpan {
 public:
  TraceSpan() = default;

  void set_opcode(uint8_t opcode) { opcode_ = opcode; }
  void set_shard(int shard) { shard_ = shard; }
  void set_batch_size(uint64_t n) { batch_size_ = n; }

  uint8_t opcode() const { return opcode_; }
  int shard() const { return shard_; }
  uint64_t batch_size() const { return batch_size_; }

  void AddStageNanos(Stage stage, uint64_t nanos) {
    stage_nanos_[static_cast<size_t>(stage)] += nanos;
  }
  uint64_t StageNanos(Stage stage) const {
    return stage_nanos_[static_cast<size_t>(stage)];
  }

  void AddDistanceComputations(uint64_t n) { distance_computations_ += n; }
  uint64_t distance_computations() const { return distance_computations_; }

  /// The span active on this thread (null outside a request, and on
  /// batch fan-out pool threads).
  static TraceSpan* Current();

  /// Installs `span` as the thread's current span for the scope's
  /// lifetime; restores the previous one on exit.
  class Scope {
   public:
    explicit Scope(TraceSpan* span);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceSpan* previous_;
  };

 private:
  uint8_t opcode_ = 0;
  int shard_ = -1;
  uint64_t batch_size_ = 0;
  uint64_t distance_computations_ = 0;
  std::array<uint64_t, kStageCount> stage_nanos_{};
};

/// RAII stage timer: accumulates its lifetime into `stage` of the
/// thread's current span. No-op (and no clock read) when no span is
/// active.
class StageTimer {
 public:
  explicit StageTimer(Stage stage)
      : span_(TraceSpan::Current()),
        stage_(stage),
        start_(span_ != nullptr ? MonotonicNanos() : 0) {}
  ~StageTimer() {
    if (span_ != nullptr) {
      span_->AddStageNanos(stage_, MonotonicNanos() - start_);
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  TraceSpan* const span_;
  const Stage stage_;
  const uint64_t start_;
};

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// Threshold in milliseconds from SIMCLOUD_SLOW_QUERY_MS; negative means
/// disabled (unset or invalid env).
int64_t SlowQueryThresholdMs();
/// Runtime override (tests). Negative disables.
void SetSlowQueryThresholdMs(int64_t ms);

/// True when the slow-query log is enabled and `total_nanos` is at or
/// above the threshold (a request taking exactly the threshold fires).
bool ShouldLogSlowQuery(uint64_t total_nanos);

/// Replaces the slow-query line sink (default: SIMCLOUD_LOG at kWarn).
/// Pass nullptr to restore the default.
void SetSlowQuerySinkForTest(std::function<void(const std::string&)> sink);

/// Renders the structured slow-query line for `span`:
///   slow_query op=<label> total_ms=<t> shard=<s> batch=<n> dist_comps=<d>
///   parse_us=.. queue_us=.. index_us=.. fetch_us=.. seal_us=..
std::string FormatSlowQueryLine(const TraceSpan& span, uint64_t total_nanos);

/// Formats and emits the line through the current sink.
void EmitSlowQuery(const TraceSpan& span, uint64_t total_nanos);

/// True when any per-request clock work is worth doing: metrics enabled
/// or the slow-query log armed. The network worker consults this once
/// per request.
bool TracingActive();

/// Records the finished request into the registry: per-opcode count +
/// latency histogram, queue-wait histogram, bytes in/out, and the
/// slow-query check. `total_nanos` is the server-side handling time.
void FinishRequestSpan(const TraceSpan& span, uint64_t total_nanos,
                       uint64_t bytes_in, uint64_t bytes_out);

}  // namespace obs
}  // namespace simcloud

#endif  // SIMCLOUD_OBS_TRACE_H_
