// Pivot selection strategies.
//
// The paper selects pivots "at random from within the data set"
// (Section 5.1) — but the quality of the recursive Voronoi partitioning,
// and with it the recall of the approximate search at a fixed candidate
// budget, depends on how the pivots are chosen. This module implements
// the classic alternatives studied in the metric-search literature
// (Zezula et al., "Similarity Search: The Metric Space Approach", §2.7)
// so the choice can be ablated:
//
//  * kRandom         — the paper's baseline: uniform sample of the data.
//  * kFarthestFirst  — greedy max-min (Gonzalez): each new pivot is the
//                      object maximizing the distance to its closest
//                      already-selected pivot. Produces well-spread
//                      pivots ("outliers are good pivots").
//  * kMaxVariance    — incremental selection maximizing the variance of
//                      object-pivot distances over a sample; high-variance
//                      pivots discriminate cells more evenly.
//  * kMedoids        — a light k-medoids pass over a sample: random init,
//                      then each pivot is replaced by the sample medoid of
//                      its Voronoi cell. Centers data clusters.
//
// All strategies are deterministic given the seed, run on an optional
// subsample (selection cost is quadratic in the sample for the greedy
// strategies), and return a PivotSet usable anywhere a random one is.

#ifndef SIMCLOUD_MINDEX_PIVOT_SELECTION_H_
#define SIMCLOUD_MINDEX_PIVOT_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "metric/distance.h"
#include "metric/object.h"
#include "mindex/pivot_set.h"

namespace simcloud {
namespace mindex {

/// Strategy for choosing the pivots from the data collection.
enum class PivotStrategy : uint8_t {
  kRandom = 0,
  kFarthestFirst = 1,
  kMaxVariance = 2,
  kMedoids = 3,
};

/// Human-readable strategy name ("random", "farthest-first", ...).
std::string PivotStrategyName(PivotStrategy strategy);

/// Tunables for SelectPivots.
struct PivotSelectionOptions {
  PivotStrategy strategy = PivotStrategy::kRandom;
  /// Number of pivots to select (n in the paper).
  size_t count = 0;
  /// Deterministic seed for sampling and random choices.
  uint64_t seed = 0;
  /// Greedy strategies evaluate candidates over a subsample of at most
  /// this many objects; 0 means "use the whole collection".
  size_t sample_size = 2000;
  /// Number of medoid-refinement sweeps (kMedoids only).
  size_t medoid_iterations = 3;
};

/// Selects `options.count` pivots from `objects` under the given strategy.
/// InvalidArgument if count is zero or exceeds the collection size.
Result<PivotSet> SelectPivots(
    const std::vector<metric::VectorObject>& objects,
    const metric::DistanceFunction& distance,
    const PivotSelectionOptions& options);

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_PIVOT_SELECTION_H_
