// Sharded LRU payload cache: a BucketStorage decorator that keeps hot
// payload bytes in memory so repeated candidate materialization skips the
// backing store entirely.
//
// The paper's disk configuration (CoPhIR, Table 2) pays one storage read
// per candidate per query; under a skewed query load the same buckets are
// materialized over and over. The cache sits between the index and the
// backend (enabled via MIndexOptions::cache_bytes), shards its LRU state
// by handle so concurrent searches do not serialize on one lock, and
// answers FetchMany by splitting the batch into cache hits and one
// FetchMany call to the backend for the misses.

#ifndef SIMCLOUD_MINDEX_PAYLOAD_CACHE_H_
#define SIMCLOUD_MINDEX_PAYLOAD_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mindex/storage.h"

namespace simcloud {
namespace mindex {

/// LRU decorator over any BucketStorage. Stores pass through uncached;
/// fetches populate the cache. Thread-safe for concurrent fetches.
class PayloadCache : public BucketStorage {
 public:
  /// Cache-effectiveness counters, aggregated over all shards.
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t cached_bytes = 0;
    uint64_t cached_payloads = 0;
  };

  /// Approximate bookkeeping cost per cached entry (list node + map slot
  /// + Bytes header), charged against the budget alongside the payload
  /// bytes so many tiny payloads cannot blow past `capacity_bytes`.
  static constexpr uint64_t kEntryOverhead = 96;

  /// `capacity_bytes` is the total memory budget (payload bytes plus
  /// kEntryOverhead per entry) across `num_shards` independent LRU
  /// shards; payloads larger than one shard's budget are served but
  /// never cached.
  PayloadCache(std::unique_ptr<BucketStorage> base, uint64_t capacity_bytes,
               size_t num_shards = 16);

  Result<PayloadHandle> Store(const Bytes& payload) override {
    return base_->Store(payload);
  }
  Result<Bytes> Fetch(PayloadHandle handle) const override;
  Status FetchMany(std::span<const PayloadHandle> handles,
                   std::vector<Bytes>* out) const override;
  /// Evicts the handle from the cache BEFORE forwarding to the backend —
  /// a backend whose compaction reuses freed handles must never see a
  /// stale ciphertext served under the recycled handle.
  Status Free(PayloadHandle handle) override;
  CompactionStats GetCompactionStats() const override {
    return base_->GetCompactionStats();
  }
  bool IsLive(PayloadHandle handle) const override {
    return base_->IsLive(handle);
  }
  std::vector<SegmentView> Segments() const override {
    return base_->Segments();
  }
  Status ForEachLiveHandle(
      const std::function<void(PayloadHandle, uint64_t, uint32_t)>& fn)
      const override {
    return base_->ForEachLiveHandle(fn);
  }
  bool SupportsSegmentRelease() const override {
    return base_->SupportsSegmentRelease();
  }
  Result<uint64_t> ReleaseDeadSegments(
      const std::vector<uint64_t>& segments) override {
    return base_->ReleaseDeadSegments(segments);
  }
  uint64_t DeadBytes() const override { return base_->DeadBytes(); }
  uint64_t TotalBytes() const override { return base_->TotalBytes(); }
  uint64_t Count() const override { return base_->Count(); }
  std::string Name() const override { return base_->Name() + "+cache"; }

  /// True if `handle` is currently cached (does not touch LRU recency —
  /// the compactor probes the hot set without perturbing it).
  bool Contains(PayloadHandle handle) const;

  /// Every currently cached handle, most-recently-used first within each
  /// shard (shards concatenated). The compactor snapshots the hot set
  /// with this before clearing the cache, and re-admits in reverse so
  /// per-shard recency survives the rebuild.
  std::vector<PayloadHandle> HotHandles() const;

  /// Caches `payload` under `handle` without consulting the backend (the
  /// compactor re-admits the pre-compaction hot set under the remapped
  /// handles). Subject to the normal budget/eviction rules.
  void Admit(PayloadHandle handle, const Bytes& payload) { Insert(handle, payload); }

  /// Drops every cached entry (hit/miss counters are kept).
  void Clear();

  CacheStats stats() const;
  uint64_t capacity_bytes() const { return shard_capacity_ * shards_.size(); }
  const BucketStorage& base() const { return *base_; }

 private:
  /// Payloads are held behind shared_ptr so a hit copies a pointer under
  /// the shard lock and the (potentially large) byte copy happens outside
  /// it — concurrent readers of a hot shard serialize only on the splice.
  using Entry = std::pair<PayloadHandle, std::shared_ptr<const Bytes>>;

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<PayloadHandle, std::list<Entry>::iterator> index;
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(PayloadHandle handle) const {
    return shards_[handle % shards_.size()];
  }
  /// Looks up `handle`, moving it to the LRU front on hit.
  bool Lookup(PayloadHandle handle, Bytes* out) const;
  /// Inserts a fetched payload, evicting from the tail to fit.
  void Insert(PayloadHandle handle, const Bytes& payload) const;

  std::unique_ptr<BucketStorage> base_;
  uint64_t shard_capacity_;
  mutable std::vector<Shard> shards_;
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_PAYLOAD_CACHE_H_
