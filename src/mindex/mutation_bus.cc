#include "mindex/mutation_bus.h"

#include <chrono>
#include <string>
#include <utility>

#include "mindex/compactor.h"

namespace simcloud {
namespace mindex {

MutationBus::MutationBus(size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

uint64_t MutationBus::Publish(MutationKind kind, metric::ObjectId id,
                              std::vector<float> pivot_distances,
                              Bytes payload) {
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MutationEvent event;
    event.seq = next_seq_++;
    event.kind = kind;
    event.id = id;
    event.pivot_distances = std::move(pivot_distances);
    event.payload = std::move(payload);
    seq = event.seq;
    ring_.push_back(std::move(event));
    while (ring_.size() > capacity_) ring_.pop_front();
  }
  cv_.notify_all();
  return seq;
}

Status MutationBus::ReplayAfter(uint64_t after_seq,
                                std::vector<MutationEvent>* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t last = next_seq_ - 1;
  if (after_seq > last) {
    return Status::OutOfRange("resume token " + std::to_string(after_seq) +
                              " is beyond the shard's last sequence " +
                              std::to_string(last));
  }
  if (after_seq == last) return Status::OK();  // caught up, nothing to copy
  const uint64_t oldest = ring_.empty() ? next_seq_ : ring_.front().seq;
  if (after_seq + 1 < oldest) {
    return Status::OutOfRange(
        "events after " + std::to_string(after_seq) +
        " have left the replay ring (oldest retained: " +
        std::to_string(oldest) + ")");
  }
  for (const MutationEvent& event : ring_) {
    if (event.seq > after_seq) out->push_back(event);
  }
  return Status::OK();
}

bool MutationBus::WaitBeyond(uint64_t after_seq, int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return next_seq_ - 1 > after_seq; });
}

uint64_t MutationBus::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

uint64_t MutationBus::first_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.empty() ? 0 : ring_.front().seq;
}

void MutationBus::JournalStore(uint64_t payload_handle) {
  if (pass_ != nullptr) pass_->OnStore(payload_handle);
}

void MutationBus::JournalFree(uint64_t payload_handle) {
  if (pass_ != nullptr) pass_->OnFree(payload_handle);
}

}  // namespace mindex
}  // namespace simcloud
