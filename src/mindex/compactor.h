// Incremental, segment-aware background compaction for the append-only
// payload log.
//
// MIndex::Delete only unlinks index entries and marks the payload dead in
// storage (Free); the bytes stay in the log. Under insert/delete churn
// the log therefore grows without bound relative to the live collection.
// The compactor bounds that space amplification — and, unlike the PR 2
// engine it replaces, it does so WITHOUT stalling the index for the
// length of the rewrite. A pass is a small state machine driven by
// MIndex::CompactBackground under the index's readers-writer lock:
//
//   BEGIN     (writer lock, microseconds) — read the segment table,
//             decide full vs. partial work, open the fresh log (full
//             mode), arm the relocation journal.
//   REWRITE   (shared lock, one bounded step at a time) — copy live
//             payloads segment-by-segment from the DEADEST segments
//             first, batch_size payloads per step. Searches run
//             concurrently the whole time; writers interleave BETWEEN
//             steps, and every mutation that lands mid-pass is recorded
//             in the relocation journal (inserts append to the old log
//             and are caught up by later steps; frees are reconciled at
//             the swap).
//   SYNC      (no lock) — fsync the bulk of the fresh log so the final
//             writer-locked fsync covers only the stragglers.
//   FINISH    (writer lock, microseconds) — copy the last journaled
//             inserts, free the fresh-log copies of payloads deleted
//             mid-pass, verify every entry has a relocation, then
//             swap+remap: rename the fresh log over the old path, point
//             every entry's payload_handle at its new location, and
//             rebuild the PayloadCache warm (full mode) — or free the
//             relocated originals and release the now-dead segments in
//             place (partial mode).
//
// Modes:
//   kFull    — rewrite every live payload into a fresh log
//              (<disk_path>.compact, atomically renamed over the old
//              path). Reclaims all dead bytes; cost is one copy of the
//              live set.
//   kPartial — driven by DiskStorage's per-segment accounting: relocate
//              the live payloads OUT of sealed segments whose dead ratio
//              is at least `segment_dead_threshold` (deadest first, at
//              most `max_pass_bytes` live bytes per pass), then release
//              those now-fully-dead segments in place (hole punch +
//              accounting drop). Much cheaper per pass; the bound is
//              slightly worse because below-threshold segments keep
//              their garbage. Backends without segment release (memory)
//              fall back to a full pass.
//
// Crash story (full mode): a crash mid-rewrite loses only the temp file —
// the old log and all entries are untouched until the atomic rename. A
// pass that fails AFTER the rename (an unreachable-in-practice Finish
// error) removes the installed fresh log and keeps serving the old one
// through its open descriptor; from there, as after any crash, the
// durable state is the persistence snapshot. Partial mode mutates the
// live log only by appending
// copies and releasing segments that hold no live payload, so a crash
// leaves a correct (merely larger) log; recovery for both remains the
// persistence snapshot.

#ifndef SIMCLOUD_MINDEX_COMPACTOR_H_
#define SIMCLOUD_MINDEX_COMPACTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "mindex/cell_tree.h"
#include "mindex/storage.h"

namespace simcloud {
namespace mindex {

class PayloadCache;

/// Policy of one compaction pass (MIndexOptions carries the persistent
/// defaults; MIndex::DefaultCompactorOptions derives these from them).
struct CompactorOptions {
  /// Compact whenever any dead bytes exist, ignoring `garbage_threshold`
  /// (the explicit kCompact admin opcode).
  bool force = false;
  /// Full rewrite or segment-targeted partial pass.
  CompactionMode mode = CompactionMode::kFull;
  /// Minimum garbage ratio (dead / total log bytes) for an unforced pass
  /// to run; <= 0 defers to MIndexOptions::compaction_trigger.
  double garbage_threshold = 0.0;
  /// Partial mode: a sealed segment is a relocation target once at least
  /// this fraction of its bytes is dead. In (0, 1].
  double segment_dead_threshold = 0.5;
  /// Partial mode: stop targeting further segments once this many live
  /// bytes are queued for relocation (0 = every eligible segment). At
  /// least one eligible segment is always taken.
  uint64_t max_pass_bytes = 0;
  /// Payloads copied per rewrite step — the unit of lock granularity:
  /// searches share the lock during a step, writers get in between steps.
  size_t batch_size = 256;
  /// Test hook: abort with IoError after this many payloads have been
  /// copied, leaving a crash image behind (full+disk mode keeps the
  /// half-written temp file). 0 disables.
  size_t fail_after_payloads = 0;
  /// Test hook: runs after every rewrite step with NO lock held — the
  /// deterministic stand-in for concurrent writers. A test may mutate the
  /// index from the hook to land inserts/deletes in the mid-pass window.
  std::function<void()> between_steps;
};

/// One in-flight compaction pass over an index's storage stack. Driven by
/// MIndex::CompactBackground; the phase methods document which flavour of
/// the index lock the caller must hold (`NextStepLock` says which one the
/// next RewriteStep needs). The pass object also IS the relocation
/// journal: while a pass is active, MIndex routes every payload store and
/// free through OnStore/OnFree (called under the writer lock, so journal
/// state needs no locking of its own — all mutation happens with writers
/// excluded from the rewrite).
class CompactionPass {
 public:
  enum class StepLock : uint8_t { kShared, kExclusive };

  /// `storage` must outlive the pass; `disk_path` / `cache_bytes` mirror
  /// the MIndexOptions the stack was built with.
  CompactionPass(std::unique_ptr<BucketStorage>* storage,
                 std::string disk_path, uint64_t cache_bytes,
                 CompactorOptions options);
  ~CompactionPass();

  CompactionPass(const CompactionPass&) = delete;
  CompactionPass& operator=(const CompactionPass&) = delete;

  /// Phase 1, writer lock held. Returns false when there is nothing to do
  /// (below threshold, no dead bytes, no eligible segments) — the pass is
  /// finished and report() holds the no-op report.
  Result<bool> Begin();

  /// Lock flavour the next RewriteStep needs (partial mode alternates:
  /// fetch under the shared lock, append under a short exclusive slice).
  StepLock NextStepLock() const;

  /// Phase 2: one bounded unit of rewrite work under the lock flavour
  /// NextStepLock() reported. Returns true while more steps remain.
  Result<bool> RewriteStep();

  /// After the rewrite, NO lock held: fsync the fresh log and rename(2)
  /// it over the old path (full disk passes). The old stack keeps serving
  /// through its open descriptor — the rename only moves the crash-
  /// recovery point, it changes nothing the index can observe — so the
  /// journal-commit-priced fsync and the rename both stay off the writer
  /// lock. Payloads journaled after this call reach the new log unsynced
  /// (Finish appends them); crash durability remains the persistence
  /// snapshot, exactly as before.
  Status PrepareSwap();

  /// Phase 3, writer lock held: catch up the last journaled inserts,
  /// reconcile mid-pass frees, swap+remap (full) or free originals and
  /// release dead segments (partial). On success the entries in `tree`
  /// and `*storage` are consistent; on error the index is untouched
  /// (full) or merely carries some extra dead bytes (partial) — call
  /// Abandon to reconcile.
  Status Finish(CellTree* tree);

  /// Drops all pass state after a failed step/Finish; writer lock held.
  /// Full mode abandons the fresh log (keeping the temp file only for the
  /// simulated-crash test hook); partial mode frees the already-appended
  /// relocation copies so they are accounted dead rather than leaked.
  void Abandon();

  /// Relocation journal: a payload was appended to / freed from the old
  /// log while the pass is active. Writer lock held (MIndex mutators).
  void OnStore(PayloadHandle handle);
  void OnFree(PayloadHandle handle);

  /// Progress + outcome (bytes_before/after filled by Finish).
  const CompactionReport& report() const { return report_; }

 private:
  /// The backend under any PayloadCache decorator (rewrites read it
  /// directly so the scan cannot evict the query-serving hot set).
  const BucketStorage* backend() const;

  Result<bool> BeginFull();
  Result<bool> BeginPartial();
  /// Shared-lock step: enumerate the live handles the pass must move
  /// (deferred out of Begin so the O(n) scan runs off the writer lock).
  Status EnumeratePending();
  /// Copies up to batch_size pending payloads into the destination log.
  Status CopyStep();
  /// Partial mode: fetch the next batch (shared) / append it (exclusive).
  Status PartialFetchStep();
  Status PartialAppendStep();
  Status FinishFull(CellTree* tree);
  Status FinishPartial(CellTree* tree);

  std::unique_ptr<BucketStorage>* storage_;
  const std::string disk_path_;
  const uint64_t cache_bytes_;
  const CompactorOptions options_;

  bool enumerated_ = false;
  bool rewrite_done_ = false;
  bool swap_prepared_ = false;
  bool finished_ = false;
  bool keep_temp_file_ = false;

  /// Handles still to copy, deadest segments first.
  std::vector<PayloadHandle> pending_;
  size_t cursor_ = 0;
  /// Journal-drain rounds run so far. The cap keeps an insert flood from
  /// starving the pass; whatever remains is copied under the writer lock
  /// in Finish (bounded by what arrived since the last drain).
  static constexpr size_t kMaxJournalDrains = 16;
  size_t drained_rounds_ = 0;
  /// Relocation map: old handle -> handle in the destination log.
  std::unordered_map<PayloadHandle, PayloadHandle> relocated_;
  /// Journal of mid-pass mutations against the old log.
  std::vector<PayloadHandle> journal_stores_;
  std::vector<PayloadHandle> journal_freed_;

  /// Full mode: the fresh log being written.
  std::unique_ptr<BucketStorage> fresh_;
  DiskStorage* fresh_disk_ = nullptr;
  /// The replaced stack, parked here by the swap so its destruction — a
  /// cache's worth of frees plus closing the old log — happens when the
  /// pass object dies, off the writer lock.
  std::unique_ptr<BucketStorage> retired_;
  /// Payloads that were cached when copied: re-admitted (under their new
  /// handles) into the rebuilt cache so the working set stays warm across
  /// the swap. Keyed by OLD handle. This is the background pass's memory
  /// bill: unlike the PR 2 compactor (which emptied the cache up front
  /// and served the whole pass cold), the live cache keeps answering
  /// queries, so a full pass transiently holds up to ~cache_bytes of
  /// retained copies on top of it — budget cache_bytes accordingly.
  struct HotPayload {
    PayloadHandle new_handle = 0;
    Bytes payload;
  };
  std::unordered_map<PayloadHandle, HotPayload> hot_;

  /// Partial mode: the segments being emptied (set for membership, the
  /// ranked order Begin computed for copy order) and the fetched batch
  /// staged between the shared-lock fetch and the exclusive append.
  std::unordered_set<uint64_t> target_segments_;
  std::vector<uint64_t> target_order_;
  std::vector<PayloadHandle> staged_handles_;
  std::vector<Bytes> staged_payloads_;

  CompactionReport report_;
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_COMPACTOR_H_
