// Online compaction for the append-only payload log.
//
// MIndex::Delete only unlinks index entries and marks the payload dead in
// storage (Free); the bytes stay in the log. Under insert/delete churn
// the log therefore grows without bound relative to the live collection.
// The compactor bounds that space amplification without taking the index
// offline for a Save/Load round trip:
//
//   1. DECIDE   — read BucketStorage::CompactionStats; skip unless forced
//                 or the garbage ratio crossed the configured threshold.
//   2. REWRITE  — walk the cell tree in deterministic order and copy every
//                 live payload into a fresh log (disk: `<path>.compact`),
//                 batch_size payloads per FetchMany straight from the
//                 backend so the old log is read coalesced (the cache is
//                 snapshotted for re-admission, then emptied — filling a
//                 cache that the swap discards would be wasted work). The
//                 old log and all index entries are untouched — a crash
//                 here loses nothing but the temp file.
//   3. SWAP     — fsync the fresh log and rename(2) it over the old path
//                 (atomic: the log at `disk_path` is always either the
//                 complete old log or the complete new one).
//   4. REMAP    — point every entry's payload_handle at the new log and
//                 replace the index's storage stack; a PayloadCache is
//                 rebuilt and the pre-compaction hot set re-admitted under
//                 the remapped handles, so the cache never serves a stale
//                 handle and stays warm across the swap.
//
// Callers must hold the index's exclusive (writer) lock for the whole
// call, exactly as for Insert/Delete — the similarity cloud's servers do.

#ifndef SIMCLOUD_MINDEX_COMPACTOR_H_
#define SIMCLOUD_MINDEX_COMPACTOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "mindex/cell_tree.h"
#include "mindex/storage.h"

namespace simcloud {
namespace mindex {

/// Tunables of one compaction pass.
struct CompactionOptions {
  /// Compact whenever any dead bytes exist, ignoring `garbage_threshold`
  /// (the explicit kCompact admin opcode).
  bool force = false;
  /// Minimum garbage ratio (dead / total log bytes) for an unforced pass
  /// to run; <= 0 disables unforced compaction.
  double garbage_threshold = 0.0;
  /// Payloads copied per FetchMany call during the rewrite. Transient
  /// memory of a pass is ~batch_size payloads plus at most one cache's
  /// worth of retained hot bytes (the old cache is emptied up front and
  /// each retained payload is released as it is re-admitted).
  size_t batch_size = 256;
  /// Test hook: abort with IoError after this many payloads have been
  /// written to the fresh log, leaving the half-written temp file behind —
  /// a crash image for recovery tests. 0 disables.
  size_t fail_after_payloads = 0;
};

/// Compacts the payload log behind `*storage` (the index's storage stack:
/// MemoryStorage, DiskStorage, or either wrapped in a PayloadCache) and
/// remaps the payload handles of every entry in `tree`. On success
/// `*storage` holds the compacted stack; on error the old stack, the old
/// log, and all entries are untouched (the swap is all-or-nothing).
/// `disk_path` / `cache_bytes` mirror the MIndexOptions the stack was
/// built with.
Result<CompactionReport> CompactIndexStorage(
    CellTree* tree, std::unique_ptr<BucketStorage>* storage,
    const std::string& disk_path, uint64_t cache_bytes,
    const CompactionOptions& options);

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_COMPACTOR_H_
