#include "mindex/pivot_set.h"

#include "common/rng.h"

namespace simcloud {
namespace mindex {

Result<PivotSet> PivotSet::SelectRandom(
    const std::vector<metric::VectorObject>& objects, size_t count,
    uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("pivot count must be > 0");
  }
  if (count > objects.size()) {
    return Status::InvalidArgument(
        "pivot count " + std::to_string(count) +
        " exceeds collection size " + std::to_string(objects.size()));
  }
  Rng rng(seed);
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(objects.size(), count);
  std::vector<metric::VectorObject> pivots;
  pivots.reserve(count);
  for (size_t idx : picked) pivots.push_back(objects[idx]);
  return PivotSet(std::move(pivots));
}

std::vector<float> PivotSet::ComputeDistances(
    const metric::VectorObject& object,
    const metric::DistanceFunction& distance) const {
  std::vector<float> distances(pivots_.size());
  for (size_t i = 0; i < pivots_.size(); ++i) {
    distances[i] = static_cast<float>(distance.Distance(object, pivots_[i]));
  }
  return distances;
}

void PivotSet::Serialize(BinaryWriter* writer) const {
  writer->WriteVarint(pivots_.size());
  for (const auto& pivot : pivots_) pivot.Serialize(writer);
}

Result<PivotSet> PivotSet::Deserialize(BinaryReader* reader) {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
  std::vector<metric::VectorObject> pivots;
  pivots.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(metric::VectorObject pivot,
                              metric::VectorObject::Deserialize(reader));
    pivots.push_back(std::move(pivot));
  }
  return PivotSet(std::move(pivots));
}

}  // namespace mindex
}  // namespace simcloud
