#include "mindex/pivot_selection.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"

namespace simcloud {
namespace mindex {

using metric::DistanceFunction;
using metric::VectorObject;

namespace {

/// Draws min(sample_size, n) distinct indices into `objects`;
/// sample_size == 0 keeps the whole collection.
std::vector<size_t> SampleIndices(size_t n, size_t sample_size, Rng* rng) {
  if (sample_size == 0 || sample_size >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  return rng->SampleWithoutReplacement(n, sample_size);
}

/// Greedy max-min (Gonzalez farthest-first traversal) over the sample.
std::vector<size_t> FarthestFirst(const std::vector<VectorObject>& objects,
                                  const DistanceFunction& distance,
                                  const std::vector<size_t>& sample,
                                  size_t count, Rng* rng) {
  std::vector<size_t> chosen;
  chosen.reserve(count);
  chosen.push_back(sample[rng->NextBounded(sample.size())]);

  // min_dist[i] = distance from sample[i] to its closest chosen pivot.
  std::vector<double> min_dist(sample.size(),
                               std::numeric_limits<double>::infinity());
  while (chosen.size() < count) {
    const VectorObject& last = objects[chosen.back()];
    size_t best = 0;
    double best_dist = -1.0;
    for (size_t i = 0; i < sample.size(); ++i) {
      const double d = distance.Distance(objects[sample[i]], last);
      min_dist[i] = std::min(min_dist[i], d);
      if (min_dist[i] > best_dist) {
        best_dist = min_dist[i];
        best = i;
      }
    }
    if (best_dist <= 0.0) {
      // Sample exhausted (fewer distinct objects than pivots requested);
      // pad with arbitrary sample members to honour the count.
      for (size_t i = 0; i < sample.size() && chosen.size() < count; ++i) {
        if (std::find(chosen.begin(), chosen.end(), sample[i]) ==
            chosen.end()) {
          chosen.push_back(sample[i]);
        }
      }
      break;
    }
    chosen.push_back(sample[best]);
  }
  return chosen;
}

/// Incremental selection maximizing the variance of distances between the
/// candidate pivot and the sample.
std::vector<size_t> MaxVariance(const std::vector<VectorObject>& objects,
                                const DistanceFunction& distance,
                                const std::vector<size_t>& sample,
                                size_t count, Rng* rng) {
  // Evaluate a bounded number of candidates per slot to keep the cost
  // linear in the sample rather than quadratic.
  const size_t candidates_per_slot = std::min<size_t>(32, sample.size());
  std::vector<size_t> chosen;
  chosen.reserve(count);
  std::vector<bool> used(objects.size(), false);

  for (size_t slot = 0; slot < count; ++slot) {
    size_t best_index = sample[0];
    double best_score = -1.0;
    for (size_t c = 0; c < candidates_per_slot; ++c) {
      const size_t candidate = sample[rng->NextBounded(sample.size())];
      if (used[candidate]) continue;
      double sum = 0.0;
      double sum_sq = 0.0;
      for (size_t i = 0; i < sample.size(); ++i) {
        const double d =
            distance.Distance(objects[candidate], objects[sample[i]]);
        sum += d;
        sum_sq += d * d;
      }
      const double n = static_cast<double>(sample.size());
      const double variance = sum_sq / n - (sum / n) * (sum / n);
      if (variance > best_score) {
        best_score = variance;
        best_index = candidate;
      }
    }
    if (used[best_index]) {
      // All sampled candidates were taken — fall back to first free.
      for (size_t i : sample) {
        if (!used[i]) {
          best_index = i;
          break;
        }
      }
    }
    used[best_index] = true;
    chosen.push_back(best_index);
  }
  return chosen;
}

/// Random init + a few sweeps replacing each pivot by the medoid of its
/// sample Voronoi cell.
std::vector<size_t> Medoids(const std::vector<VectorObject>& objects,
                            const DistanceFunction& distance,
                            const std::vector<size_t>& sample, size_t count,
                            size_t iterations, Rng* rng) {
  std::vector<size_t> chosen(count);
  std::vector<size_t> init =
      rng->SampleWithoutReplacement(sample.size(), count);
  for (size_t i = 0; i < count; ++i) chosen[i] = sample[init[i]];

  std::vector<size_t> assignment(sample.size());
  for (size_t iter = 0; iter < iterations; ++iter) {
    // Assign each sample object to its closest pivot.
    for (size_t i = 0; i < sample.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t arg = 0;
      for (size_t p = 0; p < count; ++p) {
        const double d =
            distance.Distance(objects[sample[i]], objects[chosen[p]]);
        if (d < best) {
          best = d;
          arg = p;
        }
      }
      assignment[i] = arg;
    }
    // Replace each pivot by its cell's medoid (member minimizing the sum
    // of distances to the rest of the cell).
    bool changed = false;
    for (size_t p = 0; p < count; ++p) {
      std::vector<size_t> cell;
      for (size_t i = 0; i < sample.size(); ++i) {
        if (assignment[i] == p) cell.push_back(sample[i]);
      }
      if (cell.empty()) continue;
      size_t best_member = chosen[p];
      double best_cost = std::numeric_limits<double>::infinity();
      for (size_t candidate : cell) {
        double cost = 0.0;
        for (size_t other : cell) {
          cost += distance.Distance(objects[candidate], objects[other]);
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_member = candidate;
        }
      }
      if (best_member != chosen[p]) {
        chosen[p] = best_member;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return chosen;
}

}  // namespace

std::string PivotStrategyName(PivotStrategy strategy) {
  switch (strategy) {
    case PivotStrategy::kRandom:
      return "random";
    case PivotStrategy::kFarthestFirst:
      return "farthest-first";
    case PivotStrategy::kMaxVariance:
      return "max-variance";
    case PivotStrategy::kMedoids:
      return "medoids";
  }
  return "unknown";
}

Result<PivotSet> SelectPivots(const std::vector<VectorObject>& objects,
                              const DistanceFunction& distance,
                              const PivotSelectionOptions& options) {
  if (options.count == 0) {
    return Status::InvalidArgument("pivot count must be > 0");
  }
  if (options.count > objects.size()) {
    return Status::InvalidArgument(
        "pivot count " + std::to_string(options.count) +
        " exceeds collection size " + std::to_string(objects.size()));
  }
  if (options.strategy == PivotStrategy::kRandom) {
    return PivotSet::SelectRandom(objects, options.count, options.seed);
  }

  Rng rng(options.seed);
  std::vector<size_t> sample =
      SampleIndices(objects.size(), options.sample_size, &rng);
  if (sample.size() < options.count) {
    return Status::InvalidArgument(
        "selection sample smaller than the requested pivot count");
  }

  std::vector<size_t> chosen;
  switch (options.strategy) {
    case PivotStrategy::kFarthestFirst:
      chosen = FarthestFirst(objects, distance, sample, options.count, &rng);
      break;
    case PivotStrategy::kMaxVariance:
      chosen = MaxVariance(objects, distance, sample, options.count, &rng);
      break;
    case PivotStrategy::kMedoids:
      chosen = Medoids(objects, distance, sample, options.count,
                       options.medoid_iterations, &rng);
      break;
    case PivotStrategy::kRandom:
      break;  // handled above
  }
  if (chosen.size() != options.count) {
    return Status::Internal("pivot selection produced wrong count");
  }

  std::vector<VectorObject> pivots;
  pivots.reserve(chosen.size());
  for (size_t index : chosen) pivots.push_back(objects[index]);
  return PivotSet(std::move(pivots));
}

}  // namespace mindex
}  // namespace simcloud
