#include "mindex/storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace simcloud {
namespace mindex {

Result<PayloadHandle> MemoryStorage::Store(const Bytes& payload) {
  payloads_.push_back(payload);
  total_bytes_ += payload.size();
  return static_cast<PayloadHandle>(payloads_.size() - 1);
}

Result<Bytes> MemoryStorage::Fetch(PayloadHandle handle) const {
  if (handle >= payloads_.size()) {
    return Status::NotFound("memory storage handle out of range");
  }
  return payloads_[handle];
}

Result<std::unique_ptr<DiskStorage>> DiskStorage::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create disk storage at " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<DiskStorage>(new DiskStorage(fd, path));
}

DiskStorage::~DiskStorage() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PayloadHandle> DiskStorage::Store(const Bytes& payload) {
  size_t done = 0;
  while (done < payload.size()) {
    const ssize_t n = ::pwrite(fd_, payload.data() + done,
                               payload.size() - done,
                               static_cast<off_t>(next_offset_ + done));
    if (n < 0) {
      return Status::IoError("pwrite failed on " + path_ + ": " +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  const PayloadHandle handle = offsets_.size();
  offsets_.push_back(next_offset_);
  lengths_.push_back(static_cast<uint32_t>(payload.size()));
  next_offset_ += payload.size();
  total_bytes_ += payload.size();
  return handle;
}

Result<Bytes> DiskStorage::Fetch(PayloadHandle handle) const {
  if (handle >= offsets_.size()) {
    return Status::NotFound("disk storage handle out of range");
  }
  Bytes out(lengths_[handle]);
  size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offsets_[handle] + done));
    if (n < 0) {
      return Status::IoError("pread failed on " + path_ + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption("unexpected EOF in disk storage " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return out;
}

Result<std::unique_ptr<BucketStorage>> MakeStorage(
    StorageKind kind, const std::string& disk_path) {
  if (kind == StorageKind::kMemory) {
    return std::unique_ptr<BucketStorage>(new MemoryStorage());
  }
  if (disk_path.empty()) {
    return Status::InvalidArgument("disk storage requires a path");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<DiskStorage> disk,
                            DiskStorage::Create(disk_path));
  return std::unique_ptr<BucketStorage>(std::move(disk));
}

}  // namespace mindex
}  // namespace simcloud
