#include "mindex/storage.h"

#include <fcntl.h>
#include <unistd.h>
#ifdef __linux__
#include <linux/falloc.h>  // FALLOC_FL_PUNCH_HOLE for segment release
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "common/io_ring.h"
#include "common/log.h"

namespace simcloud {
namespace mindex {

namespace {

// SIMCLOUD_IO_ENGINE=uring opts storage reads into io_uring batching,
// the same switch that selects the server's readiness engine.
bool UringFetchEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SIMCLOUD_IO_ENGINE");
    return env != nullptr && std::strcmp(env, "uring") == 0;
  }();
  return enabled;
}

// SQ depth of the per-storage read ring; batches larger than this
// pipeline through repeated submit/reap rounds.
constexpr unsigned kFetchRingEntries = 64;

}  // namespace

DiskReadPlan BuildDiskReadPlan(std::span<const PayloadHandle> handles,
                               std::span<const uint64_t> offsets,
                               std::span<const uint32_t> lengths) {
  DiskReadPlan plan;
  plan.order.resize(handles.size());
  std::iota(plan.order.begin(), plan.order.end(), size_t{0});
  std::sort(plan.order.begin(), plan.order.end(), [&](size_t a, size_t b) {
    return offsets[handles[a]] < offsets[handles[b]];
  });
  size_t i = 0;
  while (i < plan.order.size()) {
    DiskReadRun run;
    run.offset = offsets[handles[plan.order[i]]];
    run.length = lengths[handles[plan.order[i]]];
    run.first = i;
    run.count = 1;
    size_t j = i + 1;
    while (j < plan.order.size() &&
           offsets[handles[plan.order[j]]] == run.offset + run.length) {
      run.length += lengths[handles[plan.order[j]]];
      run.count++;
      ++j;
    }
    plan.runs.push_back(run);
    i = j;
  }
  return plan;
}

Status BucketStorage::FetchMany(std::span<const PayloadHandle> handles,
                                std::vector<Bytes>* out) const {
  out->clear();
  out->reserve(handles.size());
  for (PayloadHandle handle : handles) {
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload, Fetch(handle));
    out->push_back(std::move(payload));
  }
  return Status::OK();
}

std::vector<BucketStorage::SegmentView> BucketStorage::Segments() const {
  const CompactionStats stats = GetCompactionStats();
  if (stats.TotalBytes() == 0) return {};
  SegmentView view;
  view.segment = 0;
  view.bytes = stats.TotalBytes();
  view.dead_bytes = stats.dead_bytes;
  view.sealed = false;  // the whole log can still grow
  return {view};
}

Status BucketStorage::ForEachLiveHandle(
    const std::function<void(PayloadHandle, uint64_t, uint32_t)>& fn) const {
  (void)fn;
  return Status::NotSupported(Name() +
                               " storage does not enumerate live handles");
}

Result<uint64_t> BucketStorage::ReleaseDeadSegments(
    const std::vector<uint64_t>& segments) {
  (void)segments;
  return Status::NotSupported(Name() +
                               " storage cannot release segments in place");
}

Result<PayloadHandle> MemoryStorage::Store(const Bytes& payload) {
  payloads_.push_back(payload);
  live_.push_back(true);
  total_bytes_ += payload.size();
  return static_cast<PayloadHandle>(payloads_.size() - 1);
}

Status MemoryStorage::CheckLive(PayloadHandle handle) const {
  if (handle >= payloads_.size()) {
    return Status::NotFound("memory storage handle out of range");
  }
  if (!live_[handle]) {
    return Status::NotFound("memory storage handle " +
                            std::to_string(handle) + " was freed");
  }
  return Status::OK();
}

Result<Bytes> MemoryStorage::Fetch(PayloadHandle handle) const {
  SIMCLOUD_RETURN_NOT_OK(CheckLive(handle));
  return payloads_[handle];
}

Status MemoryStorage::FetchMany(std::span<const PayloadHandle> handles,
                                std::vector<Bytes>* out) const {
  for (PayloadHandle handle : handles) {
    SIMCLOUD_RETURN_NOT_OK(CheckLive(handle));
  }
  out->clear();
  out->reserve(handles.size());
  for (PayloadHandle handle : handles) out->push_back(payloads_[handle]);
  return Status::OK();
}

Status MemoryStorage::Free(PayloadHandle handle) {
  SIMCLOUD_RETURN_NOT_OK(CheckLive(handle));
  dead_bytes_ += payloads_[handle].size();
  dead_count_++;
  live_[handle] = false;
  Bytes().swap(payloads_[handle]);  // release the heap bytes now
  return Status::OK();
}

BucketStorage::CompactionStats MemoryStorage::GetCompactionStats() const {
  CompactionStats stats;
  stats.live_bytes = total_bytes_ - dead_bytes_;
  stats.dead_bytes = dead_bytes_;
  stats.live_payloads = payloads_.size() - dead_count_;
  stats.dead_payloads = dead_count_;
  stats.segment_count = payloads_.empty() ? 0 : 1;
  stats.dead_segments =
      (!payloads_.empty() && dead_count_ == payloads_.size()) ? 1 : 0;
  return stats;
}

Status MemoryStorage::ForEachLiveHandle(
    const std::function<void(PayloadHandle, uint64_t, uint32_t)>& fn) const {
  for (PayloadHandle handle = 0; handle < payloads_.size(); ++handle) {
    if (!live_[handle]) continue;
    fn(handle, /*segment=*/0,
       static_cast<uint32_t>(payloads_[handle].size()));
  }
  return Status::OK();
}

Result<std::unique_ptr<DiskStorage>> DiskStorage::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create disk storage at " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<DiskStorage>(new DiskStorage(fd, path));
}

DiskStorage::~DiskStorage() {
  if (fd_ >= 0) ::close(fd_);
}

Status DiskStorage::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IoError("close failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status DiskStorage::Sync() {
  SIMCLOUD_RETURN_NOT_OK(CheckOpen());
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status DiskStorage::RenameTo(const std::string& new_path) {
  if (std::rename(path_.c_str(), new_path.c_str()) != 0) {
    return Status::IoError("cannot rename " + path_ + " to " + new_path +
                           ": " + std::strerror(errno));
  }
  path_ = new_path;
  return Status::OK();
}

Status DiskStorage::CheckOpen() const {
  if (fd_ < 0) {
    return Status::FailedPrecondition("disk storage " + path_ +
                                      " is not open");
  }
  return Status::OK();
}

Status DiskStorage::CheckLive(PayloadHandle handle) const {
  if (handle >= offsets_.size()) {
    return Status::NotFound("disk storage handle out of range");
  }
  if (!live_[handle]) {
    return Status::NotFound("disk storage handle " + std::to_string(handle) +
                            " was freed");
  }
  return Status::OK();
}

Status DiskStorage::ReadExactly(uint8_t* dst, size_t len,
                                uint64_t offset) const {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, dst + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread failed on " + path_ + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption(
          "short read in disk storage " + path_ + ": got " +
          std::to_string(done) + " of " + std::to_string(len) + " bytes");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<PayloadHandle> DiskStorage::Store(const Bytes& payload) {
  SIMCLOUD_RETURN_NOT_OK(CheckOpen());
  size_t done = 0;
  while (done < payload.size()) {
    const ssize_t n = ::pwrite(fd_, payload.data() + done,
                               payload.size() - done,
                               static_cast<off_t>(next_offset_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pwrite failed on " + path_ + ": " +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  const PayloadHandle handle = offsets_.size();
  offsets_.push_back(next_offset_);
  lengths_.push_back(static_cast<uint32_t>(payload.size()));
  live_.push_back(true);
  const size_t segment = next_offset_ / kSegmentBytes;
  if (segment >= segments_.size()) segments_.resize(segment + 1);
  Segment& seg = segments_[segment];
  if (seg.payload_count == 0) seg.first_offset = next_offset_;
  seg.bytes += payload.size();
  seg.payload_count++;
  seg.end_offset = next_offset_ + payload.size();
  next_offset_ += payload.size();
  total_bytes_ += payload.size();
  return handle;
}

Status DiskStorage::Free(PayloadHandle handle) {
  SIMCLOUD_RETURN_NOT_OK(CheckOpen());
  SIMCLOUD_RETURN_NOT_OK(CheckLive(handle));
  live_[handle] = false;
  dead_bytes_ += lengths_[handle];
  dead_count_++;
  Segment& seg = segments_[offsets_[handle] / kSegmentBytes];
  seg.dead_bytes += lengths_[handle];
  seg.dead_count++;
  return Status::OK();
}

BucketStorage::CompactionStats DiskStorage::GetCompactionStats() const {
  CompactionStats stats;
  stats.live_bytes = total_bytes_ - dead_bytes_;
  stats.dead_bytes = dead_bytes_;
  stats.live_payloads = lengths_.size() - dead_count_ - released_payloads_;
  stats.dead_payloads = dead_count_;
  for (const Segment& segment : segments_) {
    if (segment.bytes == 0) continue;
    stats.segment_count++;
    if (segment.dead_bytes == segment.bytes) stats.dead_segments++;
  }
  return stats;
}

std::vector<BucketStorage::SegmentView> DiskStorage::Segments() const {
  std::vector<SegmentView> views;
  views.reserve(segments_.size());
  const uint64_t append_segment = next_offset_ / kSegmentBytes;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Segment& segment = segments_[i];
    if (segment.released || segment.bytes == 0) continue;
    SegmentView view;
    view.segment = i;
    view.bytes = segment.bytes;
    view.dead_bytes = segment.dead_bytes;
    view.sealed = i != append_segment;
    views.push_back(view);
  }
  return views;
}

Status DiskStorage::ForEachLiveHandle(
    const std::function<void(PayloadHandle, uint64_t, uint32_t)>& fn) const {
  SIMCLOUD_RETURN_NOT_OK(CheckOpen());
  for (PayloadHandle handle = 0; handle < offsets_.size(); ++handle) {
    if (!live_[handle]) continue;
    fn(handle, offsets_[handle] / kSegmentBytes, lengths_[handle]);
  }
  return Status::OK();
}

Result<uint64_t> DiskStorage::ReleaseDeadSegments(
    const std::vector<uint64_t>& segments) {
  SIMCLOUD_RETURN_NOT_OK(CheckOpen());
  const uint64_t append_segment = next_offset_ / kSegmentBytes;
  for (uint64_t index : segments) {
    if (index >= segments_.size() || segments_[index].released ||
        segments_[index].bytes == 0) {
      return Status::FailedPrecondition(
          "segment " + std::to_string(index) + " of " + path_ +
          " holds no releasable data");
    }
    if (index == append_segment) {
      return Status::FailedPrecondition(
          "segment " + std::to_string(index) + " of " + path_ +
          " is still receiving appends");
    }
    if (segments_[index].dead_bytes != segments_[index].bytes) {
      return Status::FailedPrecondition(
          "segment " + std::to_string(index) + " of " + path_ +
          " still holds live payloads");
    }
  }
  uint64_t released = 0;
  for (uint64_t index : segments) {
    Segment& segment = segments_[index];
#ifdef FALLOC_FL_PUNCH_HOLE
    // Best-effort: deallocate the segment's blocks without changing the
    // file size. Filesystems without hole support keep the blocks until
    // the next full rewrite; the accounting drops them either way — the
    // bytes are unreachable (every handle in the range is dead and
    // handles are never reused).
    (void)::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                      static_cast<off_t>(segment.first_offset),
                      static_cast<off_t>(segment.end_offset -
                                         segment.first_offset));
#endif
    released += segment.bytes;
    total_bytes_ -= segment.bytes;
    dead_bytes_ -= segment.bytes;
    dead_count_ -= segment.dead_count;
    released_payloads_ += segment.payload_count;
    segment.bytes = 0;
    segment.dead_bytes = 0;
    segment.dead_count = 0;
    segment.payload_count = 0;
    segment.released = true;
  }
  return released;
}

Result<Bytes> DiskStorage::Fetch(PayloadHandle handle) const {
  SIMCLOUD_RETURN_NOT_OK(CheckOpen());
  SIMCLOUD_RETURN_NOT_OK(CheckLive(handle));
  Bytes out(lengths_[handle]);
  SIMCLOUD_RETURN_NOT_OK(ReadExactly(out.data(), out.size(),
                                     offsets_[handle]));
  return out;
}

namespace {

// Distributes one run's bytes into the per-handle output slots.
void ScatterRun(const DiskReadPlan& plan, const DiskReadRun& run,
                std::span<const PayloadHandle> handles,
                const std::vector<uint32_t>& lengths, const Bytes& buffer,
                std::vector<Bytes>* out) {
  uint64_t cursor = 0;
  for (size_t k = run.first; k < run.first + run.count; ++k) {
    const uint32_t length = lengths[handles[plan.order[k]]];
    (*out)[plan.order[k]].assign(buffer.begin() + cursor,
                                 buffer.begin() + cursor + length);
    cursor += length;
  }
}

}  // namespace

Status DiskStorage::FetchMany(std::span<const PayloadHandle> handles,
                              std::vector<Bytes>* out) const {
  SIMCLOUD_RETURN_NOT_OK(CheckOpen());
  for (PayloadHandle handle : handles) {
    SIMCLOUD_RETURN_NOT_OK(CheckLive(handle));
  }
  out->assign(handles.size(), Bytes());

  // Read in offset order: adjacent payloads (the common case — candidates
  // of one bucket were appended together) collapse into one read. The
  // plan is identical for both executors.
  const DiskReadPlan plan = BuildDiskReadPlan(handles, offsets_, lengths_);

  if (UringFetchEnabled() && !ring_failed_) {
    const Status status = FetchManyUring(plan, handles, out);
    if (status.code() != StatusCode::kNotSupported) return status;
    // NotSupported: ring unavailable or busy — take the pread path.
  }

  Bytes buffer;
  for (const DiskReadRun& run : plan.runs) {
    buffer.resize(run.length);
    SIMCLOUD_RETURN_NOT_OK(ReadExactly(buffer.data(), run.length, run.offset));
    ScatterRun(plan, run, handles, lengths_, buffer, out);
  }
  return Status::OK();
}

Status DiskStorage::FetchManyUring(const DiskReadPlan& plan,
                                   std::span<const PayloadHandle> handles,
                                   std::vector<Bytes>* out) const {
  // FetchMany must stay concurrency-safe but the ring is single-owner:
  // a caller that misses the lock reads via pread instead of queueing.
  std::unique_lock<std::mutex> lock(ring_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return Status::NotSupported("ring busy");
  if (ring_ == nullptr) {
    Result<std::unique_ptr<IoRing>> ring = IoRing::Create(kFetchRingEntries);
    if (!ring.ok()) {
      ring_failed_ = true;
      SIMCLOUD_LOG(kWarn) << "io_uring unavailable ("
                          << ring.status().message()
                          << "); disk reads fall back to pread";
      return Status::NotSupported(ring.status().message());
    }
    ring_ = std::move(*ring);
  }

  std::vector<Bytes> buffers(plan.runs.size());
  std::vector<IoRing::Cqe> cqes;
  size_t next = 0;  // first run not yet submitted
  size_t done = 0;
  while (done < plan.runs.size()) {
    while (next < plan.runs.size()) {
      const DiskReadRun& run = plan.runs[next];
      if (run.length > UINT32_MAX) {
        // PrepRead carries a 32-bit length; a >4GiB coalesced run is
        // beyond any real batch, but stay correct and use pread.
        return Status::NotSupported("read run exceeds io_uring length");
      }
      buffers[next].resize(run.length);
      if (!ring_->PrepRead(fd_, buffers[next].data(),
                           static_cast<uint32_t>(run.length), run.offset,
                           next)) {
        break;  // SQ full: reap some completions first
      }
      ++next;
    }
    SIMCLOUD_RETURN_NOT_OK(ring_->SubmitAndWait(1));
    cqes.clear();
    ring_->DrainCompletions(&cqes);
    for (const IoRing::Cqe& cqe : cqes) {
      const DiskReadRun& run = plan.runs[cqe.user_data];
      Bytes& buffer = buffers[cqe.user_data];
      // Short reads (res < length) and per-SQE errors both finish via
      // ReadExactly, which re-reports a genuine I/O failure or EOF
      // truncation (Corruption) with the usual diagnostics.
      const uint64_t got = cqe.res < 0 ? 0 : static_cast<uint64_t>(cqe.res);
      if (got < run.length) {
        SIMCLOUD_RETURN_NOT_OK(ReadExactly(buffer.data() + got,
                                           run.length - got,
                                           run.offset + got));
      }
      ScatterRun(plan, run, handles, lengths_, buffer, out);
      ++done;
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<BucketStorage>> MakeStorage(
    StorageKind kind, const std::string& disk_path) {
  if (kind == StorageKind::kMemory) {
    return std::unique_ptr<BucketStorage>(new MemoryStorage());
  }
  if (disk_path.empty()) {
    return Status::InvalidArgument("disk storage requires a path");
  }
  // A fresh log at `disk_path` obsoletes any half-written temp log a
  // crashed compaction left behind (the compactor writes to
  // "<disk_path>.compact" and renames only on success) — reclaim it now
  // rather than leaking it until the next successful compaction.
  std::remove((disk_path + ".compact").c_str());
  SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<DiskStorage> disk,
                            DiskStorage::Create(disk_path));
  return std::unique_ptr<BucketStorage>(std::move(disk));
}

}  // namespace mindex
}  // namespace simcloud
