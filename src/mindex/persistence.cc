#include "mindex/persistence.h"

#include <cstdio>

#include "common/serialize.h"

namespace simcloud {
namespace mindex {

namespace {

constexpr uint32_t kSnapshotMagic = 0x4D494458;  // "MIDX"
// Version 2 appends cache_bytes to the options block; version 3 appends
// compaction_trigger; version 4 appends the compaction policy (mode,
// per-segment dead threshold, per-pass byte budget). Older snapshots
// remain loadable (missing fields keep their defaults: no cache, no
// automatic compaction, full-pass mode).
constexpr uint32_t kSnapshotVersion = 4;

void SerializeOptions(const MIndexOptions& options, BinaryWriter* writer) {
  writer->WriteVarint(options.num_pivots);
  writer->WriteVarint(options.bucket_capacity);
  writer->WriteVarint(options.max_level);
  writer->WriteU8(options.storage_kind == StorageKind::kDisk ? 1 : 0);
  writer->WriteString(options.disk_path);
  writer->WriteVarint(options.stored_prefix_length);
  writer->WriteDouble(options.promise_decay);
  writer->WriteVarint(options.cache_bytes);
  writer->WriteDouble(options.compaction_trigger);
  writer->WriteU8(options.compaction_mode == CompactionMode::kPartial ? 1
                                                                      : 0);
  writer->WriteDouble(options.segment_dead_threshold);
  writer->WriteVarint(options.compaction_max_pass_bytes);
}

Result<MIndexOptions> DeserializeOptions(BinaryReader* reader,
                                         uint32_t version) {
  MIndexOptions options;
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t num_pivots, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t bucket_capacity, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t max_level, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t storage_kind, reader->ReadU8());
  SIMCLOUD_ASSIGN_OR_RETURN(options.disk_path, reader->ReadString());
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t prefix_len, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(options.promise_decay, reader->ReadDouble());
  if (version >= 2) {
    SIMCLOUD_ASSIGN_OR_RETURN(options.cache_bytes, reader->ReadVarint());
  }
  if (version >= 3) {
    SIMCLOUD_ASSIGN_OR_RETURN(options.compaction_trigger,
                              reader->ReadDouble());
  }
  if (version >= 4) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint8_t mode, reader->ReadU8());
    options.compaction_mode =
        mode == 1 ? CompactionMode::kPartial : CompactionMode::kFull;
    SIMCLOUD_ASSIGN_OR_RETURN(options.segment_dead_threshold,
                              reader->ReadDouble());
    SIMCLOUD_ASSIGN_OR_RETURN(options.compaction_max_pass_bytes,
                              reader->ReadVarint());
  }
  options.num_pivots = num_pivots;
  options.bucket_capacity = bucket_capacity;
  options.max_level = max_level;
  options.storage_kind =
      storage_kind == 1 ? StorageKind::kDisk : StorageKind::kMemory;
  options.stored_prefix_length = prefix_len;
  return options;
}

}  // namespace

Result<Bytes> SerializeIndex(const MIndex& index) {
  BinaryWriter writer;
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU32(kSnapshotVersion);
  SerializeOptions(index.options(), &writer);
  writer.WriteVarint(index.size());
  SIMCLOUD_RETURN_NOT_OK(index.ForEachEntry(
      [&writer](const Entry& entry, const Bytes& payload) -> Status {
        writer.WriteVarint(entry.id);
        writer.WriteU32Vector(entry.permutation);
        writer.WriteFloatVector(entry.pivot_distances);
        writer.WriteBytes(payload);
        return Status::OK();
      }));
  return writer.TakeBuffer();
}

Result<std::unique_ptr<MIndex>> DeserializeIndex(
    const Bytes& snapshot, const std::string& disk_path_override) {
  BinaryReader reader(snapshot);
  SIMCLOUD_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kSnapshotMagic) {
    return Status::Corruption("bad index snapshot magic");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version < 1 || version > kSnapshotVersion) {
    return Status::Corruption("unsupported index snapshot version " +
                              std::to_string(version));
  }
  SIMCLOUD_ASSIGN_OR_RETURN(MIndexOptions options,
                            DeserializeOptions(&reader, version));
  if (!disk_path_override.empty()) options.disk_path = disk_path_override;
  SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<MIndex> index,
                            MIndex::Create(options));
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(Permutation permutation,
                              reader.ReadU32Vector());
    SIMCLOUD_ASSIGN_OR_RETURN(std::vector<float> distances,
                              reader.ReadFloatVector());
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload, reader.ReadBytes());
    SIMCLOUD_RETURN_NOT_OK(index->Insert(id, std::move(distances),
                                         std::move(permutation), payload));
  }
  return index;
}

Status SaveIndex(const MIndex& index, const std::string& path) {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes snapshot, SerializeIndex(index));
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open " + tmp_path + " for writing");
  }
  const size_t written =
      std::fwrite(snapshot.data(), 1, snapshot.size(), file);
  const bool flush_ok = std::fflush(file) == 0;
  std::fclose(file);
  if (written != snapshot.size() || !flush_ok) {
    std::remove(tmp_path.c_str());
    return Status::IoError("short write while saving index snapshot");
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename snapshot into place: " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<MIndex>> LoadIndex(
    const std::string& path, const std::string& disk_path_override) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open index snapshot " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(file);
    return Status::IoError("cannot stat index snapshot " + path);
  }
  Bytes snapshot(static_cast<size_t>(size));
  const size_t read = std::fread(snapshot.data(), 1, snapshot.size(), file);
  std::fclose(file);
  if (read != snapshot.size()) {
    return Status::IoError("short read on index snapshot " + path);
  }
  return DeserializeIndex(snapshot, disk_path_override);
}

}  // namespace mindex
}  // namespace simcloud
