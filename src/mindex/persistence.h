// Whole-index persistence: save an M-Index (options + every entry with
// its payload) to a single file and load it back.
//
// The snapshot stores the logical content, not the physical tree: loading
// re-inserts every entry, which reproduces the same routing (the tree
// shape is a function of the multiset of stored permutations, not the
// insertion order) and doubles as compaction — payload bytes orphaned by
// MIndex::Delete are not written out.
//
// For the Encrypted M-Index this is the server-restart path: the snapshot
// contains exactly what the untrusted server already holds (permutations,
// optional pivot distances, ciphertexts), so persisting it leaks nothing
// beyond the live index.

#ifndef SIMCLOUD_MINDEX_PERSISTENCE_H_
#define SIMCLOUD_MINDEX_PERSISTENCE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "mindex/mindex.h"

namespace simcloud {
namespace mindex {

/// Serializes the index snapshot into a byte buffer.
Result<Bytes> SerializeIndex(const MIndex& index);

/// Rebuilds an index from a snapshot produced by SerializeIndex.
/// `disk_path_override`, when non-empty, replaces the stored disk-storage
/// path (snapshots move between machines; backing files do not).
Result<std::unique_ptr<MIndex>> DeserializeIndex(
    const Bytes& snapshot, const std::string& disk_path_override = "");

/// Writes SerializeIndex output to `path` (atomically via rename).
Status SaveIndex(const MIndex& index, const std::string& path);

/// Reads a snapshot file and rebuilds the index.
Result<std::unique_ptr<MIndex>> LoadIndex(
    const std::string& path, const std::string& disk_path_override = "");

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_PERSISTENCE_H_
