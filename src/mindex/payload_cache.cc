#include "mindex/payload_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace simcloud {
namespace mindex {

namespace {

obs::Counter* CacheHitsCounter() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_payload_cache_hits_total");
  return counter;
}

obs::Counter* CacheMissesCounter() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_payload_cache_misses_total");
  return counter;
}

// Cap the shard count so every shard's budget stays large enough to
// actually admit entries — a tiny capacity split 16 ways would leave
// each shard below kEntryOverhead and silently cache nothing.
constexpr uint64_t kMinShardCapacity = 4096;

size_t EffectiveShards(uint64_t capacity_bytes, size_t requested) {
  const uint64_t fitting = capacity_bytes / kMinShardCapacity;
  return std::max<size_t>(
      1, std::min<uint64_t>(std::max<size_t>(requested, 1), fitting));
}

}  // namespace

PayloadCache::PayloadCache(std::unique_ptr<BucketStorage> base,
                           uint64_t capacity_bytes, size_t num_shards)
    : base_(std::move(base)),
      shard_capacity_(capacity_bytes /
                      EffectiveShards(capacity_bytes, num_shards)),
      shards_(EffectiveShards(capacity_bytes, num_shards)) {}

bool PayloadCache::Lookup(PayloadHandle handle, Bytes* out) const {
  Shard& shard = ShardFor(handle);
  std::shared_ptr<const Bytes> payload;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(handle);
    if (it == shard.index.end()) {
      shard.misses++;
      CacheMissesCounter()->Add(1);
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    shard.hits++;
    CacheHitsCounter()->Add(1);
    payload = it->second->second;
  }
  *out = *payload;  // byte copy outside the critical section
  return true;
}

void PayloadCache::Insert(PayloadHandle handle, const Bytes& payload) const {
  const uint64_t charge = payload.size() + kEntryOverhead;
  if (charge > shard_capacity_) return;  // would evict everything
  Shard& shard = ShardFor(handle);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(handle);
  if (it != shard.index.end()) {
    // Raced with another fetch of the same handle; refresh recency only.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.bytes + charge > shard_capacity_ && !shard.lru.empty()) {
    auto& victim = shard.lru.back();
    shard.bytes -= victim.second->size() + kEntryOverhead;
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    shard.evictions++;
  }
  shard.lru.emplace_front(handle, std::make_shared<const Bytes>(payload));
  shard.index[handle] = shard.lru.begin();
  shard.bytes += charge;
}

Status PayloadCache::Free(PayloadHandle handle) {
  Shard& shard = ShardFor(handle);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(handle);
    if (it != shard.index.end()) {
      shard.bytes -= it->second->second->size() + kEntryOverhead;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
  }
  return base_->Free(handle);
}

bool PayloadCache::Contains(PayloadHandle handle) const {
  Shard& shard = ShardFor(handle);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.index.find(handle) != shard.index.end();
}

std::vector<PayloadHandle> PayloadCache::HotHandles() const {
  std::vector<PayloadHandle> handles;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& entry : shard.lru) handles.push_back(entry.first);
  }
  return handles;
}

void PayloadCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

Result<Bytes> PayloadCache::Fetch(PayloadHandle handle) const {
  Bytes cached;
  if (Lookup(handle, &cached)) return cached;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload, base_->Fetch(handle));
  Insert(handle, payload);
  return payload;
}

Status PayloadCache::FetchMany(std::span<const PayloadHandle> handles,
                               std::vector<Bytes>* out) const {
  out->assign(handles.size(), Bytes());
  std::vector<PayloadHandle> miss_handles;
  std::vector<size_t> miss_positions;
  for (size_t i = 0; i < handles.size(); ++i) {
    if (!Lookup(handles[i], &(*out)[i])) {
      miss_handles.push_back(handles[i]);
      miss_positions.push_back(i);
    }
  }
  if (miss_handles.empty()) return Status::OK();

  std::vector<Bytes> fetched;
  SIMCLOUD_RETURN_NOT_OK(base_->FetchMany(miss_handles, &fetched));
  for (size_t m = 0; m < miss_handles.size(); ++m) {
    Insert(miss_handles[m], fetched[m]);
    (*out)[miss_positions[m]] = std::move(fetched[m]);
  }
  return Status::OK();
}

PayloadCache::CacheStats PayloadCache::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.evictions += shard.evictions;
    total.cached_bytes += shard.bytes;
    total.cached_payloads += shard.lru.size();
  }
  return total;
}

}  // namespace mindex
}  // namespace simcloud
