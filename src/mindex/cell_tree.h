// Dynamic Voronoi cell tree (paper Figure 3).
//
// Objects are routed by their pivot-permutation prefix: the child taken at
// depth k is permutation[k]. Leaves hold up to `bucket_capacity` entries;
// an overflowing leaf at depth < max_level is split by the next
// permutation element (recursive Voronoi partitioning, paper Figure 2).
//
// Search support:
//  * precise range queries — subtree pruning by the double-pivot and
//    range-pivot constraints, then per-entry pivot filtering (Alg. 3);
//  * approximate k-NN — best-first traversal of cells ordered by a promise
//    value derived from query-pivot distances or permutation ranks
//    (Alg. 4).

#ifndef SIMCLOUD_MINDEX_CELL_TREE_H_
#define SIMCLOUD_MINDEX_CELL_TREE_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "mindex/entry.h"

namespace simcloud {
namespace mindex {

/// The recursive Voronoi partitioning tree. Not thread-safe for writes;
/// concurrent const traversals are safe.
class CellTree {
 public:
  /// `max_level` bounds the permutation-prefix depth (>= 1, <= num_pivots).
  CellTree(size_t num_pivots, size_t bucket_capacity, size_t max_level);

  /// Inserts an entry; entry.permutation must have at least max_level
  /// elements and be a valid partial permutation.
  Status Insert(Entry entry);

  /// Removes the entry with the given id, routed by `permutation` (the
  /// same routing information the insert used). Returns the removed entry
  /// or NotFound. Leaves are not merged on underflow — the M-Index is an
  /// insert-mostly structure and split decisions remain stable; empty
  /// leaves are tolerated by search and invariant checks.
  Result<Entry> Remove(metric::ObjectId id, const Permutation& permutation);

  /// Visits every entry in deterministic (pivot-chain) order. `fn`
  /// returning a non-OK status aborts the walk with that status.
  Status ForEachEntry(
      const std::function<Status(const Entry&)>& fn) const;

  /// Mutable variant of ForEachEntry (same order). `fn` may rewrite entry
  /// fields that do not affect routing — the compactor remaps
  /// payload_handle this way — but must not change id, permutation, or
  /// pivot_distances.
  Status ForEachEntryMutable(const std::function<Status(Entry&)>& fn);

  /// Collects pointers to all entries that survive cell pruning and pivot
  /// filtering for range query R(q, r), given query-pivot distances.
  /// Survivors are appended with their filtering lower bound.
  Status CollectRange(const std::vector<float>& query_distances,
                      double radius,
                      std::vector<std::pair<double, const Entry*>>* out,
                      SearchStats* stats) const;

  /// Multi-query variant of CollectRange: evaluates every query in ONE
  /// traversal of the tree. A node is descended once and each query prunes
  /// independently along the way, so per-query results, ordering, and
  /// stats are identical to `queries.size()` CollectRange calls while
  /// shared tree nodes are touched once. `out` and (when non-null) `stats`
  /// must have one element per query.
  Status CollectRangeBatch(
      const std::vector<RangeQuery>& queries,
      std::vector<std::vector<std::pair<double, const Entry*>>>* out,
      std::vector<SearchStats>* stats) const;

  /// Collects at least `cand_size` entries (then trimmed by the caller)
  /// from the most promising cells in best-first order. Each entry carries
  /// its pre-ranking score. Works with distances or permutation-only
  /// signatures.
  Status CollectApprox(const QuerySignature& query, size_t cand_size,
                       double promise_decay,
                       std::vector<std::pair<double, const Entry*>>* out,
                       SearchStats* stats) const;

  size_t size() const { return size_; }
  size_t num_pivots() const { return num_pivots_; }
  size_t bucket_capacity() const { return bucket_capacity_; }
  size_t max_level() const { return max_level_; }

  /// Tree shape counters (leaves, inner nodes, max depth).
  void FillStats(IndexStats* stats) const;

  /// Invariant check for tests: every entry is reachable under its own
  /// permutation prefix and every leaf obeys capacity or max depth.
  Status CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    // Child per pivot index (ordered map keeps traversal deterministic).
    std::map<uint32_t, std::unique_ptr<Node>> children;
    std::vector<Entry> entries;  // leaf payload
    // Range of d(o, p_chain) over the subtree, where p_chain is the pivot
    // this node is keyed by; maintained only when entries carry distances.
    float min_pivot_dist = 0;
    float max_pivot_dist = 0;
    bool has_dist_bounds = false;
    size_t subtree_size = 0;
  };

  void SplitLeaf(Node* node, size_t depth);
  void UpdateDistBounds(Node* node, float dist);

  // Smallest query-pivot distance among pivots not in `used_chain`.
  static double MinAllowedDistance(const std::vector<float>& query_distances,
                                   const Permutation& query_perm_by_dist,
                                   const std::vector<uint32_t>& used_chain);

  void CollectRangeRecursive(
      const Node& node, size_t depth,
      const std::vector<float>& query_distances,
      const Permutation& query_perm_by_dist, double radius,
      std::vector<uint32_t>& chain,
      std::vector<std::pair<double, const Entry*>>* out,
      SearchStats* stats) const;

  void CollectRangeBatchRecursive(
      const Node& node, const std::vector<RangeQuery>& queries,
      const std::vector<Permutation>& query_perms,
      const std::vector<size_t>& active, std::vector<uint32_t>& chain,
      std::vector<std::vector<std::pair<double, const Entry*>>>* out,
      std::vector<SearchStats>* stats) const;

  size_t num_pivots_;
  size_t bucket_capacity_;
  size_t max_level_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_CELL_TREE_H_
