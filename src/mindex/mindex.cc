#include "mindex/mindex.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/log.h"
#include "mindex/payload_cache.h"
#include "obs/metrics.h"

namespace simcloud {
namespace mindex {

Result<std::unique_ptr<MIndex>> MIndex::Create(const MIndexOptions& options) {
  if (options.num_pivots == 0) {
    return Status::InvalidArgument("num_pivots must be > 0");
  }
  if (options.bucket_capacity == 0) {
    return Status::InvalidArgument("bucket_capacity must be > 0");
  }
  if (options.max_level == 0) {
    return Status::InvalidArgument("max_level must be >= 1");
  }
  if (options.stored_prefix_length != 0 &&
      options.stored_prefix_length < options.max_level) {
    return Status::InvalidArgument(
        "stored_prefix_length must be 0 (full) or >= max_level");
  }
  if (options.promise_decay <= 0.0 || options.promise_decay > 1.0) {
    return Status::InvalidArgument("promise_decay must be in (0, 1]");
  }
  if (options.compaction_trigger < 0.0 || options.compaction_trigger > 1.0) {
    return Status::InvalidArgument(
        "compaction_trigger must be in [0, 1] (0 disables)");
  }
  if (options.segment_dead_threshold <= 0.0 ||
      options.segment_dead_threshold > 1.0) {
    return Status::InvalidArgument(
        "segment_dead_threshold must be in (0, 1]");
  }
  if (options.query_threads < 0) {
    return Status::InvalidArgument("query_threads must be >= 0");
  }
  MIndexOptions resolved = options;
  // Runtime override for the batch-evaluation thread count; applies to
  // fresh indexes and snapshot loads alike (the snapshot deliberately
  // does not carry query_threads).
  if (const char* env = std::getenv("SIMCLOUD_QUERY_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 0 && value <= 1024) {
      resolved.query_threads = static_cast<int>(value);
    } else {
      SIMCLOUD_LOG(kWarn) << "ignoring invalid SIMCLOUD_QUERY_THREADS value '"
                          << env << "'";
    }
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      std::unique_ptr<BucketStorage> storage,
      MakeStorage(resolved.storage_kind, resolved.disk_path));
  if (resolved.cache_bytes > 0) {
    storage = std::make_unique<PayloadCache>(std::move(storage),
                                             resolved.cache_bytes);
  }
  return std::unique_ptr<MIndex>(new MIndex(resolved, std::move(storage)));
}

Result<Permutation> MIndex::RoutingPermutation(
    const std::vector<float>& pivot_distances,
    Permutation permutation) const {
  if (pivot_distances.empty() && permutation.empty()) {
    return Status::InvalidArgument(
        "routing needs pivot distances or a permutation");
  }
  if (!pivot_distances.empty() &&
      pivot_distances.size() != options_.num_pivots) {
    return Status::InvalidArgument("pivot distance vector has wrong length");
  }
  const size_t prefix_len = options_.stored_prefix_length == 0
                                ? options_.num_pivots
                                : options_.stored_prefix_length;
  if (permutation.empty()) {
    // Server-side derivation (sorting only; no distance computations,
    // paper Section 4.2).
    permutation = prefix_len == options_.num_pivots
                      ? DistancesToPermutation(pivot_distances)
                      : DistancesToPermutationPrefix(pivot_distances,
                                                     prefix_len);
  } else if (permutation.size() > prefix_len) {
    permutation.resize(prefix_len);
  }
  return permutation;
}

Status MIndex::Insert(metric::ObjectId id,
                      std::vector<float> pivot_distances,
                      Permutation permutation, const Bytes& payload) {
  SIMCLOUD_ASSIGN_OR_RETURN(
      permutation,
      RoutingPermutation(pivot_distances, std::move(permutation)));

  SIMCLOUD_ASSIGN_OR_RETURN(PayloadHandle handle, storage_->Store(payload));
  // Mid-pass relocation journal: a background pass must catch this
  // payload up into the log it is rewriting (we hold the writer lock, as
  // does anyone arming the bus's journal).
  bus_.JournalStore(handle);

  // The event needs the distances after they move into the entry below.
  std::vector<float> event_distances = pivot_distances;

  Entry entry;
  entry.id = id;
  entry.permutation = std::move(permutation);
  entry.pivot_distances = std::move(pivot_distances);
  entry.payload_handle = handle;
  entry.payload_size = static_cast<uint32_t>(payload.size());
  Status inserted = tree_.Insert(std::move(entry));
  if (!inserted.ok()) {
    // The payload was already appended to the log; mark it dead so the
    // accounting (and the compaction trigger) treats it as garbage
    // instead of leaking it as permanently live.
    Status freed = storage_->Free(handle);
    if (!freed.ok()) {
      SIMCLOUD_LOG(kWarn) << "cannot free payload of rejected insert: "
                          << freed.ToString();
    } else {
      bus_.JournalFree(handle);
    }
    return inserted;
  }
  // Publish only after the tree accepted the entry, still under the
  // caller's writer lock: the bus sequence therefore matches the order
  // mutations became visible to queries.
  bus_.Publish(MutationKind::kInsert, id, std::move(event_distances),
               payload);
  return Status::OK();
}

Status MIndex::Delete(metric::ObjectId id,
                      std::vector<float> pivot_distances,
                      Permutation permutation) {
  SIMCLOUD_ASSIGN_OR_RETURN(
      permutation,
      RoutingPermutation(pivot_distances, std::move(permutation)));
  SIMCLOUD_ASSIGN_OR_RETURN(Entry removed, tree_.Remove(id, permutation));
  SIMCLOUD_RETURN_NOT_OK(storage_->Free(removed.payload_handle));
  bus_.JournalFree(removed.payload_handle);
  bus_.Publish(MutationKind::kDelete, id, {}, {});
  MaybeCompact();
  return Status::OK();
}

Result<uint64_t> MIndex::DeleteBatch(const std::vector<Deletion>& deletions) {
  // Resolve and validate every deletion's routing before touching the
  // tree, so a malformed item rejects the batch without applying any of
  // it — the remaining per-item failure mode is NotFound, which skips.
  std::vector<Permutation> permutations;
  permutations.reserve(deletions.size());
  for (const Deletion& deletion : deletions) {
    SIMCLOUD_ASSIGN_OR_RETURN(
        Permutation permutation,
        RoutingPermutation(deletion.pivot_distances, deletion.permutation));
    if (!IsValidPermutation(permutation, options_.num_pivots)) {
      return Status::InvalidArgument(
          "delete batch carries an invalid routing permutation");
    }
    permutations.push_back(std::move(permutation));
  }

  // Remove every entry, collecting the dead handles, then free them in
  // one pass and evaluate the compaction trigger once — a delete-heavy
  // batch costs at most one compaction, not one per item.
  std::vector<PayloadHandle> freed;
  std::vector<metric::ObjectId> freed_ids;
  freed.reserve(deletions.size());
  freed_ids.reserve(deletions.size());
  auto free_collected = [&]() -> Status {
    for (size_t i = 0; i < freed.size(); ++i) {
      SIMCLOUD_RETURN_NOT_OK(storage_->Free(freed[i]));
      bus_.JournalFree(freed[i]);
      // Published per delete, in removal order — watchers see the batch
      // as its constituent deletes, each with its own sequence.
      bus_.Publish(MutationKind::kDelete, freed_ids[i], {}, {});
    }
    return Status::OK();
  };
  for (size_t i = 0; i < deletions.size(); ++i) {
    Result<Entry> removed = tree_.Remove(deletions[i].id, permutations[i]);
    if (!removed.ok()) {
      if (removed.status().code() == StatusCode::kNotFound) continue;
      // Unreachable after the up-front validation, but if the tree ever
      // grows a new failure mode the entries already removed must not
      // leak their storage handles.
      SIMCLOUD_RETURN_NOT_OK(free_collected());
      return removed.status();
    }
    freed.push_back(removed->payload_handle);
    freed_ids.push_back(deletions[i].id);
  }
  SIMCLOUD_RETURN_NOT_OK(free_collected());
  MaybeCompact();
  return static_cast<uint64_t>(freed.size());
}

void MIndex::MaybeCompact() {
  if (options_.compaction_trigger <= 0.0 || deferred_compaction_) return;
  if (bus_.journal_armed()) return;  // a pass is already running
  // We may be running under the caller's writer lock, so only TRY the
  // pass mutex: if another thread is mid-CompactBackground (it takes the
  // serial mutex first, then the index lock), waiting here would invert
  // the lock order and deadlock. That pass reclaims the garbage anyway.
  std::unique_lock<std::mutex> serialize(compaction_serial_,
                                         std::try_to_lock);
  if (!serialize.owns_lock()) return;
  // Best-effort: the deletes that got us here already succeeded, and a
  // failed pass leaves the old log fully intact — report the failure
  // without masking the mutation's own result (an explicit kCompact
  // surfaces the same error to the operator).
  Result<CompactionReport> report = RunCompactionPass(
      DefaultCompactorOptions(/*force=*/false), /*index_mutex=*/nullptr);
  if (!report.ok()) {
    SIMCLOUD_LOG(kWarn) << "automatic compaction failed: "
                        << report.status().ToString();
  }
}

CompactorOptions MIndex::DefaultCompactorOptions(bool force) const {
  CompactorOptions options;
  options.force = force;
  options.mode = options_.compaction_mode;
  options.garbage_threshold = options_.compaction_trigger;
  options.segment_dead_threshold = options_.segment_dead_threshold;
  options.max_pass_bytes = options_.compaction_max_pass_bytes;
  return options;
}

Result<CompactionReport> MIndex::Compact(CompactorOptions options) {
  return CompactBackground(std::move(options), /*index_mutex=*/nullptr);
}

namespace {

/// Scoped lock over an optional shared_mutex: no-ops when the caller
/// drives the pass without one (direct MIndex users hold exclusivity for
/// the whole call).
class MaybeLock {
 public:
  MaybeLock(std::shared_mutex* mutex, CompactionPass::StepLock kind)
      : mutex_(mutex), exclusive_(kind == CompactionPass::StepLock::kExclusive) {
    if (mutex_ == nullptr) return;
    if (exclusive_) {
      mutex_->lock();
    } else {
      mutex_->lock_shared();
    }
  }
  ~MaybeLock() {
    if (mutex_ == nullptr) return;
    if (exclusive_) {
      mutex_->unlock();
    } else {
      mutex_->unlock_shared();
    }
  }
  MaybeLock(const MaybeLock&) = delete;
  MaybeLock& operator=(const MaybeLock&) = delete;

 private:
  std::shared_mutex* mutex_;
  bool exclusive_;
};

}  // namespace

Result<CompactionReport> MIndex::CompactBackground(
    CompactorOptions options, std::shared_mutex* index_mutex) {
  // One pass at a time: kCompact requests and the server's background
  // trigger queue up here instead of interleaving half-passes.
  std::lock_guard<std::mutex> serialize(compaction_serial_);
  return RunCompactionPass(std::move(options), index_mutex);
}

Result<CompactionReport> MIndex::RunCompactionPass(
    CompactorOptions options, std::shared_mutex* index_mutex) {
  Stopwatch pass_watch;
  if (!options.force && options.garbage_threshold <= 0.0) {
    // An unforced pass with no explicit threshold is gated by the
    // configured trigger (which may itself be 0 = disabled).
    options.garbage_threshold = options_.compaction_trigger;
  }
  CompactionPass pass(&storage_, options_.disk_path, options_.cache_bytes,
                      options);
  uint64_t pause_nanos = 0;

  // BEGIN: decide + arm the journal, one short exclusive slice.
  {
    MaybeLock lock(index_mutex, CompactionPass::StepLock::kExclusive);
    Stopwatch held;
    Result<bool> begun = pass.Begin();
    pause_nanos += held.ElapsedNanos();
    if (!begun.ok()) return begun.status();
    if (!*begun) {
      CompactionReport report = pass.report();
      report.pause_nanos = pause_nanos;
      return report;
    }
    bus_.ArmJournal(&pass);
    compaction_active_.store(true, std::memory_order_relaxed);
    compaction_progress_.store(0, std::memory_order_relaxed);
  }

  // REWRITE: bounded steps; searches share the lock, mutators interleave
  // between steps (partial-mode append slices count toward the pause).
  Status status = Status::OK();
  for (;;) {
    bool more;
    const CompactionPass::StepLock kind = pass.NextStepLock();
    {
      MaybeLock lock(index_mutex, kind);
      Stopwatch held;
      Result<bool> stepped = pass.RewriteStep();
      if (kind == CompactionPass::StepLock::kExclusive) {
        pause_nanos += held.ElapsedNanos();
      }
      if (!stepped.ok()) {
        status = stepped.status();
        break;
      }
      more = *stepped;
      compaction_progress_.store(pass.report().payloads_moved,
                                 std::memory_order_relaxed);
    }
    if (options.between_steps) options.between_steps();
    if (!more) break;
    // Fairness on small machines: hand the core to a waiting handler
    // thread between steps rather than burning a whole scheduler quantum
    // on the rewrite while a query waits.
    if (index_mutex != nullptr) std::this_thread::yield();
  }
  // Fsync and rename the fresh log off every lock: the journal-commit
  // price of making the rewrite durable is paid here, concurrent with
  // traffic, leaving the writer-locked finish with pointer work only.
  if (status.ok()) status = pass.PrepareSwap();

  // FINISH (or abandon): the only other exclusive slice.
  {
    MaybeLock lock(index_mutex, CompactionPass::StepLock::kExclusive);
    Stopwatch held;
    if (status.ok()) status = pass.Finish(&tree_);
    if (!status.ok()) pass.Abandon();
    bus_.DisarmJournal();
    // The pass may have replaced the storage stack; re-point the query
    // engine (cheap — it holds raw pointers only).
    engine_ = QueryEngine(&tree_, storage_.get(), options_.promise_decay,
                          options_.query_threads);
    pause_nanos += held.ElapsedNanos();
    compaction_active_.store(false, std::memory_order_relaxed);
    compaction_progress_.store(0, std::memory_order_relaxed);
  }
  compaction_last_pause_nanos_.store(pause_nanos, std::memory_order_relaxed);
  uint64_t prev_max = compaction_max_pause_nanos_.load(std::memory_order_relaxed);
  while (prev_max < pause_nanos &&
         !compaction_max_pause_nanos_.compare_exchange_weak(
             prev_max, pause_nanos, std::memory_order_relaxed)) {
  }
  SIMCLOUD_RETURN_NOT_OK(status);
  compaction_passes_.fetch_add(1, std::memory_order_relaxed);
  CompactionReport report = pass.report();
  report.pause_nanos = pause_nanos;
  {
    // A skipped pass (nothing to compact) never reaches this point, so
    // the histograms describe real rewrites only.
    static obs::Histogram* const pause_histogram =
        obs::Registry::Default().GetHistogram(
            "simcloud_compaction_pause_nanos");
    static obs::Histogram* const pass_histogram =
        obs::Registry::Default().GetHistogram(
            "simcloud_compaction_pass_nanos");
    pause_histogram->Record(pause_nanos);
    pass_histogram->Record(static_cast<uint64_t>(pass_watch.ElapsedNanos()));
  }
  return report;
}

Status MIndex::ForEachEntry(
    const std::function<Status(const Entry&, const Bytes&)>& fn) const {
  return tree_.ForEachEntry([&](const Entry& entry) -> Status {
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload,
                              storage_->Fetch(entry.payload_handle));
    return fn(entry, payload);
  });
}

Result<CandidateList> MIndex::RangeSearchCandidates(
    const std::vector<float>& query_distances, double radius,
    SearchStats* stats) const {
  return engine_.RangeSearch(query_distances, radius, stats);
}

Result<RankedCandidates> MIndex::RangeSearchRankedCandidates(
    const std::vector<float>& query_distances, double radius,
    SearchStats* stats) const {
  return engine_.RangeSearchRanked(query_distances, radius, stats);
}

Result<CandidateList> MIndex::MaterializeRankedPage(
    const RankedCandidates& ranked, size_t* next, size_t page_size) const {
  return engine_.MaterializePage(ranked, next, page_size);
}

Result<CandidateList> MIndex::ApproxKnnCandidates(const QuerySignature& query,
                                                  size_t cand_size,
                                                  SearchStats* stats) const {
  return engine_.ApproxKnn(query, cand_size, stats);
}

Result<BatchCandidates> MIndex::RangeSearchBatchCandidates(
    const std::vector<RangeQuery>& queries,
    std::vector<SearchStats>* stats) const {
  return engine_.RangeSearchBatch(queries, stats);
}

Result<BatchCandidates> MIndex::ApproxKnnBatchCandidates(
    const std::vector<KnnQuery>& queries,
    std::vector<SearchStats>* stats) const {
  return engine_.ApproxKnnBatch(queries, stats);
}

IndexStats MIndex::Stats() const {
  IndexStats stats;
  tree_.FillStats(&stats);
  stats.storage_bytes = storage_->TotalBytes();
  const BucketStorage::CompactionStats compaction =
      storage_->GetCompactionStats();
  stats.live_storage_bytes = compaction.live_bytes;
  stats.dead_storage_bytes = compaction.dead_bytes;
  stats.compaction_passes =
      compaction_passes_.load(std::memory_order_relaxed);
  stats.compaction_active =
      compaction_active_.load(std::memory_order_relaxed) ? 1 : 0;
  stats.compaction_progress_payloads =
      compaction_progress_.load(std::memory_order_relaxed);
  stats.compaction_last_pause_nanos =
      compaction_last_pause_nanos_.load(std::memory_order_relaxed);
  stats.compaction_max_pause_nanos =
      compaction_max_pause_nanos_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mindex
}  // namespace simcloud
