#include "mindex/mindex.h"

#include <algorithm>

#include "mindex/payload_cache.h"

namespace simcloud {
namespace mindex {

Result<std::unique_ptr<MIndex>> MIndex::Create(const MIndexOptions& options) {
  if (options.num_pivots == 0) {
    return Status::InvalidArgument("num_pivots must be > 0");
  }
  if (options.bucket_capacity == 0) {
    return Status::InvalidArgument("bucket_capacity must be > 0");
  }
  if (options.max_level == 0) {
    return Status::InvalidArgument("max_level must be >= 1");
  }
  if (options.stored_prefix_length != 0 &&
      options.stored_prefix_length < options.max_level) {
    return Status::InvalidArgument(
        "stored_prefix_length must be 0 (full) or >= max_level");
  }
  if (options.promise_decay <= 0.0 || options.promise_decay > 1.0) {
    return Status::InvalidArgument("promise_decay must be in (0, 1]");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      std::unique_ptr<BucketStorage> storage,
      MakeStorage(options.storage_kind, options.disk_path));
  if (options.cache_bytes > 0) {
    storage = std::make_unique<PayloadCache>(std::move(storage),
                                             options.cache_bytes);
  }
  return std::unique_ptr<MIndex>(new MIndex(options, std::move(storage)));
}

Status MIndex::Insert(metric::ObjectId id,
                      std::vector<float> pivot_distances,
                      Permutation permutation, const Bytes& payload) {
  if (pivot_distances.empty() && permutation.empty()) {
    return Status::InvalidArgument(
        "insert needs pivot distances or a permutation");
  }
  if (!pivot_distances.empty() &&
      pivot_distances.size() != options_.num_pivots) {
    return Status::InvalidArgument("pivot distance vector has wrong length");
  }
  const size_t prefix_len = options_.stored_prefix_length == 0
                                ? options_.num_pivots
                                : options_.stored_prefix_length;
  if (permutation.empty()) {
    // Server-side derivation (sorting only; no distance computations,
    // paper Section 4.2).
    permutation = prefix_len == options_.num_pivots
                      ? DistancesToPermutation(pivot_distances)
                      : DistancesToPermutationPrefix(pivot_distances,
                                                     prefix_len);
  } else if (permutation.size() > prefix_len) {
    permutation.resize(prefix_len);
  }

  SIMCLOUD_ASSIGN_OR_RETURN(PayloadHandle handle, storage_->Store(payload));

  Entry entry;
  entry.id = id;
  entry.permutation = std::move(permutation);
  entry.pivot_distances = std::move(pivot_distances);
  entry.payload_handle = handle;
  entry.payload_size = static_cast<uint32_t>(payload.size());
  return tree_.Insert(std::move(entry));
}

Status MIndex::Delete(metric::ObjectId id,
                      std::vector<float> pivot_distances,
                      Permutation permutation) {
  if (pivot_distances.empty() && permutation.empty()) {
    return Status::InvalidArgument(
        "delete needs pivot distances or a permutation");
  }
  if (!pivot_distances.empty() &&
      pivot_distances.size() != options_.num_pivots) {
    return Status::InvalidArgument("pivot distance vector has wrong length");
  }
  const size_t prefix_len = options_.stored_prefix_length == 0
                                ? options_.num_pivots
                                : options_.stored_prefix_length;
  if (permutation.empty()) {
    permutation = prefix_len == options_.num_pivots
                      ? DistancesToPermutation(pivot_distances)
                      : DistancesToPermutationPrefix(pivot_distances,
                                                     prefix_len);
  } else if (permutation.size() > prefix_len) {
    permutation.resize(prefix_len);
  }
  return tree_.Remove(id, permutation).status();
}

Status MIndex::ForEachEntry(
    const std::function<Status(const Entry&, const Bytes&)>& fn) const {
  return tree_.ForEachEntry([&](const Entry& entry) -> Status {
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload,
                              storage_->Fetch(entry.payload_handle));
    return fn(entry, payload);
  });
}

Result<CandidateList> MIndex::RangeSearchCandidates(
    const std::vector<float>& query_distances, double radius,
    SearchStats* stats) const {
  return engine_.RangeSearch(query_distances, radius, stats);
}

Result<CandidateList> MIndex::ApproxKnnCandidates(const QuerySignature& query,
                                                  size_t cand_size,
                                                  SearchStats* stats) const {
  return engine_.ApproxKnn(query, cand_size, stats);
}

Result<BatchCandidates> MIndex::RangeSearchBatchCandidates(
    const std::vector<RangeQuery>& queries,
    std::vector<SearchStats>* stats) const {
  return engine_.RangeSearchBatch(queries, stats);
}

Result<BatchCandidates> MIndex::ApproxKnnBatchCandidates(
    const std::vector<KnnQuery>& queries,
    std::vector<SearchStats>* stats) const {
  return engine_.ApproxKnnBatch(queries, stats);
}

IndexStats MIndex::Stats() const {
  IndexStats stats;
  tree_.FillStats(&stats);
  stats.storage_bytes = storage_->TotalBytes();
  return stats;
}

}  // namespace mindex
}  // namespace simcloud
