#include "mindex/mindex.h"

#include <algorithm>

#include "common/log.h"
#include "mindex/payload_cache.h"

namespace simcloud {
namespace mindex {

Result<std::unique_ptr<MIndex>> MIndex::Create(const MIndexOptions& options) {
  if (options.num_pivots == 0) {
    return Status::InvalidArgument("num_pivots must be > 0");
  }
  if (options.bucket_capacity == 0) {
    return Status::InvalidArgument("bucket_capacity must be > 0");
  }
  if (options.max_level == 0) {
    return Status::InvalidArgument("max_level must be >= 1");
  }
  if (options.stored_prefix_length != 0 &&
      options.stored_prefix_length < options.max_level) {
    return Status::InvalidArgument(
        "stored_prefix_length must be 0 (full) or >= max_level");
  }
  if (options.promise_decay <= 0.0 || options.promise_decay > 1.0) {
    return Status::InvalidArgument("promise_decay must be in (0, 1]");
  }
  if (options.compaction_trigger < 0.0 || options.compaction_trigger > 1.0) {
    return Status::InvalidArgument(
        "compaction_trigger must be in [0, 1] (0 disables)");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      std::unique_ptr<BucketStorage> storage,
      MakeStorage(options.storage_kind, options.disk_path));
  if (options.cache_bytes > 0) {
    storage = std::make_unique<PayloadCache>(std::move(storage),
                                             options.cache_bytes);
  }
  return std::unique_ptr<MIndex>(new MIndex(options, std::move(storage)));
}

Result<Permutation> MIndex::RoutingPermutation(
    const std::vector<float>& pivot_distances,
    Permutation permutation) const {
  if (pivot_distances.empty() && permutation.empty()) {
    return Status::InvalidArgument(
        "routing needs pivot distances or a permutation");
  }
  if (!pivot_distances.empty() &&
      pivot_distances.size() != options_.num_pivots) {
    return Status::InvalidArgument("pivot distance vector has wrong length");
  }
  const size_t prefix_len = options_.stored_prefix_length == 0
                                ? options_.num_pivots
                                : options_.stored_prefix_length;
  if (permutation.empty()) {
    // Server-side derivation (sorting only; no distance computations,
    // paper Section 4.2).
    permutation = prefix_len == options_.num_pivots
                      ? DistancesToPermutation(pivot_distances)
                      : DistancesToPermutationPrefix(pivot_distances,
                                                     prefix_len);
  } else if (permutation.size() > prefix_len) {
    permutation.resize(prefix_len);
  }
  return permutation;
}

Status MIndex::Insert(metric::ObjectId id,
                      std::vector<float> pivot_distances,
                      Permutation permutation, const Bytes& payload) {
  SIMCLOUD_ASSIGN_OR_RETURN(
      permutation,
      RoutingPermutation(pivot_distances, std::move(permutation)));

  SIMCLOUD_ASSIGN_OR_RETURN(PayloadHandle handle, storage_->Store(payload));

  Entry entry;
  entry.id = id;
  entry.permutation = std::move(permutation);
  entry.pivot_distances = std::move(pivot_distances);
  entry.payload_handle = handle;
  entry.payload_size = static_cast<uint32_t>(payload.size());
  Status inserted = tree_.Insert(std::move(entry));
  if (!inserted.ok()) {
    // The payload was already appended to the log; mark it dead so the
    // accounting (and the compaction trigger) treats it as garbage
    // instead of leaking it as permanently live.
    Status freed = storage_->Free(handle);
    if (!freed.ok()) {
      SIMCLOUD_LOG(kWarn) << "cannot free payload of rejected insert: "
                          << freed.ToString();
    }
  }
  return inserted;
}

Status MIndex::Delete(metric::ObjectId id,
                      std::vector<float> pivot_distances,
                      Permutation permutation) {
  SIMCLOUD_ASSIGN_OR_RETURN(
      permutation,
      RoutingPermutation(pivot_distances, std::move(permutation)));
  SIMCLOUD_ASSIGN_OR_RETURN(Entry removed, tree_.Remove(id, permutation));
  SIMCLOUD_RETURN_NOT_OK(storage_->Free(removed.payload_handle));
  MaybeCompact();
  return Status::OK();
}

Result<uint64_t> MIndex::DeleteBatch(const std::vector<Deletion>& deletions) {
  // Resolve and validate every deletion's routing before touching the
  // tree, so a malformed item rejects the batch without applying any of
  // it — the remaining per-item failure mode is NotFound, which skips.
  std::vector<Permutation> permutations;
  permutations.reserve(deletions.size());
  for (const Deletion& deletion : deletions) {
    SIMCLOUD_ASSIGN_OR_RETURN(
        Permutation permutation,
        RoutingPermutation(deletion.pivot_distances, deletion.permutation));
    if (!IsValidPermutation(permutation, options_.num_pivots)) {
      return Status::InvalidArgument(
          "delete batch carries an invalid routing permutation");
    }
    permutations.push_back(std::move(permutation));
  }

  // Remove every entry, collecting the dead handles, then free them in
  // one pass and evaluate the compaction trigger once — a delete-heavy
  // batch costs at most one compaction, not one per item.
  std::vector<PayloadHandle> freed;
  freed.reserve(deletions.size());
  auto free_collected = [&]() -> Status {
    for (PayloadHandle handle : freed) {
      SIMCLOUD_RETURN_NOT_OK(storage_->Free(handle));
    }
    return Status::OK();
  };
  for (size_t i = 0; i < deletions.size(); ++i) {
    Result<Entry> removed = tree_.Remove(deletions[i].id, permutations[i]);
    if (!removed.ok()) {
      if (removed.status().code() == StatusCode::kNotFound) continue;
      // Unreachable after the up-front validation, but if the tree ever
      // grows a new failure mode the entries already removed must not
      // leak their storage handles.
      SIMCLOUD_RETURN_NOT_OK(free_collected());
      return removed.status();
    }
    freed.push_back(removed->payload_handle);
  }
  SIMCLOUD_RETURN_NOT_OK(free_collected());
  MaybeCompact();
  return static_cast<uint64_t>(freed.size());
}

void MIndex::MaybeCompact() {
  if (options_.compaction_trigger <= 0.0) return;
  CompactionOptions options;
  options.force = false;  // Compact gates on compaction_trigger
  // Best-effort: the deletes that got us here already succeeded, and a
  // failed pass leaves the old log fully intact — report the failure
  // without masking the mutation's own result (an explicit kCompact
  // surfaces the same error to the operator).
  Result<CompactionReport> report = Compact(options);
  if (!report.ok()) {
    SIMCLOUD_LOG(kWarn) << "automatic compaction failed: "
                        << report.status().ToString();
  }
}

Result<CompactionReport> MIndex::Compact(CompactionOptions options) {
  if (!options.force && options.garbage_threshold <= 0.0) {
    // An unforced pass with no explicit threshold is gated by the
    // configured trigger (which may itself be 0 = disabled).
    options.garbage_threshold = options_.compaction_trigger;
  }
  Result<CompactionReport> report = CompactIndexStorage(
      &tree_, &storage_, options_.disk_path, options_.cache_bytes, options);
  // The compactor may have replaced the storage stack; re-point the query
  // engine (cheap — it holds raw pointers only).
  engine_ = QueryEngine(&tree_, storage_.get(), options_.promise_decay);
  return report;
}

Status MIndex::ForEachEntry(
    const std::function<Status(const Entry&, const Bytes&)>& fn) const {
  return tree_.ForEachEntry([&](const Entry& entry) -> Status {
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload,
                              storage_->Fetch(entry.payload_handle));
    return fn(entry, payload);
  });
}

Result<CandidateList> MIndex::RangeSearchCandidates(
    const std::vector<float>& query_distances, double radius,
    SearchStats* stats) const {
  return engine_.RangeSearch(query_distances, radius, stats);
}

Result<CandidateList> MIndex::ApproxKnnCandidates(const QuerySignature& query,
                                                  size_t cand_size,
                                                  SearchStats* stats) const {
  return engine_.ApproxKnn(query, cand_size, stats);
}

Result<BatchCandidates> MIndex::RangeSearchBatchCandidates(
    const std::vector<RangeQuery>& queries,
    std::vector<SearchStats>* stats) const {
  return engine_.RangeSearchBatch(queries, stats);
}

Result<BatchCandidates> MIndex::ApproxKnnBatchCandidates(
    const std::vector<KnnQuery>& queries,
    std::vector<SearchStats>* stats) const {
  return engine_.ApproxKnnBatch(queries, stats);
}

IndexStats MIndex::Stats() const {
  IndexStats stats;
  tree_.FillStats(&stats);
  stats.storage_bytes = storage_->TotalBytes();
  const BucketStorage::CompactionStats compaction =
      storage_->GetCompactionStats();
  stats.live_storage_bytes = compaction.live_bytes;
  stats.dead_storage_bytes = compaction.dead_bytes;
  return stats;
}

}  // namespace mindex
}  // namespace simcloud
