// Query engine of the M-Index: the shared scoring / pruning / payload
// materialization pipeline behind every search, single or batched.
//
// The engine factors what RangeSearchCandidates and ApproxKnnCandidates
// used to duplicate inside MIndex: collect scored entries from the cell
// tree, pre-rank them (ascending score, Algorithm 4 line 5), trim to the
// requested size, and materialize payload bytes. Materialization is where
// the batching pays off — every search gathers all payload handles first
// and issues ONE BucketStorage::FetchMany call, so the disk backend can
// sort and coalesce the reads and the payload cache splits the batch into
// hits and one backend round.
//
// Batch evaluation goes further:
//  * identical queries inside a batch (repeated hot queries — the
//    dominant pattern under heavy traffic) are detected by signature
//    equality and evaluated ONCE, then replicated by reference;
//  * RangeSearchBatch pushes all distinct queries through one tree
//    traversal (CellTree::CollectRangeBatch) — shared nodes are visited
//    once;
//  * payload handles are deduplicated across the whole batch before one
//    FetchMany call, and results are returned as a BatchCandidates
//    dictionary: each distinct payload is fetched and stored once no
//    matter how many queries' candidate sets contain it.
//
// Per-query results and stats are bit-identical to issuing the same
// queries one at a time — the batch paths change the I/O and memory
// schedule, never the answer.

#ifndef SIMCLOUD_MINDEX_QUERY_ENGINE_H_
#define SIMCLOUD_MINDEX_QUERY_ENGINE_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "mindex/cell_tree.h"
#include "mindex/entry.h"
#include "mindex/storage.h"

namespace simcloud {
namespace mindex {

/// Stateless search executor over a cell tree and a payload store. The
/// referenced tree and storage must outlive the engine; concurrent const
/// calls are safe (the tree is read-only and storage fetches are
/// concurrent by contract).
///
/// `query_threads` > 1 fans the batch paths' distinct-query evaluation
/// across that many workers (caller included): ApproxKnnBatch claims
/// whole queries, RangeSearchBatch splits the distinct set into per-
/// worker chunks each evaluated by one shared traversal. The fan-out is
/// pure schedule — per-query results and stats stay byte-identical to
/// the serial path, which 0/1 selects.
class QueryEngine {
 public:
  QueryEngine(const CellTree* tree, const BucketStorage* storage,
              double promise_decay, int query_threads = 0)
      : tree_(tree), storage_(storage), promise_decay_(promise_decay),
        query_threads_(query_threads) {}

  /// Precise range query R(q, r) (Algorithm 3): cell pruning + pivot
  /// filtering, candidates sorted by filtering lower bound.
  Result<CandidateList> RangeSearch(const std::vector<float>& query_distances,
                                    double radius, SearchStats* stats) const;

  /// Pageable range evaluation (server-side cursors): the same collect +
  /// rank pass as RangeSearch, but instead of materializing payloads it
  /// returns the ranked (id, score, payload handle) tuples — ~24 bytes per
  /// candidate, no payload bytes. MaterializePage then fetches one page at
  /// a time, so a cursor holds O(total) metadata but only O(page) payload
  /// memory. `stats->candidates` is the full ranked count, exactly what
  /// the one-shot path reports.
  Result<RankedCandidates> RangeSearchRanked(
      const std::vector<float>& query_distances, double radius,
      SearchStats* stats) const;

  /// Materializes the next page of a ranked snapshot: scans from `*next`,
  /// skipping candidates whose payload handle has died since the snapshot
  /// (deleted mid-cursor — the append-only log never reuses a handle, so
  /// dead is deterministic), gathers up to `page_size` live candidates,
  /// fetches their payloads in ONE FetchMany, and advances `*next` past
  /// everything scanned. An empty page therefore means the snapshot is
  /// exhausted (`*next == ranked.size()`). Pages concatenate to exactly
  /// what Materialize over the same (live) snapshot returns.
  Result<CandidateList> MaterializePage(const RankedCandidates& ranked,
                                        size_t* next, size_t page_size) const;

  /// Pre-ranked candidate set of size <= cand_size for approximate k-NN
  /// (Algorithm 4).
  Result<CandidateList> ApproxKnn(const QuerySignature& query,
                                  size_t cand_size, SearchStats* stats) const;

  /// Evaluates a batch of range queries: duplicate queries memoized, the
  /// distinct ones evaluated in one tree traversal, payloads fetched in
  /// one call and deduplicated into the result dictionary.
  /// `result.per_query[i]` / `(*stats)[i]` answer `queries[i]`; `stats`
  /// may be null, otherwise it is resized.
  Result<BatchCandidates> RangeSearchBatch(
      const std::vector<RangeQuery>& queries,
      std::vector<SearchStats>* stats) const;

  /// Evaluates a batch of approximate k-NN queries the same way.
  Result<BatchCandidates> ApproxKnnBatch(
      const std::vector<KnnQuery>& queries,
      std::vector<SearchStats>* stats) const;

 private:
  using ScoredEntries = std::vector<std::pair<double, const Entry*>>;

  /// Pre-ranks ascending by score (stable) and trims to `limit`.
  static void RankAndTrim(ScoredEntries* scored, size_t limit);

  /// Fetches payloads for one ranked candidate set in a single FetchMany.
  Result<CandidateList> Materialize(ScoredEntries scored, size_t limit,
                                    SearchStats* stats) const;

  /// Builds the batch dictionary: ranks each distinct query's candidates,
  /// fetches the deduplicated handle set in one FetchMany, then expands
  /// to one ref list per original query via `rep` (original -> index into
  /// `scored`). `unique_stats` are replicated into `stats` the same way.
  Result<BatchCandidates> MaterializeBatch(
      std::vector<ScoredEntries> scored, const std::vector<size_t>& limits,
      const std::vector<size_t>& rep,
      const std::vector<SearchStats>& unique_stats,
      std::vector<SearchStats>* stats) const;

  const CellTree* tree_;
  const BucketStorage* storage_;
  double promise_decay_;
  int query_threads_;
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_QUERY_ENGINE_H_
