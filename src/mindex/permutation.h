// Pivot permutations — the ordering of pivots by distance from an object.
//
// For an object o and pivots p_1..p_n, the pivot permutation (1)_o..(n)_o
// orders pivot indexes so that d(p_(i)_o, o) is non-decreasing, ties broken
// by pivot index (paper Section 4.1). The M-Index routes objects by
// *prefixes* of this permutation; the Encrypted M-Index ships only the
// permutation (or the distances) to the untrusted server.

#ifndef SIMCLOUD_MINDEX_PERMUTATION_H_
#define SIMCLOUD_MINDEX_PERMUTATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simcloud {
namespace mindex {

/// Pivot indexes ordered by ascending distance (ties by index).
using Permutation = std::vector<uint32_t>;

/// Computes the pivot permutation from object-pivot distances.
/// distances[i] is d(p_i, o); returns the full permutation of 0..n-1.
Permutation DistancesToPermutation(const std::vector<float>& distances);

/// Computes only the first `prefix_len` elements of the permutation
/// (partial sort; cheaper when only routing depth is needed).
Permutation DistancesToPermutationPrefix(const std::vector<float>& distances,
                                         size_t prefix_len);

/// Inverse permutation: ranks[pivot_index] = position of that pivot in the
/// permutation. Unlisted pivots (when `perm` is a prefix) get rank
/// `num_pivots` (worse than any listed pivot).
std::vector<uint32_t> PermutationRanks(const Permutation& perm,
                                       size_t num_pivots);

/// Spearman Footrule distance between two permutations restricted to the
/// first `prefix_len` elements of `a`:
///   sum over the prefix of |rank_b(pivot) - rank_a(pivot)|.
/// Used to pre-rank candidates when only permutations are known.
double PrefixFootrule(const Permutation& a, const Permutation& b,
                      size_t prefix_len, size_t num_pivots);

/// True iff `perm` is a valid (partial) permutation of 0..num_pivots-1:
/// all elements distinct and in range.
bool IsValidPermutation(const Permutation& perm, size_t num_pivots);

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_PERMUTATION_H_
