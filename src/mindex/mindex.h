// M-Index: dynamic, disk-efficient metric index based on pivot
// permutations (Novak & Batko; paper Section 4.1).
//
// This class is the *server-side* index core. It is deliberately
// payload-agnostic: it routes and prunes using only pivot permutations and
// object-pivot distances supplied at insert time, never touching payload
// bytes. That property is exactly what makes the Encrypted M-Index
// possible — the same code serves both the plain index (payload =
// serialized object) and the encrypted one (payload = AES ciphertext,
// pivots secret).
//
// Query surface:
//  * RangeSearchCandidates  — precise candidates for R(q, r) after cell
//    pruning + pivot filtering; the caller refines with true distances.
//  * ApproxKnnCandidates    — pre-ranked candidate set of a requested size
//    from the most promising Voronoi cells.

#ifndef SIMCLOUD_MINDEX_MINDEX_H_
#define SIMCLOUD_MINDEX_MINDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "mindex/cell_tree.h"
#include "mindex/compactor.h"
#include "mindex/entry.h"
#include "mindex/mutation_bus.h"
#include "mindex/query_engine.h"
#include "mindex/storage.h"

namespace simcloud {
namespace mindex {

/// Tunables of an M-Index instance (paper Table 2 lists the per-data-set
/// values used in the evaluation).
struct MIndexOptions {
  /// Number of pivots the clients use; inserts/queries must match.
  size_t num_pivots = 30;
  /// Leaf capacity before a split is attempted.
  size_t bucket_capacity = 200;
  /// Maximum permutation-prefix depth of the dynamic cell tree.
  size_t max_level = 8;
  /// Payload backend ("Storage type" in Table 2).
  StorageKind storage_kind = StorageKind::kMemory;
  /// Backing file for disk storage.
  std::string disk_path;
  /// Length of the permutation prefix stored per entry; 0 = full
  /// permutation. Must be >= max_level when non-zero.
  size_t stored_prefix_length = 0;
  /// Decay of per-level promise weights for approximate search.
  double promise_decay = 0.5;
  /// Payload-cache budget in bytes; 0 disables the cache. When non-zero
  /// the storage backend is wrapped in a sharded LRU PayloadCache so hot
  /// ciphertexts are served from memory (most valuable with disk storage).
  uint64_t cache_bytes = 0;
  /// Garbage ratio (dead / total payload-log bytes, in [0, 1]) past which
  /// a delete triggers an automatic compaction pass. 0 disables automatic
  /// compaction — the log then grows until an explicit Compact() (the
  /// kCompact admin opcode) or a Save/Load round trip. See compactor.h.
  /// Direct MIndex users compact synchronously inside the triggering
  /// delete; EncryptedMIndexServer moves the trigger to its background
  /// compaction thread so the delete returns immediately.
  double compaction_trigger = 0.0;
  /// Default pass shape for triggered/unforced compaction: full rewrite,
  /// or partial (relocate only the deadest segments; disk storage only,
  /// memory falls back to full). See compactor.h.
  CompactionMode compaction_mode = CompactionMode::kFull;
  /// Partial passes: a sealed 64 KiB log segment becomes a relocation
  /// target once this fraction of its bytes is dead. In (0, 1].
  double segment_dead_threshold = 0.5;
  /// Partial passes: cap on live bytes relocated per pass (0 = every
  /// eligible segment).
  uint64_t compaction_max_pass_bytes = 0;
  /// Worker threads for batch query evaluation (RangeSearchBatch /
  /// ApproxKnnBatch fan distinct-signature queries across this many
  /// threads, caller included). 0 or 1 keeps the serial path; results
  /// are byte-identical either way. SIMCLOUD_QUERY_THREADS overrides at
  /// Create time. A runtime tuning knob, deliberately NOT persisted in
  /// snapshots — a snapshot moved to a different machine should not
  /// carry the old machine's thread count.
  int query_threads = 0;
  /// Capacity (in events) of the mutation bus's replay ring — the window
  /// a disconnected watcher can resume across without a `watch lost`
  /// error. Like query_threads this is a runtime serving knob, not index
  /// structure, and is NOT persisted in snapshots.
  size_t watch_ring_capacity = 4096;
};

/// The M-Index proper.
class MIndex {
 public:
  /// Validates options and creates an empty index.
  static Result<std::unique_ptr<MIndex>> Create(const MIndexOptions& options);

  /// Inserts one object. Exactly the information of the paper's encrypted
  /// object `e` is accepted: `pivot_distances` (precise strategy),
  /// and/or `permutation`; if the permutation is empty it is derived from
  /// the distances server-side. `payload` is opaque.
  Status Insert(metric::ObjectId id, std::vector<float> pivot_distances,
                Permutation permutation, const Bytes& payload);

  /// Deletes one object, routed by the same information the insert used:
  /// `pivot_distances` and/or `permutation` (derived server-side when the
  /// permutation is empty). NotFound if the object is not indexed. The
  /// payload bytes are marked dead in the append-only storage and
  /// reclaimed by compaction — automatically once the garbage ratio
  /// passes `compaction_trigger`, or explicitly via Compact().
  Status Delete(metric::ObjectId id, std::vector<float> pivot_distances,
                Permutation permutation);

  /// Deletes a batch of objects: every entry is removed and its handle
  /// freed in one pass, and the compaction trigger is evaluated once at
  /// the end instead of per delete. Deletions whose object is not indexed
  /// are skipped; returns the number actually deleted.
  Result<uint64_t> DeleteBatch(const std::vector<Deletion>& deletions);

  /// Runs one compaction pass over the payload log (see compactor.h).
  /// When `options.force` is false the pass runs only past the configured
  /// threshold (`options.garbage_threshold`, defaulting to
  /// `MIndexOptions::compaction_trigger`). Callers must serialize Compact
  /// with other mutations, exactly as for Insert/Delete — this overload
  /// takes no locks itself (it is CompactBackground with a null mutex).
  Result<CompactionReport> Compact(CompactorOptions options = {.force =
                                                                   true});

  /// Runs one compaction pass CONCURRENTLY with searches: the rewrite
  /// phase repeatedly takes `index_mutex` shared (so queries interleave
  /// freely and mutators get in between steps, their effects tracked by
  /// the pass's relocation journal), and only the bounded begin and
  /// swap+remap slices take it exclusively — the writer pause the report
  /// and IndexStats expose in nanoseconds. Concurrent calls serialize on
  /// an internal mutex. With `index_mutex == nullptr` no locks are taken
  /// and the caller must hold exclusivity for the whole call.
  ///
  /// The caller must NOT hold `index_mutex` in any mode when calling.
  Result<CompactionReport> CompactBackground(CompactorOptions options,
                                             std::shared_mutex* index_mutex);

  /// Compactor policy derived from MIndexOptions (mode, per-segment
  /// threshold, pass budget) — what triggered and kCompact passes use.
  CompactorOptions DefaultCompactorOptions(bool force) const;

  /// When deferred, crossing `compaction_trigger` no longer compacts
  /// inline inside the triggering delete — whoever owns the index (the
  /// server's background compaction thread) watches the ratio and drives
  /// CompactBackground itself. The configured trigger stays in options()
  /// (and therefore in persistence snapshots); only the inline behaviour
  /// is suppressed.
  void SetDeferredCompaction(bool deferred) { deferred_compaction_ = deferred; }

  /// Live/dead accounting of the payload log.
  BucketStorage::CompactionStats StorageStats() const {
    return storage_->GetCompactionStats();
  }

  /// Dead / total log bytes, O(1) — what per-mutation trigger checks
  /// read (StorageStats walks DiskStorage's whole segment table).
  double GarbageRatio() const {
    const uint64_t total = storage_->TotalBytes();
    return total == 0 ? 0.0
                      : static_cast<double>(storage_->DeadBytes()) /
                            static_cast<double>(total);
  }

  /// The payload storage stack (white-box tests: cache warmth etc.). The
  /// reference is invalidated by Compact().
  const BucketStorage& storage() const { return *storage_; }

  /// Candidate set for precise range query R(q, r) (Algorithm 3). Returns
  /// candidates sorted by their pivot-filtering lower bound.
  Result<CandidateList> RangeSearchCandidates(
      const std::vector<float>& query_distances, double radius,
      SearchStats* stats = nullptr) const;

  /// Pageable range evaluation (server-side cursors): the same collect +
  /// rank pass as RangeSearchCandidates, but returning payload HANDLES
  /// instead of payload bytes — the snapshot a cursor pins at open.
  Result<RankedCandidates> RangeSearchRankedCandidates(
      const std::vector<float>& query_distances, double radius,
      SearchStats* stats = nullptr) const;

  /// Materializes the next page of a ranked snapshot (see
  /// QueryEngine::MaterializePage): up to `page_size` still-live
  /// candidates starting at `*next`, one FetchMany, `*next` advanced.
  Result<CandidateList> MaterializeRankedPage(const RankedCandidates& ranked,
                                              size_t* next,
                                              size_t page_size) const;

  /// Completed compaction passes so far. A pass remaps payload handles,
  /// so a cursor records this at open and invalidates itself when it
  /// changes (a snapshotted handle may now point at relocated bytes).
  uint64_t compaction_passes() const {
    return compaction_passes_.load(std::memory_order_relaxed);
  }

  /// Pre-ranked candidate set of size <= cand_size for approximate k-NN
  /// (Algorithm 4).
  Result<CandidateList> ApproxKnnCandidates(const QuerySignature& query,
                                            size_t cand_size,
                                            SearchStats* stats = nullptr) const;

  /// Batched range search: duplicate queries memoized, distinct queries
  /// evaluated in one tree traversal, payloads fetched once and
  /// deduplicated into the result dictionary. `result.per_query[i]` /
  /// `(*stats)[i]` answer `queries[i]` and materialize to exactly what
  /// RangeSearchCandidates would return.
  Result<BatchCandidates> RangeSearchBatchCandidates(
      const std::vector<RangeQuery>& queries,
      std::vector<SearchStats>* stats = nullptr) const;

  /// Batched approximate k-NN: one payload materialization pass for the
  /// whole batch, per-query results identical to ApproxKnnCandidates.
  Result<BatchCandidates> ApproxKnnBatchCandidates(
      const std::vector<KnnQuery>& queries,
      std::vector<SearchStats>* stats = nullptr) const;

  /// Number of indexed objects.
  size_t size() const { return tree_.size(); }
  const MIndexOptions& options() const { return options_; }

  /// Structural statistics (leaf/inner counts, depth, payload bytes).
  IndexStats Stats() const;

  /// Visits every indexed entry together with its payload bytes, in
  /// deterministic order (persistence and compaction support).
  Status ForEachEntry(
      const std::function<Status(const Entry&, const Bytes&)>& fn) const;

  /// Verifies internal tree invariants (test support).
  Status CheckInvariants() const { return tree_.CheckInvariants(); }

  /// The mutation event bus: every successful Insert/Delete publishes an
  /// event here in writer-lock order (see mutation_bus.h). Watch
  /// subscriptions replay/follow it; the compactor's relocation journal
  /// rides the same bus internally. Valid for the life of the index.
  MutationBus* mutation_bus() { return &bus_; }
  const MutationBus* mutation_bus() const { return &bus_; }

 private:
  MIndex(const MIndexOptions& options,
         std::unique_ptr<BucketStorage> storage)
      : options_(options), storage_(std::move(storage)),
        tree_(options.num_pivots, options.bucket_capacity,
              options.max_level),
        engine_(&tree_, storage_.get(), options.promise_decay,
                options.query_threads),
        bus_(options.watch_ring_capacity) {}

  /// Validates the routing arguments shared by Insert and Delete and
  /// resolves them to the stored-prefix permutation (derived from the
  /// distances when the permutation is empty).
  Result<Permutation> RoutingPermutation(
      const std::vector<float>& pivot_distances,
      Permutation permutation) const;

  /// Runs a compaction pass if the garbage ratio passed
  /// `compaction_trigger` (no-op when the trigger is disabled).
  /// Best-effort: a failed pass is logged, never propagated — it must not
  /// mask the result of the delete that triggered it.
  void MaybeCompact();

  MIndexOptions options_;
  std::unique_ptr<BucketStorage> storage_;
  CellTree tree_;
  QueryEngine engine_;

  /// Runs one armed pass; `compaction_serial_` must be held (see
  /// CompactBackground / the try-lock path in MaybeCompact).
  Result<CompactionReport> RunCompactionPass(CompactorOptions options,
                                             std::shared_mutex* index_mutex);

  /// Serializes whole compaction passes (kCompact racing the background
  /// trigger). MaybeCompact — which runs under the caller's writer lock —
  /// only ever try-locks it, so the lock order serial -> index lock has
  /// no inverse and cannot deadlock.
  std::mutex compaction_serial_;
  /// See SetDeferredCompaction.
  bool deferred_compaction_ = false;
  /// Mutation ordering source of truth: Insert/Delete publish watch
  /// events AND feed the armed pass's relocation journal through the bus
  /// (the journal side is guarded by the index writer lock, exactly like
  /// the bare active_pass_ pointer it replaced).
  MutationBus bus_;
  /// Telemetry mirrored into IndexStats. Atomic because the rewrite
  /// updates progress under the SHARED lock, concurrently with Stats().
  std::atomic<uint64_t> compaction_passes_{0};
  std::atomic<bool> compaction_active_{false};
  std::atomic<uint64_t> compaction_progress_{0};
  std::atomic<uint64_t> compaction_last_pause_nanos_{0};
  std::atomic<uint64_t> compaction_max_pause_nanos_{0};
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_MINDEX_H_
