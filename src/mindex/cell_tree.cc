#include "mindex/cell_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

namespace simcloud {
namespace mindex {

CellTree::CellTree(size_t num_pivots, size_t bucket_capacity,
                   size_t max_level)
    : num_pivots_(num_pivots),
      bucket_capacity_(bucket_capacity),
      max_level_(std::min(max_level, num_pivots)),
      root_(std::make_unique<Node>()) {}

void CellTree::UpdateDistBounds(Node* node, float dist) {
  if (!node->has_dist_bounds) {
    node->min_pivot_dist = dist;
    node->max_pivot_dist = dist;
    node->has_dist_bounds = true;
  } else {
    node->min_pivot_dist = std::min(node->min_pivot_dist, dist);
    node->max_pivot_dist = std::max(node->max_pivot_dist, dist);
  }
}

Status CellTree::Insert(Entry entry) {
  if (entry.permutation.size() < max_level_) {
    return Status::InvalidArgument(
        "entry permutation prefix shorter than tree max level");
  }
  if (!IsValidPermutation(entry.permutation, num_pivots_)) {
    return Status::InvalidArgument("entry permutation is not valid");
  }
  if (!entry.pivot_distances.empty() &&
      entry.pivot_distances.size() != num_pivots_) {
    return Status::InvalidArgument(
        "entry pivot distance vector has wrong length");
  }

  Node* node = root_.get();
  size_t depth = 0;
  node->subtree_size++;
  while (!node->is_leaf) {
    const uint32_t pivot = entry.permutation[depth];
    auto& child = node->children[pivot];
    if (child == nullptr) child = std::make_unique<Node>();
    node = child.get();
    ++depth;
    node->subtree_size++;
    if (!entry.pivot_distances.empty()) {
      UpdateDistBounds(node, entry.pivot_distances[pivot]);
    }
  }
  node->entries.push_back(std::move(entry));
  ++size_;

  if (node->entries.size() > bucket_capacity_ && depth < max_level_) {
    SplitLeaf(node, depth);
  }
  return Status::OK();
}

Result<Entry> CellTree::Remove(metric::ObjectId id,
                               const Permutation& permutation) {
  if (!IsValidPermutation(permutation, num_pivots_)) {
    return Status::InvalidArgument("removal permutation is not valid");
  }
  // Locate the leaf along the permutation prefix, remembering the path so
  // subtree sizes can be fixed up only after the entry is actually found.
  std::vector<Node*> path;
  Node* node = root_.get();
  size_t depth = 0;
  path.push_back(node);
  while (!node->is_leaf) {
    if (depth >= permutation.size()) {
      return Status::NotFound("permutation prefix exhausted during routing");
    }
    auto it = node->children.find(permutation[depth]);
    if (it == node->children.end()) {
      return Status::NotFound("no cell under the given permutation prefix");
    }
    node = it->second.get();
    path.push_back(node);
    ++depth;
  }

  auto entry_it =
      std::find_if(node->entries.begin(), node->entries.end(),
                   [id](const Entry& e) { return e.id == id; });
  if (entry_it == node->entries.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " not present in its cell");
  }
  Entry removed = std::move(*entry_it);
  node->entries.erase(entry_it);
  // Subtree distance bounds are left as-is: after a removal they may be
  // wider than necessary, which only weakens pruning — never correctness.
  for (Node* visited : path) visited->subtree_size--;
  --size_;
  return removed;
}

Status CellTree::ForEachEntry(
    const std::function<Status(const Entry&)>& fn) const {
  // One traversal definition for both walks: persistence (const) and the
  // compactor's handle remap (mutable) must visit in the same order, so
  // the const walk wraps the mutable one instead of duplicating it. The
  // cast is sound — the callback only reads.
  return const_cast<CellTree*>(this)->ForEachEntryMutable(
      [&fn](Entry& entry) { return fn(entry); });
}

Status CellTree::ForEachEntryMutable(
    const std::function<Status(Entry&)>& fn) {
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      for (Entry& entry : node->entries) {
        SIMCLOUD_RETURN_NOT_OK(fn(entry));
      }
    } else {
      // Reverse order so the (ordered) children pop in ascending pivot
      // order — deterministic walks make persistence byte-stable.
      for (auto it = node->children.rbegin(); it != node->children.rend();
           ++it) {
        stack.push_back(it->second.get());
      }
    }
  }
  return Status::OK();
}

void CellTree::SplitLeaf(Node* node, size_t depth) {
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();
  node->is_leaf = false;

  for (auto& entry : entries) {
    const uint32_t pivot = entry.permutation[depth];
    auto& child = node->children[pivot];
    if (child == nullptr) child = std::make_unique<Node>();
    child->subtree_size++;
    if (!entry.pivot_distances.empty()) {
      UpdateDistBounds(child.get(), entry.pivot_distances[pivot]);
    }
    child->entries.push_back(std::move(entry));
  }

  // A child can inherit more than `bucket_capacity_` entries when the
  // parent's population shares a long permutation prefix; split further
  // while depth allows.
  if (depth + 1 < max_level_) {
    for (auto& [pivot, child] : node->children) {
      if (child->entries.size() > bucket_capacity_) {
        SplitLeaf(child.get(), depth + 1);
      }
    }
  }
}

double CellTree::MinAllowedDistance(
    const std::vector<float>& query_distances,
    const Permutation& query_perm_by_dist,
    const std::vector<uint32_t>& used_chain) {
  for (uint32_t pivot : query_perm_by_dist) {
    if (std::find(used_chain.begin(), used_chain.end(), pivot) ==
        used_chain.end()) {
      return query_distances[pivot];
    }
  }
  return std::numeric_limits<double>::infinity();
}

Status CellTree::CollectRange(
    const std::vector<float>& query_distances, double radius,
    std::vector<std::pair<double, const Entry*>>* out,
    SearchStats* stats) const {
  if (query_distances.size() != num_pivots_) {
    return Status::InvalidArgument(
        "range query requires distances to all pivots");
  }
  if (radius < 0) {
    return Status::InvalidArgument("range query radius must be >= 0");
  }
  const Permutation query_perm = DistancesToPermutation(query_distances);
  std::vector<uint32_t> chain;
  chain.reserve(max_level_);
  CollectRangeRecursive(*root_, 0, query_distances, query_perm, radius, chain,
                        out, stats);
  return Status::OK();
}

void CellTree::CollectRangeRecursive(
    const Node& node, size_t depth, const std::vector<float>& query_distances,
    const Permutation& query_perm_by_dist, double radius,
    std::vector<uint32_t>& chain,
    std::vector<std::pair<double, const Entry*>>* out,
    SearchStats* stats) const {
  if (node.is_leaf) {
    if (stats != nullptr) stats->cells_visited++;
    for (const Entry& entry : node.entries) {
      if (stats != nullptr) stats->entries_scanned++;
      double lower_bound = 0.0;
      if (!entry.pivot_distances.empty()) {
        // Pivot filtering (Alg. 3 lines 5-7): max_i |d(q,p_i) - d(o,p_i)|
        // lower-bounds d(q,o) by the triangle inequality.
        for (size_t i = 0; i < num_pivots_; ++i) {
          const double diff = std::fabs(
              static_cast<double>(query_distances[i]) -
              static_cast<double>(entry.pivot_distances[i]));
          if (diff > lower_bound) lower_bound = diff;
        }
        if (lower_bound > radius) {
          if (stats != nullptr) stats->entries_filtered++;
          continue;
        }
      }
      out->emplace_back(lower_bound, &entry);
      if (stats != nullptr) stats->candidates++;
    }
    return;
  }

  // Double-pivot constraint: a child keyed by pivot j only holds objects o
  // with d(p_j, o) <= d(p_m, o) for every pivot m unused at this level, so
  // d(q, p_j) > min_m d(q, p_m) + 2r implies the whole subtree is out of
  // range.
  const double min_allowed =
      MinAllowedDistance(query_distances, query_perm_by_dist, chain);

  for (const auto& [pivot, child] : node.children) {
    const double query_to_pivot = query_distances[pivot];
    if (query_to_pivot > min_allowed + 2.0 * radius) {
      if (stats != nullptr) stats->cells_pruned++;
      continue;
    }
    // Range-pivot constraint using the subtree's distance bounds.
    if (child->has_dist_bounds &&
        (query_to_pivot - radius > child->max_pivot_dist ||
         query_to_pivot + radius < child->min_pivot_dist)) {
      if (stats != nullptr) stats->cells_pruned++;
      continue;
    }
    chain.push_back(pivot);
    CollectRangeRecursive(*child, depth + 1, query_distances,
                          query_perm_by_dist, radius, chain, out, stats);
    chain.pop_back();
  }
}

Status CellTree::CollectRangeBatch(
    const std::vector<RangeQuery>& queries,
    std::vector<std::vector<std::pair<double, const Entry*>>>* out,
    std::vector<SearchStats>* stats) const {
  std::vector<Permutation> query_perms;
  query_perms.reserve(queries.size());
  for (const RangeQuery& query : queries) {
    if (query.pivot_distances.size() != num_pivots_) {
      return Status::InvalidArgument(
          "range query requires distances to all pivots");
    }
    if (query.radius < 0) {
      return Status::InvalidArgument("range query radius must be >= 0");
    }
    query_perms.push_back(DistancesToPermutation(query.pivot_distances));
  }
  out->assign(queries.size(), {});
  if (stats != nullptr && stats->size() != queries.size()) {
    return Status::InvalidArgument("stats vector has wrong length");
  }
  if (queries.empty()) return Status::OK();

  std::vector<size_t> active(queries.size());
  std::iota(active.begin(), active.end(), 0);
  std::vector<uint32_t> chain;
  chain.reserve(max_level_);
  CollectRangeBatchRecursive(*root_, queries, query_perms, active, chain, out,
                             stats);
  return Status::OK();
}

void CellTree::CollectRangeBatchRecursive(
    const Node& node, const std::vector<RangeQuery>& queries,
    const std::vector<Permutation>& query_perms,
    const std::vector<size_t>& active, std::vector<uint32_t>& chain,
    std::vector<std::vector<std::pair<double, const Entry*>>>* out,
    std::vector<SearchStats>* stats) const {
  if (node.is_leaf) {
    if (stats != nullptr) {
      for (size_t q : active) (*stats)[q].cells_visited++;
    }
    for (const Entry& entry : node.entries) {
      for (size_t q : active) {
        if (stats != nullptr) (*stats)[q].entries_scanned++;
        const std::vector<float>& query_distances =
            queries[q].pivot_distances;
        double lower_bound = 0.0;
        if (!entry.pivot_distances.empty()) {
          for (size_t i = 0; i < num_pivots_; ++i) {
            const double diff = std::fabs(
                static_cast<double>(query_distances[i]) -
                static_cast<double>(entry.pivot_distances[i]));
            if (diff > lower_bound) lower_bound = diff;
          }
          if (lower_bound > queries[q].radius) {
            if (stats != nullptr) (*stats)[q].entries_filtered++;
            continue;
          }
        }
        (*out)[q].emplace_back(lower_bound, &entry);
        if (stats != nullptr) (*stats)[q].candidates++;
      }
    }
    return;
  }

  // Same double-pivot and range-pivot constraints as the single-query
  // traversal, evaluated per query; a child is descended once with the
  // subset of queries it survives for.
  std::vector<double> min_allowed(active.size());
  for (size_t a = 0; a < active.size(); ++a) {
    const size_t q = active[a];
    min_allowed[a] = MinAllowedDistance(queries[q].pivot_distances,
                                        query_perms[q], chain);
  }

  std::vector<size_t> child_active;
  child_active.reserve(active.size());
  for (const auto& [pivot, child] : node.children) {
    child_active.clear();
    for (size_t a = 0; a < active.size(); ++a) {
      const size_t q = active[a];
      const double query_to_pivot = queries[q].pivot_distances[pivot];
      const double radius = queries[q].radius;
      if (query_to_pivot > min_allowed[a] + 2.0 * radius) {
        if (stats != nullptr) (*stats)[q].cells_pruned++;
        continue;
      }
      if (child->has_dist_bounds &&
          (query_to_pivot - radius > child->max_pivot_dist ||
           query_to_pivot + radius < child->min_pivot_dist)) {
        if (stats != nullptr) (*stats)[q].cells_pruned++;
        continue;
      }
      child_active.push_back(q);
    }
    if (child_active.empty()) continue;
    chain.push_back(pivot);
    CollectRangeBatchRecursive(*child, queries, query_perms, child_active,
                               chain, out, stats);
    chain.pop_back();
  }
}

Status CellTree::CollectApprox(
    const QuerySignature& query, size_t cand_size, double promise_decay,
    std::vector<std::pair<double, const Entry*>>* out,
    SearchStats* stats) const {
  if (!query.has_distances() && query.permutation.empty()) {
    return Status::InvalidArgument(
        "approximate query needs distances or a permutation");
  }
  if (query.has_distances() &&
      query.pivot_distances.size() != num_pivots_) {
    return Status::InvalidArgument("query distance vector has wrong length");
  }

  // Promise key per pivot: the query-pivot distance when available,
  // otherwise the pivot's rank in the query permutation.
  std::vector<double> key(num_pivots_);
  if (query.has_distances()) {
    for (size_t i = 0; i < num_pivots_; ++i) {
      key[i] = query.pivot_distances[i];
    }
  } else {
    const std::vector<uint32_t> ranks =
        PermutationRanks(query.permutation, num_pivots_);
    for (size_t i = 0; i < num_pivots_; ++i) {
      key[i] = static_cast<double>(ranks[i]);
    }
  }

  // Best-first traversal over cells ordered by the decay-weighted mean of
  // their pivot-chain keys (the "promise value" of Alg. 4 line 3).
  struct Frontier {
    double sum;
    double weight;
    const Node* node;
    size_t depth;  // chain length of `node`
    double Score() const { return sum / weight; }
    bool operator>(const Frontier& other) const {
      return Score() > other.Score();
    }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<Frontier>>
      frontier;

  for (const auto& [pivot, child] : root_->children) {
    frontier.push({key[pivot], 1.0, child.get(), 1});
  }
  if (root_->is_leaf) {
    // Tiny index: the root itself still holds everything.
    frontier.push({0.0, 1.0, root_.get(), 0});
  }

  const std::vector<uint32_t> query_ranks =
      query.permutation.empty()
          ? std::vector<uint32_t>()
          : PermutationRanks(query.permutation, num_pivots_);

  size_t collected = 0;
  while (!frontier.empty() && collected < cand_size) {
    const Frontier top = frontier.top();
    frontier.pop();
    if (top.node->is_leaf) {
      if (stats != nullptr) stats->cells_visited++;
      for (const Entry& entry : top.node->entries) {
        if (stats != nullptr) stats->entries_scanned++;
        double score;
        if (query.has_distances() && !entry.pivot_distances.empty()) {
          // Tightest available pre-ranking: pivot-filtering lower bound.
          double lb = 0.0;
          for (size_t i = 0; i < num_pivots_; ++i) {
            const double diff = std::fabs(
                static_cast<double>(query.pivot_distances[i]) -
                static_cast<double>(entry.pivot_distances[i]));
            if (diff > lb) lb = diff;
          }
          score = lb;
        } else if (!query_ranks.empty()) {
          // Permutation-only pre-ranking: Spearman footrule between the
          // entry's stored prefix and the query permutation.
          double sum = 0.0;
          for (size_t pos = 0; pos < entry.permutation.size(); ++pos) {
            const uint32_t pivot = entry.permutation[pos];
            sum += std::fabs(static_cast<double>(query_ranks[pivot]) -
                             static_cast<double>(pos));
          }
          score = sum;
        } else {
          score = top.Score();
        }
        out->emplace_back(score, &entry);
        ++collected;
        if (stats != nullptr) stats->candidates++;
      }
    } else {
      const double level_weight = std::pow(promise_decay, top.depth);
      for (const auto& [pivot, child] : top.node->children) {
        frontier.push({top.sum + level_weight * key[pivot],
                       top.weight + level_weight, child.get(),
                       top.depth + 1});
      }
    }
  }
  return Status::OK();
}

void CellTree::FillStats(IndexStats* stats) const {
  stats->object_count = size_;
  stats->leaf_count = 0;
  stats->inner_count = 0;
  stats->max_depth = 0;

  // Iterative walk to avoid exposing Node in the header's private section.
  struct Item {
    const Node* node;
    uint64_t depth;
  };
  std::vector<Item> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    stats->max_depth = std::max(stats->max_depth, item.depth);
    if (item.node->is_leaf) {
      stats->leaf_count++;
    } else {
      stats->inner_count++;
      for (const auto& [pivot, child] : item.node->children) {
        stack.push_back({child.get(), item.depth + 1});
      }
    }
  }
}

Status CellTree::CheckInvariants() const {
  struct Item {
    const Node* node;
    std::vector<uint32_t> chain;
  };
  std::vector<Item> stack = {{root_.get(), {}}};
  size_t total = 0;
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    const Node* node = item.node;
    if (node->is_leaf) {
      if (node->entries.size() > bucket_capacity_ &&
          item.chain.size() < max_level_) {
        return Status::Internal("leaf above capacity but below max level");
      }
      total += node->entries.size();
      for (const Entry& entry : node->entries) {
        if (entry.permutation.size() < item.chain.size()) {
          return Status::Internal("entry permutation shorter than its chain");
        }
        for (size_t i = 0; i < item.chain.size(); ++i) {
          if (entry.permutation[i] != item.chain[i]) {
            return Status::Internal(
                "entry stored in a cell that does not match its "
                "permutation prefix");
          }
        }
      }
    } else {
      if (!node->entries.empty()) {
        return Status::Internal("inner node holds entries");
      }
      for (const auto& [pivot, child] : node->children) {
        Item next{child.get(), item.chain};
        next.chain.push_back(pivot);
        stack.push_back(std::move(next));
      }
    }
  }
  if (total != size_) {
    return Status::Internal("entry count mismatch: tree=" +
                            std::to_string(total) +
                            " expected=" + std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace mindex
}  // namespace simcloud
