#include "mindex/permutation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace simcloud {
namespace mindex {

namespace {
/// Comparator implementing the paper's ordering: by distance, ties by index.
struct ByDistanceThenIndex {
  const std::vector<float>& distances;
  bool operator()(uint32_t a, uint32_t b) const {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;
  }
};
}  // namespace

Permutation DistancesToPermutation(const std::vector<float>& distances) {
  Permutation perm(distances.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), ByDistanceThenIndex{distances});
  return perm;
}

Permutation DistancesToPermutationPrefix(const std::vector<float>& distances,
                                         size_t prefix_len) {
  Permutation perm(distances.size());
  std::iota(perm.begin(), perm.end(), 0);
  prefix_len = std::min(prefix_len, perm.size());
  std::partial_sort(perm.begin(), perm.begin() + prefix_len, perm.end(),
                    ByDistanceThenIndex{distances});
  perm.resize(prefix_len);
  return perm;
}

std::vector<uint32_t> PermutationRanks(const Permutation& perm,
                                       size_t num_pivots) {
  std::vector<uint32_t> ranks(num_pivots, static_cast<uint32_t>(num_pivots));
  for (size_t pos = 0; pos < perm.size(); ++pos) {
    if (perm[pos] < num_pivots) ranks[perm[pos]] = static_cast<uint32_t>(pos);
  }
  return ranks;
}

double PrefixFootrule(const Permutation& a, const Permutation& b,
                      size_t prefix_len, size_t num_pivots) {
  const std::vector<uint32_t> rank_b = PermutationRanks(b, num_pivots);
  prefix_len = std::min(prefix_len, a.size());
  double sum = 0.0;
  for (size_t pos = 0; pos < prefix_len; ++pos) {
    const uint32_t pivot = a[pos];
    const double rb = (pivot < num_pivots)
                          ? static_cast<double>(rank_b[pivot])
                          : static_cast<double>(num_pivots);
    sum += std::fabs(rb - static_cast<double>(pos));
  }
  return sum;
}

bool IsValidPermutation(const Permutation& perm, size_t num_pivots) {
  std::vector<bool> seen(num_pivots, false);
  for (uint32_t idx : perm) {
    if (idx >= num_pivots || seen[idx]) return false;
    seen[idx] = true;
  }
  return true;
}

}  // namespace mindex
}  // namespace simcloud
