#include "mindex/query_engine.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simcloud {
namespace mindex {

namespace {

/// Server-side analogue of the paper's distance-computation cost: every
/// entry inspected in a visited cell costs one pivot-distance lower-bound
/// evaluation. Feeds the cumulative counter and the per-request span
/// (always on the request's worker thread — batch fan-out pool threads
/// never call this, the fan-out's caller aggregates stats first).
void RecordPivotEvaluations(uint64_t entries_scanned) {
  if (entries_scanned == 0) return;
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_pivot_distance_computations_total");
  counter->Add(entries_scanned);
  obs::TraceSpan* span = obs::TraceSpan::Current();
  if (span != nullptr) span->AddDistanceComputations(entries_scanned);
}

uint64_t SumEntriesScanned(const std::vector<SearchStats>& stats) {
  uint64_t total = 0;
  for (const SearchStats& s : stats) total += s.entries_scanned;
  return total;
}

obs::Histogram* PayloadFetchHistogram() {
  static obs::Histogram* const histogram =
      obs::Registry::Default().GetHistogram("simcloud_payload_fetch_nanos");
  return histogram;
}

/// Times one payload-log fetch into the fetch histogram and the current
/// request span. Zero clock reads while tracing is inactive.
template <typename Fetch>
Status TimedPayloadFetch(Fetch&& fetch) {
  if (!obs::TracingActive()) return fetch();
  const uint64_t start = obs::MonotonicNanos();
  Status status = fetch();
  const uint64_t nanos = obs::MonotonicNanos() - start;
  PayloadFetchHistogram()->Record(nanos);
  if (obs::TraceSpan* span = obs::TraceSpan::Current()) {
    span->AddStageNanos(obs::Stage::kPayloadFetch, nanos);
  }
  return status;
}

}  // namespace

void QueryEngine::RankAndTrim(ScoredEntries* scored, size_t limit) {
  std::stable_sort(
      scored->begin(), scored->end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (scored->size() > limit) scored->resize(limit);
}

Result<CandidateList> QueryEngine::Materialize(ScoredEntries scored,
                                               size_t limit,
                                               SearchStats* stats) const {
  RankAndTrim(&scored, limit);

  std::vector<PayloadHandle> handles;
  handles.reserve(scored.size());
  for (const auto& [score, entry] : scored) {
    handles.push_back(entry->payload_handle);
  }
  std::vector<Bytes> payloads;
  SIMCLOUD_RETURN_NOT_OK(TimedPayloadFetch(
      [&] { return storage_->FetchMany(handles, &payloads); }));

  CandidateList result;
  result.reserve(scored.size());
  for (size_t i = 0; i < scored.size(); ++i) {
    result.push_back(Candidate{scored[i].second->id, scored[i].first,
                               std::move(payloads[i])});
  }
  if (stats != nullptr) stats->candidates = result.size();
  return result;
}

Result<BatchCandidates> QueryEngine::MaterializeBatch(
    std::vector<ScoredEntries> scored, const std::vector<size_t>& limits,
    const std::vector<size_t>& rep,
    const std::vector<SearchStats>& unique_stats,
    std::vector<SearchStats>* stats) const {
  // Rank each distinct query's candidates, then fetch every payload the
  // batch needs in one call; a handle shared between queries lands in the
  // dictionary once.
  size_t total_candidates = 0;
  for (const ScoredEntries& entries : scored) {
    total_candidates += entries.size();
  }
  std::vector<PayloadHandle> handles;
  handles.reserve(total_candidates);
  std::unordered_map<PayloadHandle, uint32_t> handle_slot;
  handle_slot.reserve(total_candidates);
  std::vector<std::vector<BatchCandidateRef>> unique_refs(scored.size());
  for (size_t u = 0; u < scored.size(); ++u) {
    RankAndTrim(&scored[u], limits[u]);
    unique_refs[u].reserve(scored[u].size());
    for (const auto& [score, entry] : scored[u]) {
      auto [it, inserted] = handle_slot.emplace(
          entry->payload_handle, static_cast<uint32_t>(handles.size()));
      if (inserted) handles.push_back(entry->payload_handle);
      unique_refs[u].push_back(
          BatchCandidateRef{entry->id, score, it->second});
    }
  }

  BatchCandidates batch;
  SIMCLOUD_RETURN_NOT_OK(TimedPayloadFetch(
      [&] { return storage_->FetchMany(handles, &batch.payloads); }));

  batch.per_query.resize(rep.size());
  for (size_t q = 0; q < rep.size(); ++q) {
    batch.per_query[q] = unique_refs[rep[q]];
    if (stats != nullptr) {
      (*stats)[q] = unique_stats[rep[q]];
      (*stats)[q].candidates = batch.per_query[q].size();
    }
  }
  return batch;
}

Result<CandidateList> QueryEngine::RangeSearch(
    const std::vector<float>& query_distances, double radius,
    SearchStats* stats) const {
  ScoredEntries scored;
  {
    obs::StageTimer timer(obs::Stage::kIndexEval);
    SIMCLOUD_RETURN_NOT_OK(
        tree_->CollectRange(query_distances, radius, &scored, stats));
  }
  if (stats != nullptr) RecordPivotEvaluations(stats->entries_scanned);
  const size_t count = scored.size();
  return Materialize(std::move(scored), count, stats);
}

Result<RankedCandidates> QueryEngine::RangeSearchRanked(
    const std::vector<float>& query_distances, double radius,
    SearchStats* stats) const {
  ScoredEntries scored;
  {
    obs::StageTimer timer(obs::Stage::kIndexEval);
    SIMCLOUD_RETURN_NOT_OK(
        tree_->CollectRange(query_distances, radius, &scored, stats));
  }
  if (stats != nullptr) RecordPivotEvaluations(stats->entries_scanned);
  RankAndTrim(&scored, scored.size());
  RankedCandidates ranked;
  ranked.reserve(scored.size());
  for (const auto& [score, entry] : scored) {
    ranked.push_back(RankedCandidate{entry->id, score, entry->payload_handle});
  }
  if (stats != nullptr) stats->candidates = ranked.size();
  return ranked;
}

Result<CandidateList> QueryEngine::MaterializePage(
    const RankedCandidates& ranked, size_t* next, size_t page_size) const {
  std::vector<PayloadHandle> handles;
  std::vector<const RankedCandidate*> picked;
  handles.reserve(std::min(page_size, ranked.size() - *next));
  picked.reserve(handles.capacity());
  size_t pos = *next;
  while (pos < ranked.size() && picked.size() < page_size) {
    const RankedCandidate& candidate = ranked[pos++];
    // A candidate deleted since the snapshot: its handle is dead in the
    // append-only log (never reused until compaction, which the cursor
    // layer guards with the pass count) — skip it rather than failing the
    // whole FetchMany.
    if (!storage_->IsLive(candidate.handle)) continue;
    handles.push_back(candidate.handle);
    picked.push_back(&candidate);
  }
  std::vector<Bytes> payloads;
  SIMCLOUD_RETURN_NOT_OK(TimedPayloadFetch(
      [&] { return storage_->FetchMany(handles, &payloads); }));
  CandidateList page;
  page.reserve(picked.size());
  for (size_t i = 0; i < picked.size(); ++i) {
    page.push_back(
        Candidate{picked[i]->id, picked[i]->score, std::move(payloads[i])});
  }
  *next = pos;
  return page;
}

Result<CandidateList> QueryEngine::ApproxKnn(const QuerySignature& query,
                                             size_t cand_size,
                                             SearchStats* stats) const {
  if (cand_size == 0) {
    return Status::InvalidArgument("candidate set size must be > 0");
  }
  ScoredEntries scored;
  {
    obs::StageTimer timer(obs::Stage::kIndexEval);
    SIMCLOUD_RETURN_NOT_OK(tree_->CollectApprox(query, cand_size,
                                                promise_decay_, &scored,
                                                stats));
  }
  if (stats != nullptr) RecordPivotEvaluations(stats->entries_scanned);
  const size_t limit = query.whole_cells ? scored.size() : cand_size;
  return Materialize(std::move(scored), limit, stats);
}

namespace {

/// Memoization support: maps every query to the first query with a
/// bit-identical signature (byte key, hashed — linear in batch size).
/// Returns rep[i] = index into `uniques`; `queries[(*uniques)[rep[i]]]`
/// is the query actually evaluated for position i. Under a hot-query
/// workload (the same popular query issued by many users inside one
/// batch) this collapses the per-query tree work to one evaluation per
/// distinct query.
template <typename KeyOf>
std::vector<size_t> DeduplicateQueries(size_t count, KeyOf key_of,
                                       std::vector<size_t>* uniques) {
  std::vector<size_t> rep(count);
  std::unordered_map<std::string, size_t> seen;
  seen.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    auto [it, inserted] = seen.emplace(key_of(q), uniques->size());
    if (inserted) uniques->push_back(q);
    rep[q] = it->second;
  }
  return rep;
}

void AppendBytes(std::string* key, const void* data, size_t len) {
  key->append(static_cast<const char*>(data), len);
}

std::string RangeQueryKey(const RangeQuery& query) {
  std::string key;
  key.reserve(sizeof(double) + query.pivot_distances.size() * sizeof(float));
  AppendBytes(&key, &query.radius, sizeof(query.radius));
  AppendBytes(&key, query.pivot_distances.data(),
              query.pivot_distances.size() * sizeof(float));
  return key;
}

std::string KnnQueryKey(const KnnQuery& query) {
  std::string key;
  const uint64_t distance_count = query.signature.pivot_distances.size();
  key.reserve(24 + distance_count * sizeof(float) +
              query.signature.permutation.size() * sizeof(uint32_t));
  AppendBytes(&key, &query.cand_size, sizeof(query.cand_size));
  key.push_back(query.signature.whole_cells ? 1 : 0);
  AppendBytes(&key, &distance_count, sizeof(distance_count));
  AppendBytes(&key, query.signature.pivot_distances.data(),
              distance_count * sizeof(float));
  AppendBytes(&key, query.signature.permutation.data(),
              query.signature.permutation.size() * sizeof(uint32_t));
  return key;
}

}  // namespace

Result<BatchCandidates> QueryEngine::RangeSearchBatch(
    const std::vector<RangeQuery>& queries,
    std::vector<SearchStats>* stats) const {
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  std::vector<size_t> uniques;
  const std::vector<size_t> rep = DeduplicateQueries(
      queries.size(), [&](size_t q) { return RangeQueryKey(queries[q]); },
      &uniques);
  std::vector<RangeQuery> unique_queries;
  unique_queries.reserve(uniques.size());
  for (size_t q : uniques) unique_queries.push_back(queries[q]);

  std::vector<SearchStats> unique_stats(uniques.size());
  std::vector<ScoredEntries> scored(uniques.size());
  // Index-eval stage covers the whole collect fan-out; the per-request
  // span lives on this thread, so the attribution happens here after the
  // pool workers (which see no current span) are done.
  Status collected = [&]() -> Status {
    obs::StageTimer index_timer(obs::Stage::kIndexEval);
    const size_t chunk_count =
        query_threads_ > 1
            ? std::min(static_cast<size_t>(query_threads_), uniques.size())
            : 1;
    if (chunk_count <= 1) {
      return tree_->CollectRangeBatch(unique_queries, &scored, &unique_stats);
    }
    // Each worker runs one shared traversal over its contiguous chunk of
    // the distinct queries. CollectRangeBatch guarantees per-query output
    // independent of batch composition, so the concatenation is
    // byte-identical to the single whole-batch traversal.
    return ParallelFor(
        static_cast<int>(chunk_count), chunk_count, [&](size_t c) {
          const size_t begin = c * unique_queries.size() / chunk_count;
          const size_t end = (c + 1) * unique_queries.size() / chunk_count;
          const std::vector<RangeQuery> chunk(
              unique_queries.begin() + begin, unique_queries.begin() + end);
          std::vector<ScoredEntries> chunk_scored(chunk.size());
          std::vector<SearchStats> chunk_stats(chunk.size());
          SIMCLOUD_RETURN_NOT_OK(
              tree_->CollectRangeBatch(chunk, &chunk_scored, &chunk_stats));
          for (size_t i = 0; i < chunk.size(); ++i) {
            scored[begin + i] = std::move(chunk_scored[i]);
            unique_stats[begin + i] = chunk_stats[i];
          }
          return Status::OK();
        });
  }();
  SIMCLOUD_RETURN_NOT_OK(collected);
  RecordPivotEvaluations(SumEntriesScanned(unique_stats));
  std::vector<size_t> limits(scored.size());
  for (size_t u = 0; u < scored.size(); ++u) limits[u] = scored[u].size();
  return MaterializeBatch(std::move(scored), limits, rep, unique_stats,
                          stats);
}

Result<BatchCandidates> QueryEngine::ApproxKnnBatch(
    const std::vector<KnnQuery>& queries,
    std::vector<SearchStats>* stats) const {
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  std::vector<size_t> uniques;
  const std::vector<size_t> rep = DeduplicateQueries(
      queries.size(), [&](size_t q) { return KnnQueryKey(queries[q]); },
      &uniques);

  std::vector<SearchStats> unique_stats(uniques.size());
  std::vector<ScoredEntries> scored(uniques.size());
  std::vector<size_t> limits(uniques.size());
  // Validate up front (serially) so a bad query fails identically
  // regardless of thread count, then fan the independent per-query tree
  // walks out — each worker writes only its own slots.
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (queries[uniques[u]].cand_size == 0) {
      return Status::InvalidArgument("candidate set size must be > 0");
    }
  }
  {
    obs::StageTimer index_timer(obs::Stage::kIndexEval);
    SIMCLOUD_RETURN_NOT_OK(
        ParallelFor(query_threads_, uniques.size(), [&](size_t u) {
          const KnnQuery& query = queries[uniques[u]];
          SIMCLOUD_RETURN_NOT_OK(tree_->CollectApprox(
              query.signature, query.cand_size, promise_decay_, &scored[u],
              &unique_stats[u]));
          limits[u] = query.signature.whole_cells
                          ? scored[u].size()
                          : static_cast<size_t>(query.cand_size);
          return Status::OK();
        }));
  }
  RecordPivotEvaluations(SumEntriesScanned(unique_stats));
  return MaterializeBatch(std::move(scored), limits, rep, unique_stats,
                          stats);
}

}  // namespace mindex
}  // namespace simcloud
