// Pluggable payload storage for index buckets.
//
// The paper's Table 2 configures memory storage for YEAST/HUMAN and disk
// storage for CoPhIR; we mirror that with MemoryStorage and an
// append-only-file DiskStorage behind a common interface. The index tree
// keeps routing metadata (permutations / pivot distances) in memory and
// stores opaque payload bytes — serialized plaintext objects for the plain
// M-Index, AES ciphertexts for the Encrypted M-Index — in a BucketStorage.
//
// Batched reads: FetchMany retrieves a whole candidate set in one call.
// DiskStorage sorts the handles by file offset and coalesces adjacent
// payloads into single pread(2) calls, which is what makes batched queries
// disk-efficient; MemoryStorage copies everything in one pass. A sharded
// LRU decorator (payload_cache.h) adds an in-memory hot set on top of
// either backend.
//
// Deletes and compaction: both backends are append-only logs — a payload,
// once stored, is never rewritten in place. Free(handle) marks a payload
// dead; the bytes stay in the log (TotalBytes does not shrink) but the
// live/dead accounting, kept per fixed-size log segment for DiskStorage,
// is exposed via CompactionStats so a compactor (compactor.h) can decide
// when rewriting the live payloads into a fresh log pays off.

#ifndef SIMCLOUD_MINDEX_STORAGE_H_
#define SIMCLOUD_MINDEX_STORAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/io_ring.h"
#include "common/status.h"

namespace simcloud {
namespace mindex {

/// Handle to a stored payload.
using PayloadHandle = uint64_t;

/// One coalesced disk read: `count` payloads that sit contiguously in the
/// log, covering plan.order[first .. first+count).
struct DiskReadRun {
  uint64_t offset = 0;  ///< file offset of the first payload
  uint64_t length = 0;  ///< total bytes across the coalesced payloads
  size_t first = 0;     ///< index into DiskReadPlan::order
  size_t count = 0;
};

/// The coalesced read schedule DiskStorage::FetchMany executes — shared
/// between the pread(2) and io_uring executors so both issue identical
/// reads. `order` lists handle indices sorted by file offset; `runs`
/// merges payloads that are byte-adjacent in the log (the common case:
/// one bucket's candidates were appended together). Runs merge across
/// kSegmentBytes boundaries — segments are an accounting notion, the log
/// bytes stay contiguous.
struct DiskReadPlan {
  std::vector<size_t> order;
  std::vector<DiskReadRun> runs;
};

/// Builds the plan for fetching `handles`, where `offsets[h]`/`lengths[h]`
/// locate payload `h` in the log. Exposed for direct testing.
DiskReadPlan BuildDiskReadPlan(std::span<const PayloadHandle> handles,
                               std::span<const uint64_t> offsets,
                               std::span<const uint32_t> lengths);

/// Abstract payload store. Implementations must support concurrent Fetch /
/// FetchMany calls; Store/Free calls are serialized by the index.
class BucketStorage {
 public:
  /// Live-vs-dead byte accounting of the append-only log. `dead` bytes
  /// belong to freed payloads and are reclaimed only by compaction;
  /// segment counters describe the DiskStorage log in units of
  /// DiskStorage::kSegmentBytes (memory storage reports one segment).
  struct CompactionStats {
    uint64_t live_bytes = 0;
    uint64_t dead_bytes = 0;
    uint64_t live_payloads = 0;
    uint64_t dead_payloads = 0;
    uint64_t segment_count = 0;  ///< log segments holding any data
    uint64_t dead_segments = 0;  ///< segments whose payloads are all dead

    uint64_t TotalBytes() const { return live_bytes + dead_bytes; }
    /// Fraction of the log occupied by dead bytes (0 when empty) — the
    /// quantity MIndexOptions::compaction_trigger thresholds.
    double GarbageRatio() const {
      const uint64_t total = live_bytes + dead_bytes;
      return total == 0 ? 0.0
                        : static_cast<double>(dead_bytes) /
                              static_cast<double>(total);
    }
  };

  /// One log segment as the compactor sees it (the segment iteration
  /// API). `sealed` means no future Store can land in this segment —
  /// only sealed segments are eligible for partial compaction, because an
  /// unsealed segment can still grow live payloads under the compactor.
  struct SegmentView {
    uint64_t segment = 0;     ///< index in units of the backend's segment size
    uint64_t bytes = 0;       ///< payload bytes attributed to the segment
    uint64_t dead_bytes = 0;  ///< freed payload bytes among them
    bool sealed = false;

    double DeadRatio() const {
      return bytes == 0 ? 0.0
                        : static_cast<double>(dead_bytes) /
                              static_cast<double>(bytes);
    }
  };

  virtual ~BucketStorage() = default;

  /// Persists `payload` and returns a handle for later retrieval.
  virtual Result<PayloadHandle> Store(const Bytes& payload) = 0;

  /// Retrieves a payload previously stored. Freed handles are NotFound.
  virtual Result<Bytes> Fetch(PayloadHandle handle) const = 0;

  /// Retrieves many payloads in one call; on success `(*out)[i]` holds the
  /// payload of `handles[i]` (duplicates allowed). The default loops over
  /// Fetch; backends override it to batch the underlying I/O.
  virtual Status FetchMany(std::span<const PayloadHandle> handles,
                           std::vector<Bytes>* out) const;

  /// Marks a stored payload dead. The handle becomes invalid (fetches
  /// return NotFound); the bytes are reclaimed by the next compaction.
  /// Freeing an unknown or already-freed handle is an error.
  virtual Status Free(PayloadHandle handle) = 0;

  /// Current live/dead accounting of the log. DiskStorage walks its
  /// segment table for the segment counters — per-mutation hot paths
  /// that only need the garbage ratio should use DeadBytes()/TotalBytes.
  virtual CompactionStats GetCompactionStats() const = 0;

  /// Dead payload bytes awaiting compaction — O(1) in the real backends
  /// (the trigger check runs after every delete batch).
  virtual uint64_t DeadBytes() const {
    return GetCompactionStats().dead_bytes;
  }

  /// True while `handle` refers to a live (stored, never freed) payload.
  /// Safe to call concurrently with fetches. The default probes Fetch and
  /// is correct but copies the payload; real backends override it.
  virtual bool IsLive(PayloadHandle handle) const {
    return Fetch(handle).ok();
  }

  /// Per-segment accounting for the compactor, non-empty segments only.
  /// The default reports one unsealed pseudo-segment derived from
  /// GetCompactionStats (a backend without segment-granular accounting
  /// can only ever be compacted as a whole).
  virtual std::vector<SegmentView> Segments() const;

  /// Visits every live handle with its segment and payload byte length,
  /// in handle order (== append order for the built-in backends). This is
  /// how the compactor enumerates the payloads a pass must move, without
  /// walking the index tree. Unimplemented by default.
  virtual Status ForEachLiveHandle(
      const std::function<void(PayloadHandle, uint64_t segment,
                               uint32_t bytes)>& fn) const;

  /// True if ReleaseDeadSegments can reclaim whole dead segments in place
  /// (partial compaction). Backends without it are compacted full-pass.
  virtual bool SupportsSegmentRelease() const { return false; }

  /// Drops fully-dead segments from the log and its accounting, returning
  /// the bytes reclaimed. Every listed segment must be sealed and 100%
  /// dead (FailedPrecondition otherwise, with nothing released).
  /// Unimplemented by default.
  virtual Result<uint64_t> ReleaseDeadSegments(
      const std::vector<uint64_t>& segments);

  /// Total payload bytes in the backing log, live plus dead (dead bytes
  /// persist until compaction rewrites the log).
  virtual uint64_t TotalBytes() const = 0;

  /// Number of live payloads.
  virtual uint64_t Count() const = 0;

  /// "memory", "disk", or a decorated variant such as "disk+cache".
  virtual std::string Name() const = 0;
};

/// Heap-backed storage (paper: "Memory storage"). Free releases the
/// payload's heap bytes immediately but keeps the handle slot occupied
/// (and counted in TotalBytes) until compaction rebuilds the store.
class MemoryStorage : public BucketStorage {
 public:
  Result<PayloadHandle> Store(const Bytes& payload) override;
  Result<Bytes> Fetch(PayloadHandle handle) const override;
  Status FetchMany(std::span<const PayloadHandle> handles,
                   std::vector<Bytes>* out) const override;
  Status Free(PayloadHandle handle) override;
  CompactionStats GetCompactionStats() const override;
  bool IsLive(PayloadHandle handle) const override {
    return handle < live_.size() && live_[handle];
  }
  Status ForEachLiveHandle(
      const std::function<void(PayloadHandle, uint64_t, uint32_t)>& fn)
      const override;
  uint64_t DeadBytes() const override { return dead_bytes_; }
  uint64_t TotalBytes() const override { return total_bytes_; }
  uint64_t Count() const override { return payloads_.size() - dead_count_; }
  std::string Name() const override { return "memory"; }

 private:
  Status CheckLive(PayloadHandle handle) const;

  std::vector<Bytes> payloads_;
  std::vector<bool> live_;
  uint64_t total_bytes_ = 0;
  uint64_t dead_bytes_ = 0;
  uint64_t dead_count_ = 0;
};

/// Append-only single-file storage (paper: "Disk storage"). Handles encode
/// file offsets; lengths are kept in memory. Reads use pread(2) and are
/// safe to issue concurrently. Live/dead bytes are accounted per
/// kSegmentBytes-sized log segment (a payload is attributed to the segment
/// its first byte lands in) so CompactionStats can report how much of the
/// log — and how many whole segments — a compaction would reclaim.
class DiskStorage : public BucketStorage {
 public:
  /// Accounting granularity of the append-only log.
  static constexpr uint64_t kSegmentBytes = 64 * 1024;

  /// Creates (truncates) the backing file at `path`.
  static Result<std::unique_ptr<DiskStorage>> Create(const std::string& path);
  ~DiskStorage() override;

  Result<PayloadHandle> Store(const Bytes& payload) override;
  Result<Bytes> Fetch(PayloadHandle handle) const override;
  /// Sorts handles by offset and coalesces adjacent payloads into single
  /// pread calls, so a batch over one bucket costs one disk read.
  Status FetchMany(std::span<const PayloadHandle> handles,
                   std::vector<Bytes>* out) const override;
  Status Free(PayloadHandle handle) override;
  CompactionStats GetCompactionStats() const override;
  bool IsLive(PayloadHandle handle) const override {
    return handle < live_.size() && live_[handle];
  }
  /// Non-empty, unreleased segments; every segment except the one the
  /// next Store would append into is sealed.
  std::vector<SegmentView> Segments() const override;
  Status ForEachLiveHandle(
      const std::function<void(PayloadHandle, uint64_t, uint32_t)>& fn)
      const override;
  bool SupportsSegmentRelease() const override { return true; }
  /// Punches the segments' byte ranges out of the backing file
  /// (best-effort FALLOC_FL_PUNCH_HOLE; on filesystems without hole
  /// support the blocks stay allocated until the next full rewrite) and
  /// drops them from the live/dead accounting. Payloads attributed to a
  /// segment occupy one contiguous file range (the log is append-only),
  /// so the punched range never touches a neighbouring segment's bytes.
  Result<uint64_t> ReleaseDeadSegments(
      const std::vector<uint64_t>& segments) override;
  uint64_t DeadBytes() const override { return dead_bytes_; }
  uint64_t TotalBytes() const override { return total_bytes_; }
  uint64_t Count() const override {
    return lengths_.size() - dead_count_ - released_payloads_;
  }
  std::string Name() const override { return "disk"; }

  /// Flushes the log to stable storage (compaction syncs the fresh log
  /// before atomically renaming it over the old one).
  Status Sync();

  /// Renames the backing file to `new_path` (atomic on POSIX when the
  /// target exists — the compactor's swap step). The open descriptor
  /// follows the inode, so reads continue uninterrupted.
  Status RenameTo(const std::string& new_path);

  const std::string& path() const { return path_; }

  /// Closes the backing file; subsequent Store/Fetch calls fail with
  /// FailedPrecondition instead of operating on a dead descriptor. The
  /// destructor closes best-effort; call Close() to observe close errors.
  Status Close();

 private:
  struct Segment {
    uint64_t bytes = 0;
    uint64_t dead_bytes = 0;
    uint64_t payload_count = 0;
    uint64_t dead_count = 0;
    /// File range covered by the payloads attributed to this segment
    /// (contiguous: the log is append-only). Punched on release.
    uint64_t first_offset = 0;
    uint64_t end_offset = 0;
    bool released = false;
  };

  DiskStorage(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  /// FailedPrecondition unless the backing file is open.
  Status CheckOpen() const;
  Status CheckLive(PayloadHandle handle) const;
  /// pread exactly `len` bytes at `offset`; short reads (EOF before `len`
  /// bytes, e.g. a truncated backing file) are Corruption, not silence.
  Status ReadExactly(uint8_t* dst, size_t len, uint64_t offset) const;
  /// Executes `plan` with one batched io_uring submission. NotSupported
  /// means "use pread instead" (ring unavailable or busy); any other
  /// error is a real I/O failure.
  Status FetchManyUring(const DiskReadPlan& plan,
                        std::span<const PayloadHandle> handles,
                        std::vector<Bytes>* out) const;

  int fd_;
  std::string path_;
  uint64_t next_offset_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t dead_bytes_ = 0;
  uint64_t dead_count_ = 0;
  /// Handles whose segment was released: dead and no longer accounted.
  uint64_t released_payloads_ = 0;
  // lengths_[i] = byte length of the payload whose handle is i; the offset
  // is recovered from offsets_[i]; live_[i] = not yet freed.
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> lengths_;
  std::vector<bool> live_;
  // Per-segment accounting, indexed by offset / kSegmentBytes.
  std::vector<Segment> segments_;
  // io_uring read batching (SIMCLOUD_IO_ENGINE=uring), created lazily by
  // the first FetchMany. The ring is single-owner; concurrent FetchMany
  // callers that miss the try_lock just take the pread path instead of
  // queueing. `ring_failed_` latches a failed probe so unsupported
  // kernels pay the setup attempt once.
  mutable std::mutex ring_mutex_;
  mutable std::unique_ptr<IoRing> ring_;
  mutable bool ring_failed_ = false;
};

/// Storage backend selector mirroring the paper's Table 2.
enum class StorageKind { kMemory, kDisk };

/// Factory: creates the requested storage (disk needs `disk_path`).
Result<std::unique_ptr<BucketStorage>> MakeStorage(StorageKind kind,
                                                   const std::string& disk_path);

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_STORAGE_H_
