// Pluggable payload storage for index buckets.
//
// The paper's Table 2 configures memory storage for YEAST/HUMAN and disk
// storage for CoPhIR; we mirror that with MemoryStorage and an
// append-only-file DiskStorage behind a common interface. The index tree
// keeps routing metadata (permutations / pivot distances) in memory and
// stores opaque payload bytes — serialized plaintext objects for the plain
// M-Index, AES ciphertexts for the Encrypted M-Index — in a BucketStorage.
//
// Batched reads: FetchMany retrieves a whole candidate set in one call.
// DiskStorage sorts the handles by file offset and coalesces adjacent
// payloads into single pread(2) calls, which is what makes batched queries
// disk-efficient; MemoryStorage copies everything in one pass. A sharded
// LRU decorator (payload_cache.h) adds an in-memory hot set on top of
// either backend.

#ifndef SIMCLOUD_MINDEX_STORAGE_H_
#define SIMCLOUD_MINDEX_STORAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace mindex {

/// Handle to a stored payload.
using PayloadHandle = uint64_t;

/// Abstract payload store. Implementations must support concurrent Fetch /
/// FetchMany calls; Store calls are serialized by the index.
class BucketStorage {
 public:
  virtual ~BucketStorage() = default;

  /// Persists `payload` and returns a handle for later retrieval.
  virtual Result<PayloadHandle> Store(const Bytes& payload) = 0;

  /// Retrieves a payload previously stored.
  virtual Result<Bytes> Fetch(PayloadHandle handle) const = 0;

  /// Retrieves many payloads in one call; on success `(*out)[i]` holds the
  /// payload of `handles[i]` (duplicates allowed). The default loops over
  /// Fetch; backends override it to batch the underlying I/O.
  virtual Status FetchMany(std::span<const PayloadHandle> handles,
                           std::vector<Bytes>* out) const;

  /// Total payload bytes stored.
  virtual uint64_t TotalBytes() const = 0;

  /// Number of stored payloads.
  virtual uint64_t Count() const = 0;

  /// "memory", "disk", or a decorated variant such as "disk+cache".
  virtual std::string Name() const = 0;
};

/// Heap-backed storage (paper: "Memory storage").
class MemoryStorage : public BucketStorage {
 public:
  Result<PayloadHandle> Store(const Bytes& payload) override;
  Result<Bytes> Fetch(PayloadHandle handle) const override;
  Status FetchMany(std::span<const PayloadHandle> handles,
                   std::vector<Bytes>* out) const override;
  uint64_t TotalBytes() const override { return total_bytes_; }
  uint64_t Count() const override { return payloads_.size(); }
  std::string Name() const override { return "memory"; }

 private:
  std::vector<Bytes> payloads_;
  uint64_t total_bytes_ = 0;
};

/// Append-only single-file storage (paper: "Disk storage"). Handles encode
/// file offsets; lengths are kept in memory. Reads use pread(2) and are
/// safe to issue concurrently.
class DiskStorage : public BucketStorage {
 public:
  /// Creates (truncates) the backing file at `path`.
  static Result<std::unique_ptr<DiskStorage>> Create(const std::string& path);
  ~DiskStorage() override;

  Result<PayloadHandle> Store(const Bytes& payload) override;
  Result<Bytes> Fetch(PayloadHandle handle) const override;
  /// Sorts handles by offset and coalesces adjacent payloads into single
  /// pread calls, so a batch over one bucket costs one disk read.
  Status FetchMany(std::span<const PayloadHandle> handles,
                   std::vector<Bytes>* out) const override;
  uint64_t TotalBytes() const override { return total_bytes_; }
  uint64_t Count() const override { return lengths_.size(); }
  std::string Name() const override { return "disk"; }

  /// Closes the backing file; subsequent Store/Fetch calls fail with
  /// FailedPrecondition instead of operating on a dead descriptor. The
  /// destructor closes best-effort; call Close() to observe close errors.
  Status Close();

 private:
  DiskStorage(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  /// FailedPrecondition unless the backing file is open.
  Status CheckOpen() const;
  /// pread exactly `len` bytes at `offset`; short reads (EOF before `len`
  /// bytes, e.g. a truncated backing file) are Corruption, not silence.
  Status ReadExactly(uint8_t* dst, size_t len, uint64_t offset) const;

  int fd_;
  std::string path_;
  uint64_t next_offset_ = 0;
  uint64_t total_bytes_ = 0;
  // lengths_[i] = byte length of the payload whose handle is i; the offset
  // is recovered from offsets_[i].
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> lengths_;
};

/// Storage backend selector mirroring the paper's Table 2.
enum class StorageKind { kMemory, kDisk };

/// Factory: creates the requested storage (disk needs `disk_path`).
Result<std::unique_ptr<BucketStorage>> MakeStorage(StorageKind kind,
                                                   const std::string& disk_path);

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_STORAGE_H_
