// The fixed set of reference objects (pivots) driving the recursive
// Voronoi partitioning.
//
// In the Encrypted M-Index the pivot set is *secret*: it is part of the
// key shared between data owner and authorized clients, and the server
// never sees it (paper Section 4.2). PivotSet therefore lives on the
// client side of the secure stack and serializes into the SecretKey.

#ifndef SIMCLOUD_MINDEX_PIVOT_SET_H_
#define SIMCLOUD_MINDEX_PIVOT_SET_H_

#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "metric/distance.h"
#include "metric/object.h"

namespace simcloud {
namespace mindex {

/// An ordered set of pivot objects p_1..p_n.
class PivotSet {
 public:
  PivotSet() = default;
  explicit PivotSet(std::vector<metric::VectorObject> pivots)
      : pivots_(std::move(pivots)) {}

  /// Selects `count` pivots uniformly at random from `objects` (the paper
  /// chooses pivots "at random from within the data set"). Deterministic
  /// given `seed`. count must be <= objects.size().
  static Result<PivotSet> SelectRandom(
      const std::vector<metric::VectorObject>& objects, size_t count,
      uint64_t seed);

  size_t size() const { return pivots_.size(); }
  const std::vector<metric::VectorObject>& pivots() const { return pivots_; }
  const metric::VectorObject& pivot(size_t i) const { return pivots_[i]; }

  /// Computes d(o, p_i) for every pivot — the client-side step of both
  /// Algorithm 1 (insert) and Algorithm 2 (search).
  std::vector<float> ComputeDistances(
      const metric::VectorObject& object,
      const metric::DistanceFunction& distance) const;

  /// Serializes the pivot objects (into the secret key).
  void Serialize(BinaryWriter* writer) const;
  static Result<PivotSet> Deserialize(BinaryReader* reader);

 private:
  std::vector<metric::VectorObject> pivots_;
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_PIVOT_SET_H_
