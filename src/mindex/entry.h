// Core record types shared by the M-Index tree, server wrappers, and the
// encryption layer.

#ifndef SIMCLOUD_MINDEX_ENTRY_H_
#define SIMCLOUD_MINDEX_ENTRY_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "metric/object.h"
#include "mindex/permutation.h"
#include "mindex/storage.h"

namespace simcloud {
namespace mindex {

/// One indexed record as stored by the server. Matches the paper's
/// `e := struct {distances, permutation, data}` (Algorithm 1): routing
/// metadata in the clear, payload opaque (serialized plaintext object for
/// the plain M-Index, AES ciphertext for the Encrypted M-Index).
struct Entry {
  metric::ObjectId id = 0;
  /// Pivot-permutation prefix used for routing (length >= tree max level).
  Permutation permutation;
  /// Object-pivot distances d(o, p_i) for all pivots; empty when the
  /// permutation-only (approximate) strategy is used.
  std::vector<float> pivot_distances;
  /// Handle of the payload in the index's BucketStorage.
  PayloadHandle payload_handle = 0;
  /// Payload size in bytes (for communication-cost accounting).
  uint32_t payload_size = 0;
};

/// A candidate returned to the querying client: pre-ranked, payload still
/// opaque. `score` is the ranking key (lower = more promising); for
/// distance-bearing queries it is the pivot-filtering lower bound of
/// d(q, o), so it can also drive early termination on the client.
struct Candidate {
  metric::ObjectId id = 0;
  double score = 0.0;
  Bytes payload;
};

using CandidateList = std::vector<Candidate>;

/// One ranked candidate WITHOUT its payload bytes: what a server-side
/// cursor snapshots at open. The payload is fetched page by page through
/// the handle (O(page) memory instead of O(result)); `Entry` pointers are
/// deliberately NOT kept — they dangle across splits and deletes, while a
/// handle in the append-only log stays either live or deterministically
/// dead until a compaction pass remaps the log (cursors detect that via
/// the index's compaction-pass count).
struct RankedCandidate {
  metric::ObjectId id = 0;
  double score = 0.0;
  PayloadHandle handle = 0;
};

using RankedCandidates = std::vector<RankedCandidate>;

/// What the client sends instead of the query object (Algorithm 2):
/// query-pivot distances (precise strategy) or just the permutation
/// (approximate strategy). The query object itself never leaves the client.
struct QuerySignature {
  std::vector<float> pivot_distances;  ///< empty for permutation-only
  Permutation permutation;             ///< derived from distances if empty
  /// When true, the candidate set is not trimmed to `cand_size`: whole
  /// Voronoi cells are returned until at least `cand_size` entries are
  /// collected. With cand_size = 1 this yields exactly the single most
  /// promising cell — the paper's Table 9 configuration.
  bool whole_cells = false;

  bool has_distances() const { return !pivot_distances.empty(); }
};

/// One candidate of a batched search, referencing its payload in the
/// batch's deduplicated payload dictionary.
struct BatchCandidateRef {
  metric::ObjectId id = 0;
  double score = 0.0;
  uint32_t payload_index = 0;  ///< index into BatchCandidates::payloads
};

/// Result of a batched search. Payload bytes are deduplicated across the
/// whole batch — a ciphertext appearing in many queries' candidate sets
/// (overlapping or repeated queries, the hot-traffic case) is stored,
/// shipped, and decrypted once; per-query candidates reference it by
/// index. MaterializeQuery expands one query back into an owning
/// CandidateList identical to what the single-query path returns.
struct BatchCandidates {
  std::vector<Bytes> payloads;  ///< unique payload bytes (the dictionary)
  std::vector<std::vector<BatchCandidateRef>> per_query;  ///< ranked refs

  CandidateList MaterializeQuery(size_t q) const {
    CandidateList result;
    result.reserve(per_query[q].size());
    for (const BatchCandidateRef& ref : per_query[q]) {
      result.push_back(Candidate{ref.id, ref.score,
                                 payloads[ref.payload_index]});
    }
    return result;
  }
};

/// One deletion of a batched delete: the same routing information the
/// insert carried (distances and/or permutation; the permutation is
/// derived server-side when empty).
struct Deletion {
  metric::ObjectId id = 0;
  std::vector<float> pivot_distances;
  Permutation permutation;
};

/// One precise range query of a multi-query batch (Algorithm 3 input).
struct RangeQuery {
  std::vector<float> pivot_distances;  ///< query-pivot distances, all pivots
  double radius = 0;
};

/// One approximate k-NN query of a multi-query batch (Algorithm 4 input).
struct KnnQuery {
  QuerySignature signature;
  uint64_t cand_size = 0;
};

/// Counters describing one server-side search.
struct SearchStats {
  uint64_t cells_visited = 0;    ///< leaf cells read
  uint64_t cells_pruned = 0;     ///< subtrees cut by metric constraints
  uint64_t entries_scanned = 0;  ///< entries inspected in visited cells
  uint64_t entries_filtered = 0; ///< entries removed by pivot filtering
  uint64_t candidates = 0;       ///< entries returned to the client

  /// Accumulates all counters of `other` (batch/shard aggregation).
  void Add(const SearchStats& other) {
    cells_visited += other.cells_visited;
    cells_pruned += other.cells_pruned;
    entries_scanned += other.entries_scanned;
    entries_filtered += other.entries_filtered;
    candidates += other.candidates;
  }
};

/// What a compaction pass rewrites: the whole log into a fresh file, or
/// only the deadest segments in place (see compactor.h).
enum class CompactionMode : uint8_t { kFull = 0, kPartial = 1 };

/// What one compaction pass did (also the kCompact wire response; see
/// compactor.h for the engine itself).
struct CompactionReport {
  bool compacted = false;      ///< false: below threshold / nothing dead
  uint64_t bytes_before = 0;   ///< log bytes (live + dead) before the pass
  uint64_t bytes_after = 0;    ///< log bytes after (== live bytes if run)
  uint64_t payloads_moved = 0; ///< live payloads rewritten
  uint64_t reclaimed_bytes = 0;
  /// Total nanoseconds the pass held the index's writer lock (begin +
  /// swap+remap slices) — the only time mutators waited on it. The
  /// shared-lock rewrite never blocks searches.
  uint64_t pause_nanos = 0;
  /// Partial passes: whole log segments released in place.
  uint64_t segments_released = 0;
  /// What kind of pass ran (full rewrite vs. segment-targeted partial).
  CompactionMode mode = CompactionMode::kFull;

  /// Shard aggregation (ShardedServer fans kCompact out per shard).
  /// Byte/segment counters sum; the pause reports the WORST shard — the
  /// shards compact concurrently, so stalls overlap rather than add.
  void Add(const CompactionReport& other) {
    compacted = compacted || other.compacted;
    bytes_before += other.bytes_before;
    bytes_after += other.bytes_after;
    payloads_moved += other.payloads_moved;
    reclaimed_bytes += other.reclaimed_bytes;
    pause_nanos = pause_nanos > other.pause_nanos ? pause_nanos
                                                  : other.pause_nanos;
    segments_released += other.segments_released;
    if (other.mode == CompactionMode::kPartial) mode = other.mode;
  }
};

/// Structural statistics of the index.
struct IndexStats {
  uint64_t object_count = 0;
  uint64_t leaf_count = 0;
  uint64_t inner_count = 0;
  uint64_t max_depth = 0;
  /// Payload-log size, live + dead (deleted-but-uncompacted) bytes.
  uint64_t storage_bytes = 0;
  /// Live payload bytes; storage_bytes - live_storage_bytes is what a
  /// compaction would reclaim.
  uint64_t live_storage_bytes = 0;
  uint64_t dead_storage_bytes = 0;
  /// Compaction telemetry (kGetStats): completed passes, whether a
  /// background pass is running right now and how far its rewrite has
  /// progressed, and the writer-lock pause cost of the passes so far.
  uint64_t compaction_passes = 0;
  uint64_t compaction_active = 0;  ///< 0/1 (shards: how many are mid-pass)
  uint64_t compaction_progress_payloads = 0;  ///< copied so far, this pass
  uint64_t compaction_last_pause_nanos = 0;
  uint64_t compaction_max_pause_nanos = 0;
  /// Topology health (kGetStats through a ShardedServer facade): how
  /// many shards the facade fans out to and their replica-set health —
  /// a shard counts as its healthiest replica. Local deployments report
  /// every shard up; a bare EncryptedMIndexServer reports zeros.
  uint64_t shards_total = 0;
  uint64_t shards_up = 0;
  uint64_t shards_degraded = 0;
  uint64_t shards_down = 0;
  /// Shards with at least one stale replica: one that overflowed its
  /// write-replay queue and needs out-of-band re-seeding. Distinct from
  /// the health counts above (a stale replica pins its shard's count in
  /// degraded/down otherwise invisibly).
  uint64_t shards_stale = 0;
  /// Server-side cursor telemetry (kGetStats): currently open cursors and
  /// lifetime counters. On a ShardedServer facade the totals cover the
  /// facade's composite cursors plus every shard's per-shard cursors.
  uint64_t cursors_open = 0;
  uint64_t cursors_opened_total = 0;
  uint64_t cursors_expired_total = 0;  ///< TTL evictions
  uint64_t cursors_reaped_total = 0;   ///< closed by connection drop
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_ENTRY_H_
