// Mutation event bus: the single ordering source of truth for index
// mutations. Every successful Insert/Delete publishes a shard-monotonic
// `(seq, object id, kind)` event here while the caller still holds the
// index writer lock, so the bus sequence IS the mutation order — no
// reordering window exists between the tree change and its event.
//
// Two consumers ride the bus:
//  * Watchers (kWatch change streams, secure/watch.h): events are kept in
//    a bounded in-memory ring so a subscriber can replay from a resume
//    token (`ReplayAfter`). A token that has fallen off the ring is an
//    explicit OutOfRange ("watch lost") — the client must re-run its
//    query; silence is never an option.
//  * The compactor's relocation journal: while a CompactionPass is armed,
//    payload stores/frees are forwarded to it through the same choke
//    point (`JournalStore`/`JournalFree`), replacing the old bare
//    `active_pass_` pointer in MIndex. One place sees every mutation.
//
// Locking: the journal side (Arm/Disarm/JournalStore/JournalFree/armed)
// is called only under the index writer lock, exactly like the pointer it
// replaced — no internal locking. The event side (Publish/ReplayAfter/
// WaitBeyond/last_seq) takes the bus's own mutex, because watch delivery
// threads read the ring WITHOUT the index lock.

#ifndef SIMCLOUD_MINDEX_MUTATION_BUS_H_
#define SIMCLOUD_MINDEX_MUTATION_BUS_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "metric/object.h"

namespace simcloud {
namespace mindex {

class CompactionPass;

enum class MutationKind : uint8_t {
  kInsert = 1,
  kDelete = 2,
};

/// One published mutation. `seq` is shard-monotonic starting at 1; it is
/// the resume token a watcher hands back to continue after `seq`.
/// `pivot_distances` and `payload` are filled for inserts only (they are
/// what a range-filtered watcher needs to match and what a push frame
/// delivers); deletes carry just the id.
struct MutationEvent {
  uint64_t seq = 0;
  MutationKind kind = MutationKind::kInsert;
  metric::ObjectId id = 0;
  std::vector<float> pivot_distances;
  Bytes payload;
};

class MutationBus {
 public:
  /// `ring_capacity` bounds the replay window (events, not bytes); 0 is
  /// clamped to 1 so `last_seq` is always replayable.
  explicit MutationBus(size_t ring_capacity);

  MutationBus(const MutationBus&) = delete;
  MutationBus& operator=(const MutationBus&) = delete;

  // --- Event side (bus mutex) ---------------------------------------

  /// Publishes one event; assigns and returns its sequence number.
  /// Callers hold the index writer lock, which orders concurrent
  /// publishes; the internal mutex only protects against concurrent
  /// readers.
  uint64_t Publish(MutationKind kind, metric::ObjectId id,
                   std::vector<float> pivot_distances, Bytes payload);

  /// Appends every retained event with seq > `after_seq` to `*out`, in
  /// order. OutOfRange when events after `after_seq` have already fallen
  /// off the ring (the watcher is lost and must re-run its query) or when
  /// `after_seq` is beyond `last_seq` (a token from a different shard or
  /// a corrupt client).
  Status ReplayAfter(uint64_t after_seq, std::vector<MutationEvent>* out) const;

  /// Blocks until `last_seq > after_seq` or `timeout_ms` elapses.
  /// Returns true when new events are available.
  bool WaitBeyond(uint64_t after_seq, int timeout_ms) const;

  /// Sequence number of the newest published event (0 = none yet).
  uint64_t last_seq() const;

  /// Oldest sequence still in the ring (0 = ring empty).
  uint64_t first_seq() const;

  // --- Journal side (index writer lock, no internal locking) --------

  /// Arms/disarms the relocation journal of an in-flight compaction pass
  /// (set/cleared in RunCompactionPass's exclusive slices).
  void ArmJournal(CompactionPass* pass) { pass_ = pass; }
  void DisarmJournal() { pass_ = nullptr; }
  bool journal_armed() const { return pass_ != nullptr; }

  /// Forwards a payload store/free to the armed pass; no-ops otherwise.
  void JournalStore(uint64_t payload_handle);
  void JournalFree(uint64_t payload_handle);

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::deque<MutationEvent> ring_;
  uint64_t next_seq_ = 1;

  /// The armed relocation journal; guarded by the index writer lock, not
  /// by `mutex_` (see header comment).
  CompactionPass* pass_ = nullptr;
};

}  // namespace mindex
}  // namespace simcloud

#endif  // SIMCLOUD_MINDEX_MUTATION_BUS_H_
