#include "mindex/compactor.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mindex/payload_cache.h"

namespace simcloud {
namespace mindex {

namespace {

/// One remembered hot payload: its handle in the NEW log plus the bytes
/// (moved out of the rewrite batch, not copied), re-admitted into the
/// fresh cache after the swap.
struct HotPayload {
  PayloadHandle new_handle = 0;
  Bytes payload;
};

}  // namespace

Result<CompactionReport> CompactIndexStorage(
    CellTree* tree, std::unique_ptr<BucketStorage>* storage,
    const std::string& disk_path, uint64_t cache_bytes,
    const CompactionOptions& options) {
  BucketStorage* view = storage->get();
  const BucketStorage::CompactionStats stats = view->GetCompactionStats();

  CompactionReport report;
  report.bytes_before = stats.TotalBytes();
  report.bytes_after = stats.TotalBytes();
  if (stats.dead_bytes == 0) return report;  // nothing to reclaim
  if (!options.force && (options.garbage_threshold <= 0.0 ||
                         stats.GarbageRatio() < options.garbage_threshold)) {
    return report;
  }

  // The stack is either a bare backend or PayloadCache-over-backend; the
  // backend kind decides whether the rewrite goes through a temp file.
  PayloadCache* cache = dynamic_cast<PayloadCache*>(view);
  const BucketStorage* backend = cache ? &cache->base() : view;
  const bool on_disk = dynamic_cast<const DiskStorage*>(backend) != nullptr;
  if (on_disk && disk_path.empty()) {
    return Status::FailedPrecondition(
        "disk-backed index has no disk_path to compact into");
  }
  const std::string temp_path = disk_path + ".compact";

  std::unique_ptr<BucketStorage> fresh;
  DiskStorage* fresh_disk = nullptr;
  if (on_disk) {
    SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<DiskStorage> disk,
                              DiskStorage::Create(temp_path));
    fresh_disk = disk.get();
    fresh = std::move(disk);
  } else {
    fresh = std::make_unique<MemoryStorage>();
  }
  // On any rewrite failure the fresh log is abandoned; the old stack and
  // every entry are untouched, so the index keeps serving as if the pass
  // never started. The one exception is the simulated-crash test hook,
  // which deliberately leaves the half-written temp file behind.
  auto abandon = [&](Status status, bool keep_temp_file) -> Status {
    fresh.reset();  // close the temp file before removing it
    if (on_disk && !keep_temp_file) std::remove(temp_path.c_str());
    return status;
  };

  // Snapshot the hot set (most-recent first), then drop the old cache's
  // bytes immediately: the rewrite reads the backend directly, and
  // releasing the old copies up front keeps the pass's transient memory
  // to roughly one hot set instead of three copies of it. If the pass
  // fails below, the index keeps serving correctly — just cold.
  std::vector<PayloadHandle> hot_snapshot;
  std::unordered_set<PayloadHandle> hot_handles;
  if (cache != nullptr) {
    hot_snapshot = cache->HotHandles();
    hot_handles.insert(hot_snapshot.begin(), hot_snapshot.end());
    cache->Clear();
  }

  // REWRITE. Entry pointers stay valid throughout: the tree is not
  // mutated (the caller holds the writer lock) and leaves are untouched.
  std::vector<Entry*> entries;
  entries.reserve(stats.live_payloads);
  Status walk = tree->ForEachEntryMutable([&](Entry& entry) -> Status {
    entries.push_back(&entry);
    return Status::OK();
  });
  if (!walk.ok()) return abandon(walk, /*keep_temp_file=*/false);

  std::vector<PayloadHandle> new_handles(entries.size());
  std::unordered_map<PayloadHandle, HotPayload> hot;  // keyed by OLD handle
  hot.reserve(hot_handles.size());
  std::vector<PayloadHandle> batch_handles;
  std::vector<Bytes> batch_payloads;
  const size_t batch_size = options.batch_size == 0 ? 256 : options.batch_size;
  for (size_t begin = 0; begin < entries.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, entries.size());
    batch_handles.clear();
    for (size_t i = begin; i < end; ++i) {
      batch_handles.push_back(entries[i]->payload_handle);
    }
    // Fetch straight from the backend: routing the scan through the cache
    // would insert every miss into a cache that REMAP discards anyway —
    // one wasted allocation + eviction churn per live payload.
    Status fetched = backend->FetchMany(batch_handles, &batch_payloads);
    if (!fetched.ok()) return abandon(fetched, /*keep_temp_file=*/false);
    for (size_t i = begin; i < end; ++i) {
      if (options.fail_after_payloads > 0 &&
          report.payloads_moved >= options.fail_after_payloads) {
        return abandon(Status::IoError("simulated crash during compaction "
                                       "(fail_after_payloads test hook)"),
                       /*keep_temp_file=*/true);
      }
      Bytes& payload = batch_payloads[i - begin];
      Result<PayloadHandle> stored = fresh->Store(payload);
      if (!stored.ok()) {
        return abandon(stored.status(), /*keep_temp_file=*/false);
      }
      new_handles[i] = *stored;
      report.payloads_moved++;
      if (hot_handles.count(entries[i]->payload_handle) > 0) {
        hot[entries[i]->payload_handle] =
            HotPayload{*stored, std::move(payload)};
      }
    }
  }

  // SWAP: make the fresh log durable, then atomically take over the old
  // log's path. The old descriptor keeps serving the unlinked inode until
  // the stack below is replaced.
  if (on_disk) {
    Status synced = fresh_disk->Sync();
    if (!synced.ok()) return abandon(synced, /*keep_temp_file=*/false);
    Status renamed = fresh_disk->RenameTo(disk_path);
    if (!renamed.ok()) return abandon(renamed, /*keep_temp_file=*/false);
  }

  // REMAP: from here on nothing can fail. Point every entry at the new
  // log and replace the stack; rebuilding the cache invalidates every
  // old-handle entry in one stroke, and the saved hot set is re-admitted
  // under the new handles so the working set survives the swap warm.
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i]->payload_handle = new_handles[i];
  }
  if (cache_bytes > 0) {
    auto fresh_cache =
        std::make_unique<PayloadCache>(std::move(fresh), cache_bytes);
    // Admit least-recent first so the rebuilt LRU order matches the
    // pre-compaction recency, releasing each retained copy as it goes.
    for (auto it = hot_snapshot.rbegin(); it != hot_snapshot.rend(); ++it) {
      auto found = hot.find(*it);
      if (found == hot.end()) continue;  // hot but no longer indexed
      fresh_cache->Admit(found->second.new_handle, found->second.payload);
      Bytes().swap(found->second.payload);
    }
    fresh = std::move(fresh_cache);
  }
  *storage = std::move(fresh);

  report.compacted = true;
  report.bytes_after = (*storage)->TotalBytes();
  report.reclaimed_bytes = report.bytes_before - report.bytes_after;
  return report;
}

}  // namespace mindex
}  // namespace simcloud
