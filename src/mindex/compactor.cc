#include "mindex/compactor.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "mindex/payload_cache.h"
#include "obs/metrics.h"

namespace simcloud {
namespace mindex {

namespace {

/// Deadest segments first (ties by position). Partial passes pick their
/// targets in this order; full passes copy in it too — the dead-heavy
/// segments the operator cares about reaching a durable home first.
void RankSegmentsDeadestFirst(
    std::vector<BucketStorage::SegmentView>* segments) {
  std::sort(segments->begin(), segments->end(),
            [](const BucketStorage::SegmentView& a,
               const BucketStorage::SegmentView& b) {
              const double ra = a.DeadRatio(), rb = b.DeadRatio();
              return ra != rb ? ra > rb : a.segment < b.segment;
            });
}

}  // namespace

CompactionPass::CompactionPass(std::unique_ptr<BucketStorage>* storage,
                               std::string disk_path, uint64_t cache_bytes,
                               CompactorOptions options)
    : storage_(storage),
      disk_path_(std::move(disk_path)),
      cache_bytes_(cache_bytes),
      options_(std::move(options)) {}

CompactionPass::~CompactionPass() {
  if (!finished_) Abandon();
}

const BucketStorage* CompactionPass::backend() const {
  const auto* cache = dynamic_cast<const PayloadCache*>(storage_->get());
  return cache ? &cache->base() : storage_->get();
}

Result<bool> CompactionPass::Begin() {
  BucketStorage* view = storage_->get();
  const BucketStorage::CompactionStats stats = view->GetCompactionStats();
  report_.bytes_before = stats.TotalBytes();
  report_.bytes_after = stats.TotalBytes();
  report_.mode = options_.mode;
  if (stats.dead_bytes == 0) {  // nothing to reclaim
    finished_ = true;
    return false;
  }
  if (!options_.force &&
      (options_.garbage_threshold <= 0.0 ||
       stats.GarbageRatio() < options_.garbage_threshold)) {
    finished_ = true;
    return false;
  }
  // Partial passes need in-place segment release; backends without it
  // (memory: one heap arena, nothing to punch) get the full rewrite.
  if (options_.mode == CompactionMode::kPartial &&
      view->SupportsSegmentRelease()) {
    return BeginPartial();
  }
  report_.mode = CompactionMode::kFull;
  return BeginFull();
}

Result<bool> CompactionPass::BeginFull() {
  // The fresh log is opened in the first rewrite step: file creation is
  // an ext4 journal transaction away from "microseconds", and it touches
  // no index state, so it has no business under the writer lock.
  if (dynamic_cast<const DiskStorage*>(backend()) != nullptr &&
      disk_path_.empty()) {
    finished_ = true;
    return Status::FailedPrecondition(
        "disk-backed index has no disk_path to compact into");
  }
  return true;
}

Result<bool> CompactionPass::BeginPartial() {
  // Deadest sealed segments first, until the live-byte budget is spent.
  std::vector<BucketStorage::SegmentView> segments =
      storage_->get()->Segments();
  segments.erase(
      std::remove_if(segments.begin(), segments.end(),
                     [&](const BucketStorage::SegmentView& view) {
                       return !view.sealed ||
                              view.DeadRatio() <
                                  options_.segment_dead_threshold;
                     }),
      segments.end());
  if (segments.empty()) {  // all garbage lives in ineligible segments
    finished_ = true;
    return false;
  }
  RankSegmentsDeadestFirst(&segments);
  uint64_t live_budget = 0;
  for (const BucketStorage::SegmentView& view : segments) {
    target_segments_.insert(view.segment);
    target_order_.push_back(view.segment);
    live_budget += view.bytes - view.dead_bytes;
    if (options_.max_pass_bytes > 0 &&
        live_budget >= options_.max_pass_bytes) {
      break;
    }
  }
  return true;
}

CompactionPass::StepLock CompactionPass::NextStepLock() const {
  if (report_.mode == CompactionMode::kPartial && !staged_handles_.empty()) {
    return StepLock::kExclusive;  // append the staged batch to the log
  }
  return StepLock::kShared;
}

Result<bool> CompactionPass::RewriteStep() {
  if (rewrite_done_ || finished_) return false;
  if (!enumerated_) {
    if (report_.mode == CompactionMode::kFull && fresh_ == nullptr) {
      if (dynamic_cast<const DiskStorage*>(backend()) != nullptr) {
        SIMCLOUD_ASSIGN_OR_RETURN(
            std::unique_ptr<DiskStorage> disk,
            DiskStorage::Create(disk_path_ + ".compact"));
        fresh_disk_ = disk.get();
        fresh_ = std::move(disk);
      } else {
        fresh_ = std::make_unique<MemoryStorage>();
      }
    }
    SIMCLOUD_RETURN_NOT_OK(EnumeratePending());
    enumerated_ = true;
    return true;
  }
  if (report_.mode == CompactionMode::kPartial) {
    if (!staged_handles_.empty()) {
      SIMCLOUD_RETURN_NOT_OK(PartialAppendStep());
    } else if (cursor_ < pending_.size()) {
      SIMCLOUD_RETURN_NOT_OK(PartialFetchStep());
    }
    rewrite_done_ = cursor_ >= pending_.size() && staged_handles_.empty();
    return !rewrite_done_;
  }
  if (cursor_ < pending_.size()) {
    SIMCLOUD_RETURN_NOT_OK(CopyStep());
    if (cursor_ < pending_.size()) return true;
  }
  // The sweep is done; catch up payloads that writers appended to the old
  // log while it ran. Each drain happens under the shared lock, so new
  // stores can only land between steps — the set shrinks toward the
  // handful Finish copies under the writer lock.
  if (!journal_stores_.empty() && drained_rounds_ < kMaxJournalDrains) {
    pending_ = std::move(journal_stores_);
    journal_stores_.clear();
    cursor_ = 0;
    ++drained_rounds_;
    return true;
  }
  rewrite_done_ = true;
  return false;
}

Status CompactionPass::EnumeratePending() {
  const BucketStorage* view = storage_->get();
  // Group live handles by segment so the copy order follows the segment
  // ranking (deadest first); within a segment, handle order == offset
  // order, which keeps the batched backend reads coalesced.
  std::unordered_map<uint64_t, std::vector<PayloadHandle>> by_segment;
  uint64_t live_payloads = 0;
  SIMCLOUD_RETURN_NOT_OK(view->ForEachLiveHandle(
      [&](PayloadHandle handle, uint64_t segment, uint32_t bytes) {
        (void)bytes;
        if (report_.mode == CompactionMode::kPartial &&
            target_segments_.count(segment) == 0) {
          return;
        }
        by_segment[segment].push_back(handle);
        ++live_payloads;
      }));
  // Partial passes already ranked their targets in Begin; full passes
  // rank the whole table here (off the writer lock).
  std::vector<uint64_t> order;
  if (report_.mode == CompactionMode::kPartial) {
    order = target_order_;
  } else {
    std::vector<BucketStorage::SegmentView> segments = view->Segments();
    RankSegmentsDeadestFirst(&segments);
    order.reserve(segments.size());
    for (const BucketStorage::SegmentView& segment : segments) {
      order.push_back(segment.segment);
    }
  }
  pending_.reserve(live_payloads);
  for (uint64_t segment : order) {
    auto it = by_segment.find(segment);
    if (it == by_segment.end()) continue;
    pending_.insert(pending_.end(), it->second.begin(), it->second.end());
  }
  return Status::OK();
}

Status CompactionPass::CopyStep() {
  const BucketStorage* source = backend();
  auto* cache = dynamic_cast<PayloadCache*>(storage_->get());
  const size_t batch =
      options_.batch_size == 0 ? 256 : options_.batch_size;
  const size_t end = std::min(cursor_ + batch, pending_.size());
  std::vector<PayloadHandle> handles;
  handles.reserve(end - cursor_);
  for (size_t i = cursor_; i < end; ++i) {
    const PayloadHandle handle = pending_[i];
    // Skip payloads freed since enumeration and journal entries the sweep
    // already covered — the journal may echo handles the enumeration saw.
    if (!source->IsLive(handle) || relocated_.count(handle) > 0) continue;
    handles.push_back(handle);
  }
  cursor_ = end;
  if (handles.empty()) return Status::OK();
  // Read the backend directly: routing the scan through the PayloadCache
  // would evict the query-serving hot set one miss at a time.
  std::vector<Bytes> payloads;
  SIMCLOUD_RETURN_NOT_OK(source->FetchMany(handles, &payloads));
  for (size_t i = 0; i < handles.size(); ++i) {
    if (options_.fail_after_payloads > 0 &&
        report_.payloads_moved >= options_.fail_after_payloads) {
      keep_temp_file_ = fresh_disk_ != nullptr;
      return Status::IoError(
          "simulated crash during compaction (fail_after_payloads test "
          "hook)");
    }
    Bytes& payload = payloads[i];
    const bool hot = cache != nullptr && cache->Contains(handles[i]);
    SIMCLOUD_ASSIGN_OR_RETURN(PayloadHandle stored, fresh_->Store(payload));
    relocated_[handles[i]] = stored;
    report_.payloads_moved++;
    if (hot) hot_[handles[i]] = HotPayload{stored, std::move(payload)};
  }
  return Status::OK();
}

Status CompactionPass::PartialFetchStep() {
  const BucketStorage* source = backend();
  const size_t batch =
      options_.batch_size == 0 ? 256 : options_.batch_size;
  const size_t end = std::min(cursor_ + batch, pending_.size());
  staged_handles_.clear();
  for (size_t i = cursor_; i < end; ++i) {
    if (!source->IsLive(pending_[i])) continue;  // freed since enumeration
    staged_handles_.push_back(pending_[i]);
  }
  cursor_ = end;
  if (staged_handles_.empty()) return Status::OK();
  return source->FetchMany(staged_handles_, &staged_payloads_);
}

Status CompactionPass::PartialAppendStep() {
  // Writer lock held: appends mutate the live log. The append itself is
  // the only work here — at most batch_size payload copies — so the
  // exclusive hold stays in the microsecond range.
  BucketStorage* view = storage_->get();
  for (size_t i = 0; i < staged_handles_.size(); ++i) {
    const PayloadHandle old_handle = staged_handles_[i];
    // A delete may have freed the payload between the fetch and this
    // append; its bytes die with the segment, nothing to relocate.
    if (!view->IsLive(old_handle)) continue;
    if (options_.fail_after_payloads > 0 &&
        report_.payloads_moved >= options_.fail_after_payloads) {
      return Status::IoError(
          "simulated crash during compaction (fail_after_payloads test "
          "hook)");
    }
    SIMCLOUD_ASSIGN_OR_RETURN(PayloadHandle stored,
                              view->Store(staged_payloads_[i]));
    relocated_[old_handle] = stored;
    report_.payloads_moved++;
  }
  staged_handles_.clear();
  staged_payloads_.clear();
  return Status::OK();
}

Status CompactionPass::PrepareSwap() {
  if (report_.mode == CompactionMode::kPartial || !rewrite_done_ ||
      finished_) {
    return Status::OK();
  }
  if (fresh_disk_ != nullptr) {
    SIMCLOUD_RETURN_NOT_OK(fresh_disk_->Sync());
    SIMCLOUD_RETURN_NOT_OK(fresh_disk_->RenameTo(disk_path_));
  }
  // Pre-build the replacement cache off the lock too: wrapping the fresh
  // log and re-admitting the hot set is a hot-set-sized memcpy, which the
  // swap slice should not pay for. Journal frees that land after this
  // point go through the wrapped stack in Finish, evicting as they must.
  auto* old_cache = dynamic_cast<PayloadCache*>(storage_->get());
  if (cache_bytes_ > 0) {
    auto fresh_cache =
        std::make_unique<PayloadCache>(std::move(fresh_), cache_bytes_);
    if (old_cache != nullptr) {
      // Admit least-recent first so the rebuilt LRU order matches the
      // pre-swap recency (HotHandles is safe off-lock: the cache carries
      // its own shard locks), releasing each retained copy as it goes.
      std::vector<PayloadHandle> order = old_cache->HotHandles();
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        auto found = hot_.find(*it);
        if (found == hot_.end()) continue;  // no longer cached or indexed
        fresh_cache->Admit(found->second.new_handle, found->second.payload);
        Bytes().swap(found->second.payload);
      }
    }
    hot_.clear();
    fresh_ = std::move(fresh_cache);
  }
  swap_prepared_ = true;
  return Status::OK();
}

Status CompactionPass::Finish(CellTree* tree) {
  Status status = report_.mode == CompactionMode::kPartial
                      ? FinishPartial(tree)
                      : FinishFull(tree);
  if (status.ok()) {
    finished_ = true;
    static obs::Counter* const moved = obs::Registry::Default().GetCounter(
        "simcloud_compaction_payloads_moved_total");
    static obs::Counter* const released = obs::Registry::Default().GetCounter(
        "simcloud_compaction_segments_released_total");
    moved->Add(report_.payloads_moved);
    released->Add(report_.segments_released);
  }
  return status;
}

Status CompactionPass::FinishFull(CellTree* tree) {
  // The sync + rename + cache pre-build all happened in PrepareSwap, off
  // the lock; the driver never reaches Finish without it (a PrepareSwap
  // failure abandons the pass instead).
  if (!swap_prepared_) {
    return Status::Internal(
        "CompactionPass::Finish requires PrepareSwap in full mode");
  }
  const BucketStorage* source = backend();
  // Stragglers: inserts journaled after the last drain. Writers are
  // excluded now, so this set is exactly what arrived since that drain.
  for (PayloadHandle handle : journal_stores_) {
    if (relocated_.count(handle) > 0 || !source->IsLive(handle)) continue;
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload, source->Fetch(handle));
    SIMCLOUD_ASSIGN_OR_RETURN(PayloadHandle stored, fresh_->Store(payload));
    relocated_[handle] = stored;
    report_.payloads_moved++;
  }
  // Mid-pass frees: the fresh-log copy of a payload deleted during the
  // rewrite is garbage the moment it was copied — free it so the new log
  // accounts it dead, and drop it from the remap and the hot set.
  for (PayloadHandle handle : journal_freed_) {
    auto it = relocated_.find(handle);
    if (it == relocated_.end()) continue;  // freed before it was copied
    SIMCLOUD_RETURN_NOT_OK(fresh_->Free(it->second));
    relocated_.erase(it);
    hot_.erase(handle);
  }
  // Every entry must have a relocation — an entry without one would
  // dangle into the discarded log, so the pass aborts (old stack intact)
  // rather than remap.
  std::vector<std::pair<Entry*, PayloadHandle>> remap;
  Status walk = tree->ForEachEntryMutable([&](Entry& entry) -> Status {
    auto it = relocated_.find(entry.payload_handle);
    if (it == relocated_.end()) {
      return Status::Internal(
          "compaction lost entry " + std::to_string(entry.id) +
          ": payload handle " + std::to_string(entry.payload_handle) +
          " has no relocation");
    }
    remap.emplace_back(&entry, it->second);
    return Status::OK();
  });
  SIMCLOUD_RETURN_NOT_OK(walk);

  // REMAP: from here on nothing can fail. Point every entry at the new
  // log and swap the pre-built stack in; replacing the cache wholesale
  // invalidates every old-handle entry in one stroke, and the payloads
  // that were cached when copied were re-admitted (PrepareSwap) under
  // their new handles, so the working set survives the swap warm.
  for (auto& [entry, new_handle] : remap) {
    entry->payload_handle = new_handle;
  }
  // Park the old stack: tearing it down (cache frees, closing the old
  // log's descriptor) is heap-and-syscall work that the swap slice must
  // not pay for — it dies with the pass object, off the lock.
  retired_ = std::move(*storage_);
  *storage_ = std::move(fresh_);

  report_.compacted = true;
  report_.bytes_after = (*storage_)->TotalBytes();
  report_.reclaimed_bytes = report_.bytes_before > report_.bytes_after
                                ? report_.bytes_before - report_.bytes_after
                                : 0;
  return Status::OK();
}

Status CompactionPass::FinishPartial(CellTree* tree) {
  BucketStorage* view = storage_->get();
  // A payload deleted after its relocation copy was appended leaves that
  // copy orphaned at the tail — free it (through the cache, so a cached
  // copy can never be served under the dead handle).
  for (PayloadHandle handle : journal_freed_) {
    auto it = relocated_.find(handle);
    if (it == relocated_.end()) continue;
    SIMCLOUD_RETURN_NOT_OK(view->Free(it->second));
    relocated_.erase(it);
  }
  // Remap the surviving entries onto their relocated copies and free the
  // originals; that turns every target segment fully dead.
  std::vector<std::pair<Entry*, PayloadHandle>> remap;
  Status walk = tree->ForEachEntryMutable([&](Entry& entry) -> Status {
    auto it = relocated_.find(entry.payload_handle);
    if (it != relocated_.end()) remap.emplace_back(&entry, it->second);
    return Status::OK();
  });
  SIMCLOUD_RETURN_NOT_OK(walk);
  // Apply the whole remap without early exit: once an entry references
  // its relocation copy, that copy is live data — it leaves relocated_
  // immediately so a later failure's Abandon can never free it. A failed
  // Free of an original (unreachable short of a closed backend) is
  // surfaced after the loop; until then it only costs dead bytes.
  Status deferred = Status::OK();
  for (auto& [entry, new_handle] : remap) {
    const PayloadHandle old_handle = entry->payload_handle;
    entry->payload_handle = new_handle;
    relocated_.erase(old_handle);
    Status freed = view->Free(old_handle);
    if (!freed.ok() && deferred.ok()) deferred = freed;
  }
  SIMCLOUD_RETURN_NOT_OK(deferred);
  // Release every target segment that is now pure garbage (all of them,
  // unless the pass was aborted mid-way — verified rather than assumed).
  std::vector<uint64_t> releasable;
  for (const BucketStorage::SegmentView& segment : view->Segments()) {
    if (target_segments_.count(segment.segment) == 0) continue;
    if (segment.sealed && segment.dead_bytes == segment.bytes) {
      releasable.push_back(segment.segment);
    }
  }
  if (!releasable.empty()) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t released,
                              view->ReleaseDeadSegments(releasable));
    (void)released;
    report_.segments_released = releasable.size();
  }
  report_.compacted =
      report_.payloads_moved > 0 || report_.segments_released > 0;
  report_.bytes_after = view->TotalBytes();
  report_.reclaimed_bytes = report_.bytes_before > report_.bytes_after
                                ? report_.bytes_before - report_.bytes_after
                                : 0;
  return Status::OK();
}

void CompactionPass::Abandon() {
  if (finished_) return;
  if (report_.mode == CompactionMode::kPartial) {
    // The relocation copies already appended to the live log are
    // unreferenced; account them dead so the next pass reclaims them.
    BucketStorage* view = storage_->get();
    for (const auto& [old_handle, new_handle] : relocated_) {
      (void)old_handle;
      Status freed = view->Free(new_handle);
      (void)freed;  // best-effort: the stack is intact either way
    }
  } else if (fresh_ != nullptr) {
    const bool on_disk = fresh_disk_ != nullptr;
    fresh_disk_ = nullptr;
    fresh_.reset();  // close the abandoned log before removing it
    if (on_disk && !keep_temp_file_) {
      // Before PrepareSwap the half-written log still sits at
      // <disk_path>.compact; after it, the rename already installed it at
      // <disk_path> (unlinking the old log, which the live stack keeps
      // serving through its descriptor). Remove whichever copy exists so
      // an abandoned pass never leaves its incomplete log squatting on
      // the log's path — after a post-rename abandon the durable state
      // is the persistence snapshot, exactly as after a crash.
      std::remove(
          (swap_prepared_ ? disk_path_ : disk_path_ + ".compact").c_str());
    }
  }
  relocated_.clear();
  hot_.clear();
  staged_handles_.clear();
  staged_payloads_.clear();
  finished_ = true;
}

void CompactionPass::OnStore(PayloadHandle handle) {
  if (finished_) return;
  // Partial passes never consume the store journal: mid-pass appends can
  // only land in the unsealed tail segment, which is never a relocation
  // target — recording them would just grow an unread vector.
  if (report_.mode == CompactionMode::kPartial) return;
  journal_stores_.push_back(handle);
}

void CompactionPass::OnFree(PayloadHandle handle) {
  if (finished_) return;
  journal_freed_.push_back(handle);
}

}  // namespace mindex
}  // namespace simcloud
