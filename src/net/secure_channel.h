// Transport security for the similarity cloud: a pre-shared-key mutual
// handshake plus an AEAD record layer, built entirely from the repo's
// own primitives (HKDF/HMAC-SHA256, AES-CTR encrypt-then-MAC AEAD,
// OS-entropy nonces).
//
// The paper's trust model encrypts payloads *at rest* on the
// honest-but-curious server, but the base wire protocol trusts the
// network: permutation prefixes, candidate counts and ciphertext sizes
// cross the TCP link in the clear, where a passive observer can run the
// exact leakage analyses secure/attack.{h,cc} implements. This layer
// closes that gap. With ChannelPolicy::kSecure on both ends, every byte
// after the TCP accept is either a handshake message or an AEAD record.
//
// ## Handshake (1-RTT, PSK mutual authentication)
//
//   C -> S  ClientHello  = magic(4) | version(1) | client_nonce(32)
//   S -> C  ServerHello  = magic(4) | version(1) | server_nonce(32)
//                          | server_tag(32)
//   C -> S  ClientFinish = client_tag(32)
//
//   hs_mac_key = HKDF-Expand(HKDF-Extract({}, psk), "simcloud hs mac", 32)
//   server_tag = HMAC(hs_mac_key, "server finish" || both nonces)
//   client_tag = HMAC(hs_mac_key, "client finish" || both nonces)
//
// The client verifies server_tag before sending anything further (a
// server that does not hold the PSK cannot produce it), sends
// ClientFinish, and may immediately pipeline records behind it — first
// application byte after one round trip. The server verifies client_tag
// before opening any record. Both tags bind both fresh nonces, so a
// replayed handshake transcript fails against the new peer nonce.
//
// ## Record layer
//
//   record = u32 LE sealed_length | AeadCipher::Seal(plaintext, ad)
//   ad     = direction label ("sc-c2s" / "sc-s2c") | u64 epoch | u64 seq
//
// Each direction derives its epoch key
//   HKDF-Expand(HKDF-Extract(client_nonce || server_nonce, psk),
//               label || u64 epoch, 32)
// and counts records per (epoch, sequence). The sequence pair is not
// transmitted — both ends count records — so a replayed, reordered,
// dropped or truncated record fails authentication and kills the
// connection. After `rekey_after_records` records or
// `rekey_after_bytes` plaintext bytes a direction advances its epoch
// and re-derives its key; both ends observe the same record stream, so
// the switch is deterministic and needs no signaling.
//
// ## Downgrade protection
//
// A secure server hard-closes any connection whose first bytes are not
// the handshake magic, so plaintext and legacy (bit-31) clients are
// rejected outright. The magic is chosen so that a *plaintext* server
// parsing it as a frame header sees a declared length beyond its 1 GiB
// default limit and closes the connection, which surfaces as a clean
// handshake failure at the secure client instead of a hang.
//
// Threading: a SecureChannel has independent send and receive halves.
// Seal() calls must be externally serialized, Ingest() calls must be
// externally serialized, but one Seal and one Ingest may run
// concurrently (TcpTransport writes under its write lock while the
// elected reader ingests; the server's event loop does both alone).
// Key material (PSK copies, PRKs, epoch keys, transcripts) is wiped on
// destruction.

#ifndef SIMCLOUD_NET_SECURE_CHANNEL_H_
#define SIMCLOUD_NET_SECURE_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aead.h"

namespace simcloud {
namespace net {

/// How a listener / transport treats the wire.
enum class ChannelPolicy : uint8_t {
  /// The original protocol, byte-identical on the wire; the network is
  /// trusted (loopback deployments, the paper's evaluation setup).
  kPlaintext = 0,
  /// PSK handshake + AEAD records on every connection; plaintext and
  /// legacy peers are rejected.
  kSecure = 1,
};

/// Configuration of the secure channel (shared by both ends).
struct SecureChannelOptions {
  /// Pre-shared key, >= 16 bytes. The data owner derives it from the
  /// index secret (SecretKey::DeriveChannelKey) and provisions it to the
  /// server alongside the service, like the query-auth MAC key.
  Bytes psk;
  /// A direction rekeys (epoch bump + HKDF re-derivation) after this
  /// many records...
  uint64_t rekey_after_records = 1ull << 20;
  /// ...or this many plaintext bytes, whichever comes first.
  uint64_t rekey_after_bytes = 1ull << 30;
  /// Largest record (header + sealed bytes) a receiver accepts before
  /// declaring a protocol violation. TcpServer::Start derives this from
  /// its max_frame_bytes; the client default admits any legal frame.
  uint64_t max_record_bytes = (1ull << 31) + 128;
  /// Socket receive timeout while the *client* runs its blocking
  /// handshake, so a silent or misconfigured server fails fast.
  int handshake_timeout_ms = 5000;
};

/// First bytes of every handshake: never a plausible plaintext frame
/// header (a default plaintext server sees a > 1 GiB declared length and
/// closes), never valid UTF-8 protocol bytes.
inline constexpr uint8_t kSecureChannelMagic[4] = {'S', 'C', 'H', 0xE5};
inline constexpr uint8_t kSecureChannelVersion = 1;
inline constexpr size_t kChannelNonceSize = 32;
inline constexpr size_t kChannelTagSize = 32;
inline constexpr size_t kClientHelloSize = 5 + kChannelNonceSize;
inline constexpr size_t kServerHelloSize =
    5 + kChannelNonceSize + kChannelTagSize;
inline constexpr size_t kClientFinishSize = kChannelTagSize;

/// An open record channel: Seal outgoing frames into records, Ingest
/// raw wire bytes back into the plaintext stream. Created by the
/// handshake drivers below.
class SecureChannel {
 public:
  /// u32 length prefix of every record.
  static constexpr size_t kRecordHeaderSize = 4;
  /// Wire overhead of one record over its plaintext.
  static constexpr size_t kSealOverhead = kRecordHeaderSize +
                                          crypto::AeadCipher::kIvSize +
                                          crypto::AeadCipher::kTagSize;

  /// Wipes the PRK and both direction keys.
  ~SecureChannel();

  /// Seals `plaintext` (one frame, or any stream segment) into one
  /// length-prefixed record under the send direction's current
  /// (epoch, seq), then advances the send schedule.
  Result<Bytes> Seal(const Bytes& plaintext);

  /// Consumes complete records from data[0..len), appending their
  /// plaintext to `*plain` and the consumed byte count to `*consumed`
  /// (partial trailing records are left for the caller's buffer). Any
  /// authentication failure — tampering, replay, reordering, truncation,
  /// a record beyond max_record_bytes — is a NetworkError; the caller
  /// must close the connection, and the channel stays failed.
  Status Ingest(const uint8_t* data, size_t len, size_t* consumed,
                Bytes* plain);

  /// Telemetry for tests and benches.
  uint64_t send_epoch() const { return send_.epoch; }
  uint64_t recv_epoch() const { return recv_.epoch; }
  uint64_t records_sealed() const { return send_.total_records; }
  uint64_t records_opened() const { return recv_.total_records; }

 private:
  friend class ClientHandshake;
  friend class ServerHandshake;

  struct Direction {
    const char* label = nullptr;  ///< "sc-c2s" or "sc-s2c"
    std::optional<crypto::AeadCipher> aead;
    uint64_t epoch = 0;
    uint64_t seq = 0;                ///< records within the epoch
    uint64_t bytes_in_epoch = 0;     ///< plaintext bytes within the epoch
    uint64_t total_records = 0;
  };

  /// Derives both direction keys for epoch 0 from the handshake PRK.
  static Result<std::unique_ptr<SecureChannel>> Create(
      bool is_client, Bytes prk, const SecureChannelOptions& options);

  SecureChannel() = default;

  /// Counts one record of `plaintext_bytes` against `dir`'s budgets and
  /// rekeys (epoch bump + re-derivation) when a budget is exhausted.
  Status Advance(Direction* dir, size_t plaintext_bytes);

  Bytes prk_;  ///< handshake master secret; wiped on destruction
  uint64_t rekey_after_records_ = 0;
  uint64_t rekey_after_bytes_ = 0;
  uint64_t max_record_bytes_ = 0;
  Status broken_ = Status::OK();  ///< sticky receive failure
  Direction send_;
  Direction recv_;
};

/// Client half of the handshake, I/O-free for testability (the blocking
/// socket driver is RunClientHandshake). Wipes its key material on
/// destruction.
class ClientHandshake {
 public:
  /// Draws the client nonce and builds the ClientHello.
  static Result<ClientHandshake> Start(const SecureChannelOptions& options);
  ~ClientHandshake();
  ClientHandshake(ClientHandshake&&) = default;
  ClientHandshake& operator=(ClientHandshake&&) = default;

  const Bytes& hello() const { return hello_; }

  /// Verifies the ServerHello (exactly kServerHelloSize bytes; a bad
  /// magic, version or tag is PermissionDenied). On success returns the
  /// ClientFinish message and opens `*channel`.
  Result<Bytes> Finish(const Bytes& server_hello,
                       std::unique_ptr<SecureChannel>* channel);

 private:
  explicit ClientHandshake(SecureChannelOptions options)
      : options_(std::move(options)) {}

  SecureChannelOptions options_;
  Bytes client_nonce_;
  Bytes hello_;
};

/// Server half of the handshake: a non-blocking state machine the epoll
/// loop feeds with raw bytes, so a mid-handshake connection never
/// blocks the loop or other connections. Wipes its key material on
/// destruction.
class ServerHandshake {
 public:
  explicit ServerHandshake(SecureChannelOptions options)
      : options_(std::move(options)) {}
  ~ServerHandshake();

  /// Consumes complete handshake messages from data[0..len), returning
  /// how many bytes were eaten (partial messages wait for more input).
  /// The ServerHello reply, when produced, is appended to `*to_send`.
  /// Errors — bytes that are not a handshake (a plaintext or legacy
  /// client: downgrade attempt), a bad version, a wrong finish tag —
  /// must close the connection.
  Result<size_t> Consume(const uint8_t* data, size_t len, Bytes* to_send);

  /// True once the ClientFinish verified; TakeChannel() yields the open
  /// record channel exactly once.
  bool done() const { return state_ == State::kDone; }
  std::unique_ptr<SecureChannel> TakeChannel() { return std::move(channel_); }

 private:
  enum class State { kAwaitHello, kAwaitFinish, kDone };

  SecureChannelOptions options_;
  State state_ = State::kAwaitHello;
  Bytes client_nonce_;
  Bytes server_nonce_;
  std::unique_ptr<SecureChannel> channel_;
};

/// Runs the full client handshake over a connected blocking socket
/// (applies options.handshake_timeout_ms to the reads). Distinguishes a
/// server that closed mid-handshake — the signature of a plaintext
/// server rejecting the magic — in its error message.
Result<std::unique_ptr<SecureChannel>> RunClientHandshake(
    int fd, const SecureChannelOptions& options);

}  // namespace net
}  // namespace simcloud

#endif  // SIMCLOUD_NET_SECURE_CHANNEL_H_
