#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/clock.h"
#include "common/log.h"
#include "common/serialize.h"

namespace simcloud {
namespace net {

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("send failed: ") +
                                  std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd, data + done, len - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("recv failed: ") +
                                  std::strerror(errno));
    }
    if (n == 0) return Status::NetworkError("peer closed connection");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const Bytes& payload) {
  uint8_t header[4];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));
  SIMCLOUD_RETURN_NOT_OK(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<Bytes> ReadFrame(int fd, size_t max_len) {
  uint8_t header[4];
  SIMCLOUD_RETURN_NOT_OK(ReadAll(fd, header, sizeof(header)));
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
  if (len > max_len) {
    return Status::NetworkError("frame length " + std::to_string(len) +
                                " exceeds limit");
  }
  Bytes payload(len);
  SIMCLOUD_RETURN_NOT_OK(ReadAll(fd, payload.data(), payload.size()));
  return payload;
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::NetworkError(std::string("socket failed: ") +
                                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::NetworkError(std::string("bind failed: ") +
                                std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return Status::NetworkError(std::string("getsockname failed: ") +
                                std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 4) < 0) {
    return Status::NetworkError(std::string("listen failed: ") +
                                std::strerror(errno));
  }
  running_.store(true);
  thread_ = std::thread(&TcpServer::ServeLoop, this);
  return Status::OK();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Wake connection threads blocked in recv; they unregister themselves.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::ServeLoop() {
  while (running_.load()) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (running_.load()) {
        SIMCLOUD_LOG(kWarn) << "accept failed: " << std::strerror(errno);
      }
      return;
    }
    const int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load()) {
      ::close(client_fd);
      return;
    }
    live_fds_.push_back(client_fd);
    conn_threads_.emplace_back([this, client_fd] {
      ServeConnection(client_fd);
      UnregisterConnection(client_fd);
      ::close(client_fd);
    });
  }
}

void TcpServer::UnregisterConnection(int client_fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), client_fd),
                  live_fds_.end());
}

void TcpServer::ServeConnection(int client_fd) {
  while (running_.load()) {
    Result<Bytes> request = ReadFrame(client_fd);
    if (!request.ok()) return;  // client disconnected or shutdown

    Stopwatch watch;
    Result<Bytes> response = handler_->Handle(*request);
    const int64_t server_nanos = watch.ElapsedNanos();

    BinaryWriter writer;
    writer.WriteU64(static_cast<uint64_t>(server_nanos));
    writer.WriteBool(response.ok());
    if (response.ok()) {
      writer.WriteRaw(response->data(), response->size());
    } else {
      writer.WriteString(response.status().ToString());
    }
    if (!WriteFrame(client_fd, writer.buffer()).ok()) return;
  }
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::NetworkError(std::string("socket failed: ") +
                                std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::NetworkError(std::string("connect failed: ") +
                                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpTransport>(new TcpTransport(fd));
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Bytes> TcpTransport::Call(const Bytes& request) {
  costs_.calls++;
  costs_.bytes_sent += request.size();

  Stopwatch watch;
  SIMCLOUD_RETURN_NOT_OK(WriteFrame(fd_, request));
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes framed, ReadFrame(fd_));
  const int64_t wall_nanos = watch.ElapsedNanos();

  BinaryReader reader(framed);
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t server_nanos, reader.ReadU64());
  SIMCLOUD_ASSIGN_OR_RETURN(bool ok, reader.ReadBool());
  costs_.bytes_received += framed.size();
  costs_.server_nanos += static_cast<int64_t>(server_nanos);
  costs_.communication_nanos +=
      std::max<int64_t>(0, wall_nanos - static_cast<int64_t>(server_nanos));

  if (!ok) {
    SIMCLOUD_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
    return Status::NetworkError("remote error: " + message);
  }
  return Bytes(framed.begin() + reader.position(), framed.end());
}

}  // namespace net
}  // namespace simcloud
