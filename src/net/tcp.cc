#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/clock.h"
#include "common/log.h"
#include "common/serialize.h"
#include "crypto/cpu_features.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simcloud {
namespace net {

namespace {

// Registry cells the server hot paths record into. Function-local
// statics: registered once, then a plain pointer deref.
obs::Gauge* ConnectionsGauge() {
  static obs::Gauge* const gauge =
      obs::Registry::Default().GetGauge("simcloud_net_connections");
  return gauge;
}

obs::Counter* ReadPausesCounter() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_net_read_pauses_total");
  return counter;
}

obs::Gauge* PeakOutputQueueGauge() {
  static obs::Gauge* const gauge = obs::Registry::Default().GetGauge(
      "simcloud_net_output_queue_peak_bytes");
  return gauge;
}

obs::Histogram* ServerHandshakeHistogram() {
  static obs::Histogram* const histogram =
      obs::Registry::Default().GetHistogram(
          "simcloud_secure_handshake_nanos{side=\"server\"}");
  return histogram;
}

// Event-engine tags of the two non-connection fds; connection
// generations start at 2.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

// Bytes appended to a connection's input buffer per loop iteration; the
// level-triggered loop re-fires while more input is pending, so one slow
// reader cannot monopolize the event thread.
constexpr size_t kReadChunk = 256 * 1024;
constexpr size_t kMaxReadPerEvent = 4 * 1024 * 1024;

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("send failed: ") +
                                  std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAll(int fd, uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd, data + done, len - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("recv failed: ") +
                                  std::strerror(errno));
    }
    if (n == 0) return Status::NetworkError("peer closed connection");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

void StoreLE32(uint32_t v, uint8_t* p) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

Result<Bytes> EncodeFrame(uint32_t request_id, const Bytes& payload) {
  if (payload.size() > kMaxFrameLength) {
    return Status::InvalidArgument("frame body of " +
                                   std::to_string(payload.size()) +
                                   " bytes exceeds the 31-bit frame limit");
  }
  // One contiguous buffer so a frame usually leaves in a single send.
  const size_t header_len = request_id != 0 ? 8 : 4;
  Bytes frame(header_len + payload.size());
  StoreLE32(static_cast<uint32_t>(payload.size()) |
                (request_id != 0 ? kFrameIdFlag : 0),
            frame.data());
  if (request_id != 0) StoreLE32(request_id, frame.data() + 4);
  std::memcpy(frame.data() + header_len, payload.data(), payload.size());
  return frame;
}

Status WriteFrameInternal(int fd, uint32_t request_id, const Bytes& payload) {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes frame, EncodeFrame(request_id, payload));
  return WriteAll(fd, frame.data(), frame.size());
}

/// Tries to parse one frame (either framing) from buf[*off..]; advances
/// `*off` and fills `*out` when a complete frame is available. Returns
/// false when more bytes are needed, an error on protocol violations.
Result<bool> TryParseFrame(const Bytes& buf, size_t* off, size_t max_len,
                           DecodedFrame* out) {
  const size_t avail = buf.size() - *off;
  if (avail < 4) return false;
  const uint8_t* p = buf.data() + *off;
  const uint32_t raw = LoadLE32(p);
  const bool pipelined = (raw & kFrameIdFlag) != 0;
  const uint32_t len = raw & ~kFrameIdFlag;
  const size_t header_len = pipelined ? 8 : 4;
  if (len > max_len) {
    return Status::NetworkError("frame length " + std::to_string(len) +
                                " exceeds limit");
  }
  if (avail < header_len) return false;
  uint32_t id = 0;
  if (pipelined) {
    id = LoadLE32(p + 4);
    if (id == 0) {
      return Status::NetworkError("pipelined frame with request id 0");
    }
  }
  if (avail < header_len + len) return false;
  out->request_id = id;
  out->payload.assign(p + header_len, p + header_len + len);
  *off += header_len + len;
  return true;
}

/// Drops the consumed prefix of a parse buffer (amortized: only when
/// fully drained or the dead prefix is large).
void CompactBuffer(Bytes* buf, size_t* off) {
  if (*off == buf->size()) {
    buf->clear();
    *off = 0;
  } else if (*off > (1u << 20)) {
    buf->erase(buf->begin(), buf->begin() + static_cast<ptrdiff_t>(*off));
    *off = 0;
  }
}

Status SetNonBlocking(int fd) {
  // The engine only ever toggles to nonblocking, so O_NONBLOCK via
  // fcntl-free SOCK_NONBLOCK covers accepted fds; this covers listen.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::NetworkError(std::string("fcntl failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const Bytes& payload) {
  return WriteFrameInternal(fd, 0, payload);
}

Status WritePipelinedFrame(int fd, uint32_t request_id, const Bytes& payload) {
  if (request_id == 0) {
    return Status::InvalidArgument("pipelined frames need a nonzero id");
  }
  return WriteFrameInternal(fd, request_id, payload);
}

Result<DecodedFrame> ReadAnyFrame(int fd, size_t max_len) {
  uint8_t header[4];
  SIMCLOUD_RETURN_NOT_OK(ReadAll(fd, header, sizeof(header)));
  const uint32_t raw = LoadLE32(header);
  DecodedFrame frame;
  const uint32_t len = raw & ~kFrameIdFlag;
  if ((raw & kFrameIdFlag) != 0) {
    uint8_t id_bytes[4];
    SIMCLOUD_RETURN_NOT_OK(ReadAll(fd, id_bytes, sizeof(id_bytes)));
    frame.request_id = LoadLE32(id_bytes);
    if (frame.request_id == 0) {
      return Status::NetworkError("pipelined frame with request id 0");
    }
  }
  if (len > max_len) {
    return Status::NetworkError("frame length " + std::to_string(len) +
                                " exceeds limit");
  }
  frame.payload.resize(len);
  SIMCLOUD_RETURN_NOT_OK(ReadAll(fd, frame.payload.data(), len));
  return frame;
}

Result<Bytes> ReadFrame(int fd, size_t max_len) {
  SIMCLOUD_ASSIGN_OR_RETURN(DecodedFrame frame, ReadAnyFrame(fd, max_len));
  if (frame.request_id != 0) {
    return Status::NetworkError("unexpected pipelined frame");
  }
  return std::move(frame.payload);
}

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  if (started_) {
    return Status::FailedPrecondition("TcpServer cannot be restarted");
  }
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  options_.max_frame_bytes =
      std::min<size_t>(options_.max_frame_bytes, kMaxFrameLength);
  if (options_.channel_policy == ChannelPolicy::kSecure) {
    if (options_.secure_channel.psk.size() < 16) {
      return Status::InvalidArgument(
          "secure channel policy needs a PSK of >= 16 bytes");
    }
    // A record carries at most one max-size frame from our clients, but
    // foreign stacks may pack differently; admit any record whose
    // plaintext could fit a legal frame.
    options_.secure_channel.max_record_bytes =
        options_.max_frame_bytes + 8 + SecureChannel::kSealOverhead;
  }

  // On any setup failure every fd opened so far is closed: a failed
  // Start leaves no bound port or leaked descriptor behind.
  auto fail = [this](const std::string& what) {
    Status status =
        Status::NetworkError(what + " failed: " + std::strerror(errno));
    engine_.reset();
    for (int* fd : {&listen_fd_, &wake_fd_}) {
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
    }
    return status;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 1024) < 0) return fail("listen");
  if (!SetNonBlocking(listen_fd_).ok()) return fail("fcntl");

  Result<std::unique_ptr<EventEngine>> engine = EventEngine::Create();
  if (!engine.ok()) return fail("event engine setup");
  engine_ = std::move(*engine);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("eventfd");
  // The listen and wake fds keep EPOLLIN interest forever, which lets
  // the io_uring engine hold a standing multishot poll on them.
  if (!engine_->Add(listen_fd_, kListenTag, EPOLLIN, true).ok()) {
    return fail("register(listen)");
  }
  if (!engine_->Add(wake_fd_, kWakeTag, EPOLLIN, true).ok()) {
    return fail("register(wake)");
  }
  SIMCLOUD_LOG(kInfo) << obs::RuntimeBanner(
      "TcpServer",
      "127.0.0.1:" + std::to_string(port_) + " io_engine=" + engine_->name() +
          " policy=" +
          (options_.channel_policy == ChannelPolicy::kSecure ? "secure"
                                                             : "plaintext"));

  started_ = true;
  running_.store(true);
  workers_.reserve(options_.worker_threads);
  for (size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back(&TcpServer::WorkerLoop, this);
  }
  loop_thread_ = std::thread(&TcpServer::EventLoop, this);
  return Status::OK();
}

// Push sink handed to handlers (change streams). Thread-safe; valid for
// the life of the handler-side subscription, which may outlive both the
// connection and the server's run — hence everything flows through the
// shared_ptr'd ConnShared, never a bare Connection*. While `open` is
// observed true under ConnShared::mutex the server object is guaranteed
// alive: the loop thread flips it in CloseConnection under the same
// mutex, and every connection is closed before Stop() finishes joining
// the loop.
class TcpServer::ConnPushSink : public PushSink {
 public:
  ConnPushSink(std::shared_ptr<ConnShared> shared, uint32_t id)
      : shared_(std::move(shared)), id_(id) {}

  Status TryPush(const Bytes& payload) override {
    // Framed exactly like a pipelined response (u64 server_nanos — zero,
    // no handler ran — ok flag, payload) so the client parses pushes and
    // responses with one decoder, and secure connections seal them like
    // any response burst.
    BinaryWriter body;
    body.Reserve(payload.size() + 16);
    body.WriteU64(0);
    body.WriteBool(true);
    body.WriteRaw(payload.data(), payload.size());
    Bytes encoded = body.TakeBuffer();
    if (encoded.size() > kMaxFrameLength) {
      return Status::InvalidArgument("push exceeds the 31-bit frame limit");
    }
    Bytes frame(8 + encoded.size());
    StoreLE32(static_cast<uint32_t>(encoded.size()) | kFrameIdFlag,
              frame.data());
    StoreLE32(id_, frame.data() + 4);
    std::memcpy(frame.data() + 8, encoded.data(), encoded.size());

    std::lock_guard<std::mutex> open_lock(shared_->mutex);
    if (!shared_->open) {
      return Status::NetworkError("push on a closed connection");
    }
    TcpServer* server = shared_->server;
    // Backpressure: pushes count against the connection's bounded output
    // queue from enqueue time (queued bytes the loop knows about plus
    // pushes it has not drained yet). A never-reading watcher parks here
    // at the bound; other connections are untouched.
    const size_t queued = shared_->queued_out_bytes.load() +
                          shared_->pending_push_bytes.load();
    if (queued >= server->options_.max_output_queue_bytes) {
      return Status::FailedPrecondition(
          "connection output queue at max_output_queue_bytes");
    }
    shared_->pending_push_bytes.fetch_add(frame.size());
    {
      std::lock_guard<std::mutex> done_lock(server->done_mutex_);
      if (server->done_closed_) {
        shared_->pending_push_bytes.fetch_sub(frame.size());
        return Status::NetworkError("server stopped");
      }
      Completion completion;
      completion.gen = shared_->gen;
      completion.push = true;
      completion.frame = std::move(frame);
      server->done_queue_.push_back(std::move(completion));
      // Wake while still holding done_mutex_: Stop() sets done_closed_
      // under the same mutex before closing the wake fd, so this write
      // can never hit a closed (or recycled) descriptor.
      server->WakeLoop();
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<ConnShared> shared_;
  const uint32_t id_;
};

class TcpServer::ConnStreamContext : public StreamContext {
 public:
  ConnStreamContext(std::shared_ptr<ConnShared> shared, uint32_t id,
                    uint64_t gen, bool legacy, obs::TraceSpan* span)
      : shared_(std::move(shared)),
        id_(id),
        gen_(gen),
        legacy_(legacy),
        span_(span) {}
  /// Null on a legacy connection: the bit-31-clear framing has no request
  /// id to push on, so stream-registering opcodes must fail cleanly.
  std::shared_ptr<PushSink> MakeSink() override {
    if (legacy_ || shared_ == nullptr) return nullptr;
    return std::make_shared<ConnPushSink>(shared_, id_);
  }
  uint64_t connection_id() const override { return gen_; }
  bool pipelined() const override { return !legacy_; }
  obs::TraceSpan* trace() const override { return span_; }

 private:
  std::shared_ptr<ConnShared> shared_;
  const uint32_t id_;
  const uint64_t gen_;
  const bool legacy_;
  obs::TraceSpan* const span_;
};

void TcpServer::Stop() {
  if (!started_) return;
  if (running_.exchange(false)) WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mutex_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    // After this flag no push sink touches the wake fd (see ConnPushSink);
    // only then is closing it safe against fd recycling.
    std::lock_guard<std::mutex> lock(done_mutex_);
    done_closed_ = true;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  engine_.reset();
}

void TcpServer::WakeLoop() {
  // Coalesced: one eventfd write per burst. If the flag is already set
  // the loop has a wake-up it has not consumed yet — it will clear the
  // flag BEFORE draining the completion queue, so anything pushed
  // before this exchange is picked up by that drain.
  if (wake_pending_.exchange(true)) return;
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void TcpServer::EventLoop() {
  std::vector<EventEngine::Event> events;
  while (running_.load()) {
    const Status wait_status = engine_->Wait(&events);
    if (!wait_status.ok()) {
      SIMCLOUD_LOG(kWarn) << "event wait failed: " << wait_status.message();
      break;
    }
    for (size_t i = 0; i < events.size() && running_.load(); ++i) {
      const uint64_t tag = events[i].tag;
      if (tag == kListenTag) {
        AcceptNewConnections();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        wake_pending_.store(false);  // before the drain — see WakeLoop
        DrainCompletions();
        continue;
      }
      // A completion earlier in this batch may have closed the
      // connection; the generation lookup makes stale events harmless.
      auto it = connections_.find(tag);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !FlushOutput(conn)) {
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0 &&
          !ReadFromConnection(conn)) {
        CloseConnection(conn);
        continue;
      }
      UpdateConnection(conn);
    }
  }
  // Teardown: drop every connection; workers may still be finishing
  // handler calls — their completions land in done_queue_ and are never
  // delivered, which is fine, nothing references the dead connections.
  // The wake fd and the engine stay open until Stop() has joined the
  // workers: a worker's WakeLoop() after a close here could hit a
  // recycled fd number.
  std::vector<Connection*> open;
  open.reserve(connections_.size());
  for (auto& [gen, conn] : connections_) open.push_back(conn.get());
  for (Connection* conn : open) CloseConnection(conn);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::AcceptNewConnections() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK && running_.load()) {
        SIMCLOUD_LOG(kWarn) << "accept failed: " << std::strerror(errno);
        // The pending connection was not consumed (EMFILE & co.), so the
        // level-triggered listen fd would re-fire immediately; back off
        // briefly instead of spinning the loop at 100% CPU.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1);

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->gen = next_gen_++;
    conn->shared = std::make_shared<ConnShared>();
    conn->shared->server = this;
    conn->shared->gen = conn->gen;
    if (options_.channel_policy == ChannelPolicy::kSecure) {
      conn->handshake =
          std::make_unique<ServerHandshake>(options_.secure_channel);
      if (obs::MetricsEnabled()) conn->accept_nanos = obs::MonotonicNanos();
    }
    conn->interest = EPOLLIN | EPOLLRDHUP;
    const Status add_status =
        engine_->Add(fd, conn->gen, conn->interest, /*constant_interest=*/false);
    if (!add_status.ok()) {
      SIMCLOUD_LOG(kWarn) << "engine add failed: " << add_status.message();
      ::close(fd);
      continue;
    }
    connections_.emplace(conn->gen, std::move(conn));
    active_connections_.fetch_add(1);
    ConnectionsGauge()->Add(1);
  }
}

bool TcpServer::ReadFromConnection(Connection* conn) {
  // One loop-owned scratch buffer: receiving there and appending only
  // the bytes actually read avoids zero-initializing a fresh vector
  // tail on every recv (a pure memset tax for small frames).
  static thread_local std::vector<uint8_t> scratch(kReadChunk);
  // Secure connections receive raw handshake/record bytes; DecryptIncoming
  // moves their plaintext into `in` before the frame parser runs.
  Bytes& sink =
      options_.channel_policy == ChannelPolicy::kSecure ? conn->raw : conn->in;
  size_t read_this_event = 0;
  while (read_this_event < kMaxReadPerEvent) {
    const ssize_t n = ::recv(conn->fd, scratch.data(), scratch.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    if (n == 0) {
      conn->read_eof = true;
      return true;
    }
    sink.insert(sink.end(), scratch.data(), scratch.data() + n);
    read_this_event += static_cast<size_t>(n);
    if (static_cast<size_t>(n) < scratch.size()) return true;
  }
  return true;  // level-triggered epoll re-fires for the rest
}

bool TcpServer::DecryptIncoming(Connection* conn) {
  if (!conn->handshake && !conn->channel) return true;  // plaintext wire
  if (conn->handshake) {
    Bytes reply;
    Result<size_t> advanced = conn->handshake->Consume(
        conn->raw.data() + conn->raw_off, conn->raw.size() - conn->raw_off,
        &reply);
    if (!advanced.ok()) {
      // Downgrade attempt (plaintext/legacy client), wrong PSK, or a
      // malformed handshake: hard-close without answering.
      SIMCLOUD_LOG(kWarn) << "secure handshake rejected: "
                          << advanced.status().message();
      return false;
    }
    conn->raw_off += *advanced;
    if (!reply.empty()) {
      conn->out_bytes += reply.size();
      conn->out.push_back(std::move(reply));
    }
    if (conn->handshake->done()) {
      conn->channel = conn->handshake->TakeChannel();
      conn->handshake.reset();
      handshakes_completed_.fetch_add(1);
      if (conn->accept_nanos != 0) {
        ServerHandshakeHistogram()->Record(obs::MonotonicNanos() -
                                           conn->accept_nanos);
      }
    }
  }
  if (conn->channel) {
    size_t consumed = 0;
    Status opened = conn->channel->Ingest(
        conn->raw.data() + conn->raw_off, conn->raw.size() - conn->raw_off,
        &consumed, &conn->in);
    conn->raw_off += consumed;
    if (!opened.ok()) return false;  // tampered/replayed record: close
  }
  CompactBuffer(&conn->raw, &conn->raw_off);
  return true;
}

bool TcpServer::ParseFrames(Connection* conn) {
  for (;;) {
    // Legacy (id 0) requests keep the old serve-loop contract: nothing
    // else from this connection runs concurrently, and their responses
    // go out in request order.
    if (conn->legacy_in_flight) break;
    const size_t avail = conn->in.size() - conn->in_off;
    if (avail < 4) break;
    const uint8_t* p = conn->in.data() + conn->in_off;
    const uint32_t raw = LoadLE32(p);
    const bool pipelined = (raw & kFrameIdFlag) != 0;
    const uint32_t len = raw & ~kFrameIdFlag;
    const size_t header_len = pipelined ? 8 : 4;
    if (len > options_.max_frame_bytes) return false;  // protocol violation
    uint32_t id = 0;
    if (pipelined) {
      if (avail < 8) break;
      id = LoadLE32(p + 4);
      if (id == 0) return false;  // flagged frame must carry a real id
    }
    if (avail < header_len + len) break;  // frame still arriving
    if (pipelined && conn->in_flight >= options_.max_in_flight) break;
    if (!pipelined && conn->in_flight > 0) break;
    if (conn->out_bytes >= options_.max_output_queue_bytes) break;

    WorkItem item;
    item.gen = conn->gen;
    item.id = id;
    item.legacy = !pipelined;
    if (pipelined) item.shared = conn->shared;  // legacy cannot push
    item.body.assign(p + header_len, p + header_len + len);
    if (obs::TracingActive()) item.enqueue_nanos = obs::MonotonicNanos();
    conn->in_off += header_len + len;
    conn->in_flight++;
    if (!pipelined) conn->legacy_in_flight = true;
    frames_dispatched_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      work_queue_.push_back(std::move(item));
    }
    work_cv_.notify_one();
  }
  CompactBuffer(&conn->in, &conn->in_off);
  return true;
}

bool TcpServer::FlushOutput(Connection* conn) {
  while (!conn->out.empty()) {
    // Gather queued frames so a burst of pipelined responses leaves in
    // one syscall (sendmsg rather than writev for MSG_NOSIGNAL).
    constexpr int kMaxIov = 16;
    iovec iov[kMaxIov];
    int iov_count = 0;
    size_t offset = conn->out_off;
    for (auto it = conn->out.begin();
         it != conn->out.end() && iov_count < kMaxIov; ++it) {
      iov[iov_count].iov_base = const_cast<uint8_t*>(it->data() + offset);
      iov[iov_count].iov_len = it->size() - offset;
      offset = 0;
      ++iov_count;
    }
    msghdr message{};
    message.msg_iov = iov;
    message.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(conn->fd, &message, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    conn->out_bytes -= static_cast<size_t>(n);
    size_t written = static_cast<size_t>(n);
    while (written > 0) {
      const size_t front_left = conn->out.front().size() - conn->out_off;
      if (written >= front_left) {
        written -= front_left;
        conn->out.pop_front();
        conn->out_off = 0;
      } else {
        conn->out_off += written;
        written = 0;
      }
    }
  }
  return true;
}

bool TcpServer::UpdateConnection(Connection* conn) {
  // Parse and flush to a fixed point: flushing can free output-queue
  // budget that ParseFrames was blocked on, and the socket — already
  // read empty — would never deliver another event to retry, stranding
  // complete frames in the input buffer. Terminates because within this
  // loop out_bytes only shrinks (completions arrive via the loop
  // thread, not here) and the buffered frames are finite.
  for (;;) {
    const uint64_t dispatched_before =
        frames_dispatched_.load(std::memory_order_relaxed);
    if (!DecryptIncoming(conn)) {
      CloseConnection(conn);
      return false;
    }
    if (!ParseFrames(conn)) {
      CloseConnection(conn);
      return false;
    }
    const bool was_over_bound =
        conn->out_bytes >= options_.max_output_queue_bytes;
    if (!FlushOutput(conn)) {
      CloseConnection(conn);
      return false;
    }
    const bool parsed = frames_dispatched_.load(std::memory_order_relaxed) !=
                        dispatched_before;
    const bool freed_budget =
        was_over_bound &&
        conn->out_bytes < options_.max_output_queue_bytes;
    if (!parsed && !freed_budget) break;
  }
  conn->shared->queued_out_bytes.store(conn->out_bytes);
  const bool drained = conn->out.empty() && conn->in_flight == 0;
  if (conn->read_eof && drained) {
    // Peer finished sending and every accepted request is answered; any
    // torn trailing bytes are simply dropped with the connection.
    CloseConnection(conn);
    return false;
  }
  // After EOF the socket would report EPOLLRDHUP forever; progress now
  // comes from worker completions, so stop listening for read events.
  uint32_t want =
      conn->read_eof ? 0u : static_cast<uint32_t>(EPOLLRDHUP);
  const bool backpressured =
      conn->in_flight >= options_.max_in_flight ||
      conn->out_bytes >= options_.max_output_queue_bytes;
  if (!conn->read_eof && !backpressured && !conn->legacy_in_flight) {
    want |= EPOLLIN;
  }
  if (!conn->out.empty()) want |= EPOLLOUT;
  if (want != conn->interest) {
    if ((conn->interest & EPOLLIN) != 0 && (want & EPOLLIN) == 0 &&
        backpressured) {
      reads_paused_.fetch_add(1);
      ReadPausesCounter()->Add(1);
    }
    if (!engine_->Modify(conn->fd, conn->gen, want).ok()) {
      CloseConnection(conn);
      return false;
    }
    conn->interest = want;
  }
  return true;
}

void TcpServer::CloseConnection(Connection* conn) {
  {
    // Under the shared mutex: a sink mid-TryPush either completed its
    // enqueue before this (frame dropped with the connection) or sees
    // the closed flag. After this block no sink references the server.
    std::lock_guard<std::mutex> lock(conn->shared->mutex);
    conn->shared->open = false;
  }
  engine_->Remove(conn->fd, conn->gen);  // before close: cancels uring polls
  ::close(conn->fd);
  active_connections_.fetch_sub(1);
  ConnectionsGauge()->Add(-1);
  // Eager per-connection state reap (open cursors, watches). On the loop
  // thread, so handlers must keep the hook non-blocking.
  handler_->OnConnectionClosed(conn->gen);
  connections_.erase(conn->gen);  // frees conn
}

void TcpServer::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    done.swap(done_queue_);
  }
  // Queue every completed response first, then flush each touched
  // connection once: a burst of pipelined completions leaves in one
  // send instead of one per response.
  std::vector<uint64_t> touched;
  // Secure connections: a burst of responses for one connection is
  // concatenated and sealed as ONE record (the record layer carries a
  // byte stream, not frames), so the per-record AEAD cost — two SHA-256
  // passes plus AES-CTR — is paid once per burst instead of once per
  // response. `pending_seal` coalesces per connection within this drain.
  std::unordered_map<uint64_t, Bytes> pending_seal;
  for (Completion& completion : done) {
    auto it = connections_.find(completion.gen);
    if (it == connections_.end()) continue;  // connection closed meanwhile
    Connection* conn = it->second.get();
    if (completion.push) {
      // A push answers no dispatched request: in_flight is untouched and
      // the bytes move from the sink's pending count into the output
      // queue proper (mirrored below via UpdateConnection).
      conn->shared->pending_push_bytes.fetch_sub(completion.frame.size());
    } else {
      conn->in_flight--;
      if (completion.legacy) conn->legacy_in_flight = false;
    }
    if (conn->channel) {
      Bytes& batch = pending_seal[completion.gen];
      batch.insert(batch.end(), completion.frame.begin(),
                   completion.frame.end());
      touched.push_back(completion.gen);
      continue;
    }
    conn->out_bytes += completion.frame.size();
    uint64_t peak = peak_output_queue_bytes_.load();
    while (conn->out_bytes > peak &&
           !peak_output_queue_bytes_.compare_exchange_weak(peak,
                                                           conn->out_bytes)) {
    }
    PeakOutputQueueGauge()->Set(
        static_cast<int64_t>(peak_output_queue_bytes_.load()));
    conn->out.push_back(std::move(completion.frame));
    touched.push_back(completion.gen);
  }
  for (auto& [gen, batch] : pending_seal) {
    auto it = connections_.find(gen);
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    // Sealing on the loop thread keeps the record sequence identical to
    // the queue order (the channel is loop-owned, like `out`). Large
    // bursts are split into ~1 MiB records — the record layer is a byte
    // stream, so even mid-frame split points are legal — bounding every
    // receiver's record buffer.
    constexpr size_t kSealChunk = 1u << 20;
    bool sealed_ok = true;
    for (size_t off = 0; off < batch.size(); off += kSealChunk) {
      const size_t chunk_len = std::min(kSealChunk, batch.size() - off);
      Bytes chunk(batch.begin() + static_cast<ptrdiff_t>(off),
                  batch.begin() + static_cast<ptrdiff_t>(off + chunk_len));
      Result<Bytes> record = conn->channel->Seal(chunk);
      if (!record.ok()) {
        SIMCLOUD_LOG(kWarn) << "sealing a response burst failed: "
                            << record.status().message();
        CloseConnection(conn);
        sealed_ok = false;
        break;
      }
      conn->out_bytes += record->size();
      conn->out.push_back(std::move(*record));
    }
    if (!sealed_ok) continue;
    uint64_t peak = peak_output_queue_bytes_.load();
    while (conn->out_bytes > peak &&
           !peak_output_queue_bytes_.compare_exchange_weak(peak,
                                                           conn->out_bytes)) {
    }
    PeakOutputQueueGauge()->Set(
        static_cast<int64_t>(peak_output_queue_bytes_.load()));
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (uint64_t gen : touched) {
    auto it = connections_.find(gen);
    if (it != connections_.end()) UpdateConnection(it->second.get());
  }
}

void TcpServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(work_mutex_);
      work_cv_.wait(lock,
                    [this] { return workers_stop_ || !work_queue_.empty(); });
      if (workers_stop_) return;  // queued work is dropped on Stop
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }

    // Tracing is free when off: enqueue_nanos is only stamped while
    // TracingActive(), and without it no span work (or clock read beyond
    // the pre-existing Stopwatch) happens on this path.
    const bool traced = item.enqueue_nanos != 0 && obs::TracingActive();
    obs::TraceSpan span;
    if (traced) {
      span.AddStageNanos(obs::Stage::kQueueWait,
                         obs::MonotonicNanos() - item.enqueue_nanos);
      if (!item.body.empty()) span.set_opcode(item.body[0]);
    }

    Stopwatch watch;
    Result<Bytes> response = [&]() -> Result<Bytes> {
      // Legacy frames get a context too (it carries the connection
      // identity for cursor reaping), but one whose sink is null and
      // whose pipelined() is false — stream/cursor opcodes fail cleanly
      // while the connection stays usable.
      ConnStreamContext stream(item.shared, item.id, item.gen, item.legacy,
                               traced ? &span : nullptr);
      obs::TraceSpan::Scope scope(traced ? &span : nullptr);
      return handler_->HandleStream(item.body, &stream);
    }();
    const int64_t server_nanos = watch.ElapsedNanos();

    const uint64_t seal_start = traced ? obs::MonotonicNanos() : 0;
    BinaryWriter body;
    if (response.ok()) body.Reserve(response->size() + 16);
    body.WriteU64(static_cast<uint64_t>(server_nanos));
    body.WriteBool(response.ok());
    if (response.ok()) {
      body.WriteRaw(response->data(), response->size());
    } else {
      body.WriteString(response.status().ToString());
    }
    Bytes encoded = body.TakeBuffer();
    if (encoded.size() > kMaxFrameLength) {
      BinaryWriter error;
      error.WriteU64(static_cast<uint64_t>(server_nanos));
      error.WriteBool(false);
      error.WriteString("response exceeds the 31-bit frame limit");
      encoded = error.TakeBuffer();
    }

    Completion completion;
    completion.gen = item.gen;
    completion.legacy = item.legacy;
    const size_t header_len = item.legacy ? 4 : 8;
    completion.frame.resize(header_len + encoded.size());
    StoreLE32(static_cast<uint32_t>(encoded.size()) |
                  (item.legacy ? 0 : kFrameIdFlag),
              completion.frame.data());
    if (!item.legacy) StoreLE32(item.id, completion.frame.data() + 4);
    std::memcpy(completion.frame.data() + header_len, encoded.data(),
                encoded.size());

    if (traced) {
      // Worker-side framing cost; the secure policy's per-burst Seal on
      // the loop thread is not attributable per-request and is excluded
      // (a documented approximation of the seal/send stage).
      span.AddStageNanos(obs::Stage::kSealSend,
                         obs::MonotonicNanos() - seal_start);
      obs::FinishRequestSpan(span, static_cast<uint64_t>(server_nanos),
                             header_len + item.body.size(),
                             completion.frame.size());
    }

    frames_completed_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done_queue_.push_back(std::move(completion));
    }
    WakeLoop();
  }
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port, ChannelPolicy policy,
    const SecureChannelOptions& secure) {
  // Every failure names the endpoint: a multi-endpoint caller (the
  // sharded facade, the topology monitor) must be able to tell WHICH
  // peer refused from the Status alone.
  const std::string peer = host + ":" + std::to_string(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::NetworkError("socket for " + peer + " failed: " +
                                std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("invalid IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::NetworkError("connect to " + peer + " failed: " +
                                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto transport = std::unique_ptr<TcpTransport>(new TcpTransport(fd, peer));
  if (policy == ChannelPolicy::kSecure) {
    Result<std::unique_ptr<SecureChannel>> channel =
        RunClientHandshake(fd, secure);
    if (!channel.ok()) {  // dtor closes fd
      if (channel.status().code() == StatusCode::kNetworkError) {
        return Status::NetworkError("secure handshake with " + peer +
                                    " failed: " + channel.status().message());
      }
      return channel.status();  // e.g. PermissionDenied: wrong PSK
    }
    transport->channel_ = std::move(*channel);
  }
  return transport;
}

TcpTransport::~TcpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpTransport::MarkBroken(const Status& reason) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (broken_.ok()) broken_ = reason;
  }
  // Wake the elected reader too: a collector parked inside recv() would
  // otherwise survive a write-side failure until its own I/O noticed
  // (possibly never, on a quiet stream). shutdown() is orderly — queued
  // bytes still flush, then FIN — and makes every blocked or future
  // socket op return immediately.
  ::shutdown(fd_, SHUT_RDWR);
  state_cv_.notify_all();
}

void TcpTransport::Abort(const Status& reason) {
  MarkBroken(reason.ok() ? Status::NetworkError("transport aborted")
                         : reason);
}

Status TcpTransport::stream_status() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return broken_;
}

void TcpTransport::ResetCosts() {
  std::lock_guard<std::mutex> lock(costs_mutex_);
  costs_.Clear();
}

Status TcpTransport::SubmitFrame(const Bytes& request, uint32_t id) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    SIMCLOUD_RETURN_NOT_OK(broken_);
    outstanding_.insert(id);
  }
  Status written;
  {
    // Whole-frame writes are serialized so concurrent submitters can
    // never interleave bytes inside each other's frames (and, on a
    // secure channel, so records leave in sealing order).
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (channel_) {
      written = [&]() -> Status {
        SIMCLOUD_ASSIGN_OR_RETURN(Bytes frame, EncodeFrame(id, request));
        SIMCLOUD_ASSIGN_OR_RETURN(Bytes record, channel_->Seal(frame));
        return WriteAll(fd_, record.data(), record.size());
      }();
    } else {
      written = WriteFrameInternal(fd_, id, request);
    }
  }
  if (!written.ok()) {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      outstanding_.erase(id);
    }
    // A failed write is a dead stream: fail every parked collector now
    // (including one blocked in recv() as the elected reader) instead of
    // leaving them to discover it from their own I/O.
    MarkBroken(written);
    return written;
  }
  std::lock_guard<std::mutex> lock(costs_mutex_);
  costs_.calls++;
  costs_.bytes_sent += request.size();
  return Status::OK();
}

namespace {

/// Blocks until `fd` is readable or `deadline` passes (null = forever).
Status WaitReadable(int fd, const std::chrono::steady_clock::time_point* deadline) {
  if (deadline == nullptr) return Status::OK();
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= *deadline) {
      return Status::DeadlineExceeded("no response within the deadline");
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          *deadline - now)
                          .count();
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(std::max<int64_t>(left, 1)));
    if (rc > 0) return Status::OK();  // readable (or error — recv reports it)
    if (rc < 0 && errno != EINTR) {
      return Status::NetworkError(std::string("poll failed: ") +
                                  std::strerror(errno));
    }
  }
}

}  // namespace

Result<DecodedFrame> TcpTransport::ReadSecureFrame(
    const std::chrono::steady_clock::time_point* deadline) {
  for (;;) {
    DecodedFrame frame;
    SIMCLOUD_ASSIGN_OR_RETURN(
        bool complete,
        TryParseFrame(recv_plain_, &recv_plain_off_, 1ull << 31, &frame));
    if (complete) {
      CompactBuffer(&recv_plain_, &recv_plain_off_);
      return frame;
    }
    // Need more plaintext: pull raw bytes off the socket and run them
    // through the record layer.
    SIMCLOUD_RETURN_NOT_OK(WaitReadable(fd_, deadline));
    uint8_t chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("recv failed: ") +
                                  std::strerror(errno));
    }
    if (n == 0) return Status::NetworkError("peer closed connection");
    recv_raw_.insert(recv_raw_.end(), chunk, chunk + n);
    size_t consumed = 0;
    SIMCLOUD_RETURN_NOT_OK(channel_->Ingest(
        recv_raw_.data() + recv_raw_off_, recv_raw_.size() - recv_raw_off_,
        &consumed, &recv_plain_));
    recv_raw_off_ += consumed;
    CompactBuffer(&recv_raw_, &recv_raw_off_);
  }
}

Status TcpTransport::ReadOneResponse(
    const std::chrono::steady_clock::time_point* deadline) {
  DecodedFrame frame;
  if (channel_) {
    SIMCLOUD_ASSIGN_OR_RETURN(frame, ReadSecureFrame(deadline));
  } else {
    // The deadline bounds the wait for a frame to START arriving; once
    // bytes flow, the frame is read to completion (peers send frames
    // whole, so the tail follows promptly or the stream is dead anyway).
    SIMCLOUD_RETURN_NOT_OK(WaitReadable(fd_, deadline));
    SIMCLOUD_ASSIGN_OR_RETURN(frame, ReadAnyFrame(fd_));
  }
  BinaryReader reader(frame.payload);
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t server_nanos, reader.ReadU64());
  SIMCLOUD_ASSIGN_OR_RETURN(bool ok, reader.ReadBool());

  ReadyResponse ready;
  ready.server_nanos = static_cast<int64_t>(server_nanos);
  if (ok) {
    ready.payload =
        Bytes(frame.payload.begin() + reader.position(), frame.payload.end());
  } else {
    SIMCLOUD_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
    ready.payload = Status::NetworkError("remote error: " + message);
  }
  {
    std::lock_guard<std::mutex> lock(costs_mutex_);
    costs_.bytes_received += frame.payload.size();
    costs_.server_nanos += ready.server_nanos;
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (streaming_.count(frame.request_id) != 0) {
    // Stream frame: many frames share this id, so it stays outstanding
    // and arrivals queue in order for CollectStream.
    stream_ready_[frame.request_id].push_back(std::move(ready));
    return Status::OK();
  }
  if (closed_streams_.count(frame.request_id) != 0) {
    return Status::OK();  // late frame for an abandoned stream: drop
  }
  if (outstanding_.erase(frame.request_id) == 0) {
    return Status::NetworkError("response for unknown request id " +
                                std::to_string(frame.request_id));
  }
  ready_.emplace(frame.request_id, std::move(ready));
  return Status::OK();
}

Result<TcpTransport::ReadyResponse> TcpTransport::AwaitResponse(
    uint32_t id, const std::chrono::steady_clock::time_point* deadline) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    auto it = ready_.find(id);
    if (it != ready_.end()) {
      ReadyResponse response = std::move(it->second);
      ready_.erase(it);
      return response;
    }
    if (!broken_.ok()) return broken_;
    if (outstanding_.count(id) == 0) {
      return Status::InvalidArgument("unknown or already-collected ticket " +
                                     std::to_string(id));
    }
    if (deadline != nullptr && std::chrono::steady_clock::now() >= *deadline) {
      // The ticket stays outstanding: a late response is still routable
      // (and collectable), and the stream is not poisoned — the caller
      // decides whether a timeout is fatal (Abort) or a soft signal.
      return Status::DeadlineExceeded("no response for ticket " +
                                      std::to_string(id) +
                                      " within the deadline");
    }
    if (reader_active_) {
      // Another collector is reading the socket; it will publish our
      // response (or the stream failure) and notify.
      if (deadline != nullptr) {
        state_cv_.wait_until(lock, *deadline);
      } else {
        state_cv_.wait(lock);
      }
      continue;
    }
    reader_active_ = true;
    lock.unlock();
    Status read = ReadOneResponse(deadline);
    lock.lock();
    reader_active_ = false;
    state_cv_.notify_all();
    if (read.code() == StatusCode::kDeadlineExceeded) {
      return read;  // soft timeout: stream untouched, ticket outstanding
    }
    if (!read.ok() && broken_.ok()) {
      // Poison the stream and force the socket down so every OTHER
      // parked collector (and any blocked writer) fails promptly too.
      lock.unlock();
      MarkBroken(read);
      lock.lock();
    }
  }
}

Result<Bytes> TcpTransport::Call(const Bytes& request) {
  // Legacy framing (request id 0): byte-identical on the wire to the
  // pre-pipelining protocol. One synchronous Call at a time; pipelined
  // Submit/Collect traffic may interleave freely around it.
  std::lock_guard<std::mutex> call_lock(call_mutex_);
  Stopwatch watch;
  SIMCLOUD_RETURN_NOT_OK(SubmitFrame(request, 0));
  SIMCLOUD_ASSIGN_OR_RETURN(ReadyResponse response, AwaitResponse(0));
  const int64_t wall_nanos = watch.ElapsedNanos();
  {
    std::lock_guard<std::mutex> lock(costs_mutex_);
    costs_.communication_nanos +=
        std::max<int64_t>(0, wall_nanos - response.server_nanos);
  }
  return std::move(response.payload);
}

Result<uint64_t> TcpTransport::Submit(const Bytes& request) {
  uint32_t id;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    id = next_id_;
    next_id_ = next_id_ == 0xFFFFFFFFu ? 1 : next_id_ + 1;
  }
  SIMCLOUD_RETURN_NOT_OK(SubmitFrame(request, id));
  return static_cast<uint64_t>(id);
}

Result<Bytes> TcpTransport::Collect(uint64_t ticket) {
  if (ticket == 0 || ticket > 0xFFFFFFFFu) {
    return Status::InvalidArgument("invalid ticket " + std::to_string(ticket));
  }
  SIMCLOUD_ASSIGN_OR_RETURN(ReadyResponse response,
                            AwaitResponse(static_cast<uint32_t>(ticket)));
  // Pipelined round trips overlap, so no wall-time split is attributed;
  // bytes and server time were accounted when the frame was read.
  return std::move(response.payload);
}

Result<uint64_t> TcpTransport::SubmitStream(const Bytes& request) {
  uint32_t id;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    id = next_id_;
    next_id_ = next_id_ == 0xFFFFFFFFu ? 1 : next_id_ + 1;
  }
  {
    // Registered BEFORE the frame is written (like outstanding_ in
    // SubmitFrame): a push racing the registration would otherwise be an
    // unknown id and poison the connection.
    std::lock_guard<std::mutex> lock(state_mutex_);
    streaming_.insert(id);
    closed_streams_.erase(id);  // id numbers wrap; forget old tombstones
  }
  Status written = SubmitFrame(request, id);
  if (!written.ok()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    streaming_.erase(id);
    stream_ready_.erase(id);
    return written;
  }
  return static_cast<uint64_t>(id);
}

Result<Bytes> TcpTransport::CollectStream(uint64_t ticket, int timeout_ms) {
  if (ticket == 0 || ticket > 0xFFFFFFFFu) {
    return Status::InvalidArgument("invalid ticket " + std::to_string(ticket));
  }
  const uint32_t id = static_cast<uint32_t>(ticket);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  // Same elected-reader dance as AwaitResponse, but popping a queue —
  // a stream ticket yields frames until the caller closes it.
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    auto it = stream_ready_.find(id);
    if (it != stream_ready_.end() && !it->second.empty()) {
      ReadyResponse response = std::move(it->second.front());
      it->second.pop_front();
      return std::move(response.payload);
    }
    if (!broken_.ok()) return broken_;
    if (streaming_.count(id) == 0) {
      return Status::InvalidArgument("unknown or closed stream ticket " +
                                     std::to_string(ticket));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      // Soft, like CollectFor: the stream stays registered and later
      // frames are still collectable.
      return Status::DeadlineExceeded("no stream frame for ticket " +
                                      std::to_string(ticket) +
                                      " within the deadline");
    }
    if (reader_active_) {
      state_cv_.wait_until(lock, deadline);
      continue;
    }
    reader_active_ = true;
    lock.unlock();
    Status read = ReadOneResponse(&deadline);
    lock.lock();
    reader_active_ = false;
    state_cv_.notify_all();
    if (read.code() == StatusCode::kDeadlineExceeded) {
      return read;
    }
    if (!read.ok() && broken_.ok()) {
      lock.unlock();
      MarkBroken(read);
      lock.lock();
    }
  }
}

void TcpTransport::CloseStream(uint64_t ticket) {
  if (ticket == 0 || ticket > 0xFFFFFFFFu) return;
  const uint32_t id = static_cast<uint32_t>(ticket);
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (streaming_.erase(id) == 0) return;
  stream_ready_.erase(id);
  outstanding_.erase(id);
  // Tombstone: frames the server had already queued when the watch was
  // torn down must not read as unknown-id protocol violations.
  closed_streams_.insert(id);
}

Result<Bytes> TcpTransport::CollectFor(uint64_t ticket, int timeout_ms) {
  if (ticket == 0 || ticket > 0xFFFFFFFFu) {
    return Status::InvalidArgument("invalid ticket " + std::to_string(ticket));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  SIMCLOUD_ASSIGN_OR_RETURN(
      ReadyResponse response,
      AwaitResponse(static_cast<uint32_t>(ticket), &deadline));
  return std::move(response.payload);
}

}  // namespace net
}  // namespace simcloud
