#include "net/event_engine.h"

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>

#include "common/io_ring.h"
#include "common/log.h"

namespace simcloud {
namespace net {

namespace {

// ---------------------------------------------------------------------------
// EpollEngine: the original loop, verbatim semantics.
// ---------------------------------------------------------------------------

class EpollEngine : public EventEngine {
 public:
  static Result<std::unique_ptr<EventEngine>> Make() {
    const int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) {
      return Status::NetworkError(std::string("epoll_create1 failed: ") +
                                  std::strerror(errno));
    }
    return std::unique_ptr<EventEngine>(new EpollEngine(fd));
  }

  ~EpollEngine() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  const char* name() const override { return "epoll"; }

  Status Add(int fd, uint64_t tag, uint32_t events,
             bool /*constant_interest*/) override {
    return Ctl(EPOLL_CTL_ADD, fd, tag, events, "epoll add");
  }

  Status Modify(int fd, uint64_t tag, uint32_t events) override {
    return Ctl(EPOLL_CTL_MOD, fd, tag, events, "epoll mod");
  }

  void Remove(int fd, uint64_t /*tag*/) override {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  Status Wait(std::vector<Event>* out) override {
    out->clear();
    for (;;) {
      const int n = ::epoll_wait(epoll_fd_, raw_events_.data(),
                                 static_cast<int>(raw_events_.size()), -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::NetworkError(std::string("epoll_wait failed: ") +
                                    std::strerror(errno));
      }
      out->reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        out->push_back(Event{raw_events_[i].data.u64, raw_events_[i].events});
      }
      return Status::OK();
    }
  }

 private:
  explicit EpollEngine(int fd) : epoll_fd_(fd), raw_events_(128) {}

  Status Ctl(int op, int fd, uint64_t tag, uint32_t events,
             const char* what) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, op, fd, &ev) < 0) {
      return Status::NetworkError(std::string(what) +
                                  " failed: " + std::strerror(errno));
    }
    return Status::OK();
  }

  int epoll_fd_;
  std::vector<epoll_event> raw_events_;
};

// ---------------------------------------------------------------------------
// UringEngine: readiness via io_uring poll SQEs.
//
// Every registered fd owns at most one in-flight POLL_ADD keyed by its
// tag. Oneshot polls are re-armed in one batched submission per Wait —
// interest changes therefore cost an SQE, not a syscall. Registrations
// promised constant interest use multishot poll (IORING_POLL_ADD_MULTI)
// so they stay armed across completions; kernels that reject the flag
// (-EINVAL) are downgraded to oneshot transparently.
//
// Interest changes while a poll is in flight submit a POLL_REMOVE keyed
// by the same tag. Whichever CQE lands first — the cancellation
// (-ECANCELED) or a real completion that raced it — disarms the entry,
// and the next Wait re-arms with the CURRENT mask. A cancellation that
// instead catches the re-armed poll merely repeats that dance once;
// there is no stall, because every such CQE wakes the loop. Delivered
// masks are filtered by current interest so a stale readable edge
// cannot re-trigger reads the server paused for backpressure.
// ---------------------------------------------------------------------------

// CQEs of POLL_REMOVE operations themselves carry this marker so the
// drain loop can drop them without a table lookup (bit 63 is unused by
// tags: connection generations are small integers).
constexpr uint64_t kCancelCqeBit = 1ull << 63;

uint32_t EpollToPollMask(uint32_t events) {
  uint32_t mask = 0;
  if (events & EPOLLIN) mask |= POLLIN;
  if (events & EPOLLOUT) mask |= POLLOUT;
  if (events & EPOLLRDHUP) mask |= POLLRDHUP;
  if (events & EPOLLPRI) mask |= POLLPRI;
  return mask;
}

uint32_t PollToEpollMask(uint32_t mask) {
  uint32_t events = 0;
  if (mask & POLLIN) events |= EPOLLIN;
  if (mask & POLLOUT) events |= EPOLLOUT;
  if (mask & POLLRDHUP) events |= EPOLLRDHUP;
  if (mask & POLLPRI) events |= EPOLLPRI;
  if (mask & POLLERR) events |= EPOLLERR;
  if (mask & POLLHUP) events |= EPOLLHUP;
  return events;
}

class UringEngine : public EventEngine {
 public:
  static Result<std::unique_ptr<EventEngine>> Make() {
    SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<IoRing> ring,
                              IoRing::Create(kRingEntries));
    return std::unique_ptr<EventEngine>(new UringEngine(std::move(ring)));
  }

  const char* name() const override { return "io_uring"; }

  Status Add(int fd, uint64_t tag, uint32_t events,
             bool constant_interest) override {
    Reg reg;
    reg.fd = fd;
    reg.interest = events;
    reg.multishot = constant_interest;
    regs_.emplace(tag, reg);
    // Armed lazily by the next Wait, in the batched submission.
    return Status::OK();
  }

  Status Modify(int /*fd*/, uint64_t tag, uint32_t events) override {
    auto it = regs_.find(tag);
    if (it == regs_.end()) {
      return Status::Internal("Modify on unregistered tag " +
                              std::to_string(tag));
    }
    Reg& reg = it->second;
    if (reg.interest == events) return Status::OK();
    reg.interest = events;
    if (reg.armed && !reg.cancel_pending) {
      // The in-flight poll waits on the old mask and might never fire
      // (e.g. old={IN}, new={OUT}); cancel it so Wait re-arms fresh.
      SubmitCancel(tag);
      reg.cancel_pending = true;
    }
    return Status::OK();
  }

  void Remove(int /*fd*/, uint64_t tag) override {
    auto it = regs_.find(tag);
    if (it == regs_.end()) return;
    if (it->second.armed) {
      // The pending poll pins a reference to the file; cancel it so
      // closing the fd actually releases it. Its late CQE misses the
      // (erased) registration and is dropped.
      SubmitCancel(tag);
    }
    regs_.erase(it);
  }

  Status Wait(std::vector<Event>* out) override {
    out->clear();
    cqes_.clear();
    for (;;) {
      // Re-arm pass: one POLL_ADD per disarmed registration, all
      // submitted together by the blocking enter below. Entries with a
      // cancellation in flight stay down until it resolves.
      for (auto& [tag, reg] : regs_) {
        if (reg.armed || reg.cancel_pending) continue;
        if (!ring_->PrepPollAdd(reg.fd, EpollToPollMask(reg.interest), tag,
                                reg.multishot)) {
          SIMCLOUD_RETURN_NOT_OK(ring_->Submit());
          if (!ring_->PrepPollAdd(reg.fd, EpollToPollMask(reg.interest), tag,
                                  reg.multishot)) {
            return Status::Internal("io_uring SQ full after submit");
          }
        }
        reg.armed = true;
      }
      SIMCLOUD_RETURN_NOT_OK(ring_->SubmitAndWait(1));
      cqes_.clear();
      ring_->DrainCompletions(&cqes_);
      for (const IoRing::Cqe& cqe : cqes_) {
        if ((cqe.user_data & kCancelCqeBit) != 0) continue;
        auto it = regs_.find(cqe.user_data);
        if (it == regs_.end()) continue;  // removed; stale completion
        Reg& reg = it->second;
        if (cqe.res < 0) {
          // -ECANCELED from a Modify/raced cancel, or -EINVAL from a
          // kernel without multishot poll: disarm (and downgrade) so
          // the next pass re-arms with the current mask.
          if (cqe.res == -EINVAL && reg.multishot) reg.multishot = false;
          reg.armed = false;
          reg.cancel_pending = false;
          continue;
        }
        if ((cqe.flags & IORING_CQE_F_MORE) == 0) reg.armed = false;
        if (reg.cancel_pending) {
          // Completed before the cancel landed; the cancel's own CQE
          // (marked kCancelCqeBit) is dropped above, and if it catches
          // the re-armed poll the -ECANCELED branch re-arms again.
          reg.cancel_pending = false;
        }
        const uint32_t fired = PollToEpollMask(static_cast<uint32_t>(cqe.res));
        const uint32_t wanted =
            fired & (reg.interest | EPOLLERR | EPOLLHUP);
        if (wanted != 0) out->push_back(Event{cqe.user_data, wanted});
      }
      if (!out->empty()) return Status::OK();
      // Every CQE was housekeeping (cancellations, filtered stale
      // events): block again rather than return an empty batch.
    }
  }

 private:
  struct Reg {
    int fd = -1;
    uint32_t interest = 0;
    bool multishot = false;
    bool armed = false;
    bool cancel_pending = false;
  };

  static constexpr unsigned kRingEntries = 256;

  explicit UringEngine(std::unique_ptr<IoRing> ring)
      : ring_(std::move(ring)) {}

  void SubmitCancel(uint64_t tag) {
    if (!ring_->PrepPollRemove(tag, tag | kCancelCqeBit)) {
      if (!ring_->Submit().ok() ||
          !ring_->PrepPollRemove(tag, tag | kCancelCqeBit)) {
        // Queue stuck: the poll stays armed; worst case a stale event
        // is filtered by the interest mask at delivery.
        return;
      }
    }
    // Submitted with the next batched enter (Wait's preamble).
  }

  std::unique_ptr<IoRing> ring_;
  std::unordered_map<uint64_t, Reg> regs_;
  std::vector<IoRing::Cqe> cqes_;
};

}  // namespace

Result<std::unique_ptr<EventEngine>> EventEngine::Create() {
  const char* env = std::getenv("SIMCLOUD_IO_ENGINE");
  const std::string choice = env == nullptr ? "" : env;
  if (choice == "uring") {
    Result<std::unique_ptr<EventEngine>> uring = UringEngine::Make();
    if (uring.ok()) return uring;
    SIMCLOUD_LOG(kWarn) << "io_uring unavailable ("
                        << uring.status().message()
                        << "); falling back to epoll";
  } else if (!choice.empty() && choice != "epoll") {
    SIMCLOUD_LOG(kWarn) << "unknown SIMCLOUD_IO_ENGINE value '" << choice
                        << "'; using epoll";
  }
  return EpollEngine::Make();
}

}  // namespace net
}  // namespace simcloud
