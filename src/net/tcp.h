// Real TCP client/server for the similarity cloud, mirroring the paper's
// deployment of the encryption client and M-Index server as two processes
// communicating over the loopback interface.
//
// The server is a readiness-driven event engine (epoll by default,
// io_uring via SIMCLOUD_IO_ENGINE=uring — see net/event_engine.h): one
// event-loop thread owns every connection (nonblocking sockets,
// incremental frame reassembly, bounded per-connection output queues
// with read backpressure) and a
// small fixed worker pool executes RequestHandler calls off the loop.
// Thousands of mostly-idle connections therefore cost O(worker pool)
// threads, not O(connections), and one connection can pipeline many
// in-flight requests. See src/net/README.md for the full framing and
// threading contract.
//
// Wire format per frame (little-endian):
//   u32 header  — bit 31 set: pipelined frame; bits 0..30: body length
//   u32 id      — request id (present only when bit 31 is set; never 0)
//   body        — request / response bytes
// A header with bit 31 clear is a LEGACY frame (request id 0): exactly
// the pre-pipelining wire format, so old single-request clients work
// unchanged. Responses echo the request's id (legacy requests get legacy
// responses, in request order). Response bodies additionally carry the
// server's processing time (u64 nanos) and an ok flag before the payload
// so the client can split wall time into server vs. communication
// components, as the paper's tables require.

#ifndef SIMCLOUD_NET_TCP_H_
#define SIMCLOUD_NET_TCP_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/event_engine.h"
#include "net/secure_channel.h"
#include "net/transport.h"

namespace simcloud {
namespace net {

/// Frame-header bit marking a pipelined frame (request id follows).
inline constexpr uint32_t kFrameIdFlag = 0x80000000u;
/// Largest body length the 31-bit frame header can express.
inline constexpr uint32_t kMaxFrameLength = 0x7FFFFFFFu;

/// One frame of either framing, as read off a socket.
struct DecodedFrame {
  uint32_t request_id = 0;  ///< 0 for legacy frames
  Bytes payload;
};

/// Tuning knobs of the event engine. The defaults serve every test and
/// bench in-tree; they exist so robustness tests can shrink the limits.
struct TcpServerOptions {
  /// Handler threads. The event loop never calls the handler itself.
  size_t worker_threads = 4;
  /// Frames whose declared body length exceeds this close the connection
  /// (the buffer only ever grows by bytes actually received, so a hostile
  /// declared length cannot force an allocation).
  size_t max_frame_bytes = 1ull << 30;
  /// Soft bound on queued unsent response bytes per connection. At or
  /// above the bound the engine stops reading (and so stops dispatching)
  /// that connection until the peer drains its responses; other
  /// connections are unaffected. In-flight handlers may still append
  /// their responses, so peak queued bytes can transiently exceed this
  /// by the in-flight responses.
  size_t max_output_queue_bytes = 8u << 20;
  /// Pipelined requests of one connection being handled concurrently;
  /// further frames wait in the input buffer. Legacy (id 0) requests are
  /// never concurrent with anything on their connection, preserving the
  /// old serve-loop semantics.
  size_t max_in_flight = 64;
  /// kSecure: every accepted connection must complete the PSK handshake
  /// (driven on the event loop, never blocking other connections) and
  /// speak AEAD records; plaintext/legacy clients are hard-closed.
  /// kPlaintext (default): the original wire format, byte-identical.
  ChannelPolicy channel_policy = ChannelPolicy::kPlaintext;
  /// PSK + rekey budgets when channel_policy is kSecure (psk required).
  SecureChannelOptions secure_channel;
};

/// Multi-client TCP server: an epoll event loop plus a worker pool.
///
/// The handler is called concurrently from the worker pool and must be
/// safe for concurrent calls (EncryptedMIndexServer and ShardedServer
/// are). Pipelined requests from one connection may be handled — and
/// answered — out of order; clients must not pipeline requests that
/// depend on each other's effects.
class TcpServer {
 public:
  explicit TcpServer(RequestHandler* handler,
                     TcpServerOptions options = TcpServerOptions())
      : handler_(handler), options_(options) {}
  ~TcpServer();

  /// Binds to 127.0.0.1:`port` (0 = pick a free port) and starts serving.
  Status Start(uint16_t port = 0);
  /// Shuts down the listener and all live connections, then joins the
  /// event loop and every worker. Safe to call while clients are still
  /// connected; must not be called from a handler. A stopped server
  /// cannot be restarted.
  void Stop();

  /// Bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }
  /// Connections accepted since Start (live + finished).
  uint64_t connections_accepted() const { return connections_accepted_.load(); }

  /// Engine introspection (tests and benches).
  size_t worker_threads() const { return options_.worker_threads; }
  /// Readiness-engine name ("epoll" or "io_uring"); valid after Start.
  const char* io_engine_name() const {
    return engine_ ? engine_->name() : "none";
  }
  size_t active_connections() const { return active_connections_.load(); }
  uint64_t frames_dispatched() const { return frames_dispatched_.load(); }
  uint64_t frames_completed() const { return frames_completed_.load(); }
  /// Times a connection's read interest was dropped for backpressure
  /// (output queue at its bound or pipeline at max_in_flight).
  uint64_t reads_paused() const { return reads_paused_.load(); }
  /// Highest queued-output-bytes watermark any connection reached.
  uint64_t peak_output_queue_bytes() const {
    return peak_output_queue_bytes_.load();
  }
  /// Secure handshakes completed since Start (secure policy only).
  uint64_t handshakes_completed() const {
    return handshakes_completed_.load();
  }

 private:
  /// State shared between a loop-owned Connection and the PushSinks
  /// handed to handlers (change streams): a sink may outlive both its
  /// connection and the server's run, so everything it touches lives
  /// here, behind this struct's own mutex/atomics. While `open` is true
  /// (checked under `mutex`) the connection exists and the server is
  /// running — CloseConnection flips it under the same mutex on the loop
  /// thread, and the loop closes every connection before Stop() returns.
  struct ConnShared {
    std::mutex mutex;            ///< guards `open` against teardown
    bool open = true;
    TcpServer* server = nullptr;
    uint64_t gen = 0;
    /// Loop-maintained mirror of Connection::out_bytes, so sinks can
    /// observe the bounded output queue without touching loop state.
    std::atomic<size_t> queued_out_bytes{0};
    /// Push bytes enqueued as completions but not yet drained into the
    /// output queue (they count against the bound from enqueue time, or
    /// a burst of pushes could overshoot it arbitrarily).
    std::atomic<size_t> pending_push_bytes{0};
  };
  class ConnPushSink;       // PushSink over ConnShared (tcp.cc)
  class ConnStreamContext;  // StreamContext minting ConnPushSinks

  struct Connection {
    int fd = -1;
    uint64_t gen = 0;          ///< identity for completion routing
    std::shared_ptr<ConnShared> shared;  ///< see ConnShared
    Bytes in;                  ///< plaintext, not yet parsed bytes
    size_t in_off = 0;         ///< parse offset into `in`
    // Secure policy only: raw wire bytes before handshake/record
    // processing, and the channel state. `in` then holds decrypted
    // plaintext and the frame parser is unchanged.
    Bytes raw;                 ///< undecrypted received bytes
    size_t raw_off = 0;        ///< consume offset into `raw`
    std::unique_ptr<ServerHandshake> handshake;  ///< until complete
    std::unique_ptr<SecureChannel> channel;      ///< open record channel
    std::deque<Bytes> out;     ///< encoded response frames pending write
    size_t out_off = 0;        ///< progress within out.front()
    size_t out_bytes = 0;      ///< total unsent bytes across `out`
    uint32_t in_flight = 0;    ///< requests dispatched, response not queued
    bool legacy_in_flight = false;  ///< an id-0 request is being handled
    bool read_eof = false;     ///< peer half-closed its write side
    uint32_t interest = 0;     ///< current epoll event mask
    uint64_t accept_nanos = 0;  ///< monotonic accept time (handshake latency)
  };

  struct WorkItem {
    uint64_t gen = 0;
    uint32_t id = 0;
    bool legacy = false;
    Bytes body;
    std::shared_ptr<ConnShared> shared;  ///< for minting push sinks
    uint64_t enqueue_nanos = 0;  ///< parse time; 0 when tracing is off
  };

  struct Completion {
    uint64_t gen = 0;
    bool legacy = false;
    /// Server-push frame (change streams): not a response to any
    /// dispatched request, so it must not decrement in_flight.
    bool push = false;
    Bytes frame;  ///< fully framed response, ready to write
  };

  void EventLoop();
  void WorkerLoop();
  void WakeLoop();
  void AcceptNewConnections();
  void DrainCompletions();
  /// Reads available bytes; false = fatal socket state, close now.
  bool ReadFromConnection(Connection* conn);
  /// Secure policy: advances the handshake and/or decrypts complete
  /// records from `raw` into `in`; false = protocol violation (downgrade
  /// attempt, tampered record), close now. No-op for plaintext.
  bool DecryptIncoming(Connection* conn);
  /// Parses and dispatches complete frames; false = protocol violation.
  bool ParseFrames(Connection* conn);
  /// Writes queued frames until EAGAIN; false = fatal write error.
  bool FlushOutput(Connection* conn);
  /// Re-parses, flushes, retires or re-arms the connection.
  /// Returns false when the connection was closed.
  bool UpdateConnection(Connection* conn);
  void CloseConnection(Connection* conn);

  RequestHandler* handler_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  /// Readiness engine (epoll by default, io_uring when selected via
  /// SIMCLOUD_IO_ENGINE=uring). Owned by the loop thread after Start.
  std::unique_ptr<EventEngine> engine_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread loop_thread_;

  // Event-loop-thread state (no lock: only the loop touches it).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_gen_ = 2;  // 0 and 1 tag the listen and wake fds

  // Loop -> workers.
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_queue_;
  bool workers_stop_ = false;
  std::vector<std::thread> workers_;

  // Workers -> loop.
  std::mutex done_mutex_;
  std::vector<Completion> done_queue_;
  /// Set by Stop() once the loop and workers are joined: push sinks that
  /// survive the server's run fail cleanly instead of enqueuing into a
  /// dead queue. Guarded by done_mutex_.
  bool done_closed_ = false;
  std::atomic<bool> wake_pending_{false};  ///< coalesces eventfd writes

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> frames_dispatched_{0};
  std::atomic<uint64_t> frames_completed_{0};
  std::atomic<uint64_t> reads_paused_{0};
  std::atomic<uint64_t> peak_output_queue_bytes_{0};
  std::atomic<uint64_t> handshakes_completed_{0};
};

/// TCP client transport. Call() speaks the legacy (request id 0) framing
/// — byte-identical to the pre-pipelining protocol — while Submit() /
/// Collect() pipeline many flagged frames over the same connection.
/// Submit/Collect are safe for concurrent use from multiple threads
/// (ShardedServer fans out over shared persistent connections); Call()
/// additionally serializes against itself. Measured wall time minus the
/// server-reported processing time is attributed to communication for
/// synchronous Call()s; pipelined requests overlap, so only their bytes
/// and server time are accounted.
class TcpTransport : public PipelinedTransport {
 public:
  /// Connects to `host`:`port`. With ChannelPolicy::kSecure the PSK
  /// handshake runs (blocking, bounded by secure.handshake_timeout_ms)
  /// before Connect returns, and every frame afterwards travels inside
  /// an AEAD record; the default is the original plaintext wire.
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port,
      ChannelPolicy policy = ChannelPolicy::kPlaintext,
      const SecureChannelOptions& secure = SecureChannelOptions());
  ~TcpTransport() override;

  Result<Bytes> Call(const Bytes& request) override;

  /// Writes one pipelined request frame and returns its ticket without
  /// waiting for the response. The socket write itself is blocking: a
  /// caller that submits an unbounded volume without ever collecting
  /// can fill the kernel buffers while the server's per-connection
  /// in-flight cap has paused its reads, and then blocks here forever.
  /// Keep the un-collected window bounded (every in-tree user pipelines
  /// at most a few dozen requests) or collect from another thread.
  Result<uint64_t> Submit(const Bytes& request) override;
  /// Blocks until the response for `ticket` arrives (responses for other
  /// tickets are buffered for their collectors). Each ticket can be
  /// collected exactly once.
  Result<Bytes> Collect(uint64_t ticket) override;

  /// Streaming (change streams): SubmitStream parks `ticket` so the
  /// server can push many frames on it; CollectStream pops them in
  /// arrival order (DeadlineExceeded after `timeout_ms` with nothing
  /// queued — soft, like CollectFor). CloseStream forgets the id; any
  /// frame arriving on it afterwards is dropped silently, so cancel a
  /// stream server-side and drain it BEFORE closing.
  Result<uint64_t> SubmitStream(const Bytes& request) override;
  Result<Bytes> CollectStream(uint64_t ticket, int timeout_ms) override;
  void CloseStream(uint64_t ticket) override;

  /// Collect with a deadline: returns DeadlineExceeded when no response
  /// for `ticket` arrived within `timeout_ms`. The ticket stays
  /// outstanding — the response, should it arrive later, is parked for a
  /// retry — and the stream is NOT marked broken; callers that treat a
  /// timeout as fatal (topology probes do) follow up with Abort().
  /// Bounded waits hold even while this thread is the elected reader:
  /// the socket is polled before every blocking read.
  Result<Bytes> CollectFor(uint64_t ticket, int timeout_ms);

  /// Marks the stream broken with `reason` and shuts the socket down,
  /// which promptly fails every parked Submit/Collect — including a
  /// collector blocked inside recv() as the elected reader — with the
  /// sticky stream status. Idempotent; safe from any thread. The
  /// shutdown is orderly (queued bytes flush, then FIN), so a server
  /// sees a clean EOF rather than a reset.
  void Abort(const Status& reason);

  /// Sticky stream status: OK while the connection is usable, the first
  /// fatal failure afterwards. A broken transport never recovers —
  /// reconnection means building a new transport (secure::topology does).
  Status stream_status() const;

  /// "host:port" this transport was connected to.
  const std::string& peer() const { return peer_; }

  /// Costs are updated under an internal lock; read them only while no
  /// Call/Submit/Collect is concurrently in flight.
  const TransportCosts& costs() const override { return costs_; }
  void ResetCosts() override;

 private:
  struct ReadyResponse {
    Result<Bytes> payload = Status::Internal("unparsed");
    int64_t server_nanos = 0;
  };

  TcpTransport(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  /// Frames (legacy when id == 0) and writes one request — sealed into
  /// a record first on a secure channel.
  Status SubmitFrame(const Bytes& request, uint32_t id);
  /// Waits until the response for `id` is ready, reading frames off the
  /// socket whenever no other thread is already reading. A null
  /// `deadline` waits forever; otherwise DeadlineExceeded past it.
  Result<ReadyResponse> AwaitResponse(
      uint32_t id,
      const std::chrono::steady_clock::time_point* deadline = nullptr);
  /// Reads and parses exactly one response frame (any id). Runs outside
  /// the state lock; only one thread reads at a time. With a deadline,
  /// the socket is polled before blocking and DeadlineExceeded is
  /// returned — without consuming anything — when it passes first.
  Status ReadOneResponse(const std::chrono::steady_clock::time_point* deadline);
  /// Secure path of ReadOneResponse: pulls records off the socket and
  /// decrypts until the plaintext stream yields one complete frame.
  /// Only the elected reader touches the receive buffers.
  Result<DecodedFrame> ReadSecureFrame(
      const std::chrono::steady_clock::time_point* deadline);
  /// Records the first fatal stream failure, wakes every parked waiter,
  /// and shuts the socket down so the elected reader's recv() returns.
  void MarkBroken(const Status& reason);

  int fd_;
  std::string peer_;  ///< "host:port", for failure attribution
  std::unique_ptr<SecureChannel> channel_;  ///< null = plaintext wire
  Bytes recv_raw_;         ///< undecrypted bytes (elected reader only)
  size_t recv_raw_off_ = 0;
  Bytes recv_plain_;       ///< decrypted, not yet parsed frame bytes
  size_t recv_plain_off_ = 0;

  std::mutex write_mutex_;  ///< serializes frame writes + ticket issue
  uint32_t next_id_ = 1;

  mutable std::mutex state_mutex_;  ///< pending/ready bookkeeping + reader election
  std::condition_variable state_cv_;
  bool reader_active_ = false;
  Status broken_ = Status::OK();  ///< sticky stream failure
  std::unordered_set<uint32_t> outstanding_;
  std::unordered_map<uint32_t, ReadyResponse> ready_;
  /// Streaming ids: ReadOneResponse routes their frames into
  /// stream_ready_ (a queue per id — many frames per ticket) and keeps
  /// the id outstanding for the frames still to come.
  std::unordered_set<uint32_t> streaming_;
  std::unordered_map<uint32_t, std::deque<ReadyResponse>> stream_ready_;
  /// Closed stream ids: late frames (a server still flushing when the
  /// client gave up) are dropped instead of poisoning the connection as
  /// unknown-id protocol violations.
  std::unordered_set<uint32_t> closed_streams_;

  std::mutex costs_mutex_;
  std::mutex call_mutex_;  ///< one synchronous Call at a time
  TransportCosts costs_;
};

/// Writes one legacy (request id 0) length-prefixed frame to `fd`.
Status WriteFrame(int fd, const Bytes& payload);
/// Writes one pipelined frame (`request_id` must be nonzero).
Status WritePipelinedFrame(int fd, uint32_t request_id, const Bytes& payload);
/// Reads one legacy frame from `fd` (up to `max_len` bytes); a pipelined
/// frame in the stream is a NetworkError.
Result<Bytes> ReadFrame(int fd, size_t max_len = 1ull << 31);

/// Reads one frame (legacy or pipelined) from `fd`.
Result<DecodedFrame> ReadAnyFrame(int fd, size_t max_len = 1ull << 31);

}  // namespace net
}  // namespace simcloud

#endif  // SIMCLOUD_NET_TCP_H_
