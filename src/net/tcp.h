// Real TCP client/server for the similarity cloud, mirroring the paper's
// deployment of the encryption client and M-Index server as two processes
// communicating over the loopback interface.
//
// Wire format per message: u32 little-endian frame length, then the frame.
// Responses additionally carry the server's processing time (u64 nanos)
// before the payload so the client can split wall time into server vs.
// communication components, as the paper's tables require.

#ifndef SIMCLOUD_NET_TCP_H_
#define SIMCLOUD_NET_TCP_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/transport.h"

namespace simcloud {
namespace net {

/// Multi-client TCP server running the accept loop on a background thread
/// and each connection on its own thread. The handler must be safe for
/// concurrent calls (or the caller must serialize externally).
class TcpServer {
 public:
  explicit TcpServer(RequestHandler* handler) : handler_(handler) {}
  ~TcpServer();

  /// Binds to 127.0.0.1:`port` (0 = pick a free port) and starts serving.
  Status Start(uint16_t port = 0);
  /// Shuts down the listener and all live connections, then joins every
  /// server thread. Safe to call while clients are still connected.
  void Stop();

  /// Bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }
  /// Connections accepted since Start (live + finished).
  uint64_t connections_accepted() const { return connections_accepted_.load(); }

 private:
  void ServeLoop();
  void ServeConnection(int client_fd);
  void UnregisterConnection(int client_fd);

  RequestHandler* handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread thread_;

  std::mutex mutex_;                        // guards the two fields below
  std::vector<int> live_fds_;               // accepted fds still being served
  std::vector<std::thread> conn_threads_;   // one per accepted connection
};

/// TCP client transport. Measured wall time minus the server-reported
/// processing time is attributed to communication.
class TcpTransport : public Transport {
 public:
  /// Connects to `host`:`port`.
  static Result<std::unique_ptr<TcpTransport>> Connect(const std::string& host,
                                                       uint16_t port);
  ~TcpTransport() override;

  Result<Bytes> Call(const Bytes& request) override;

  const TransportCosts& costs() const override { return costs_; }
  void ResetCosts() override { costs_.Clear(); }

 private:
  explicit TcpTransport(int fd) : fd_(fd) {}

  int fd_;
  TransportCosts costs_;
};

/// Writes one length-prefixed frame to `fd`.
Status WriteFrame(int fd, const Bytes& payload);
/// Reads one length-prefixed frame from `fd` (up to `max_len` bytes).
Result<Bytes> ReadFrame(int fd, size_t max_len = 1ull << 31);

}  // namespace net
}  // namespace simcloud

#endif  // SIMCLOUD_NET_TCP_H_
