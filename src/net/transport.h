// Client-server transport abstraction with cost accounting.
//
// The paper evaluates a real client/server deployment (two processes on
// one machine, TCP over loopback) and reports three separate cost
// components per operation: client time, server time, and communication
// time. To reproduce that decomposition the transport protocol carries the
// server's processing time in every response, so the client can attribute
//   call wall time = server time + communication time.
//
// Two implementations:
//  * LoopbackTransport — in-process; bytes are counted exactly and
//    communication time is modelled from a configurable LinkModel
//    (latency + bandwidth), keeping benchmarks deterministic.
//  * TcpTransport/TcpServer (tcp.h) — real POSIX sockets for integration
//    testing of the full wire path.

#ifndef SIMCLOUD_NET_TRANSPORT_H_
#define SIMCLOUD_NET_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace obs {
class TraceSpan;
}  // namespace obs
namespace net {

/// Server-push outlet for one request id: lets a handler send additional
/// frames on the id AFTER its response, from any thread, for as long as
/// the connection lives. Implementations are thread-safe.
class PushSink {
 public:
  virtual ~PushSink() = default;
  /// Enqueues one push frame. Best-effort with explicit outcomes:
  ///  * OK                  — queued (counted against the connection's
  ///                          bounded output queue like any response);
  ///  * FailedPrecondition  — the queue is at max_output_queue_bytes; the
  ///                          producer should hold the event and retry
  ///                          (backpressure, not an error);
  ///  * NetworkError        — the connection is gone; drop the producer.
  virtual Status TryPush(const Bytes& payload) = 0;
};

/// Per-request streaming context a transport hands to HandleStream. Today
/// it only mints push sinks; a null context (or a null sink) means the
/// transport cannot push on this request — a legacy framed connection or
/// an in-process loopback call — and stream-registering opcodes must fail
/// cleanly instead.
class StreamContext {
 public:
  virtual ~StreamContext() = default;
  /// A sink bound to this request's connection + id; may outlive the
  /// handler call. Null when the transport cannot push.
  virtual std::shared_ptr<PushSink> MakeSink() = 0;
  /// Stable identity of the underlying connection, for per-connection
  /// server state (cursors, watches) reaped via OnConnectionClosed. 0 =
  /// no identity (in-process call); such state is TTL-reaped only.
  virtual uint64_t connection_id() const { return 0; }
  /// Whether the request arrived on the pipelined framing. Legacy
  /// (bit-31-clear) connections cannot interleave many in-flight
  /// requests, so stateful opcodes (cursors) reject them cleanly.
  virtual bool pipelined() const { return true; }
  /// The request's trace span (stage timings, distance accounting), or
  /// null when the transport does not trace (loopback, tracing off).
  /// Handlers annotate it (shard, batch size); the transport finishes it.
  virtual obs::TraceSpan* trace() const { return nullptr; }
};

/// Server-side request handler: consumes a request message, produces a
/// response message. Implementations are the "similarity cloud" services.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  /// Handles one request; errors become transport-level failures.
  virtual Result<Bytes> Handle(const Bytes& request) = 0;
  /// Handles one request that may register a push stream. `stream` is
  /// null when the transport cannot push (legacy framing, loopback);
  /// the default ignores it, so non-streaming handlers need no change.
  virtual Result<Bytes> HandleStream(const Bytes& request,
                                     StreamContext* stream) {
    (void)stream;
    return Handle(request);
  }
  /// Notifies the handler that connection `connection_id` (the value
  /// StreamContext::connection_id reported for its requests) is gone —
  /// the eager-reap hook for per-connection server state (open cursors,
  /// watch registrations). Called from the transport's event thread;
  /// implementations must not block. Default: nothing to reap.
  virtual void OnConnectionClosed(uint64_t connection_id) {
    (void)connection_id;
  }
};

/// Aggregated transport-level costs (the paper's server/communication
/// split plus the exchanged volume, its "communication cost").
struct TransportCosts {
  int64_t server_nanos = 0;         ///< time spent inside the handler
  int64_t communication_nanos = 0;  ///< wire time (modelled or measured)
  uint64_t bytes_sent = 0;          ///< client -> server volume
  uint64_t bytes_received = 0;      ///< server -> client volume
  uint64_t calls = 0;

  uint64_t TotalBytes() const { return bytes_sent + bytes_received; }
  void Clear() { *this = TransportCosts{}; }
};

/// Synchronous request/response channel as seen by a client.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `request` and waits for the response.
  virtual Result<Bytes> Call(const Bytes& request) = 0;

  /// Costs accumulated over all Call()s so far.
  virtual const TransportCosts& costs() const = 0;
  /// Resets the cost accumulators.
  virtual void ResetCosts() = 0;
};

/// Transport with request pipelining: many requests can be submitted
/// before any response is collected, so round trips overlap on one
/// persistent connection. Submit returns a ticket; Collect blocks until
/// that ticket's response arrives. Call() remains the synchronous path.
/// Requests pipelined together may be *executed* in any order by the
/// server — callers must not pipeline requests that depend on each
/// other's effects.
class PipelinedTransport : public Transport {
 public:
  virtual Result<uint64_t> Submit(const Bytes& request) = 0;
  virtual Result<Bytes> Collect(uint64_t ticket) = 0;

  /// Streaming extension (change streams): SubmitStream parks a request
  /// id the server may push many frames on; CollectStream yields them in
  /// arrival order, response first... except that a push the server
  /// enqueued before its response lands first — callers tag frames in the
  /// payload, not by position. CloseStream forgets the id; any later
  /// frame on it is dropped, so callers must drain a cancelled stream
  /// BEFORE closing (see EncodeWatchCancelRequest). The base class does
  /// not pipeline pushes: transports without server-push keep the
  /// default NotSupported.
  virtual Result<uint64_t> SubmitStream(const Bytes& request) {
    (void)request;
    return Status::NotSupported("transport cannot stream");
  }
  virtual Result<Bytes> CollectStream(uint64_t ticket, int timeout_ms) {
    (void)ticket;
    (void)timeout_ms;
    return Status::NotSupported("transport cannot stream");
  }
  virtual void CloseStream(uint64_t ticket) { (void)ticket; }
};

/// Network link model for deterministic communication-time accounting.
/// Defaults approximate the paper's setup (loopback interface on one
/// machine): per-message latency plus volume / bandwidth.
struct LinkModel {
  double latency_seconds = 100e-6;        ///< per direction, per message
  double bandwidth_bytes_per_sec = 100e6; ///< ~1 GbE payload rate

  /// Modelled one-way transfer time for a message of `bytes`.
  double TransferSeconds(uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

/// In-process transport: invokes the handler directly, counting bytes
/// exactly and charging communication time from the LinkModel. The
/// pipelined API is supported with degenerate overlap (each Submit runs
/// the handler immediately and buffers the response for its Collect),
/// keeping loopback and TCP deployments drop-in interchangeable. Not
/// safe for concurrent use, like the rest of this class.
class LoopbackTransport : public PipelinedTransport {
 public:
  explicit LoopbackTransport(RequestHandler* handler,
                             LinkModel link = LinkModel())
      : handler_(handler), link_(link) {}

  Result<Bytes> Call(const Bytes& request) override;

  Result<uint64_t> Submit(const Bytes& request) override;
  Result<Bytes> Collect(uint64_t ticket) override;

  const TransportCosts& costs() const override { return costs_; }
  void ResetCosts() override { costs_.Clear(); }

 private:
  RequestHandler* handler_;
  LinkModel link_;
  TransportCosts costs_;
  uint64_t next_ticket_ = 1;
  std::map<uint64_t, Result<Bytes>> pending_;
};

}  // namespace net
}  // namespace simcloud

#endif  // SIMCLOUD_NET_TRANSPORT_H_
