// Client-server transport abstraction with cost accounting.
//
// The paper evaluates a real client/server deployment (two processes on
// one machine, TCP over loopback) and reports three separate cost
// components per operation: client time, server time, and communication
// time. To reproduce that decomposition the transport protocol carries the
// server's processing time in every response, so the client can attribute
//   call wall time = server time + communication time.
//
// Two implementations:
//  * LoopbackTransport — in-process; bytes are counted exactly and
//    communication time is modelled from a configurable LinkModel
//    (latency + bandwidth), keeping benchmarks deterministic.
//  * TcpTransport/TcpServer (tcp.h) — real POSIX sockets for integration
//    testing of the full wire path.

#ifndef SIMCLOUD_NET_TRANSPORT_H_
#define SIMCLOUD_NET_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {
namespace net {

/// Server-side request handler: consumes a request message, produces a
/// response message. Implementations are the "similarity cloud" services.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  /// Handles one request; errors become transport-level failures.
  virtual Result<Bytes> Handle(const Bytes& request) = 0;
};

/// Aggregated transport-level costs (the paper's server/communication
/// split plus the exchanged volume, its "communication cost").
struct TransportCosts {
  int64_t server_nanos = 0;         ///< time spent inside the handler
  int64_t communication_nanos = 0;  ///< wire time (modelled or measured)
  uint64_t bytes_sent = 0;          ///< client -> server volume
  uint64_t bytes_received = 0;      ///< server -> client volume
  uint64_t calls = 0;

  uint64_t TotalBytes() const { return bytes_sent + bytes_received; }
  void Clear() { *this = TransportCosts{}; }
};

/// Synchronous request/response channel as seen by a client.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends `request` and waits for the response.
  virtual Result<Bytes> Call(const Bytes& request) = 0;

  /// Costs accumulated over all Call()s so far.
  virtual const TransportCosts& costs() const = 0;
  /// Resets the cost accumulators.
  virtual void ResetCosts() = 0;
};

/// Transport with request pipelining: many requests can be submitted
/// before any response is collected, so round trips overlap on one
/// persistent connection. Submit returns a ticket; Collect blocks until
/// that ticket's response arrives. Call() remains the synchronous path.
/// Requests pipelined together may be *executed* in any order by the
/// server — callers must not pipeline requests that depend on each
/// other's effects.
class PipelinedTransport : public Transport {
 public:
  virtual Result<uint64_t> Submit(const Bytes& request) = 0;
  virtual Result<Bytes> Collect(uint64_t ticket) = 0;
};

/// Network link model for deterministic communication-time accounting.
/// Defaults approximate the paper's setup (loopback interface on one
/// machine): per-message latency plus volume / bandwidth.
struct LinkModel {
  double latency_seconds = 100e-6;        ///< per direction, per message
  double bandwidth_bytes_per_sec = 100e6; ///< ~1 GbE payload rate

  /// Modelled one-way transfer time for a message of `bytes`.
  double TransferSeconds(uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

/// In-process transport: invokes the handler directly, counting bytes
/// exactly and charging communication time from the LinkModel. The
/// pipelined API is supported with degenerate overlap (each Submit runs
/// the handler immediately and buffers the response for its Collect),
/// keeping loopback and TCP deployments drop-in interchangeable. Not
/// safe for concurrent use, like the rest of this class.
class LoopbackTransport : public PipelinedTransport {
 public:
  explicit LoopbackTransport(RequestHandler* handler,
                             LinkModel link = LinkModel())
      : handler_(handler), link_(link) {}

  Result<Bytes> Call(const Bytes& request) override;

  Result<uint64_t> Submit(const Bytes& request) override;
  Result<Bytes> Collect(uint64_t ticket) override;

  const TransportCosts& costs() const override { return costs_; }
  void ResetCosts() override { costs_.Clear(); }

 private:
  RequestHandler* handler_;
  LinkModel link_;
  TransportCosts costs_;
  uint64_t next_ticket_ = 1;
  std::map<uint64_t, Result<Bytes>> pending_;
};

}  // namespace net
}  // namespace simcloud

#endif  // SIMCLOUD_NET_TRANSPORT_H_
