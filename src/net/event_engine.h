// Readiness engine behind TcpServer's event loop.
//
// The server's loop logic (accept, incremental reads, backpressure,
// completion flushing) is engine-agnostic: it registers fds with an
// interest mask and consumes (tag, events) pairs. EventEngine is that
// seam. Two implementations exist:
//   - EpollEngine: the original epoll_wait loop, the default.
//   - UringEngine: io_uring poll-driven readiness. Oneshot POLL_ADD
//     SQEs are re-armed in batched submissions (one io_uring_enter per
//     loop iteration instead of one epoll_ctl syscall per interest
//     change); fds whose interest never changes (listen, wake) use
//     multishot poll where the kernel supports it.
// Selection: SIMCLOUD_IO_ENGINE=uring opts into io_uring, with a
// runtime probe that falls back to epoll — logging the reason — on
// kernels or sandboxes without io_uring. Unset or "epoll" keeps the
// default. Event masks use the epoll bit values (EPOLLIN/EPOLLOUT/
// EPOLLRDHUP/...) in both engines, and delivery semantics are
// level-triggered either way, so TcpServer behaves identically under
// both engines.

#ifndef SIMCLOUD_NET_EVENT_ENGINE_H_
#define SIMCLOUD_NET_EVENT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace simcloud {
namespace net {

/// Readiness source for one event-loop thread. Not thread-safe: every
/// method must be called from the loop thread that owns the engine
/// (TcpServer registers the listen/wake fds before starting the loop,
/// which is safe — the loop has not started consuming yet).
class EventEngine {
 public:
  struct Event {
    uint64_t tag = 0;     ///< registration tag (connection generation)
    uint32_t events = 0;  ///< EPOLL* bits that fired
  };

  virtual ~EventEngine() = default;

  /// Engine name for banners/logs: "epoll" or "io_uring".
  virtual const char* name() const = 0;

  /// Registers `fd` with interest `events`. `constant_interest` promises
  /// Modify will never be called for this fd (lets the io_uring engine
  /// keep a standing multishot poll armed).
  virtual Status Add(int fd, uint64_t tag, uint32_t events,
                     bool constant_interest) = 0;
  /// Replaces the interest mask of a registered fd.
  virtual Status Modify(int fd, uint64_t tag, uint32_t events) = 0;
  /// Deregisters an fd. Call BEFORE closing the fd (the io_uring engine
  /// must cancel any in-flight poll holding a reference to the file).
  /// Stale events for `tag` may still surface from the current batch;
  /// the caller's tag lookup makes them harmless.
  virtual void Remove(int fd, uint64_t tag) = 0;

  /// Blocks until at least one event is ready; appends them to `out`
  /// (which is cleared first). An error here is loop-fatal.
  virtual Status Wait(std::vector<Event>* out) = 0;

  /// Builds the engine selected by SIMCLOUD_IO_ENGINE ("epoll" default,
  /// "uring" opts into io_uring with probe + epoll fallback).
  static Result<std::unique_ptr<EventEngine>> Create();
};

}  // namespace net
}  // namespace simcloud

#endif  // SIMCLOUD_NET_EVENT_ENGINE_H_
