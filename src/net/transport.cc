#include "net/transport.h"

#include "common/clock.h"

namespace simcloud {
namespace net {

Result<Bytes> LoopbackTransport::Call(const Bytes& request) {
  costs_.calls++;
  costs_.bytes_sent += request.size();

  Stopwatch watch;
  Result<Bytes> response = handler_->Handle(request);
  costs_.server_nanos += watch.ElapsedNanos();
  if (!response.ok()) return response.status();

  costs_.bytes_received += response->size();
  const double comm_seconds = link_.TransferSeconds(request.size()) +
                              link_.TransferSeconds(response->size());
  costs_.communication_nanos += static_cast<int64_t>(comm_seconds * 1e9);
  return response;
}

Result<uint64_t> LoopbackTransport::Submit(const Bytes& request) {
  const uint64_t ticket = next_ticket_++;
  pending_.emplace(ticket, Call(request));
  return ticket;
}

Result<Bytes> LoopbackTransport::Collect(uint64_t ticket) {
  auto it = pending_.find(ticket);
  if (it == pending_.end()) {
    return Status::InvalidArgument("unknown or already-collected ticket " +
                                   std::to_string(ticket));
  }
  Result<Bytes> response = std::move(it->second);
  pending_.erase(it);
  return response;
}

}  // namespace net
}  // namespace simcloud
