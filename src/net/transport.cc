#include "net/transport.h"

#include "common/clock.h"

namespace simcloud {
namespace net {

Result<Bytes> LoopbackTransport::Call(const Bytes& request) {
  costs_.calls++;
  costs_.bytes_sent += request.size();

  Stopwatch watch;
  Result<Bytes> response = handler_->Handle(request);
  costs_.server_nanos += watch.ElapsedNanos();
  if (!response.ok()) return response.status();

  costs_.bytes_received += response->size();
  const double comm_seconds = link_.TransferSeconds(request.size()) +
                              link_.TransferSeconds(response->size());
  costs_.communication_nanos += static_cast<int64_t>(comm_seconds * 1e9);
  return response;
}

}  // namespace net
}  // namespace simcloud
