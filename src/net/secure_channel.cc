#include "net/secure_channel.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/secure_random.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simcloud {
namespace net {

namespace {

constexpr char kC2sLabel[] = "sc-c2s";
constexpr char kS2cLabel[] = "sc-s2c";

Bytes LabelBytes(const char* label) {
  return Bytes(label, label + std::strlen(label));
}

void AppendU64(uint64_t v, Bytes* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t LoadLE32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

Status ValidatePsk(const SecureChannelOptions& options) {
  if (options.psk.size() < 16) {
    return Status::InvalidArgument(
        "secure channel PSK must be at least 16 bytes");
  }
  if (options.rekey_after_records == 0 || options.rekey_after_bytes == 0) {
    return Status::InvalidArgument("rekey budgets must be positive");
  }
  return Status::OK();
}

/// hs_mac_key = HKDF-Expand(HKDF-Extract({}, psk), "simcloud hs mac", 32).
Result<Bytes> HandshakeMacKey(const Bytes& psk) {
  Bytes early = crypto::HkdfExtract({}, psk);
  Result<Bytes> key =
      crypto::HkdfExpand(early, LabelBytes("simcloud hs mac"), 32);
  WipeBytes(&early);
  return key;
}

/// HMAC(hs_mac_key, role_label || client_nonce || server_nonce).
Result<Bytes> TranscriptTag(const Bytes& psk, const char* role_label,
                            const Bytes& client_nonce,
                            const Bytes& server_nonce) {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes mac_key, HandshakeMacKey(psk));
  Bytes transcript = LabelBytes(role_label);
  transcript.insert(transcript.end(), client_nonce.begin(),
                    client_nonce.end());
  transcript.insert(transcript.end(), server_nonce.begin(),
                    server_nonce.end());
  Bytes tag = crypto::HmacSha256(mac_key, transcript);
  WipeBytes(&mac_key);
  WipeBytes(&transcript);
  return tag;
}

/// The record-layer master secret, bound to both fresh nonces.
Bytes MasterPrk(const Bytes& psk, const Bytes& client_nonce,
                const Bytes& server_nonce) {
  Bytes salt = client_nonce;
  salt.insert(salt.end(), server_nonce.begin(), server_nonce.end());
  Bytes prk = crypto::HkdfExtract(salt, psk);
  WipeBytes(&salt);
  return prk;
}

/// The epoch key of one direction.
Result<crypto::AeadCipher> DeriveEpochAead(const Bytes& prk,
                                           const char* label,
                                           uint64_t epoch) {
  Bytes info = LabelBytes(label);
  AppendU64(epoch, &info);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes key, crypto::HkdfExpand(prk, info, 32));
  Result<crypto::AeadCipher> aead = crypto::AeadCipher::Create(key);
  WipeBytes(&key);
  return aead;
}

}  // namespace

// ---------------------------------------------------------------------------
// SecureChannel
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SecureChannel>> SecureChannel::Create(
    bool is_client, Bytes prk, const SecureChannelOptions& options) {
  auto channel = std::unique_ptr<SecureChannel>(new SecureChannel());
  channel->prk_ = std::move(prk);
  channel->rekey_after_records_ = options.rekey_after_records;
  channel->rekey_after_bytes_ = options.rekey_after_bytes;
  channel->max_record_bytes_ = options.max_record_bytes;
  channel->send_.label = is_client ? kC2sLabel : kS2cLabel;
  channel->recv_.label = is_client ? kS2cLabel : kC2sLabel;
  SIMCLOUD_ASSIGN_OR_RETURN(
      crypto::AeadCipher send_aead,
      DeriveEpochAead(channel->prk_, channel->send_.label, 0));
  SIMCLOUD_ASSIGN_OR_RETURN(
      crypto::AeadCipher recv_aead,
      DeriveEpochAead(channel->prk_, channel->recv_.label, 0));
  channel->send_.aead = std::move(send_aead);
  channel->recv_.aead = std::move(recv_aead);
  return channel;
}

SecureChannel::~SecureChannel() { WipeBytes(&prk_); }

namespace {

/// The associated data binding a record to its direction and position.
Bytes RecordAssociatedData(const char* label, uint64_t epoch, uint64_t seq) {
  Bytes ad = LabelBytes(label);
  AppendU64(epoch, &ad);
  AppendU64(seq, &ad);
  return ad;
}

}  // namespace

Status SecureChannel::Advance(Direction* dir, size_t plaintext_bytes) {
  dir->seq++;
  dir->total_records++;
  dir->bytes_in_epoch += plaintext_bytes;
  if (dir->seq < rekey_after_records_ &&
      dir->bytes_in_epoch < rekey_after_bytes_) {
    return Status::OK();
  }
  dir->epoch++;
  dir->seq = 0;
  dir->bytes_in_epoch = 0;
  SIMCLOUD_ASSIGN_OR_RETURN(crypto::AeadCipher aead,
                            DeriveEpochAead(prk_, dir->label, dir->epoch));
  dir->aead = std::move(aead);
  {
    static obs::Counter* const rekeys =
        obs::Registry::Default().GetCounter("simcloud_secure_rekeys_total");
    rekeys->Add(1);
  }
  return Status::OK();
}

Result<Bytes> SecureChannel::Seal(const Bytes& plaintext) {
  const Bytes ad = RecordAssociatedData(send_.label, send_.epoch, send_.seq);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes sealed, send_.aead->Seal(plaintext, ad));
  if (sealed.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("record exceeds the u32 length prefix");
  }
  Bytes record;
  record.reserve(kRecordHeaderSize + sealed.size());
  const uint32_t len = static_cast<uint32_t>(sealed.size());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  record.insert(record.end(), sealed.begin(), sealed.end());
  SIMCLOUD_RETURN_NOT_OK(Advance(&send_, plaintext.size()));
  return record;
}

Status SecureChannel::Ingest(const uint8_t* data, size_t len,
                             size_t* consumed, Bytes* plain) {
  *consumed = 0;
  SIMCLOUD_RETURN_NOT_OK(broken_);
  for (;;) {
    const size_t avail = len - *consumed;
    if (avail < kRecordHeaderSize) return Status::OK();
    const uint32_t sealed_len = LoadLE32(data + *consumed);
    if (sealed_len <
            crypto::AeadCipher::kIvSize + crypto::AeadCipher::kTagSize ||
        kRecordHeaderSize + static_cast<uint64_t>(sealed_len) >
            max_record_bytes_) {
      broken_ = Status::NetworkError("malformed secure record length " +
                                     std::to_string(sealed_len));
      return broken_;
    }
    if (avail < kRecordHeaderSize + sealed_len) return Status::OK();
    const uint8_t* body = data + *consumed + kRecordHeaderSize;
    const Bytes sealed(body, body + sealed_len);
    const Bytes ad = RecordAssociatedData(recv_.label, recv_.epoch,
                                          recv_.seq);
    Result<Bytes> opened = recv_.aead->Open(sealed, ad);
    if (!opened.ok()) {
      // Tampering, truncation, or a replayed/reordered record (the
      // expected sequence number has moved on). Nothing is decryptable
      // past this point; the connection must die.
      broken_ = Status::NetworkError(
          "secure record failed authentication: " +
          opened.status().message());
      return broken_;
    }
    plain->insert(plain->end(), opened->begin(), opened->end());
    Status advanced = Advance(&recv_, opened->size());
    if (!advanced.ok()) {
      broken_ = advanced;
      return broken_;
    }
    *consumed += kRecordHeaderSize + sealed_len;
  }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

Result<ClientHandshake> ClientHandshake::Start(
    const SecureChannelOptions& options) {
  SIMCLOUD_RETURN_NOT_OK(ValidatePsk(options));
  ClientHandshake handshake(options);
  SIMCLOUD_ASSIGN_OR_RETURN(
      handshake.client_nonce_,
      crypto::SecureRandom::Generate(kChannelNonceSize));
  handshake.hello_.reserve(kClientHelloSize);
  handshake.hello_.insert(handshake.hello_.end(), kSecureChannelMagic,
                          kSecureChannelMagic + 4);
  handshake.hello_.push_back(kSecureChannelVersion);
  handshake.hello_.insert(handshake.hello_.end(),
                          handshake.client_nonce_.begin(),
                          handshake.client_nonce_.end());
  return handshake;
}

ClientHandshake::~ClientHandshake() {
  WipeBytes(&options_.psk);
  WipeBytes(&client_nonce_);
}

Result<Bytes> ClientHandshake::Finish(
    const Bytes& server_hello, std::unique_ptr<SecureChannel>* channel) {
  if (server_hello.size() != kServerHelloSize) {
    return Status::NetworkError("server hello has wrong size");
  }
  if (std::memcmp(server_hello.data(), kSecureChannelMagic, 4) != 0) {
    return Status::PermissionDenied(
        "server did not answer with a secure-channel hello");
  }
  if (server_hello[4] != kSecureChannelVersion) {
    return Status::PermissionDenied("unsupported secure-channel version");
  }
  const Bytes server_nonce(server_hello.begin() + 5,
                           server_hello.begin() + 5 + kChannelNonceSize);
  const Bytes server_tag(server_hello.begin() + 5 + kChannelNonceSize,
                         server_hello.end());
  SIMCLOUD_ASSIGN_OR_RETURN(
      Bytes expected, TranscriptTag(options_.psk, "server finish",
                                    client_nonce_, server_nonce));
  if (!ConstantTimeEquals(server_tag, expected)) {
    return Status::PermissionDenied(
        "server handshake tag verification failed (wrong PSK?)");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      Bytes finish_tag, TranscriptTag(options_.psk, "client finish",
                                      client_nonce_, server_nonce));
  SIMCLOUD_ASSIGN_OR_RETURN(
      *channel,
      SecureChannel::Create(
          /*is_client=*/true,
          MasterPrk(options_.psk, client_nonce_, server_nonce), options_));
  return finish_tag;
}

ServerHandshake::~ServerHandshake() {
  WipeBytes(&options_.psk);
  WipeBytes(&client_nonce_);
  WipeBytes(&server_nonce_);
}

Result<size_t> ServerHandshake::Consume(const uint8_t* data, size_t len,
                                        Bytes* to_send) {
  SIMCLOUD_RETURN_NOT_OK(ValidatePsk(options_));
  size_t consumed = 0;
  if (state_ == State::kAwaitHello) {
    // Reject a non-handshake peer on the first bytes we can judge: a
    // plaintext or legacy client must be hard-closed, not served.
    const size_t check = std::min<size_t>(len, 4);
    if (std::memcmp(data, kSecureChannelMagic, check) != 0) {
      return Status::PermissionDenied(
          "secure server rejected a plaintext (or non-handshake) client");
    }
    if (len < kClientHelloSize) return consumed;  // still arriving
    if (data[4] != kSecureChannelVersion) {
      return Status::PermissionDenied("unsupported secure-channel version");
    }
    client_nonce_.assign(data + 5, data + 5 + kChannelNonceSize);
    SIMCLOUD_ASSIGN_OR_RETURN(
        server_nonce_, crypto::SecureRandom::Generate(kChannelNonceSize));
    SIMCLOUD_ASSIGN_OR_RETURN(
        Bytes server_tag, TranscriptTag(options_.psk, "server finish",
                                        client_nonce_, server_nonce_));
    to_send->insert(to_send->end(), kSecureChannelMagic,
                    kSecureChannelMagic + 4);
    to_send->push_back(kSecureChannelVersion);
    to_send->insert(to_send->end(), server_nonce_.begin(),
                    server_nonce_.end());
    to_send->insert(to_send->end(), server_tag.begin(), server_tag.end());
    consumed += kClientHelloSize;
    state_ = State::kAwaitFinish;
  }
  if (state_ == State::kAwaitFinish) {
    if (len - consumed < kClientFinishSize) return consumed;
    const Bytes client_tag(data + consumed,
                           data + consumed + kClientFinishSize);
    SIMCLOUD_ASSIGN_OR_RETURN(
        Bytes expected, TranscriptTag(options_.psk, "client finish",
                                      client_nonce_, server_nonce_));
    if (!ConstantTimeEquals(client_tag, expected)) {
      return Status::PermissionDenied(
          "client handshake tag verification failed (wrong PSK?)");
    }
    SIMCLOUD_ASSIGN_OR_RETURN(
        channel_,
        SecureChannel::Create(
            /*is_client=*/false,
            MasterPrk(options_.psk, client_nonce_, server_nonce_),
            options_));
    consumed += kClientFinishSize;
    state_ = State::kDone;
  }
  return consumed;
}

// ---------------------------------------------------------------------------
// Blocking client driver
// ---------------------------------------------------------------------------

namespace {

Status WriteAllFd(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::NetworkError(std::string("handshake send failed: ") +
                                  std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAllFd(int fd, uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd, data + done, len - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::NetworkError("secure handshake timed out");
      }
      return Status::NetworkError(std::string("handshake recv failed: ") +
                                  std::strerror(errno));
    }
    if (n == 0) {
      return Status::NetworkError(
          "server closed the connection during the secure handshake — is "
          "it running with ChannelPolicy::kSecure?");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Result<std::unique_ptr<SecureChannel>> RunClientHandshake(
    int fd, const SecureChannelOptions& options) {
  const uint64_t start_nanos =
      obs::MetricsEnabled() ? obs::MonotonicNanos() : 0;
  SIMCLOUD_ASSIGN_OR_RETURN(ClientHandshake handshake,
                            ClientHandshake::Start(options));
  if (options.handshake_timeout_ms > 0) {
    SetRecvTimeout(fd, options.handshake_timeout_ms);
  }
  SIMCLOUD_RETURN_NOT_OK(
      WriteAllFd(fd, handshake.hello().data(), handshake.hello().size()));
  Bytes server_hello(kServerHelloSize);
  SIMCLOUD_RETURN_NOT_OK(
      ReadAllFd(fd, server_hello.data(), server_hello.size()));
  std::unique_ptr<SecureChannel> channel;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes finish,
                            handshake.Finish(server_hello, &channel));
  SIMCLOUD_RETURN_NOT_OK(WriteAllFd(fd, finish.data(), finish.size()));
  if (options.handshake_timeout_ms > 0) SetRecvTimeout(fd, 0);
  if (start_nanos != 0) {
    static obs::Histogram* const latency =
        obs::Registry::Default().GetHistogram(
            "simcloud_secure_handshake_nanos{side=\"client\"}");
    latency->Record(obs::MonotonicNanos() - start_nanos);
  }
  return channel;
}

}  // namespace net
}  // namespace simcloud
