#include "baselines/trivial.h"

#include "common/serialize.h"
#include "metric/ground_truth.h"

namespace simcloud {
namespace baselines {

using metric::NeighborList;
using metric::VectorObject;

namespace {
enum class TrivialOp : uint8_t {
  kPutBatch = 20,
  kFetchAll = 21,
};
}  // namespace

Result<Bytes> BlobStoreServer::Handle(const Bytes& request) {
  BinaryReader reader(request);
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  switch (static_cast<TrivialOp>(op_byte)) {
    case TrivialOp::kPutBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      for (uint64_t i = 0; i < count; ++i) {
        SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(Bytes blob, reader.ReadBytes());
        blobs_.emplace_back(id, std::move(blob));
      }
      BinaryWriter writer;
      writer.WriteVarint(count);
      return writer.TakeBuffer();
    }
    case TrivialOp::kFetchAll: {
      BinaryWriter writer;
      writer.WriteVarint(blobs_.size());
      for (const auto& [id, blob] : blobs_) {
        writer.WriteVarint(id);
        writer.WriteBytes(blob);
      }
      return writer.TakeBuffer();
    }
  }
  return Status::Corruption("unknown trivial opcode");
}

Result<TrivialClient> TrivialClient::Create(
    Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
    net::Transport* transport) {
  SIMCLOUD_ASSIGN_OR_RETURN(
      crypto::Cipher cipher,
      crypto::Cipher::Create(aes_key, crypto::CipherMode::kCbc));
  return TrivialClient(std::move(cipher), std::move(metric), transport);
}

Status TrivialClient::InsertBulk(const std::vector<VectorObject>& objects,
                                 size_t bulk_size) {
  if (bulk_size == 0) {
    return Status::InvalidArgument("bulk size must be > 0");
  }
  size_t offset = 0;
  while (offset < objects.size()) {
    const size_t batch = std::min(bulk_size, objects.size() - offset);
    BinaryWriter writer;
    writer.WriteU8(static_cast<uint8_t>(TrivialOp::kPutBatch));
    writer.WriteVarint(batch);
    for (size_t i = 0; i < batch; ++i) {
      const VectorObject& object = objects[offset + i];
      BinaryWriter payload;
      object.Serialize(&payload);
      SIMCLOUD_ASSIGN_OR_RETURN(Bytes ciphertext,
                                cipher_.Encrypt(payload.buffer()));
      writer.WriteVarint(object.id());
      writer.WriteBytes(ciphertext);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                              transport_->Call(writer.buffer()));
    (void)response;
    offset += batch;
  }
  return Status::OK();
}

Result<std::vector<VectorObject>> TrivialClient::FetchAll() {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(TrivialOp::kFetchAll));
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(writer.buffer()));

  BinaryReader reader(response);
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  std::vector<VectorObject> objects;
  objects.reserve(reader.BoundedCount(count));
  for (uint64_t i = 0; i < count; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
    (void)id;
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes blob, reader.ReadBytes());
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes plaintext, cipher_.Decrypt(blob));
    BinaryReader object_reader(plaintext);
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                              VectorObject::Deserialize(&object_reader));
    objects.push_back(std::move(object));
  }
  return objects;
}

Result<NeighborList> TrivialClient::Knn(const VectorObject& query, size_t k) {
  SIMCLOUD_ASSIGN_OR_RETURN(std::vector<VectorObject> objects, FetchAll());
  return metric::LinearKnnSearch(objects, *metric_, query, k);
}

Result<NeighborList> TrivialClient::RangeSearch(const VectorObject& query,
                                                double radius) {
  SIMCLOUD_ASSIGN_OR_RETURN(std::vector<VectorObject> objects, FetchAll());
  return metric::LinearRangeSearch(objects, *metric_, query, radius);
}

}  // namespace baselines
}  // namespace simcloud
