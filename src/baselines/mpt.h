// MPT — Metric-Preserving Transformation (Yiu et al., TKDE 24(2), 2012;
// paper Section 3.2).
//
// The data owner selects anchor objects and an order-preserving
// encryption (OPE) function T built from a representative *sample* of the
// collection (the sample requirement the paper criticizes for dynamic
// data). The server stores, per object, the OPE-transformed distances to
// all anchors plus the AES ciphertext. A range query ships per-anchor
// intervals [T(d(q,a_i) - r), T(d(q,a_i) + r)]; because T is strictly
// increasing, an object within range of q must fall inside every interval
// (triangle inequality), so the server filters without learning actual
// distances. The client decrypts and refines the survivors. k-NN is
// evaluated by ranged probing with a radius estimated from the sample.

#ifndef SIMCLOUD_BASELINES_MPT_H_
#define SIMCLOUD_BASELINES_MPT_H_

#include <memory>
#include <vector>

#include "crypto/cipher.h"
#include "metric/distance.h"
#include "metric/neighbor.h"
#include "net/transport.h"

namespace simcloud {
namespace baselines {

/// MPT configuration.
struct MptOptions {
  size_t num_anchors = 8;
  size_t sample_size = 200;  ///< representative sample for the OPE + radius
  size_t num_knots = 64;     ///< OPE piecewise-linear resolution
  uint64_t seed = 9;
};

/// Server: table of OPE-transformed anchor distances + ciphertexts, with
/// conjunctive interval filtering.
class MptServer : public net::RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override;

  size_t size() const { return rows_.size(); }

 private:
  struct Row {
    metric::ObjectId id;
    std::vector<float> transformed;  // OPE(d(o, a_i)) for all anchors
    Bytes payload;
  };
  std::vector<Row> rows_;
};

/// Client-side cost components of MPT search.
struct MptCosts {
  int64_t decryption_nanos = 0;
  int64_t distance_nanos = 0;
  uint64_t candidates_decrypted = 0;
  uint64_t distance_computations = 0;
  uint64_t probe_rounds = 0;  ///< range probes issued by k-NN
  void Clear() { *this = MptCosts{}; }
};

/// Authorized MPT client.
class MptClient {
 public:
  static Result<MptClient> Create(
      Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
      net::Transport* transport, MptOptions options = MptOptions());

  /// Derives anchors + OPE from `sample` (must be representative; the
  /// client keeps it for k-NN radius estimation).
  Status BuildKey(std::vector<metric::VectorObject> sample);

  /// Encrypts, transforms, and uploads objects.
  Status InsertBulk(const std::vector<metric::VectorObject>& objects,
                    size_t bulk_size = 1000);

  /// Exact range query (single round trip; server filters by intervals).
  Result<metric::NeighborList> RangeSearch(const metric::VectorObject& query,
                                           double radius);

  /// k-NN by ranged probing: initial radius from the sample, doubled until
  /// k results are found. Exact w.r.t. the uploaded collection.
  Result<metric::NeighborList> Knn(const metric::VectorObject& query,
                                   size_t k);

  const MptCosts& costs() const { return costs_; }
  void ResetCosts() { costs_.Clear(); }

 private:
  MptClient(crypto::Cipher cipher,
            std::shared_ptr<metric::DistanceFunction> metric,
            net::Transport* transport, MptOptions options)
      : cipher_(std::move(cipher)), metric_(std::move(metric)),
        transport_(transport), options_(options) {}

  /// Strictly increasing piecewise-linear OPE over [0, domain_max].
  double Ope(double x) const;

  std::vector<float> TransformedAnchorDistances(
      const metric::VectorObject& object);

  crypto::Cipher cipher_;
  std::shared_ptr<metric::DistanceFunction> metric_;
  net::Transport* transport_;
  MptOptions options_;
  MptCosts costs_;

  std::vector<metric::VectorObject> anchors_;
  std::vector<metric::VectorObject> sample_;
  std::vector<double> ope_slopes_;  // positive, unordered (increasing T)
  std::vector<double> ope_cum_;
  double ope_knot_width_ = 0;
  double ope_domain_max_ = 0;
};

}  // namespace baselines
}  // namespace simcloud

#endif  // SIMCLOUD_BASELINES_MPT_H_
