// The trivial "perfectly secure" baseline (paper Section 3): the server
// is a dumb encrypted blob store; an authorized client downloads the
// entire collection, decrypts it, and searches locally. Perfect privacy,
// maximal communication cost — the strawman the Encrypted M-Index is
// measured against.

#ifndef SIMCLOUD_BASELINES_TRIVIAL_H_
#define SIMCLOUD_BASELINES_TRIVIAL_H_

#include <memory>
#include <vector>

#include "crypto/cipher.h"
#include "metric/distance.h"
#include "metric/neighbor.h"
#include "net/transport.h"

namespace simcloud {
namespace baselines {

/// Encrypted blob store with two operations: put and fetch-all.
class BlobStoreServer : public net::RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override;

  size_t size() const { return blobs_.size(); }

 private:
  std::vector<std::pair<metric::ObjectId, Bytes>> blobs_;
};

/// Download-everything client.
class TrivialClient {
 public:
  /// `aes_key` is the shared symmetric key (16/24/32 bytes).
  static Result<TrivialClient> Create(
      Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
      net::Transport* transport);

  /// Encrypts and uploads objects.
  Status InsertBulk(const std::vector<metric::VectorObject>& objects,
                    size_t bulk_size = 1000);

  /// Exact k-NN by downloading and scanning the whole collection.
  Result<metric::NeighborList> Knn(const metric::VectorObject& query,
                                   size_t k);

  /// Exact range query by downloading and scanning the whole collection.
  Result<metric::NeighborList> RangeSearch(const metric::VectorObject& query,
                                           double radius);

 private:
  TrivialClient(crypto::Cipher cipher,
                std::shared_ptr<metric::DistanceFunction> metric,
                net::Transport* transport)
      : cipher_(std::move(cipher)), metric_(std::move(metric)),
        transport_(transport) {}

  /// Downloads and decrypts the entire collection.
  Result<std::vector<metric::VectorObject>> FetchAll();

  crypto::Cipher cipher_;
  std::shared_ptr<metric::DistanceFunction> metric_;
  net::Transport* transport_;
};

}  // namespace baselines
}  // namespace simcloud

#endif  // SIMCLOUD_BASELINES_TRIVIAL_H_
