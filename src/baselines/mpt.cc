#include "baselines/mpt.h"

#include <algorithm>
#include <cmath>

#include "common/clock.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "metric/ground_truth.h"

namespace simcloud {
namespace baselines {

using metric::Neighbor;
using metric::NeighborList;
using metric::VectorObject;

namespace {
enum class MptOp : uint8_t {
  kPutBatch = 50,
  kIntervalQuery = 51,
};
}  // namespace

Result<Bytes> MptServer::Handle(const Bytes& request) {
  BinaryReader reader(request);
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  switch (static_cast<MptOp>(op_byte)) {
    case MptOp::kPutBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      for (uint64_t i = 0; i < count; ++i) {
        Row row;
        SIMCLOUD_ASSIGN_OR_RETURN(row.id, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(row.transformed, reader.ReadFloatVector());
        SIMCLOUD_ASSIGN_OR_RETURN(row.payload, reader.ReadBytes());
        rows_.push_back(std::move(row));
      }
      BinaryWriter writer;
      writer.WriteVarint(count);
      return writer.TakeBuffer();
    }
    case MptOp::kIntervalQuery: {
      // Conjunctive per-anchor interval filter over the OPE'd table.
      SIMCLOUD_ASSIGN_OR_RETURN(std::vector<float> lo,
                                reader.ReadFloatVector());
      SIMCLOUD_ASSIGN_OR_RETURN(std::vector<float> hi,
                                reader.ReadFloatVector());
      if (lo.size() != hi.size()) {
        return Status::InvalidArgument("interval bounds length mismatch");
      }
      BinaryWriter writer;
      size_t match_count = 0;
      BinaryWriter matches;
      for (const Row& row : rows_) {
        if (row.transformed.size() != lo.size()) continue;
        bool inside = true;
        for (size_t i = 0; i < lo.size() && inside; ++i) {
          inside = row.transformed[i] >= lo[i] && row.transformed[i] <= hi[i];
        }
        if (inside) {
          matches.WriteVarint(row.id);
          matches.WriteBytes(row.payload);
          ++match_count;
        }
      }
      writer.WriteVarint(match_count);
      writer.WriteRaw(matches.buffer().data(), matches.buffer().size());
      return writer.TakeBuffer();
    }
  }
  return Status::Corruption("unknown MPT opcode");
}

Result<MptClient> MptClient::Create(
    Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
    net::Transport* transport, MptOptions options) {
  if (options.num_anchors == 0) {
    return Status::InvalidArgument("MPT needs at least one anchor");
  }
  if (options.sample_size == 0) {
    return Status::InvalidArgument("MPT needs a non-empty sample");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      crypto::Cipher cipher,
      crypto::Cipher::Create(aes_key, crypto::CipherMode::kCbc));
  return MptClient(std::move(cipher), std::move(metric), transport, options);
}

Status MptClient::BuildKey(std::vector<VectorObject> sample) {
  if (sample.size() < options_.num_anchors) {
    return Status::InvalidArgument(
        "sample smaller than the number of anchors");
  }
  Rng rng(options_.seed);

  // Anchors: random sample members.
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(sample.size(), options_.num_anchors);
  anchors_.clear();
  for (size_t idx : picked) anchors_.push_back(sample[idx]);

  // Domain upper bound: max sample-anchor distance with headroom. This is
  // where MPT *requires* the sample to be representative — distances
  // beyond the observed domain get a flat-slope extension, degrading
  // order precision exactly as the paper warns for dynamic collections.
  double dmax = 0.0;
  for (const auto& object : sample) {
    for (const auto& anchor : anchors_) {
      dmax = std::max(dmax, metric_->Distance(object, anchor));
    }
  }
  ope_domain_max_ = dmax * 1.5 + 1e-9;
  ope_knot_width_ = ope_domain_max_ / static_cast<double>(options_.num_knots);

  // Strictly increasing piecewise-linear OPE with random positive slopes.
  ope_slopes_.resize(options_.num_knots);
  for (auto& s : ope_slopes_) s = rng.NextUniform(0.2, 2.0);
  ope_cum_.assign(options_.num_knots + 1, 0.0);
  for (size_t i = 0; i < options_.num_knots; ++i) {
    ope_cum_[i + 1] = ope_cum_[i] + ope_slopes_[i] * ope_knot_width_;
  }

  sample_ = std::move(sample);
  return Status::OK();
}

double MptClient::Ope(double x) const {
  if (x <= 0.0) return x;  // negative only for interval lower bounds
  if (x >= ope_domain_max_) {
    return ope_cum_.back() + ope_slopes_.back() * (x - ope_domain_max_);
  }
  const size_t segment = std::min(static_cast<size_t>(x / ope_knot_width_),
                                  ope_slopes_.size() - 1);
  return ope_cum_[segment] +
         ope_slopes_[segment] *
             (x - static_cast<double>(segment) * ope_knot_width_);
}

std::vector<float> MptClient::TransformedAnchorDistances(
    const VectorObject& object) {
  Stopwatch watch;
  std::vector<float> transformed(anchors_.size());
  for (size_t i = 0; i < anchors_.size(); ++i) {
    transformed[i] =
        static_cast<float>(Ope(metric_->Distance(object, anchors_[i])));
  }
  costs_.distance_nanos += watch.ElapsedNanos();
  costs_.distance_computations += anchors_.size();
  return transformed;
}

Status MptClient::InsertBulk(const std::vector<VectorObject>& objects,
                             size_t bulk_size) {
  if (anchors_.empty()) {
    return Status::FailedPrecondition("BuildKey must be called first");
  }
  if (bulk_size == 0) {
    return Status::InvalidArgument("bulk size must be > 0");
  }
  size_t offset = 0;
  while (offset < objects.size()) {
    const size_t batch = std::min(bulk_size, objects.size() - offset);
    BinaryWriter writer;
    writer.WriteU8(static_cast<uint8_t>(MptOp::kPutBatch));
    writer.WriteVarint(batch);
    for (size_t i = 0; i < batch; ++i) {
      const VectorObject& object = objects[offset + i];
      BinaryWriter payload;
      object.Serialize(&payload);
      SIMCLOUD_ASSIGN_OR_RETURN(Bytes ciphertext,
                                cipher_.Encrypt(payload.buffer()));
      writer.WriteVarint(object.id());
      writer.WriteFloatVector(TransformedAnchorDistances(object));
      writer.WriteBytes(ciphertext);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                              transport_->Call(writer.buffer()));
    (void)response;
    offset += batch;
  }
  return Status::OK();
}

Result<NeighborList> MptClient::RangeSearch(const VectorObject& query,
                                            double radius) {
  if (anchors_.empty()) {
    return Status::FailedPrecondition("BuildKey must be called first");
  }
  // Per-anchor intervals: d(o,a_i) in [d(q,a_i)-r, d(q,a_i)+r] for any o
  // within radius r of q (triangle inequality); OPE preserves the order.
  std::vector<float> lo(anchors_.size()), hi(anchors_.size());
  {
    Stopwatch watch;
    for (size_t i = 0; i < anchors_.size(); ++i) {
      const double d = metric_->Distance(query, anchors_[i]);
      lo[i] = static_cast<float>(Ope(std::max(0.0, d - radius)));
      hi[i] = static_cast<float>(Ope(d + radius));
    }
    costs_.distance_nanos += watch.ElapsedNanos();
    costs_.distance_computations += anchors_.size();
  }

  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(MptOp::kIntervalQuery));
  writer.WriteFloatVector(lo);
  writer.WriteFloatVector(hi);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(writer.buffer()));
  costs_.probe_rounds++;

  BinaryReader reader(response);
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  NeighborList result;
  for (uint64_t i = 0; i < count; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
    (void)id;
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes ciphertext, reader.ReadBytes());

    Stopwatch dec_watch;
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes plaintext, cipher_.Decrypt(ciphertext));
    costs_.decryption_nanos += dec_watch.ElapsedNanos();
    costs_.candidates_decrypted++;

    BinaryReader object_reader(plaintext);
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                              VectorObject::Deserialize(&object_reader));
    Stopwatch dist_watch;
    const double d = metric_->Distance(query, object);
    costs_.distance_nanos += dist_watch.ElapsedNanos();
    costs_.distance_computations++;
    if (d <= radius) result.push_back(Neighbor{object.id(), d});
  }
  std::sort(result.begin(), result.end());
  return result;
}

Result<NeighborList> MptClient::Knn(const VectorObject& query, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  if (sample_.empty()) {
    return Status::FailedPrecondition("BuildKey must be called first");
  }

  // Initial radius: k-th nearest distance within the kept sample (an
  // over-estimate of the true rho_k for the full collection with high
  // probability), then ranged probing with doubling.
  const NeighborList sample_knn = metric::LinearKnnSearch(
      sample_, *metric_, query, std::min(k, sample_.size()));
  double radius = sample_knn.empty() ? 1.0 : sample_knn.back().distance;
  if (radius <= 0) radius = 1e-6;

  for (int attempt = 0; attempt < 16; ++attempt) {
    SIMCLOUD_ASSIGN_OR_RETURN(NeighborList in_range,
                              RangeSearch(query, radius));
    if (in_range.size() >= k) {
      in_range.resize(k);
      return in_range;
    }
    radius *= 2.0;
  }
  // Give up on doubling: return whatever the last huge radius found.
  return RangeSearch(query, radius);
}

}  // namespace baselines
}  // namespace simcloud
