// EHI — Encrypted Hierarchical Index (Yiu et al., "Outsourced Similarity
// Search on Metric Data Assets", TKDE 24(2), 2012; paper Section 3.1).
//
// A hierarchical metric tree (ball-tree-style) is built by the data owner;
// every node is AES-encrypted and uploaded as an opaque blob. The server
// is a pure node store: it cannot traverse the structure. The client
// drives the search, requesting one node per round trip, decrypting it,
// and pruning with the covering-radius lower bound. Exact results, high
// communication and client-side crypto cost — the trade-off the paper
// contrasts with the Encrypted M-Index.

#ifndef SIMCLOUD_BASELINES_EHI_H_
#define SIMCLOUD_BASELINES_EHI_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crypto/cipher.h"
#include "metric/distance.h"
#include "metric/neighbor.h"
#include "net/transport.h"

namespace simcloud {
namespace baselines {

/// EHI construction parameters.
struct EhiOptions {
  size_t fanout = 10;        ///< children per internal node
  size_t leaf_capacity = 25; ///< objects per leaf
  uint64_t seed = 7;         ///< center selection seed
};

/// Node store: put/get of encrypted blobs by node id. The root id is 0.
class EhiNodeStoreServer : public net::RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override;

  size_t node_count() const { return nodes_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::unordered_map<uint64_t, Bytes> nodes_;
  uint64_t total_bytes_ = 0;
};

/// Client-side search cost components of EHI.
struct EhiCosts {
  int64_t decryption_nanos = 0;
  int64_t distance_nanos = 0;
  uint64_t nodes_fetched = 0;
  uint64_t distance_computations = 0;
  void Clear() { *this = EhiCosts{}; }
};

/// Authorized EHI client: builds the encrypted tree, uploads it, and
/// evaluates exact k-NN / range queries by client-driven traversal.
class EhiClient {
 public:
  static Result<EhiClient> Create(
      Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
      net::Transport* transport, EhiOptions options = EhiOptions());

  /// Builds the hierarchical index over `objects`, encrypts every node,
  /// and uploads the blobs (construction phase).
  Status BuildAndUpload(const std::vector<metric::VectorObject>& objects);

  /// Exact k-NN via best-first traversal with one server round trip per
  /// visited node.
  Result<metric::NeighborList> Knn(const metric::VectorObject& query,
                                   size_t k);

  /// Exact range query.
  Result<metric::NeighborList> RangeSearch(const metric::VectorObject& query,
                                           double radius);

  const EhiCosts& costs() const { return costs_; }
  void ResetCosts() { costs_.Clear(); }

 private:
  EhiClient(crypto::Cipher cipher,
            std::shared_ptr<metric::DistanceFunction> metric,
            net::Transport* transport, EhiOptions options)
      : cipher_(std::move(cipher)), metric_(std::move(metric)),
        transport_(transport), options_(options) {}

  struct ChildRef {
    metric::VectorObject center;
    double radius;
    uint64_t node_id;
  };
  struct Node {
    bool is_leaf = true;
    std::vector<metric::VectorObject> objects;  // leaf
    std::vector<ChildRef> children;             // internal
  };

  /// Recursive build; returns the id of the created node.
  Result<uint64_t> BuildNode(std::vector<metric::VectorObject> objects,
                             uint64_t* next_id,
                             std::vector<std::pair<uint64_t, Bytes>>* blobs,
                             Rng* rng);

  Result<Bytes> EncryptNode(const Node& node) const;
  Result<Node> FetchNode(uint64_t node_id);

  double TimedDistance(const metric::VectorObject& a,
                       const metric::VectorObject& b);

  crypto::Cipher cipher_;
  std::shared_ptr<metric::DistanceFunction> metric_;
  net::Transport* transport_;
  EhiOptions options_;
  EhiCosts costs_;
};

}  // namespace baselines
}  // namespace simcloud

#endif  // SIMCLOUD_BASELINES_EHI_H_
