// Plain (non-encrypted) M-Index client-server — the paper's efficiency
// baseline (Tables 4, 7, 8; privacy level 1/2 of the taxonomy).
//
// Here the server is fully trusted with the MS objects: it owns the
// pivots and the metric, computes all distances itself, and returns the
// final (refined) answer of `k` objects rather than a candidate set. The
// client only serializes queries and deserializes answers, which is why
// the paper reports "-" for client time in this configuration.

#ifndef SIMCLOUD_BASELINES_PLAIN_MINDEX_H_
#define SIMCLOUD_BASELINES_PLAIN_MINDEX_H_

#include <memory>
#include <vector>

#include "common/clock.h"
#include "metric/distance.h"
#include "metric/neighbor.h"
#include "mindex/mindex.h"
#include "mindex/pivot_set.h"
#include "net/transport.h"

namespace simcloud {
namespace baselines {

/// Server-side cost components of the plain deployment.
struct PlainServerCosts {
  int64_t distance_nanos = 0;  ///< object-pivot + refinement distances
  uint64_t distance_computations = 0;
  void Clear() { *this = PlainServerCosts{}; }
};

/// Trusted server: M-Index + pivots + metric, full query evaluation.
class PlainMIndexServer : public net::RequestHandler {
 public:
  static Result<std::unique_ptr<PlainMIndexServer>> Create(
      const mindex::MIndexOptions& options, mindex::PivotSet pivots,
      std::shared_ptr<metric::DistanceFunction> metric);

  Result<Bytes> Handle(const Bytes& request) override;

  const mindex::MIndex& index() const { return *index_; }
  const PlainServerCosts& costs() const { return costs_; }
  void ResetCosts() { costs_.Clear(); }

 private:
  PlainMIndexServer(std::unique_ptr<mindex::MIndex> index,
                    mindex::PivotSet pivots,
                    std::shared_ptr<metric::DistanceFunction> metric)
      : index_(std::move(index)), pivots_(std::move(pivots)),
        metric_(std::move(metric)) {}

  Result<Bytes> HandleInsert(struct PlainRequest& request);
  Result<Bytes> HandleKnn(const struct PlainRequest& request);
  Result<Bytes> HandleRange(const struct PlainRequest& request);

  std::unique_ptr<mindex::MIndex> index_;
  mindex::PivotSet pivots_;
  std::shared_ptr<metric::DistanceFunction> metric_;
  PlainServerCosts costs_;
};

/// Thin client of the plain M-Index server: ships raw objects and raw
/// query objects, receives final answers.
class PlainClient {
 public:
  explicit PlainClient(net::Transport* transport) : transport_(transport) {}

  /// Uploads objects in bulks (server computes distances and routes).
  Status InsertBulk(const std::vector<metric::VectorObject>& objects,
                    size_t bulk_size = 1000);

  /// Approximate k-NN evaluated fully on the server with a candidate set
  /// of `cand_size`; returns the refined k results.
  Result<metric::NeighborList> ApproxKnn(const metric::VectorObject& query,
                                         size_t k, size_t cand_size);

  /// Precise range query evaluated fully on the server.
  Result<metric::NeighborList> RangeSearch(const metric::VectorObject& query,
                                           double radius);

 private:
  net::Transport* transport_;
};

}  // namespace baselines
}  // namespace simcloud

#endif  // SIMCLOUD_BASELINES_PLAIN_MINDEX_H_
