#include "baselines/fdh.h"

#include <algorithm>
#include <bit>

#include "common/clock.h"
#include "common/rng.h"
#include "common/serialize.h"

namespace simcloud {
namespace baselines {

using metric::Neighbor;
using metric::NeighborList;
using metric::VectorObject;

namespace {
enum class FdhOp : uint8_t {
  kPutBatch = 60,
  kBucketQuery = 61,
};
}  // namespace

Result<Bytes> FdhServer::Handle(const Bytes& request) {
  BinaryReader reader(request);
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  switch (static_cast<FdhOp>(op_byte)) {
    case FdhOp::kPutBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      for (uint64_t i = 0; i < count; ++i) {
        SIMCLOUD_ASSIGN_OR_RETURN(uint64_t hash, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(Bytes blob, reader.ReadBytes());
        buckets_[hash].emplace_back(id, std::move(blob));
      }
      BinaryWriter writer;
      writer.WriteVarint(count);
      return writer.TakeBuffer();
    }
    case FdhOp::kBucketQuery: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t query_hash, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t cand_size, reader.ReadVarint());

      // Buckets ordered by Hamming distance to the query hash; ties by
      // hash value for determinism.
      std::vector<std::pair<int, uint64_t>> order;
      order.reserve(buckets_.size());
      for (const auto& [hash, bucket] : buckets_) {
        order.emplace_back(std::popcount(hash ^ query_hash), hash);
      }
      std::sort(order.begin(), order.end());

      BinaryWriter matches;
      uint64_t emitted = 0;
      for (const auto& [hamming, hash] : order) {
        if (emitted >= cand_size) break;
        for (const auto& [id, blob] : buckets_.at(hash)) {
          if (emitted >= cand_size) break;
          matches.WriteVarint(id);
          matches.WriteBytes(blob);
          ++emitted;
        }
      }
      BinaryWriter writer;
      writer.WriteVarint(emitted);
      writer.WriteRaw(matches.buffer().data(), matches.buffer().size());
      return writer.TakeBuffer();
    }
  }
  return Status::Corruption("unknown FDH opcode");
}

Result<FdhClient> FdhClient::Create(
    Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
    net::Transport* transport, FdhOptions options) {
  if (options.num_bits == 0 || options.num_bits > 64) {
    return Status::InvalidArgument("FDH num_bits must be in [1, 64]");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      crypto::Cipher cipher,
      crypto::Cipher::Create(aes_key, crypto::CipherMode::kCbc));
  return FdhClient(std::move(cipher), std::move(metric), transport, options);
}

Status FdhClient::BuildKey(const std::vector<VectorObject>& sample) {
  if (sample.size() < options_.num_bits) {
    return Status::InvalidArgument("sample smaller than num_bits");
  }
  Rng rng(options_.seed);
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(sample.size(), options_.num_bits);
  anchors_.clear();
  radii_.clear();
  for (size_t idx : picked) anchors_.push_back(sample[idx]);

  // Radius per anchor: median distance to the sample, splitting the
  // collection roughly in half per bit.
  for (const auto& anchor : anchors_) {
    std::vector<double> distances;
    distances.reserve(sample.size());
    for (const auto& object : sample) {
      distances.push_back(metric_->Distance(anchor, object));
    }
    std::nth_element(distances.begin(),
                     distances.begin() + distances.size() / 2,
                     distances.end());
    radii_.push_back(distances[distances.size() / 2]);
  }
  return Status::OK();
}

uint64_t FdhClient::HashObject(const VectorObject& object) {
  Stopwatch watch;
  uint64_t hash = 0;
  for (size_t i = 0; i < anchors_.size(); ++i) {
    if (metric_->Distance(object, anchors_[i]) <= radii_[i]) {
      hash |= (1ULL << i);
    }
  }
  costs_.distance_nanos += watch.ElapsedNanos();
  costs_.distance_computations += anchors_.size();
  return hash;
}

Status FdhClient::InsertBulk(const std::vector<VectorObject>& objects,
                             size_t bulk_size) {
  if (anchors_.empty()) {
    return Status::FailedPrecondition("BuildKey must be called first");
  }
  if (bulk_size == 0) {
    return Status::InvalidArgument("bulk size must be > 0");
  }
  size_t offset = 0;
  while (offset < objects.size()) {
    const size_t batch = std::min(bulk_size, objects.size() - offset);
    BinaryWriter writer;
    writer.WriteU8(static_cast<uint8_t>(FdhOp::kPutBatch));
    writer.WriteVarint(batch);
    for (size_t i = 0; i < batch; ++i) {
      const VectorObject& object = objects[offset + i];
      BinaryWriter payload;
      object.Serialize(&payload);
      SIMCLOUD_ASSIGN_OR_RETURN(Bytes ciphertext,
                                cipher_.Encrypt(payload.buffer()));
      writer.WriteVarint(HashObject(object));
      writer.WriteVarint(object.id());
      writer.WriteBytes(ciphertext);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                              transport_->Call(writer.buffer()));
    (void)response;
    offset += batch;
  }
  return Status::OK();
}

Result<NeighborList> FdhClient::Knn(const VectorObject& query, size_t k,
                                    size_t cand_size) {
  if (anchors_.empty()) {
    return Status::FailedPrecondition("BuildKey must be called first");
  }
  if (cand_size < k) {
    return Status::InvalidArgument("candidate budget must be >= k");
  }
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(FdhOp::kBucketQuery));
  writer.WriteVarint(HashObject(query));
  writer.WriteVarint(cand_size);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(writer.buffer()));

  BinaryReader reader(response);
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  NeighborList candidates;
  candidates.reserve(reader.BoundedCount(count));
  for (uint64_t i = 0; i < count; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader.ReadVarint());
    (void)id;
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes ciphertext, reader.ReadBytes());

    Stopwatch dec_watch;
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes plaintext, cipher_.Decrypt(ciphertext));
    costs_.decryption_nanos += dec_watch.ElapsedNanos();
    costs_.candidates_decrypted++;

    BinaryReader object_reader(plaintext);
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                              VectorObject::Deserialize(&object_reader));
    Stopwatch dist_watch;
    const double d = metric_->Distance(query, object);
    costs_.distance_nanos += dist_watch.ElapsedNanos();
    costs_.distance_computations++;
    candidates.push_back(Neighbor{object.id(), d});
  }
  std::sort(candidates.begin(), candidates.end());
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

}  // namespace baselines
}  // namespace simcloud
