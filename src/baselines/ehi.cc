#include "baselines/ehi.h"

#include <algorithm>
#include <queue>

#include "common/clock.h"
#include "common/serialize.h"

namespace simcloud {
namespace baselines {

using metric::Neighbor;
using metric::NeighborList;
using metric::VectorObject;

namespace {
enum class EhiOp : uint8_t {
  kPutNodes = 40,
  kGetNode = 41,
};
}  // namespace

Result<Bytes> EhiNodeStoreServer::Handle(const Bytes& request) {
  BinaryReader reader(request);
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  switch (static_cast<EhiOp>(op_byte)) {
    case EhiOp::kPutNodes: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      for (uint64_t i = 0; i < count; ++i) {
        SIMCLOUD_ASSIGN_OR_RETURN(uint64_t node_id, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(Bytes blob, reader.ReadBytes());
        total_bytes_ += blob.size();
        nodes_[node_id] = std::move(blob);
      }
      BinaryWriter writer;
      writer.WriteVarint(count);
      return writer.TakeBuffer();
    }
    case EhiOp::kGetNode: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t node_id, reader.ReadVarint());
      auto it = nodes_.find(node_id);
      if (it == nodes_.end()) {
        return Status::NotFound("EHI node " + std::to_string(node_id));
      }
      BinaryWriter writer;
      writer.WriteBytes(it->second);
      return writer.TakeBuffer();
    }
  }
  return Status::Corruption("unknown EHI opcode");
}

Result<EhiClient> EhiClient::Create(
    Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
    net::Transport* transport, EhiOptions options) {
  if (options.fanout < 2) {
    return Status::InvalidArgument("EHI fanout must be >= 2");
  }
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("EHI leaf capacity must be > 0");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      crypto::Cipher cipher,
      crypto::Cipher::Create(aes_key, crypto::CipherMode::kCbc));
  return EhiClient(std::move(cipher), std::move(metric), transport, options);
}

double EhiClient::TimedDistance(const VectorObject& a, const VectorObject& b) {
  Stopwatch watch;
  const double d = metric_->Distance(a, b);
  costs_.distance_nanos += watch.ElapsedNanos();
  costs_.distance_computations++;
  return d;
}

Result<Bytes> EhiClient::EncryptNode(const Node& node) const {
  BinaryWriter writer;
  writer.WriteBool(node.is_leaf);
  if (node.is_leaf) {
    writer.WriteVarint(node.objects.size());
    for (const auto& object : node.objects) object.Serialize(&writer);
  } else {
    writer.WriteVarint(node.children.size());
    for (const auto& child : node.children) {
      child.center.Serialize(&writer);
      writer.WriteDouble(child.radius);
      writer.WriteVarint(child.node_id);
    }
  }
  return cipher_.Encrypt(writer.buffer());
}

Result<uint64_t> EhiClient::BuildNode(
    std::vector<VectorObject> objects, uint64_t* next_id,
    std::vector<std::pair<uint64_t, Bytes>>* blobs, Rng* rng) {
  const uint64_t node_id = (*next_id)++;
  Node node;
  if (objects.size() <= options_.leaf_capacity) {
    node.is_leaf = true;
    node.objects = std::move(objects);
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes blob, EncryptNode(node));
    blobs->emplace_back(node_id, std::move(blob));
    return node_id;
  }

  // Pick `fanout` random centers and assign every object to its closest
  // one (single Voronoi assignment round).
  node.is_leaf = false;
  const size_t fanout = std::min(options_.fanout, objects.size());
  std::vector<size_t> center_idx =
      rng->SampleWithoutReplacement(objects.size(), fanout);
  std::vector<VectorObject> centers;
  centers.reserve(fanout);
  for (size_t idx : center_idx) centers.push_back(objects[idx]);

  const size_t total = objects.size();
  std::vector<std::vector<VectorObject>> clusters(fanout);
  std::vector<double> radii(fanout, 0.0);
  for (auto& object : objects) {
    size_t best = 0;
    double best_dist = metric_->Distance(object, centers[0]);
    for (size_t c = 1; c < fanout; ++c) {
      const double d = metric_->Distance(object, centers[c]);
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    radii[best] = std::max(radii[best], best_dist);
    clusters[best].push_back(std::move(object));
  }
  objects.clear();

  // Degenerate guard (e.g. all objects identical): if one cluster absorbed
  // everything, the recursion would not shrink — split it into chunks
  // around the same center instead.
  for (size_t c = 0; c < fanout; ++c) {
    if (clusters[c].size() == total && total > options_.leaf_capacity) {
      std::vector<VectorObject> whole = std::move(clusters[c]);
      clusters.assign(fanout, {});
      const size_t chunk = (total + fanout - 1) / fanout;
      for (size_t i = 0; i < total; ++i) {
        clusters[i / chunk].push_back(std::move(whole[i]));
      }
      for (size_t c2 = 0; c2 < fanout; ++c2) {
        radii[c2] = radii[c];
        centers[c2] = centers[c];
      }
      break;
    }
  }

  for (size_t c = 0; c < fanout; ++c) {
    if (clusters[c].empty()) continue;
    Result<uint64_t> child_id =
        BuildNode(std::move(clusters[c]), next_id, blobs, rng);
    if (!child_id.ok()) return child_id.status();
    node.children.push_back(ChildRef{centers[c], radii[c], *child_id});
  }

  SIMCLOUD_ASSIGN_OR_RETURN(Bytes blob, EncryptNode(node));
  blobs->emplace_back(node_id, std::move(blob));
  return node_id;
}

Status EhiClient::BuildAndUpload(const std::vector<VectorObject>& objects) {
  if (objects.empty()) {
    return Status::InvalidArgument("EHI build needs a non-empty collection");
  }
  Rng rng(options_.seed);
  uint64_t next_id = 0;
  std::vector<std::pair<uint64_t, Bytes>> blobs;
  std::vector<VectorObject> copy = objects;
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t root_id,
                            BuildNode(std::move(copy), &next_id, &blobs, &rng));
  if (root_id != 0) {
    return Status::Internal("EHI root id must be 0");
  }

  // Upload in batches to bound message sizes.
  constexpr size_t kBatch = 256;
  size_t offset = 0;
  while (offset < blobs.size()) {
    const size_t batch = std::min(kBatch, blobs.size() - offset);
    BinaryWriter writer;
    writer.WriteU8(static_cast<uint8_t>(EhiOp::kPutNodes));
    writer.WriteVarint(batch);
    for (size_t i = 0; i < batch; ++i) {
      writer.WriteVarint(blobs[offset + i].first);
      writer.WriteBytes(blobs[offset + i].second);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                              transport_->Call(writer.buffer()));
    (void)response;
    offset += batch;
  }
  return Status::OK();
}

Result<EhiClient::Node> EhiClient::FetchNode(uint64_t node_id) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(EhiOp::kGetNode));
  writer.WriteVarint(node_id);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(writer.buffer()));
  costs_.nodes_fetched++;

  BinaryReader reader(response);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes blob, reader.ReadBytes());

  Stopwatch watch;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes plaintext, cipher_.Decrypt(blob));
  costs_.decryption_nanos += watch.ElapsedNanos();

  BinaryReader node_reader(plaintext);
  Node node;
  SIMCLOUD_ASSIGN_OR_RETURN(node.is_leaf, node_reader.ReadBool());
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, node_reader.ReadVarint());
  if (node.is_leaf) {
    node.objects.reserve(reader.BoundedCount(count));
    for (uint64_t i = 0; i < count; ++i) {
      SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                                VectorObject::Deserialize(&node_reader));
      node.objects.push_back(std::move(object));
    }
  } else {
    node.children.reserve(reader.BoundedCount(count));
    for (uint64_t i = 0; i < count; ++i) {
      ChildRef child;
      SIMCLOUD_ASSIGN_OR_RETURN(child.center,
                                VectorObject::Deserialize(&node_reader));
      SIMCLOUD_ASSIGN_OR_RETURN(child.radius, node_reader.ReadDouble());
      SIMCLOUD_ASSIGN_OR_RETURN(child.node_id, node_reader.ReadVarint());
      node.children.push_back(std::move(child));
    }
  }
  return node;
}

Result<NeighborList> EhiClient::Knn(const VectorObject& query, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");

  // Best-first branch-and-bound over encrypted nodes, one round trip each.
  struct QueueItem {
    double lower_bound;
    uint64_t node_id;
    bool operator>(const QueueItem& other) const {
      return lower_bound > other.lower_bound;
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      frontier;
  frontier.push({0.0, 0});

  std::priority_queue<Neighbor> best;  // max-heap of current k best
  while (!frontier.empty()) {
    const QueueItem item = frontier.top();
    frontier.pop();
    if (best.size() == k && item.lower_bound >= best.top().distance) break;

    SIMCLOUD_ASSIGN_OR_RETURN(Node node, FetchNode(item.node_id));
    if (node.is_leaf) {
      for (const auto& object : node.objects) {
        const double d = TimedDistance(query, object);
        if (best.size() < k) {
          best.push(Neighbor{object.id(), d});
        } else if (Neighbor{object.id(), d} < best.top()) {
          best.pop();
          best.push(Neighbor{object.id(), d});
        }
      }
    } else {
      for (const auto& child : node.children) {
        const double center_dist = TimedDistance(query, child.center);
        const double lb = std::max(0.0, center_dist - child.radius);
        if (best.size() == k && lb >= best.top().distance) continue;
        frontier.push({lb, child.node_id});
      }
    }
  }

  NeighborList result(best.size());
  for (size_t i = best.size(); i > 0; --i) {
    result[i - 1] = best.top();
    best.pop();
  }
  return result;
}

Result<NeighborList> EhiClient::RangeSearch(const VectorObject& query,
                                            double radius) {
  std::vector<uint64_t> stack = {0};
  NeighborList result;
  while (!stack.empty()) {
    const uint64_t node_id = stack.back();
    stack.pop_back();
    SIMCLOUD_ASSIGN_OR_RETURN(Node node, FetchNode(node_id));
    if (node.is_leaf) {
      for (const auto& object : node.objects) {
        const double d = TimedDistance(query, object);
        if (d <= radius) result.push_back(Neighbor{object.id(), d});
      }
    } else {
      for (const auto& child : node.children) {
        const double center_dist = TimedDistance(query, child.center);
        if (center_dist - child.radius <= radius) {
          stack.push_back(child.node_id);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace baselines
}  // namespace simcloud
