#include "baselines/plain_mindex.h"

#include <algorithm>

#include "common/serialize.h"

namespace simcloud {
namespace baselines {

using metric::Neighbor;
using metric::NeighborList;
using metric::VectorObject;

namespace {

enum class PlainOp : uint8_t {
  kInsertBatch = 10,
  kApproxKnn = 11,
  kRangeSearch = 12,
};

}  // namespace

/// Decoded request of the plain protocol (objects travel in the clear).
struct PlainRequest {
  PlainOp op;
  std::vector<VectorObject> objects;  // insert
  VectorObject query;                 // search
  uint64_t k = 0;
  uint64_t cand_size = 0;
  double radius = 0;
};

namespace {

Result<PlainRequest> DecodePlainRequest(const Bytes& data) {
  BinaryReader reader(data);
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  PlainRequest request;
  request.op = static_cast<PlainOp>(op_byte);
  switch (request.op) {
    case PlainOp::kInsertBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      request.objects.reserve(reader.BoundedCount(count));
      for (uint64_t i = 0; i < count; ++i) {
        SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                                  VectorObject::Deserialize(&reader));
        request.objects.push_back(std::move(object));
      }
      return request;
    }
    case PlainOp::kApproxKnn: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.query,
                                VectorObject::Deserialize(&reader));
      SIMCLOUD_ASSIGN_OR_RETURN(request.k, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(request.cand_size, reader.ReadVarint());
      return request;
    }
    case PlainOp::kRangeSearch: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.query,
                                VectorObject::Deserialize(&reader));
      SIMCLOUD_ASSIGN_OR_RETURN(request.radius, reader.ReadDouble());
      return request;
    }
  }
  return Status::Corruption("unknown plain opcode " + std::to_string(op_byte));
}

/// Answers carry the full objects, as the paper's plain M-Index returns
/// the refined answer set of k objects (Section 5.3).
Bytes EncodeAnswer(const std::vector<std::pair<Neighbor, Bytes>>& answer) {
  BinaryWriter writer;
  writer.WriteVarint(answer.size());
  for (const auto& [neighbor, payload] : answer) {
    writer.WriteVarint(neighbor.id);
    writer.WriteDouble(neighbor.distance);
    writer.WriteBytes(payload);
  }
  return writer.TakeBuffer();
}

Result<NeighborList> DecodeAnswer(const Bytes& data) {
  BinaryReader reader(data);
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  NeighborList answer;
  answer.reserve(reader.BoundedCount(count));
  for (uint64_t i = 0; i < count; ++i) {
    Neighbor neighbor;
    SIMCLOUD_ASSIGN_OR_RETURN(neighbor.id, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(neighbor.distance, reader.ReadDouble());
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload, reader.ReadBytes());
    (void)payload;  // clients of the benchmark use ids + distances
    answer.push_back(neighbor);
  }
  return answer;
}

}  // namespace

Result<std::unique_ptr<PlainMIndexServer>> PlainMIndexServer::Create(
    const mindex::MIndexOptions& options, mindex::PivotSet pivots,
    std::shared_ptr<metric::DistanceFunction> metric) {
  if (pivots.size() != options.num_pivots) {
    return Status::InvalidArgument("pivot set size does not match options");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<mindex::MIndex> index,
                            mindex::MIndex::Create(options));
  return std::unique_ptr<PlainMIndexServer>(new PlainMIndexServer(
      std::move(index), std::move(pivots), std::move(metric)));
}

Result<Bytes> PlainMIndexServer::Handle(const Bytes& request_bytes) {
  SIMCLOUD_ASSIGN_OR_RETURN(PlainRequest request,
                            DecodePlainRequest(request_bytes));
  switch (request.op) {
    case PlainOp::kInsertBatch:
      return HandleInsert(request);
    case PlainOp::kApproxKnn:
      return HandleKnn(request);
    case PlainOp::kRangeSearch:
      return HandleRange(request);
  }
  return Status::Corruption("unhandled plain opcode");
}

Result<Bytes> PlainMIndexServer::HandleInsert(PlainRequest& request) {
  for (const VectorObject& object : request.objects) {
    // The trusted server computes the object-pivot distances itself.
    Stopwatch watch;
    std::vector<float> distances = pivots_.ComputeDistances(object, *metric_);
    costs_.distance_nanos += watch.ElapsedNanos();
    costs_.distance_computations += pivots_.size();

    BinaryWriter payload_writer;
    object.Serialize(&payload_writer);
    SIMCLOUD_RETURN_NOT_OK(index_->Insert(object.id(), std::move(distances),
                                          {}, payload_writer.buffer()));
  }
  BinaryWriter writer;
  writer.WriteVarint(request.objects.size());
  return writer.TakeBuffer();
}

Result<Bytes> PlainMIndexServer::HandleKnn(const PlainRequest& request) {
  Stopwatch watch;
  std::vector<float> query_distances =
      pivots_.ComputeDistances(request.query, *metric_);
  costs_.distance_nanos += watch.ElapsedNanos();
  costs_.distance_computations += pivots_.size();

  // Algorithm 4 drives the candidate-set formation by the query pivot
  // permutation; use the same signature as the encrypted client so the
  // plain/encrypted comparison measures only the privacy overhead, not a
  // different cell-ranking heuristic.
  mindex::QuerySignature signature;
  signature.permutation = mindex::DistancesToPermutation(query_distances);
  SIMCLOUD_ASSIGN_OR_RETURN(
      mindex::CandidateList candidates,
      index_->ApproxKnnCandidates(signature, request.cand_size));

  // Server-side refinement: the trusted server evaluates true distances.
  std::vector<std::pair<Neighbor, Bytes>> answer;
  answer.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    BinaryReader reader(candidate.payload);
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                              VectorObject::Deserialize(&reader));
    Stopwatch refine_watch;
    const double d = metric_->Distance(request.query, object);
    costs_.distance_nanos += refine_watch.ElapsedNanos();
    costs_.distance_computations++;
    answer.push_back({Neighbor{object.id(), d}, candidate.payload});
  }
  std::sort(answer.begin(), answer.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (answer.size() > request.k) answer.resize(request.k);
  return EncodeAnswer(answer);
}

Result<Bytes> PlainMIndexServer::HandleRange(const PlainRequest& request) {
  Stopwatch watch;
  std::vector<float> query_distances =
      pivots_.ComputeDistances(request.query, *metric_);
  costs_.distance_nanos += watch.ElapsedNanos();
  costs_.distance_computations += pivots_.size();

  SIMCLOUD_ASSIGN_OR_RETURN(
      mindex::CandidateList candidates,
      index_->RangeSearchCandidates(query_distances, request.radius));

  std::vector<std::pair<Neighbor, Bytes>> answer;
  for (const auto& candidate : candidates) {
    BinaryReader reader(candidate.payload);
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                              VectorObject::Deserialize(&reader));
    Stopwatch refine_watch;
    const double d = metric_->Distance(request.query, object);
    costs_.distance_nanos += refine_watch.ElapsedNanos();
    costs_.distance_computations++;
    if (d <= request.radius) {
      answer.push_back({Neighbor{object.id(), d}, candidate.payload});
    }
  }
  std::sort(answer.begin(), answer.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return EncodeAnswer(answer);
}

Status PlainClient::InsertBulk(const std::vector<VectorObject>& objects,
                               size_t bulk_size) {
  if (bulk_size == 0) {
    return Status::InvalidArgument("bulk size must be > 0");
  }
  size_t offset = 0;
  while (offset < objects.size()) {
    const size_t batch = std::min(bulk_size, objects.size() - offset);
    BinaryWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PlainOp::kInsertBatch));
    writer.WriteVarint(batch);
    for (size_t i = 0; i < batch; ++i) {
      objects[offset + i].Serialize(&writer);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                              transport_->Call(writer.buffer()));
    BinaryReader reader(response);
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t inserted, reader.ReadVarint());
    if (inserted != batch) {
      return Status::Internal("plain server acknowledged wrong batch size");
    }
    offset += batch;
  }
  return Status::OK();
}

Result<NeighborList> PlainClient::ApproxKnn(const VectorObject& query,
                                            size_t k, size_t cand_size) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(PlainOp::kApproxKnn));
  query.Serialize(&writer);
  writer.WriteVarint(k);
  writer.WriteVarint(cand_size);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(writer.buffer()));
  return DecodeAnswer(response);
}

Result<NeighborList> PlainClient::RangeSearch(const VectorObject& query,
                                              double radius) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(PlainOp::kRangeSearch));
  query.Serialize(&writer);
  writer.WriteDouble(radius);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(writer.buffer()));
  return DecodeAnswer(response);
}

}  // namespace baselines
}  // namespace simcloud
