// FDH — Flexible Distance-based Hashing (Yiu et al., TKDE 24(2), 2012).
//
// The data owner picks anchor objects a_1..a_m with radii r_1..r_m (from a
// sample); each object hashes to the bit vector
//   h(o)_i = [ d(o, a_i) <= r_i ].
// The server groups ciphertexts by hash bucket and, given a query hash,
// returns buckets in increasing Hamming distance until a candidate budget
// is met. The client decrypts and refines. Approximate (like the
// Encrypted M-Index's approximate mode), with cheap construction — the
// comparison point of the paper's Table 9.

#ifndef SIMCLOUD_BASELINES_FDH_H_
#define SIMCLOUD_BASELINES_FDH_H_

#include <map>
#include <memory>
#include <vector>

#include "crypto/cipher.h"
#include "metric/distance.h"
#include "metric/neighbor.h"
#include "net/transport.h"

namespace simcloud {
namespace baselines {

/// FDH configuration.
struct FdhOptions {
  size_t num_bits = 12;      ///< number of anchors / hash bits (<= 64)
  size_t sample_size = 200;  ///< sample for radius calibration
  uint64_t seed = 11;
};

/// Server: hash-bucketed ciphertext store with Hamming-ordered retrieval.
class FdhServer : public net::RequestHandler {
 public:
  Result<Bytes> Handle(const Bytes& request) override;

  size_t bucket_count() const { return buckets_.size(); }

 private:
  std::map<uint64_t, std::vector<std::pair<metric::ObjectId, Bytes>>> buckets_;
};

/// Client-side cost components of FDH search.
struct FdhCosts {
  int64_t decryption_nanos = 0;
  int64_t distance_nanos = 0;
  uint64_t candidates_decrypted = 0;
  uint64_t distance_computations = 0;
  void Clear() { *this = FdhCosts{}; }
};

/// Authorized FDH client.
class FdhClient {
 public:
  static Result<FdhClient> Create(
      Bytes aes_key, std::shared_ptr<metric::DistanceFunction> metric,
      net::Transport* transport, FdhOptions options = FdhOptions());

  /// Calibrates anchors and radii from `sample` (median anchor distance).
  Status BuildKey(const std::vector<metric::VectorObject>& sample);

  /// Hashes, encrypts, and uploads objects.
  Status InsertBulk(const std::vector<metric::VectorObject>& objects,
                    size_t bulk_size = 1000);

  /// Approximate k-NN: fetches ~`cand_size` candidates from the buckets
  /// closest to the query hash, decrypts and refines.
  Result<metric::NeighborList> Knn(const metric::VectorObject& query,
                                   size_t k, size_t cand_size);

  const FdhCosts& costs() const { return costs_; }
  void ResetCosts() { costs_.Clear(); }

 private:
  FdhClient(crypto::Cipher cipher,
            std::shared_ptr<metric::DistanceFunction> metric,
            net::Transport* transport, FdhOptions options)
      : cipher_(std::move(cipher)), metric_(std::move(metric)),
        transport_(transport), options_(options) {}

  uint64_t HashObject(const metric::VectorObject& object);

  crypto::Cipher cipher_;
  std::shared_ptr<metric::DistanceFunction> metric_;
  net::Transport* transport_;
  FdhOptions options_;
  FdhCosts costs_;

  std::vector<metric::VectorObject> anchors_;
  std::vector<double> radii_;
};

}  // namespace baselines
}  // namespace simcloud

#endif  // SIMCLOUD_BASELINES_FDH_H_
