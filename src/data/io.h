// Data-set file loaders.
//
// The paper's collections are a gene-expression matrix (numeric rows —
// effectively CSV/TSV) and MPEG-7 descriptor vectors. The synthetic
// generators in data/synthetic.h stand in for them offline; this module
// is the adoption path for the real thing: drop the original YEAST/HUMAN
// matrix (or any numeric CSV) or a FASTA file of sequences next to the
// binary and load it into the same pipeline.

#ifndef SIMCLOUD_DATA_IO_H_
#define SIMCLOUD_DATA_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "metric/object.h"
#include "metric/sequence.h"

namespace simcloud {
namespace data {

/// Options for LoadVectorsCsv.
struct CsvOptions {
  char delimiter = ',';
  /// Skip this many leading lines (column headers).
  size_t skip_lines = 0;
  /// Zero-based column holding the object id; -1 assigns row order.
  /// Id columns may be non-numeric (gene names); ids are then row order.
  int id_column = -1;
  /// Lines starting with this character are ignored ('\0' disables).
  char comment_char = '#';
};

/// Loads a numeric matrix: one object per row, one value per column.
/// Every data row must have the same number of numeric columns;
/// otherwise Corruption with the offending line number.
Result<std::vector<metric::VectorObject>> LoadVectorsCsv(
    const std::string& path, const CsvOptions& options = {});

/// Writes objects as CSV (no header; id first when `with_ids`).
Status SaveVectorsCsv(const std::vector<metric::VectorObject>& objects,
                      const std::string& path, char delimiter = ',',
                      bool with_ids = true);

/// Loads sequences from FASTA: `>`-prefixed description lines start a
/// record, subsequent lines are concatenated into its sequence. Ids are
/// assigned in file order.
Result<std::vector<metric::SequenceObject>> LoadFasta(
    const std::string& path);

/// Writes sequences as FASTA (`>seq<id>` description lines, 70-char
/// wrapped bodies).
Status SaveFasta(const std::vector<metric::SequenceObject>& sequences,
                 const std::string& path);

}  // namespace data
}  // namespace simcloud

#endif  // SIMCLOUD_DATA_IO_H_
