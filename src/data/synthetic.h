// Synthetic data-set generators reproducing the *statistical profile* of
// the paper's three evaluation collections (Table 1):
//
//   YEAST   2,882 x  17-dim numeric vectors, L1 metric
//   HUMAN   4,026 x  96-dim numeric vectors, L1 metric
//   CoPhIR  1M    x 280-dim numeric vectors, weighted combination of Lp
//
// The original YEAST/HUMAN gene-expression matrices (arep.med.harvard.edu)
// and the CoPhIR MPEG-7 collection are not redistributable/offline, so we
// generate Gaussian-mixture data with identical cardinality, dimensionality
// and metric (see DESIGN.md §5 for why this preserves the measured
// behaviour). All generators are deterministic given their seed.

#ifndef SIMCLOUD_DATA_SYNTHETIC_H_
#define SIMCLOUD_DATA_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "metric/dataset.h"
#include "metric/distance.h"
#include "metric/object.h"

namespace simcloud {
namespace data {

/// Parameters of a clustered Gaussian-mixture vector generator.
struct MixtureOptions {
  size_t num_objects = 1000;
  size_t dimension = 16;
  size_t num_clusters = 10;   ///< mixture components
  double center_spread = 100; ///< stddev of component centers around 0
  double point_stddev = 20;   ///< per-dimension stddev within a component
  double min_value = -500;    ///< clip lower bound
  double max_value = 500;     ///< clip upper bound
  bool round_to_int = false;  ///< quantize (gene-expression-like counts)
  uint64_t seed = 1;
};

/// Generates `options.num_objects` clustered vectors with ids 0..n-1.
std::vector<metric::VectorObject> MakeGaussianMixture(
    const MixtureOptions& options);

/// YEAST-like data set: 2,882 x 17-dim integer-valued vectors, L1 metric.
metric::Dataset MakeYeastLike(uint64_t seed = 42);

/// HUMAN-like data set: 4,026 x 96-dim integer-valued vectors, L1 metric.
metric::Dataset MakeHumanLike(uint64_t seed = 43);

/// CoPhIR-style aggregate metric: weighted sum of per-descriptor Lp
/// distances over five contiguous segments (ColorLayout L2 + four L1
/// histogram/texture descriptors), total dimension 280.
std::shared_ptr<metric::DistanceFunction> MakeCophirDistance();

/// CoPhIR-like data set: `num_objects` x 280-dim vectors under the
/// aggregate metric. The paper indexes 1M objects; pass a smaller n to
/// trade fidelity for runtime (see DefaultCophirSize()).
metric::Dataset MakeCophirLike(size_t num_objects, uint64_t seed = 44);

/// Collection size for CoPhIR experiments: the SIMCLOUD_COPHIR_N
/// environment variable if set (clamped to [1000, 1000000]), else 200,000.
size_t DefaultCophirSize();

/// Uniform random vectors in [0,1]^dim — the hardest case for any metric
/// index (no cluster structure); used by property tests and ablations.
std::vector<metric::VectorObject> MakeUniformVectors(size_t num_objects,
                                                     size_t dimension,
                                                     uint64_t seed);

}  // namespace data
}  // namespace simcloud

#endif  // SIMCLOUD_DATA_SYNTHETIC_H_
