#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/log.h"
#include "common/rng.h"

namespace simcloud {
namespace data {

using metric::Dataset;
using metric::DistanceFunction;
using metric::SegmentedLpDistance;
using metric::VectorObject;

std::vector<VectorObject> MakeGaussianMixture(const MixtureOptions& options) {
  Rng rng(options.seed);

  // Draw component centers, then sample objects from randomly chosen
  // components with unequal (Zipf-ish) mixing weights so that the index's
  // Voronoi cells have realistically skewed occupancy.
  std::vector<std::vector<double>> centers(options.num_clusters);
  for (auto& center : centers) {
    center.resize(options.dimension);
    for (auto& c : center) c = rng.NextGaussian(0.0, options.center_spread);
  }
  std::vector<double> weights(options.num_clusters);
  double total_weight = 0.0;
  for (size_t i = 0; i < options.num_clusters; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
    total_weight += weights[i];
  }

  std::vector<VectorObject> objects;
  objects.reserve(options.num_objects);
  for (size_t id = 0; id < options.num_objects; ++id) {
    // Pick a component proportionally to weight.
    double pick = rng.NextDouble() * total_weight;
    size_t component = 0;
    while (component + 1 < options.num_clusters && pick > weights[component]) {
      pick -= weights[component];
      ++component;
    }

    std::vector<float> values(options.dimension);
    for (size_t d = 0; d < options.dimension; ++d) {
      double v = centers[component][d] +
                 rng.NextGaussian(0.0, options.point_stddev);
      v = std::clamp(v, options.min_value, options.max_value);
      if (options.round_to_int) v = std::nearbyint(v);
      values[d] = static_cast<float>(v);
    }
    objects.emplace_back(static_cast<metric::ObjectId>(id),
                         std::move(values));
  }
  return objects;
}

Dataset MakeYeastLike(uint64_t seed) {
  MixtureOptions options;
  options.num_objects = 2882;
  options.dimension = 17;
  options.num_clusters = 16;
  options.center_spread = 120.0;
  options.point_stddev = 35.0;
  options.min_value = -200.0;
  options.max_value = 600.0;
  options.round_to_int = true;  // microarray expression levels are counts
  options.seed = seed;
  return Dataset("YEAST", MakeGaussianMixture(options),
                 std::make_shared<metric::L1Distance>());
}

Dataset MakeHumanLike(uint64_t seed) {
  MixtureOptions options;
  options.num_objects = 4026;
  options.dimension = 96;
  options.num_clusters = 24;
  options.center_spread = 110.0;
  options.point_stddev = 30.0;
  options.min_value = -300.0;
  options.max_value = 600.0;
  options.round_to_int = true;
  options.seed = seed;
  return Dataset("HUMAN", MakeGaussianMixture(options),
                 std::make_shared<metric::L1Distance>());
}

std::shared_ptr<DistanceFunction> MakeCophirDistance() {
  // Five MPEG-7 descriptor segments as used by the CoPhIR aggregate
  // distance (MESSIF weights, normalized): ColorLayout (12 dims, L2),
  // ScalableColor (64, L1), ColorStructure (64, L1), EdgeHistogram (80,
  // L1), HomogeneousTexture (60, L1). Total dimension 280.
  std::vector<SegmentedLpDistance::Segment> segments = {
      {12, 2.0, 1.5},  // ColorLayout
      {64, 1.0, 2.5},  // ScalableColor
      {64, 1.0, 2.5},  // ColorStructure
      {80, 1.0, 4.5},  // EdgeHistogram
      {60, 1.0, 0.5},  // HomogeneousTexture
  };
  auto result = SegmentedLpDistance::Create(std::move(segments));
  // Static parameters above are always valid.
  return std::make_shared<SegmentedLpDistance>(std::move(result).value());
}

Dataset MakeCophirLike(size_t num_objects, uint64_t seed) {
  MixtureOptions options;
  options.num_objects = num_objects;
  options.dimension = 280;
  options.num_clusters = 64;  // image collections are strongly clustered
  options.center_spread = 60.0;
  options.point_stddev = 15.0;
  options.min_value = 0.0;    // MPEG-7 descriptor values are non-negative
  options.max_value = 255.0;
  options.round_to_int = true;
  options.seed = seed;
  return Dataset("CoPhIR", MakeGaussianMixture(options), MakeCophirDistance());
}

size_t DefaultCophirSize() {
  const char* env = std::getenv("SIMCLOUD_COPHIR_N");
  if (env != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    // Reject trailing garbage ("5000x", "1e5"), not just out-of-range
    // values: a typo must not silently fall back as if unset.
    if (end != env && *end == '\0' && parsed >= 1000 && parsed <= 1000000) {
      return static_cast<size_t>(parsed);
    }
    SIMCLOUD_LOG(kWarn) << "ignoring invalid SIMCLOUD_COPHIR_N value '" << env
                        << "' (want an integer in [1000, 1000000])";
  }
  return 200000;
}

std::vector<VectorObject> MakeUniformVectors(size_t num_objects,
                                             size_t dimension, uint64_t seed) {
  Rng rng(seed);
  std::vector<VectorObject> objects;
  objects.reserve(num_objects);
  for (size_t id = 0; id < num_objects; ++id) {
    std::vector<float> values(dimension);
    for (auto& v : values) v = rng.NextFloat();
    objects.emplace_back(static_cast<metric::ObjectId>(id),
                         std::move(values));
  }
  return objects;
}

}  // namespace data
}  // namespace simcloud
