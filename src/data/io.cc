#include "data/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace simcloud {
namespace data {

using metric::SequenceObject;
using metric::VectorObject;

namespace {

/// Splits `line` on `delimiter`, trimming surrounding whitespace.
std::vector<std::string> SplitFields(const std::string& line,
                                     char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, delimiter)) {
    const size_t begin = field.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      fields.emplace_back();
      continue;
    }
    const size_t end = field.find_last_not_of(" \t\r");
    fields.push_back(field.substr(begin, end - begin + 1));
  }
  return fields;
}

bool ParseFloat(const std::string& text, float* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const float value = std::strtof(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

Result<std::vector<VectorObject>> LoadVectorsCsv(const std::string& path,
                                                 const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open CSV file " + path);
  }
  std::vector<VectorObject> objects;
  std::string line;
  size_t line_number = 0;
  size_t expected_dimension = 0;
  uint64_t next_row_id = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line_number <= options.skip_lines) continue;
    if (line.empty()) continue;
    if (options.comment_char != '\0' && line[0] == options.comment_char) {
      continue;
    }
    const std::vector<std::string> fields =
        SplitFields(line, options.delimiter);

    uint64_t id = next_row_id;
    std::vector<float> values;
    values.reserve(fields.size());
    for (size_t column = 0; column < fields.size(); ++column) {
      if (options.id_column >= 0 &&
          column == static_cast<size_t>(options.id_column)) {
        // Numeric ids are honoured; non-numeric id fields (gene names)
        // fall back to row order.
        char* end = nullptr;
        const unsigned long long parsed =
            std::strtoull(fields[column].c_str(), &end, 10);
        if (end == fields[column].c_str() + fields[column].size() &&
            !fields[column].empty()) {
          id = parsed;
        }
        continue;
      }
      float value = 0;
      if (!ParseFloat(fields[column], &value)) {
        return Status::Corruption("non-numeric value '" + fields[column] +
                                  "' at " + path + ":" +
                                  std::to_string(line_number));
      }
      values.push_back(value);
    }
    if (values.empty()) {
      return Status::Corruption("no numeric columns at " + path + ":" +
                                std::to_string(line_number));
    }
    if (expected_dimension == 0) {
      expected_dimension = values.size();
    } else if (values.size() != expected_dimension) {
      return Status::Corruption(
          "row with " + std::to_string(values.size()) + " columns, expected " +
          std::to_string(expected_dimension) + " at " + path + ":" +
          std::to_string(line_number));
    }
    objects.emplace_back(id, std::move(values));
    ++next_row_id;
  }
  if (objects.empty()) {
    return Status::InvalidArgument("CSV file " + path + " holds no data rows");
  }
  return objects;
}

Status SaveVectorsCsv(const std::vector<VectorObject>& objects,
                      const std::string& path, char delimiter,
                      bool with_ids) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  for (const VectorObject& object : objects) {
    if (with_ids) file << object.id() << delimiter;
    const auto& values = object.values();
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) file << delimiter;
      file << values[i];
    }
    file << '\n';
  }
  if (!file.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<std::vector<SequenceObject>> LoadFasta(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open FASTA file " + path);
  }
  std::vector<SequenceObject> sequences;
  std::string line;
  std::string current;
  bool in_record = false;
  uint64_t next_id = 0;
  auto flush = [&]() {
    if (in_record) {
      sequences.emplace_back(next_id++, std::move(current));
      current.clear();
    }
  };
  while (std::getline(file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      continue;
    }
    if (!in_record) {
      return Status::Corruption("FASTA body before first '>' header in " +
                                path);
    }
    current += line;
  }
  flush();
  if (sequences.empty()) {
    return Status::InvalidArgument("FASTA file " + path +
                                   " holds no records");
  }
  return sequences;
}

Status SaveFasta(const std::vector<SequenceObject>& sequences,
                 const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  for (const SequenceObject& sequence : sequences) {
    file << ">seq" << sequence.id() << '\n';
    const std::string& body = sequence.sequence();
    for (size_t offset = 0; offset < body.size(); offset += 70) {
      file << body.substr(offset, 70) << '\n';
    }
    if (body.empty()) file << '\n';
  }
  if (!file.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

}  // namespace data
}  // namespace simcloud
