// Honest-but-curious server adversary: quantifies what a compromised
// similarity-cloud server actually learns at each privacy level.
//
// Paper Section 4.3 argues informally that a server compromise reveals
// "the index structure and thus the sets of clustered MS objects ... but
// not knowing the pivots and the metric function, it would be difficult
// to learn specifics about the data set". This module turns that argument
// into measurements. The attacker is given exactly the server's view —
// routing metadata (pivot permutations and/or stored pivot distances) and
// ciphertext sizes — and standard statistical attacks are evaluated
// against experimenter-side ground truth:
//
//  * distribution reconstruction — how close is the leaked object-pivot
//    distance marginal to the true one (Kolmogorov-Smirnov statistic)?
//    Zero for the precise strategy without a transform (the distances ARE
//    the true ones), large once the ConcaveTransform is enabled.
//  * rank leakage — Spearman correlation between leaked values and true
//    distances. A monotone transform hides magnitudes but NOT order; this
//    metric makes that residual leak visible instead of hiding it.
//  * co-cell proximity inference — entries sharing the first permutation
//    element are Voronoi neighbors; the ratio of mean true distance of
//    same-cell pairs to random pairs measures how much proximity
//    structure the (transform-invariant) permutations reveal.
//  * ciphertext-size side channel — entropy and support size of payload
//    lengths (block-cipher padding quantizes sizes; variable-dimension
//    collections still leak coarse size classes).

#ifndef SIMCLOUD_SECURE_ATTACK_H_
#define SIMCLOUD_SECURE_ATTACK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "metric/distance.h"
#include "metric/object.h"
#include "mindex/mindex.h"
#include "mindex/pivot_set.h"

namespace simcloud {
namespace secure {

/// One record as visible to the server (and hence to an attacker who
/// compromises it): no plaintext, no pivots, no metric.
struct LeakedEntry {
  metric::ObjectId id = 0;
  mindex::Permutation permutation;     ///< routing prefix (always present)
  std::vector<float> pivot_distances;  ///< precise strategy only; possibly
                                       ///< transform-distorted
  size_t payload_size = 0;             ///< ciphertext length in bytes
};

/// Everything the attacker gets.
struct LeakedServerView {
  std::vector<LeakedEntry> entries;
};

/// Extracts the server's complete view from an index (what a full server
/// compromise exposes).
Result<LeakedServerView> ExtractServerView(const mindex::MIndex& index);

/// Outcome of the statistical attacks; see the header comment for the
/// meaning and expected ranges of each field.
struct AttackReport {
  bool distances_leaked = false;     ///< entries carried distance vectors
  /// KS statistic in [0,1] between leaked and true first-pivot distance
  /// marginals; 0 = perfectly reconstructed distribution (worst case for
  /// privacy), valid only when distances_leaked.
  double distance_ks_statistic = 0.0;
  /// Spearman rank correlation in [-1,1] between leaked values and true
  /// distances (first pivot); ~1 whenever a monotone transform is used.
  double rank_correlation = 0.0;
  /// mean d(o1,o2) over same-first-cell pairs divided by the mean over
  /// random pairs; < 1 means permutations reveal proximity structure.
  double same_cell_distance_ratio = 1.0;
  /// Shannon entropy (bits) of the ciphertext-size distribution.
  double payload_size_entropy_bits = 0.0;
  size_t distinct_payload_sizes = 0;
};

/// Runs the attacks in the header comment. `objects`, `metric`, `pivots`
/// are the experimenter's ground truth (the attacker never sees them);
/// `seed` drives pair sampling.
Result<AttackReport> EvaluateLeakage(
    const LeakedServerView& view,
    const std::vector<metric::VectorObject>& objects,
    const metric::DistanceFunction& metric, const mindex::PivotSet& pivots,
    uint64_t seed);

// Statistical helpers (exported for tests and other ablations).

/// Two-sample Kolmogorov-Smirnov statistic sup_x |F_a(x) - F_b(x)|.
double KolmogorovSmirnovStatistic(std::vector<double> a,
                                  std::vector<double> b);

/// Spearman rank correlation of paired samples (average ranks for ties).
/// Returns 0 for fewer than two pairs.
double SpearmanRankCorrelation(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Shannon entropy (bits) of the empirical distribution of `values`.
double ShannonEntropyBits(const std::vector<size_t>& values);

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_ATTACK_H_
