// Secure sessions between authorized clients and the similarity cloud:
// the glue between the index secret (secure/secret_key.h) and the
// transport-security subsystem (net/secure_channel.h).
//
// The paper's trust model protects payloads at rest on the
// honest-but-curious server; the secure channel extends the same
// key-distribution story to the wire. The data owner derives ONE
// transport pre-shared key from the index secret
// (SecretKey::DeriveChannelKey — domain-separated from the
// object-encryption and query-MAC keys) and provisions it to the server
// when the service is set up, exactly like the query-auth MAC key.
// Authorized clients, who hold the full secret key, derive the same PSK
// locally; the handshake then proves possession in both directions and
// derives fresh per-connection, per-direction, per-epoch record keys,
// so neither a passive observer nor an active man-in-the-middle learns
// permutation prefixes, candidate counts, or ciphertext handles — the
// inputs of every leakage analysis in secure/attack.{h,cc}.
//
// Deployment matrix (see docs/protocol.md, "Transport security"):
//   * server: TcpServerOptions{.channel_policy = kSecure,
//             .secure_channel = SecureSessionOptions(psk)}
//   * client: ConnectSecure(host, port, key), or TcpTransport::Connect
//             with the same options;
//   * shards: ShardedServer::Connect(endpoints, pivots, kSecure, opts).

#ifndef SIMCLOUD_SECURE_SESSION_H_
#define SIMCLOUD_SECURE_SESSION_H_

#include <memory>
#include <string>

#include "net/secure_channel.h"
#include "net/tcp.h"
#include "secure/secret_key.h"

namespace simcloud {
namespace secure {

/// Channel options whose PSK is derived from the index secret. Both
/// ends must use the same rekey budgets (the defaults); tests shrink
/// them through the returned struct.
net::SecureChannelOptions SecureSessionOptions(const SecretKey& key);

/// Channel options around an externally provisioned PSK (the
/// server-side shape: the service holds the derived PSK, never the
/// secret key itself). `psk` must be >= 16 bytes.
net::SecureChannelOptions SecureSessionOptions(Bytes psk);

/// Connects a TCP transport whose handshake is keyed by `key` — the
/// one-call client path: EncryptionClient(key, metric, transport.get())
/// then works unchanged, with every frame inside an AEAD record.
Result<std::unique_ptr<net::TcpTransport>> ConnectSecure(
    const std::string& host, uint16_t port, const SecretKey& key);

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SESSION_H_
