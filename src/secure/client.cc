#include "secure/client.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/clock.h"
#include "mindex/permutation.h"

namespace simcloud {
namespace secure {

using metric::Neighbor;
using metric::NeighborList;
using metric::VectorObject;

std::vector<float> EncryptionClient::ComputePivotDistances(
    const VectorObject& object, bool apply_transform) {
  Stopwatch watch;
  std::vector<float> distances =
      key_.pivots().ComputeDistances(object, *metric_);
  costs_.distance_nanos += watch.ElapsedNanos();
  costs_.distance_computations += key_.num_pivots();

  if (apply_transform && key_.has_transform()) {
    distances = key_.transform().ApplyAll(distances);
  }
  return distances;
}

Status EncryptionClient::Insert(const VectorObject& object,
                                InsertStrategy strategy) {
  return InsertBulk({object}, strategy, 1);
}

Status EncryptionClient::InsertBulk(const std::vector<VectorObject>& objects,
                                    InsertStrategy strategy,
                                    size_t bulk_size) {
  if (bulk_size == 0) {
    return Status::InvalidArgument("bulk size must be > 0");
  }
  size_t offset = 0;
  while (offset < objects.size()) {
    const size_t batch = std::min(bulk_size, objects.size() - offset);
    Stopwatch op_watch;
    int64_t tracked_before =
        costs_.distance_nanos + costs_.encryption_nanos;

    std::vector<InsertItem> items;
    items.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      const VectorObject& object = objects[offset + i];
      InsertItem item;
      item.id = object.id();

      // Algorithm 1 lines 1-7: distances, then distances or permutation.
      std::vector<float> distances =
          ComputePivotDistances(object, /*apply_transform=*/true);
      if (strategy == InsertStrategy::kPrecise) {
        item.pivot_distances = std::move(distances);
      } else {
        // A strictly monotone transform preserves the permutation, so the
        // permutation is computed from the (possibly transformed) values.
        item.permutation = mindex::DistancesToPermutation(distances);
      }

      // Algorithm 1 line 8: store encrypted data only.
      Stopwatch enc_watch;
      SIMCLOUD_ASSIGN_OR_RETURN(item.payload, key_.EncryptObject(object));
      costs_.encryption_nanos += enc_watch.ElapsedNanos();
      costs_.objects_encrypted++;

      items.push_back(std::move(item));
    }

    const Bytes request = EncodeInsertBatchRequest(items);
    const int64_t server_before = transport_->costs().server_nanos;
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes,
                              transport_->Call(request));
    const int64_t server_delta =
        transport_->costs().server_nanos - server_before;
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t inserted,
                              DecodeInsertResponse(response_bytes));
    if (inserted != batch) {
      return Status::Internal("server acknowledged " +
                              std::to_string(inserted) + " of " +
                              std::to_string(batch) + " inserts");
    }

    const int64_t tracked_delta =
        costs_.distance_nanos + costs_.encryption_nanos - tracked_before;
    costs_.overhead_nanos += std::max<int64_t>(
        0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
    offset += batch;
  }
  return Status::OK();
}

Status EncryptionClient::Delete(const metric::VectorObject& object) {
  // The routing permutation is derived exactly as the insert derived it
  // (both strategies route by the permutation of the transformed
  // distances), so the delete reaches the same cell.
  std::vector<float> distances =
      ComputePivotDistances(object, /*apply_transform=*/true);
  const mindex::Permutation permutation =
      mindex::DistancesToPermutation(distances);
  const Bytes request = EncodeDeleteRequest(object.id(), permutation);
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(request));
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t deleted, DecodeInsertResponse(response));
  if (deleted != 1) {
    return Status::Internal("server acknowledged an unexpected delete count");
  }
  return Status::OK();
}

Status EncryptionClient::DeleteBatch(
    const std::vector<VectorObject>& objects, size_t bulk_size) {
  if (bulk_size == 0) {
    return Status::InvalidArgument("bulk size must be > 0");
  }
  bulk_size = std::min<size_t>(bulk_size, kMaxBatchQueries);
  size_t missing = 0;
  size_t offset = 0;
  while (offset < objects.size()) {
    const size_t batch = std::min(bulk_size, objects.size() - offset);
    std::vector<DeleteItem> items;
    items.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      const VectorObject& object = objects[offset + i];
      std::vector<float> distances =
          ComputePivotDistances(object, /*apply_transform=*/true);
      items.push_back(DeleteItem{object.id(),
                                 mindex::DistancesToPermutation(distances)});
    }
    const Bytes request = EncodeDeleteBatchRequest(items);
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, transport_->Call(request));
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t deleted,
                              DecodeInsertResponse(response));
    if (deleted > batch) {
      return Status::Internal("server acknowledged more deletes than sent");
    }
    missing += batch - deleted;
    offset += batch;
  }
  if (missing > 0) {
    return Status::NotFound(std::to_string(missing) + " of " +
                            std::to_string(objects.size()) +
                            " objects were not indexed");
  }
  return Status::OK();
}

Result<mindex::CompactionReport> EncryptionClient::Compact(bool force) {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                            transport_->Call(EncodeCompactRequest(force)));
  return DecodeCompactResponse(response);
}

Result<VectorObject> EncryptionClient::DecryptCandidate(
    const Bytes& payload) {
  Stopwatch watch;
  SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object, key_.DecryptObject(payload));
  costs_.decryption_nanos += watch.ElapsedNanos();
  costs_.candidates_decrypted++;
  return object;
}

double EncryptionClient::MeasuredDistance(const VectorObject& query,
                                          const VectorObject& object) {
  Stopwatch watch;
  const double d = metric_->Distance(query, object);
  costs_.distance_nanos += watch.ElapsedNanos();
  costs_.distance_computations++;
  return d;
}

Result<NeighborList> EncryptionClient::RefineCandidates(
    const mindex::CandidateList& candidates, const VectorObject& query) {
  NeighborList refined;
  refined.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                              DecryptCandidate(candidate.payload));
    refined.push_back(Neighbor{object.id(), MeasuredDistance(query, object)});
  }
  std::sort(refined.begin(), refined.end());
  return refined;
}

Result<NeighborList> EncryptionClient::RangeSearch(const VectorObject& query,
                                                   double radius) {
  if (radius < 0) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  Stopwatch op_watch;
  const int64_t tracked_before = costs_.distance_nanos +
                                 costs_.decryption_nanos +
                                 costs_.encryption_nanos;

  // Algorithm 2 lines 1-6 (precise branch): distances only, no query object.
  std::vector<float> query_distances =
      ComputePivotDistances(query, /*apply_transform=*/true);
  const double sent_radius =
      key_.has_transform() ? key_.transform().Apply(radius) : radius;

  const Bytes request = EncodeRangeSearchRequest(query_distances, sent_radius);
  const int64_t server_before = transport_->costs().server_nanos;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes, transport_->Call(request));
  const int64_t server_delta =
      transport_->costs().server_nanos - server_before;
  SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse response,
                            DecodeCandidateResponse(response_bytes));

  // Algorithm 2 lines 11-16: decrypt + refine with the true metric.
  SIMCLOUD_ASSIGN_OR_RETURN(NeighborList refined,
                            RefineCandidates(response.candidates, query));
  NeighborList answer;
  for (const Neighbor& n : refined) {
    if (n.distance <= radius) answer.push_back(n);
  }

  const int64_t tracked_delta = costs_.distance_nanos +
                                costs_.decryption_nanos +
                                costs_.encryption_nanos - tracked_before;
  costs_.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return answer;
}

Result<NeighborList> EncryptionClient::ApproxKnnSingleCell(
    const VectorObject& query, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  Stopwatch op_watch;
  const int64_t tracked_before = costs_.distance_nanos +
                                 costs_.decryption_nanos +
                                 costs_.encryption_nanos;

  std::vector<float> query_distances =
      ComputePivotDistances(query, /*apply_transform=*/true);
  mindex::QuerySignature signature;
  signature.permutation = mindex::DistancesToPermutation(query_distances);
  signature.whole_cells = true;

  const Bytes request = EncodeApproxKnnRequest(signature, 1);
  const int64_t server_before = transport_->costs().server_nanos;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes, transport_->Call(request));
  const int64_t server_delta =
      transport_->costs().server_nanos - server_before;
  SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse response,
                            DecodeCandidateResponse(response_bytes));

  SIMCLOUD_ASSIGN_OR_RETURN(NeighborList refined,
                            RefineCandidates(response.candidates, query));
  if (refined.size() > k) refined.resize(k);

  const int64_t tracked_delta = costs_.distance_nanos +
                                costs_.decryption_nanos +
                                costs_.encryption_nanos - tracked_before;
  costs_.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return refined;
}

Result<NeighborList> EncryptionClient::ApproxKnn(const VectorObject& query,
                                                 size_t k, size_t cand_size) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  if (cand_size < k) {
    return Status::InvalidArgument("candidate set size must be >= k");
  }
  Stopwatch op_watch;
  const int64_t tracked_before = costs_.distance_nanos +
                                 costs_.decryption_nanos +
                                 costs_.encryption_nanos;

  // Algorithm 2 lines 7-10 (approximate branch): permutation only.
  std::vector<float> query_distances =
      ComputePivotDistances(query, /*apply_transform=*/true);
  mindex::QuerySignature signature;
  signature.permutation = mindex::DistancesToPermutation(query_distances);

  const Bytes request = EncodeApproxKnnRequest(signature, cand_size);
  const int64_t server_before = transport_->costs().server_nanos;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes, transport_->Call(request));
  const int64_t server_delta =
      transport_->costs().server_nanos - server_before;
  SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse response,
                            DecodeCandidateResponse(response_bytes));

  SIMCLOUD_ASSIGN_OR_RETURN(NeighborList refined,
                            RefineCandidates(response.candidates, query));
  if (refined.size() > k) refined.resize(k);

  const int64_t tracked_delta = costs_.distance_nanos +
                                costs_.decryption_nanos +
                                costs_.encryption_nanos - tracked_before;
  costs_.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return refined;
}

Result<std::vector<NeighborList>> EncryptionClient::RefineBatch(
    const BatchCandidateResponse& response,
    const std::vector<VectorObject>& queries) {
  std::vector<std::optional<VectorObject>> decoded(
      response.batch.payloads.size());
  std::vector<NeighborList> results;
  results.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    NeighborList refined;
    refined.reserve(response.batch.per_query[q].size());
    for (const mindex::BatchCandidateRef& ref : response.batch.per_query[q]) {
      if (!decoded[ref.payload_index].has_value()) {
        SIMCLOUD_ASSIGN_OR_RETURN(
            VectorObject object,
            DecryptCandidate(response.batch.payloads[ref.payload_index]));
        decoded[ref.payload_index] = std::move(object);
      }
      const VectorObject& object = *decoded[ref.payload_index];
      refined.push_back(
          Neighbor{object.id(), MeasuredDistance(queries[q], object)});
    }
    std::sort(refined.begin(), refined.end());
    results.push_back(std::move(refined));
  }
  return results;
}

Result<Bytes> EncryptionClient::BuildRangeSearchBatchRequest(
    const std::vector<VectorObject>& queries, double radius) {
  if (radius < 0) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  if (queries.size() > kMaxBatchQueries) {
    return Status::InvalidArgument(
        "batch exceeds the " + std::to_string(kMaxBatchQueries) +
        "-query protocol limit; split it into smaller batches");
  }
  const double sent_radius =
      key_.has_transform() ? key_.transform().Apply(radius) : radius;
  std::vector<mindex::RangeQuery> batch;
  batch.reserve(queries.size());
  for (const VectorObject& query : queries) {
    mindex::RangeQuery item;
    item.pivot_distances =
        ComputePivotDistances(query, /*apply_transform=*/true);
    item.radius = sent_radius;
    batch.push_back(std::move(item));
  }
  return EncodeRangeSearchBatchRequest(batch);
}

Result<std::vector<NeighborList>> EncryptionClient::FinishRangeSearchBatch(
    const Bytes& response_bytes, const std::vector<VectorObject>& queries,
    double radius) {
  SIMCLOUD_ASSIGN_OR_RETURN(BatchCandidateResponse response,
                            DecodeBatchCandidateResponse(response_bytes));
  if (response.query_count() != queries.size()) {
    return Status::Internal("server answered " +
                            std::to_string(response.query_count()) + " of " +
                            std::to_string(queries.size()) +
                            " batched queries");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(std::vector<NeighborList> refined_lists,
                            RefineBatch(response, queries));
  std::vector<NeighborList> answers;
  answers.reserve(queries.size());
  for (NeighborList& refined : refined_lists) {
    NeighborList answer;
    for (const Neighbor& n : refined) {
      if (n.distance <= radius) answer.push_back(n);
    }
    answers.push_back(std::move(answer));
  }
  return answers;
}

Result<std::vector<NeighborList>> EncryptionClient::RangeSearchBatch(
    const std::vector<VectorObject>& queries, double radius) {
  Stopwatch op_watch;
  const int64_t tracked_before = costs_.distance_nanos +
                                 costs_.decryption_nanos +
                                 costs_.encryption_nanos;

  // Built (and thereby argument-validated) before the empty shortcut so
  // invalid arguments fail even for an empty batch.
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes request,
                            BuildRangeSearchBatchRequest(queries, radius));
  if (queries.empty()) return std::vector<NeighborList>{};
  const int64_t server_before = transport_->costs().server_nanos;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes, transport_->Call(request));
  const int64_t server_delta =
      transport_->costs().server_nanos - server_before;
  SIMCLOUD_ASSIGN_OR_RETURN(
      std::vector<NeighborList> answers,
      FinishRangeSearchBatch(response_bytes, queries, radius));

  const int64_t tracked_delta = costs_.distance_nanos +
                                costs_.decryption_nanos +
                                costs_.encryption_nanos - tracked_before;
  costs_.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return answers;
}

Result<Bytes> EncryptionClient::BuildApproxKnnBatchRequest(
    const std::vector<VectorObject>& queries, size_t k, size_t cand_size) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  if (cand_size < k) {
    return Status::InvalidArgument("candidate set size must be >= k");
  }
  if (queries.size() > kMaxBatchQueries) {
    return Status::InvalidArgument(
        "batch exceeds the " + std::to_string(kMaxBatchQueries) +
        "-query protocol limit; split it into smaller batches");
  }
  std::vector<mindex::KnnQuery> batch;
  batch.reserve(queries.size());
  for (const VectorObject& query : queries) {
    std::vector<float> query_distances =
        ComputePivotDistances(query, /*apply_transform=*/true);
    mindex::KnnQuery item;
    item.signature.permutation =
        mindex::DistancesToPermutation(query_distances);
    item.cand_size = cand_size;
    batch.push_back(std::move(item));
  }
  return EncodeApproxKnnBatchRequest(batch);
}

Result<std::vector<NeighborList>> EncryptionClient::FinishApproxKnnBatch(
    const Bytes& response_bytes, const std::vector<VectorObject>& queries,
    size_t k) {
  SIMCLOUD_ASSIGN_OR_RETURN(BatchCandidateResponse response,
                            DecodeBatchCandidateResponse(response_bytes));
  if (response.query_count() != queries.size()) {
    return Status::Internal("server answered " +
                            std::to_string(response.query_count()) + " of " +
                            std::to_string(queries.size()) +
                            " batched queries");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(std::vector<NeighborList> answers,
                            RefineBatch(response, queries));
  for (NeighborList& refined : answers) {
    if (refined.size() > k) refined.resize(k);
  }
  return answers;
}

Result<std::vector<NeighborList>> EncryptionClient::ApproxKnnBatch(
    const std::vector<VectorObject>& queries, size_t k, size_t cand_size) {
  Stopwatch op_watch;
  const int64_t tracked_before = costs_.distance_nanos +
                                 costs_.decryption_nanos +
                                 costs_.encryption_nanos;

  SIMCLOUD_ASSIGN_OR_RETURN(
      Bytes request, BuildApproxKnnBatchRequest(queries, k, cand_size));
  if (queries.empty()) return std::vector<NeighborList>{};
  const int64_t server_before = transport_->costs().server_nanos;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes, transport_->Call(request));
  const int64_t server_delta =
      transport_->costs().server_nanos - server_before;
  SIMCLOUD_ASSIGN_OR_RETURN(std::vector<NeighborList> answers,
                            FinishApproxKnnBatch(response_bytes, queries, k));

  const int64_t tracked_delta = costs_.distance_nanos +
                                costs_.decryption_nanos +
                                costs_.encryption_nanos - tracked_before;
  costs_.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return answers;
}

Result<net::PipelinedTransport*> EncryptionClient::PipelinedOrFail() const {
  auto* pipelined = dynamic_cast<net::PipelinedTransport*>(transport_);
  if (pipelined == nullptr) {
    return Status::FailedPrecondition(
        "transport does not support pipelining (need TcpTransport or "
        "LoopbackTransport)");
  }
  return pipelined;
}

Result<PendingQueryBatch> EncryptionClient::SubmitRangeSearchBatch(
    std::vector<VectorObject> queries, double radius) {
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes request,
                            BuildRangeSearchBatchRequest(queries, radius));
  PendingQueryBatch pending;
  SIMCLOUD_ASSIGN_OR_RETURN(pending.ticket, pipelined->Submit(request));
  pending.live = true;
  pending.queries = std::move(queries);
  pending.radius = radius;
  return pending;
}

Result<std::vector<NeighborList>> EncryptionClient::CollectRangeSearchBatch(
    PendingQueryBatch* pending) {
  if (pending == nullptr || !pending->live) {
    return Status::InvalidArgument(
        "batch was never submitted or is already collected");
  }
  pending->live = false;
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes,
                            pipelined->Collect(pending->ticket));
  return FinishRangeSearchBatch(response_bytes, pending->queries,
                                pending->radius);
}

Result<PendingQueryBatch> EncryptionClient::SubmitApproxKnnBatch(
    std::vector<VectorObject> queries, size_t k, size_t cand_size) {
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  SIMCLOUD_ASSIGN_OR_RETURN(
      Bytes request, BuildApproxKnnBatchRequest(queries, k, cand_size));
  PendingQueryBatch pending;
  SIMCLOUD_ASSIGN_OR_RETURN(pending.ticket, pipelined->Submit(request));
  pending.live = true;
  pending.queries = std::move(queries);
  pending.k = k;
  return pending;
}

Result<std::vector<NeighborList>> EncryptionClient::CollectApproxKnnBatch(
    PendingQueryBatch* pending) {
  if (pending == nullptr || !pending->live) {
    return Status::InvalidArgument(
        "batch was never submitted or is already collected");
  }
  pending->live = false;
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes,
                            pipelined->Collect(pending->ticket));
  return FinishApproxKnnBatch(response_bytes, pending->queries, pending->k);
}

Result<PendingDeleteBatch> EncryptionClient::SubmitDeleteBatch(
    const std::vector<VectorObject>& objects) {
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  if (objects.size() > kMaxBatchQueries) {
    return Status::InvalidArgument(
        "batch exceeds the " + std::to_string(kMaxBatchQueries) +
        "-item protocol limit; split it into smaller batches");
  }
  std::vector<DeleteItem> items;
  items.reserve(objects.size());
  for (const VectorObject& object : objects) {
    std::vector<float> distances =
        ComputePivotDistances(object, /*apply_transform=*/true);
    items.push_back(
        DeleteItem{object.id(), mindex::DistancesToPermutation(distances)});
  }
  PendingDeleteBatch pending;
  SIMCLOUD_ASSIGN_OR_RETURN(pending.ticket,
                            pipelined->Submit(EncodeDeleteBatchRequest(items)));
  pending.live = true;
  pending.count = objects.size();
  return pending;
}

Status EncryptionClient::CollectDeleteBatch(PendingDeleteBatch* pending) {
  if (pending == nullptr || !pending->live) {
    return Status::InvalidArgument(
        "batch was never submitted or is already collected");
  }
  pending->live = false;
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                            pipelined->Collect(pending->ticket));
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t deleted, DecodeInsertResponse(response));
  if (deleted > pending->count) {
    return Status::Internal("server acknowledged more deletes than sent");
  }
  if (deleted < pending->count) {
    return Status::NotFound(std::to_string(pending->count - deleted) +
                            " of " + std::to_string(pending->count) +
                            " objects were not indexed");
  }
  return Status::OK();
}

Status EncryptionClient::Ping() {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                            transport_->Call(EncodePingRequest()));
  (void)response;  // empty by contract
  return Status::OK();
}

Result<uint64_t> EncryptionClient::SubmitPing() {
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  return pipelined->Submit(EncodePingRequest());
}

Status EncryptionClient::CollectPing(uint64_t ticket) {
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response, pipelined->Collect(ticket));
  (void)response;
  return Status::OK();
}

Result<NeighborList> EncryptionClient::ApproxKnnEarlyStop(
    const VectorObject& query, size_t k, size_t cand_size) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  if (cand_size < k) {
    return Status::InvalidArgument("candidate set size must be >= k");
  }
  Stopwatch op_watch;
  const int64_t tracked_before = costs_.distance_nanos +
                                 costs_.decryption_nanos +
                                 costs_.encryption_nanos;

  // Send the distances, not just the permutation: the server then ranks
  // candidates by their pivot-filtering lower bound on d(q, o) (in the
  // transformed space when a transform is enabled).
  std::vector<float> query_distances =
      ComputePivotDistances(query, /*apply_transform=*/true);
  mindex::QuerySignature signature;
  signature.pivot_distances = query_distances;
  signature.permutation = mindex::DistancesToPermutation(query_distances);

  const Bytes request = EncodeApproxKnnRequest(signature, cand_size);
  const int64_t server_before = transport_->costs().server_nanos;
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes, transport_->Call(request));
  const int64_t server_delta =
      transport_->costs().server_nanos - server_before;
  SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse response,
                            DecodeCandidateResponse(response_bytes));

  // Refine in rank order; stop when the next candidate's lower bound
  // already exceeds the k-th best true distance found so far. Scores are
  // lower bounds in the (possibly transformed) space, so the comparison
  // maps the current k-th distance through the transform first.
  NeighborList best;  // kept sorted ascending, size <= k
  for (const auto& candidate : response.candidates) {
    if (best.size() == k) {
      const double kth = best.back().distance;
      const double kth_in_score_space =
          key_.has_transform() ? key_.transform().Apply(kth) : kth;
      if (candidate.score > kth_in_score_space) break;  // sound stop
    }
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject object,
                              DecryptCandidate(candidate.payload));
    const Neighbor neighbor{object.id(), MeasuredDistance(query, object)};
    auto pos = std::lower_bound(best.begin(), best.end(), neighbor);
    if (best.size() < k) {
      best.insert(pos, neighbor);
    } else if (pos != best.end()) {
      best.insert(pos, neighbor);
      best.pop_back();
    }
  }

  const int64_t tracked_delta = costs_.distance_nanos +
                                costs_.decryption_nanos +
                                costs_.encryption_nanos - tracked_before;
  costs_.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return best;
}

Result<NeighborList> EncryptionClient::PreciseKnn(const VectorObject& query,
                                                  size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be > 0");

  // Phase 1: approximate k-NN to find an upper bound rho_k on the k-th
  // nearest neighbor distance.
  const size_t cand_size = std::max<size_t>(2 * k, 50);
  SIMCLOUD_ASSIGN_OR_RETURN(NeighborList approx,
                            ApproxKnn(query, k, cand_size));
  if (approx.size() < k) {
    // Collection may simply be smaller than k; a full range scan with an
    // infinite radius would be the fallback. Use the largest distance
    // observed, or fall back to a plain range over everything.
    if (approx.empty()) {
      return RangeSearch(query, std::numeric_limits<double>::max() / 4);
    }
  }
  const double rho_k = approx.back().distance;

  // Phase 2: precise range query with radius rho_k covers every true
  // k-nearest neighbor (their distances are <= true rho_k <= this rho_k).
  SIMCLOUD_ASSIGN_OR_RETURN(NeighborList in_range,
                            RangeSearch(query, rho_k));
  if (in_range.size() > k) in_range.resize(k);
  return in_range;
}

Result<mindex::IndexStats> EncryptionClient::GetServerStats() {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                            transport_->Call(EncodeGetStatsRequest()));
  return DecodeStatsResponse(response);
}

Result<obs::MetricsSnapshot> EncryptionClient::GetMetrics() {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response,
                            transport_->Call(EncodeGetMetricsRequest()));
  return DecodeMetricsResponse(response);
}

namespace {

/// Registration handshake: how long to wait for the server's kAck.
constexpr int kWatchAckTimeoutMs = 5000;

}  // namespace

bool EncryptionClient::IsWatchLost(const Status& status) {
  return status.message().find("watch lost") != std::string::npos;
}

Result<std::unique_ptr<WatchStream>> EncryptionClient::OpenWatch(
    const WatchFilter& filter, const std::vector<uint64_t>& resume_token) {
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  SIMCLOUD_ASSIGN_OR_RETURN(
      uint64_t ticket,
      pipelined->SubmitStream(EncodeWatchRequest(filter, resume_token)));
  // The ack answers the registration, but the delivery thread may win
  // the race and push resumed events onto the id first — stash those for
  // the stream's Next().
  std::deque<WatchFrame> early;
  for (;;) {
    Result<Bytes> frame_bytes =
        pipelined->CollectStream(ticket, kWatchAckTimeoutMs);
    if (!frame_bytes.ok()) {
      pipelined->CloseStream(ticket);
      return frame_bytes.status();
    }
    Result<WatchFrame> frame = DecodeWatchFrame(*frame_bytes);
    if (!frame.ok()) {
      pipelined->CloseStream(ticket);
      return frame.status();
    }
    if (frame->kind == WatchFrame::Kind::kAck) {
      auto stream = std::unique_ptr<WatchStream>(new WatchStream(
          this, pipelined, ticket, frame->watch_id, frame->token));
      stream->early_ = std::move(early);
      return stream;
    }
    early.push_back(std::move(*frame));
  }
}

Result<std::unique_ptr<WatchStream>> EncryptionClient::Watch(
    const VectorObject& query, double radius,
    const std::vector<uint64_t>& resume_token) {
  if (radius < 0) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  // Like RangeSearch, the wire carries only transformed pivot distances
  // and the transformed radius — the query object stays client-side.
  WatchFilter filter;
  filter.kind = WatchFilter::Kind::kRange;
  filter.query_distances = ComputePivotDistances(query,
                                                 /*apply_transform=*/true);
  filter.radius =
      key_.has_transform() ? key_.transform().Apply(radius) : radius;
  return OpenWatch(filter, resume_token);
}

Result<std::unique_ptr<WatchStream>> EncryptionClient::WatchAll(
    const std::vector<uint64_t>& resume_token) {
  return OpenWatch(WatchFilter{}, resume_token);
}

WatchStream::~WatchStream() { transport_->CloseStream(ticket_); }

Result<WatchEvent> WatchStream::ToEvent(const WatchFrame& frame) {
  WatchEvent event;
  event.resume_token = frame.token;
  switch (frame.kind) {
    case WatchFrame::Kind::kInsert: {
      event.kind = WatchEvent::Kind::kInsert;
      event.id = frame.object_id;
      SIMCLOUD_ASSIGN_OR_RETURN(metric::VectorObject object,
                                client_->DecryptCandidate(frame.payload));
      event.object = std::move(object);
      return event;
    }
    case WatchFrame::Kind::kDelete:
      event.kind = WatchEvent::Kind::kDelete;
      event.id = frame.object_id;
      return event;
    case WatchFrame::Kind::kLost:
      event.kind = WatchEvent::Kind::kLost;
      event.message = frame.message;
      return event;
    case WatchFrame::Kind::kAck:
      break;
  }
  return Status::Corruption("unexpected frame kind on a live watch");
}

Result<WatchEvent> WatchStream::Next(int timeout_ms) {
  if (finished_) {
    return Status::FailedPrecondition("watch stream is finished");
  }
  for (;;) {
    WatchFrame frame;
    if (!early_.empty()) {
      frame = std::move(early_.front());
      early_.pop_front();
    } else {
      Result<Bytes> frame_bytes =
          transport_->CollectStream(ticket_, timeout_ms);
      SIMCLOUD_RETURN_NOT_OK(frame_bytes.status());
      Result<WatchFrame> decoded = DecodeWatchFrame(*frame_bytes);
      SIMCLOUD_RETURN_NOT_OK(decoded.status());
      frame = std::move(*decoded);
    }
    if (frame.kind == WatchFrame::Kind::kAck) continue;  // late duplicate
    Result<WatchEvent> event = ToEvent(frame);
    if (event.ok()) {
      token_ = event->resume_token;
      if (event->kind == WatchEvent::Kind::kLost) finished_ = true;
    }
    return event;
  }
}

Status WatchStream::Cancel() {
  if (finished_) return Status::OK();
  finished_ = true;
  Status outcome = Status::OK();
  Result<uint64_t> cancel =
      transport_->Submit(EncodeWatchCancelRequest(watch_id_));
  if (cancel.ok()) {
    outcome = transport_->Collect(*cancel).status();
  } else {
    outcome = cancel.status();
  }
  // Wire FIFO: every push the server enqueued before answering the
  // cancel has been read by now — drain (and drop) them BEFORE closing
  // so no late frame poisons the id. resume_token() stays at the last
  // consumed event; resuming replays the dropped tail (at-least-once).
  for (;;) {
    Result<Bytes> drained = transport_->CollectStream(ticket_, 0);
    if (!drained.ok()) break;
  }
  transport_->CloseStream(ticket_);
  return outcome;
}

Result<std::unique_ptr<CursorStream>> EncryptionClient::OpenRangeCursor(
    const VectorObject& query, double radius, uint64_t page_size) {
  if (radius < 0) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  if (page_size == 0) {
    return Status::InvalidArgument("cursor page size must be > 0");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(net::PipelinedTransport * pipelined,
                            PipelinedOrFail());
  Stopwatch op_watch;
  const int64_t tracked_before = costs_.distance_nanos +
                                 costs_.decryption_nanos +
                                 costs_.encryption_nanos;

  // Same privacy envelope as RangeSearch: distances only, transformed
  // radius, no query object on the wire.
  std::vector<float> query_distances =
      ComputePivotDistances(query, /*apply_transform=*/true);
  const double sent_radius =
      key_.has_transform() ? key_.transform().Apply(radius) : radius;

  const Bytes request = EncodeRangeSearchCursorRequest(
      query_distances, sent_radius, page_size, /*start_offset=*/0);
  const int64_t server_before = transport_->costs().server_nanos;
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t ticket, pipelined->Submit(request));
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes, pipelined->Collect(ticket));
  const int64_t server_delta =
      transport_->costs().server_nanos - server_before;
  SIMCLOUD_ASSIGN_OR_RETURN(CursorPage first, DecodeCursorPage(response_bytes));

  // The first page's decryption + refinement happens in the first
  // Next(); the open accounts only distances and serialization.
  auto stream = std::unique_ptr<CursorStream>(new CursorStream(
      this, pipelined, query, radius, std::move(first)));
  const int64_t tracked_delta = costs_.distance_nanos +
                                costs_.decryption_nanos +
                                costs_.encryption_nanos - tracked_before;
  costs_.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return stream;
}

CursorStream::~CursorStream() {
  // Best effort; a dead connection just leaves the cursor to the
  // server's TTL / disconnect reaper.
  Close().ok();
}

Result<NeighborList> CursorStream::Next() {
  if (closed_) {
    return Status::FailedPrecondition("cursor stream is closed");
  }
  if (exhausted()) return NeighborList{};
  Stopwatch op_watch;
  ClientCosts& costs = client_->costs_;
  const int64_t tracked_before =
      costs.distance_nanos + costs.decryption_nanos + costs.encryption_nanos;
  int64_t server_delta = 0;
  CursorPage page;
  if (first_pending_) {
    page = std::move(first_page_);
    first_page_ = CursorPage{};
    first_pending_ = false;
  } else {
    const Bytes request = EncodeCursorNextRequest(cursor_id_);
    const int64_t server_before = transport_->costs().server_nanos;
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t ticket, transport_->Submit(request));
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes response_bytes,
                              transport_->Collect(ticket));
    server_delta = transport_->costs().server_nanos - server_before;
    SIMCLOUD_ASSIGN_OR_RETURN(page, DecodeCursorPage(response_bytes));
    cursor_id_ = page.cursor_id;
  }

  // Algorithm 2 lines 11-16, one page at a time: decrypt, evaluate the
  // true metric, keep the real matches.
  SIMCLOUD_ASSIGN_OR_RETURN(
      NeighborList refined,
      client_->RefineCandidates(page.candidates, query_));
  NeighborList answer;
  for (const Neighbor& n : refined) {
    if (n.distance <= radius_) answer.push_back(n);
  }

  const int64_t tracked_delta =
      costs.distance_nanos + costs.decryption_nanos + costs.encryption_nanos -
      tracked_before;
  costs.overhead_nanos += std::max<int64_t>(
      0, op_watch.ElapsedNanos() - tracked_delta - server_delta);
  return answer;
}

Status CursorStream::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  if (cursor_id_ == 0) return Status::OK();  // server already dropped it
  const uint64_t id = cursor_id_;
  cursor_id_ = 0;
  Result<uint64_t> ticket = transport_->Submit(EncodeCursorCloseRequest(id));
  if (!ticket.ok()) return ticket.status();
  return transport_->Collect(*ticket).status();
}

}  // namespace secure
}  // namespace simcloud
