#include "secure/topology.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "secure/protocol.h"

namespace simcloud {
namespace secure {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter* DownsCounter() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_failover_downs_total");
  return counter;
}

obs::Counter* ReconnectsCounter() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_failover_reconnects_total");
  return counter;
}

obs::Counter* ReplayedCounter() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_failover_replayed_requests_total");
  return counter;
}

obs::Counter* StaleCounter() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_failover_stale_replicas_total");
  return counter;
}

/// Requests parked for replay across every replica channel (delta-kept:
/// each channel adds on enqueue, subtracts on drain/overflow).
obs::Gauge* ReplayDepthGauge() {
  static obs::Gauge* const gauge = obs::Registry::Default().GetGauge(
      "simcloud_failover_replay_queue_depth");
  return gauge;
}

/// True when a Collect failure means the peer processed the request and
/// rejected it (the stream itself is fine): surface it to the caller,
/// do not fail over. Timeouts and broken streams return false.
bool IsRemoteRejection(const std::shared_ptr<net::TcpTransport>& transport,
                       const Status& status) {
  return status.code() != StatusCode::kDeadlineExceeded &&
         transport->stream_status().ok();
}

}  // namespace

Result<Bytes> ShardChannel::Call(const Bytes& request) {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t ticket, Submit(request));
  return Collect(ticket);
}

std::string ShardEndpoint::ToString() const {
  return host + ":" + std::to_string(port);
}

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kUp: return "up";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kDown: return "down";
  }
  return "unknown";
}

ShardHealth ShardTopologyStatus::health() const {
  ShardHealth best = ShardHealth::kDown;
  for (const auto& replica : replicas) {
    if (static_cast<uint8_t>(replica.health) < static_cast<uint8_t>(best)) {
      best = replica.health;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// ReplicaChannel

ReplicaChannel::ReplicaChannel(ShardEndpoint endpoint,
                               net::ChannelPolicy policy,
                               net::SecureChannelOptions secure,
                               TopologyOptions options)
    : endpoint_(std::move(endpoint)),
      policy_(policy),
      secure_(std::move(secure)),
      options_(options),
      backoff_ms_(options.backoff_initial_ms),
      next_reconnect_(Clock::now()),
      jitter_(options.jitter_seed ^
              std::hash<std::string>()(endpoint_.ToString())) {}

void ReplicaChannel::AdoptTransport(
    std::shared_ptr<net::TcpTransport> transport) {
  std::lock_guard<std::mutex> lock(mutex_);
  transport_ = std::move(transport);
  health_ = ShardHealth::kUp;
  consecutive_probe_failures_ = 0;
}

std::shared_ptr<net::TcpTransport> ReplicaChannel::AcquireForRead(
    bool degraded_ok) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (health_ == ShardHealth::kUp ||
      (degraded_ok && health_ == ShardHealth::kDegraded)) {
    return transport_;
  }
  return nullptr;
}

std::shared_ptr<net::TcpTransport> ReplicaChannel::BeginWrite(
    const Bytes& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (transport_ && health_ != ShardHealth::kDown) return transport_;
  if (stale_) return nullptr;
  // Down: buffer for replay. The decision and the enqueue are one
  // critical section against TryReconnect's drain-then-promote, so a
  // write can never slip between "replay finished" and "replica live".
  replay_bytes_ += request.size();
  if (replay_bytes_ > options_.max_replay_bytes) {
    stale_ = true;
    StaleCounter()->Add(1);
    ReplayDepthGauge()->Add(-static_cast<int64_t>(replay_.size()));
    replay_.clear();
    replay_bytes_ = 0;
    return nullptr;
  }
  replay_.push_back(request);
  ReplayDepthGauge()->Add(1);
  return nullptr;
}

void ReplicaChannel::EnqueueReplay(const Bytes& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stale_) return;
  replay_bytes_ += request.size();
  if (replay_bytes_ > options_.max_replay_bytes) {
    stale_ = true;
    StaleCounter()->Add(1);
    ReplayDepthGauge()->Add(-static_cast<int64_t>(replay_.size()));
    replay_.clear();
    replay_bytes_ = 0;
    return;
  }
  replay_.push_back(request);
  ReplayDepthGauge()->Add(1);
}

void ReplicaChannel::MarkFailure(
    const std::shared_ptr<net::TcpTransport>& transport,
    const Status& reason) {
  std::shared_ptr<net::TcpTransport> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (transport != transport_) return;  // stale report about a replaced conn
    victim = std::move(transport_);
    transport_.reset();
    health_ = ShardHealth::kDown;
    DownsCounter()->Add(1);
    consecutive_probe_failures_ = 0;
    ScheduleReconnectLocked();
  }
  if (victim) victim->Abort(reason);
}

void ReplicaChannel::Probe() {
  std::shared_ptr<net::TcpTransport> transport;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (health_ == ShardHealth::kDown || !transport_) return;
    transport = transport_;
  }
  auto ticket = transport->Submit(EncodePingRequest());
  Result<Bytes> pong =
      ticket.ok()
          ? transport->CollectFor(*ticket, options_.probe_timeout_ms)
          : Result<Bytes>(ticket.status());
  if (pong.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (transport == transport_ && health_ != ShardHealth::kDown) {
      consecutive_probe_failures_ = 0;
      health_ = ShardHealth::kUp;
    }
    return;
  }
  bool harden = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++probe_failures_total_;
    if (transport != transport_) return;
    if (pong.status().code() == StatusCode::kDeadlineExceeded) {
      // Timed out but the stream is intact: degrade first, and only a
      // run of timeouts kills the connection. The probe's ticket stays
      // parked on the transport — harmless, and the count of leaked
      // tickets is bounded by failures_to_down.
      ++consecutive_probe_failures_;
      if (consecutive_probe_failures_ < options_.failures_to_down) {
        health_ = ShardHealth::kDegraded;
        return;
      }
      harden = true;
    } else {
      harden = true;  // stream-level failure: no second chance
    }
  }
  if (harden) MarkFailure(transport, pong.status());
}

bool ReplicaChannel::ReconnectDue() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_ == ShardHealth::kDown && !stale_ &&
         Clock::now() >= next_reconnect_;
}

void ReplicaChannel::TryReconnect() {
  auto dialed =
      net::TcpTransport::Connect(endpoint_.host, endpoint_.port, policy_,
                                 secure_);
  if (!dialed.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ScheduleReconnectLocked();
    return;
  }
  std::shared_ptr<net::TcpTransport> fresh = std::move(dialed).value();
  // Verify the connection end to end (handler reachable, records flow)
  // before trusting it with replay.
  auto ticket = fresh->Submit(EncodePingRequest());
  Result<Bytes> pong =
      ticket.ok() ? fresh->CollectFor(*ticket, options_.probe_timeout_ms)
                  : Result<Bytes>(ticket.status());
  if (!pong.ok()) {
    fresh->Abort(pong.status());
    std::lock_guard<std::mutex> lock(mutex_);
    ScheduleReconnectLocked();
    return;
  }
  // Drain the replay buffer in order, then promote atomically: the
  // queue-empty check and the promotion share one critical section with
  // BeginWrite's enqueue, so no write is ever skipped.
  for (;;) {
    Bytes request;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stale_) {
        break;  // overflowed while we were reconnecting; stay down
      }
      if (replay_.empty()) {
        transport_ = std::move(fresh);
        health_ = ShardHealth::kUp;
        consecutive_probe_failures_ = 0;
        ++reconnects_;
        ReconnectsCounter()->Add(1);
        backoff_ms_ = options_.backoff_initial_ms;
        return;
      }
      request = replay_.front();
    }
    Status applied = ReplayOne(fresh, request);
    if (!applied.ok()) {
      fresh->Abort(applied);
      std::lock_guard<std::mutex> lock(mutex_);
      ScheduleReconnectLocked();
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (!replay_.empty()) {
      replay_bytes_ -= std::min(replay_bytes_, replay_.front().size());
      replay_.pop_front();
      ReplayedCounter()->Add(1);
      ReplayDepthGauge()->Add(-1);
    }
  }
  fresh->Abort(Status::NetworkError("replica marked stale during reconnect"));
}

Status ReplicaChannel::ReplayOne(
    const std::shared_ptr<net::TcpTransport>& transport,
    const Bytes& request) {
  auto ticket = transport->Submit(request);
  if (!ticket.ok()) return ticket.status();
  auto response = transport->CollectFor(*ticket, options_.replay_timeout_ms);
  if (response.ok()) return Status::OK();
  // A rejection over a healthy stream means the peer processed the
  // write (at-least-once replay can re-apply one it already saw — e.g.
  // a delete now reporting NotFound): the item is settled, drop it.
  if (IsRemoteRejection(transport, response.status())) return Status::OK();
  return response.status();
}

void ReplicaChannel::MarkStale() {
  std::shared_ptr<net::TcpTransport> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stale_ = true;
    replay_.clear();
    replay_bytes_ = 0;
    health_ = ShardHealth::kDown;
    victim = std::move(transport_);
    transport_.reset();
  }
  if (victim) victim->Abort(Status::NetworkError("replica marked stale"));
}

ShardHealth ReplicaChannel::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

ReplicaStatus ReplicaChannel::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicaStatus status;
  status.endpoint = endpoint_;
  status.health = health_;
  status.stale = stale_;
  status.reconnects = reconnects_;
  status.probe_failures = probe_failures_total_;
  status.replay_queued = replay_.size();
  return status;
}

void ReplicaChannel::ScheduleReconnectLocked() {
  double factor = jitter_.NextUniform(1.0 - options_.backoff_jitter,
                                      1.0 + options_.backoff_jitter);
  int delay_ms = std::max(1, static_cast<int>(backoff_ms_ * factor));
  next_reconnect_ = Clock::now() + std::chrono::milliseconds(delay_ms);
  backoff_ms_ = std::min(backoff_ms_ * 2, options_.backoff_max_ms);
}

// ---------------------------------------------------------------------------
// ReplicaGroupChannel

ReplicaGroupChannel::ReplicaGroupChannel(
    std::vector<std::unique_ptr<ReplicaChannel>> replicas,
    TopologyOptions options)
    : options_(options), replicas_(std::move(replicas)) {}

ReplicaGroupChannel::~ReplicaGroupChannel() = default;

bool ReplicaGroupChannel::IsWriteOp(const Bytes& request) {
  if (request.empty()) return false;
  switch (static_cast<Op>(request[0])) {
    case Op::kInsertBatch:
    case Op::kDelete:
    case Op::kDeleteBatch:
      return true;
    default:
      return false;
  }
}

bool ReplicaGroupChannel::IsCompactOp(const Bytes& request) {
  return !request.empty() && static_cast<Op>(request[0]) == Op::kCompact;
}

Result<uint64_t> ReplicaGroupChannel::Submit(const Bytes& request) {
  if (IsWriteOp(request)) return SubmitFanned(request, /*replay_on_down=*/true);
  if (IsCompactOp(request)) {
    return SubmitFanned(request, /*replay_on_down=*/false);
  }
  return SubmitRead(request);
}

Result<Bytes> ReplicaGroupChannel::Collect(uint64_t ticket) {
  PendingRead read;
  PendingWrite write;
  bool is_read = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto read_it = reads_.find(ticket);
    if (read_it != reads_.end()) {
      read = std::move(read_it->second);
      reads_.erase(read_it);
      is_read = true;
    } else {
      auto write_it = writes_.find(ticket);
      if (write_it == writes_.end()) {
        return Status::InvalidArgument("unknown or already collected ticket");
      }
      write = std::move(write_it->second);
      writes_.erase(write_it);
    }
  }
  return is_read ? CollectRead(std::move(read))
                 : CollectWrite(std::move(write));
}

Result<ReplicaGroupChannel::PendingRead> ReplicaGroupChannel::RouteRead(
    const Bytes& request) {
  const size_t n = replicas_.size();
  size_t start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    start = rr_next_++ % n;
  }
  Status last = Status::NetworkError("no live replica");
  // Pass 0 routes only to kUp replicas; pass 1 admits kDegraded ones.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < n; ++i) {
      size_t r = (start + i) % n;
      auto transport = replicas_[r]->AcquireForRead(/*degraded_ok=*/pass == 1);
      if (!transport) continue;
      auto inner = transport->Submit(request);
      if (inner.ok()) {
        PendingRead pending;
        pending.request = request;
        pending.replica = r;
        pending.transport = std::move(transport);
        pending.inner = *inner;
        return pending;
      }
      replicas_[r]->MarkFailure(transport, inner.status());
      last = inner.status();
    }
  }
  return Status::NetworkError("shard unavailable (" + last.ToString() + ")");
}

Result<uint64_t> ReplicaGroupChannel::SubmitRead(const Bytes& request) {
  SIMCLOUD_ASSIGN_OR_RETURN(PendingRead pending, RouteRead(request));
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t ticket = next_ticket_++;
  reads_.emplace(ticket, std::move(pending));
  return ticket;
}

Result<uint64_t> ReplicaGroupChannel::SubmitFanned(const Bytes& request,
                                                   bool replay_on_down) {
  // One fan-out at a time: every replica sees writes in the same order,
  // keeping the replica set byte-identical.
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  bool any_live = false;
  for (const auto& replica : replicas_) {
    if (replica->health() != ShardHealth::kDown) {
      any_live = true;
      break;
    }
  }
  if (!any_live) {
    // Refuse outright rather than buffering a write the caller will see
    // fail: nothing is enqueued, so a rejected write is never silently
    // applied by a later replay.
    return Status::NetworkError("shard unavailable: all replicas down");
  }
  PendingWrite pending;
  pending.request = request;
  pending.replay = replay_on_down;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    std::shared_ptr<net::TcpTransport> transport;
    if (replay_on_down) {
      transport = replicas_[r]->BeginWrite(request);
      if (!transport) {
        ++pending.queued_for_replay;  // buffered (or stale: dropped)
        continue;
      }
    } else {
      transport = replicas_[r]->AcquireForRead(/*degraded_ok=*/true);
      if (!transport) continue;
    }
    auto inner = transport->Submit(request);
    if (!inner.ok()) {
      replicas_[r]->MarkFailure(transport, inner.status());
      if (replay_on_down) {
        replicas_[r]->EnqueueReplay(request);
        ++pending.queued_for_replay;
      }
      continue;
    }
    PendingWrite::Leg leg;
    leg.replica = r;
    leg.transport = std::move(transport);
    leg.inner = *inner;
    pending.legs.push_back(std::move(leg));
  }
  if (pending.legs.empty()) {
    return Status::NetworkError(
        "shard unavailable: no replica accepted the request");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t ticket = next_ticket_++;
  writes_.emplace(ticket, std::move(pending));
  return ticket;
}

Result<Bytes> ReplicaGroupChannel::CollectRead(PendingRead pending) {
  // Each failed attempt takes its replica out of rotation, so the retry
  // loop is bounded by the replica count.
  for (size_t attempt = 0; attempt <= replicas_.size(); ++attempt) {
    auto response = pending.transport->Collect(pending.inner);
    if (response.ok()) return response;
    if (IsRemoteRejection(pending.transport, response.status())) {
      return response;  // the peer answered; this is an application error
    }
    replicas_[pending.replica]->MarkFailure(pending.transport,
                                            response.status());
    auto rerouted = RouteRead(pending.request);
    if (!rerouted.ok()) return response.status();
    pending = std::move(rerouted).value();
  }
  return Status::NetworkError("read failed over on every replica");
}

Result<Bytes> ReplicaGroupChannel::CollectWrite(PendingWrite pending) {
  bool have_ok = false;
  Bytes ok_payload;
  Status first_error = Status::OK();
  for (auto& leg : pending.legs) {
    auto response = leg.transport->Collect(leg.inner);
    if (response.ok()) {
      if (!have_ok) {
        ok_payload = std::move(response).value();
        have_ok = true;
      }
      continue;
    }
    if (IsRemoteRejection(leg.transport, response.status())) {
      // Deterministic application error (e.g. delete of an unknown id);
      // identical replicas reject identically. Surface it, don't retry.
      if (first_error.ok()) first_error = response.status();
      continue;
    }
    // The stream died with the write in flight: uncertain whether it
    // applied. Queue for at-least-once replay (write opcodes tolerate
    // re-application) and fail the replica over.
    replicas_[leg.replica]->MarkFailure(leg.transport, response.status());
    if (pending.replay) replicas_[leg.replica]->EnqueueReplay(pending.request);
    if (first_error.ok()) first_error = response.status();
  }
  if (have_ok) return ok_payload;
  if (!first_error.ok()) return first_error;
  return Status::NetworkError("write failed on every replica");
}

ShardTopologyStatus ReplicaGroupChannel::Snapshot() const {
  ShardTopologyStatus status;
  status.replicas.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    status.replicas.push_back(replica->Snapshot());
  }
  return status;
}

// ---------------------------------------------------------------------------
// TopologyMonitor

TopologyMonitor::TopologyMonitor(std::vector<ReplicaGroupChannel*> groups,
                                 TopologyOptions options)
    : options_(options), groups_(std::move(groups)) {
  thread_ = std::thread([this] { Loop(); });
}

TopologyMonitor::~TopologyMonitor() { Stop(); }

void TopologyMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TopologyMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait_for(lock,
                 std::chrono::milliseconds(options_.probe_interval_ms),
                 [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    for (ReplicaGroupChannel* group : groups_) {
      for (size_t i = 0; i < group->replica_count(); ++i) {
        ReplicaChannel* replica = group->replica(i);
        if (replica->health() == ShardHealth::kDown) {
          if (replica->ReconnectDue()) replica->TryReconnect();
        } else {
          replica->Probe();
        }
      }
    }
    lock.lock();
  }
}

}  // namespace secure
}  // namespace simcloud
