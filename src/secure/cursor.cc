#include "secure/cursor.h"

#include <utility>

#include "common/clock.h"

namespace simcloud {
namespace secure {

void CursorManager::SweepExpiredLocked(int64_t now_nanos) {
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (!it->second.busy && it->second.deadline_nanos <= now_nanos) {
      it = cursors_.erase(it);
      ++expired_total_;
    } else {
      ++it;
    }
  }
}

Result<uint64_t> CursorManager::Open(uint64_t conn_id,
                                     std::shared_ptr<void> state) {
  const int64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  SweepExpiredLocked(now);
  if (cursors_.size() >= config_.max_open_cursors) {
    return Status::FailedPrecondition("too many open cursors");
  }
  const uint64_t id = next_id_++;
  Slot slot;
  slot.state = std::move(state);
  slot.conn_id = conn_id;
  slot.deadline_nanos =
      now + static_cast<int64_t>(config_.ttl_ms) * 1'000'000;
  cursors_.emplace(id, std::move(slot));
  ++opened_total_;
  return id;
}

Result<std::shared_ptr<void>> CursorManager::Acquire(uint64_t id) {
  const int64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cursors_.find(id);
  if (it == cursors_.end()) return Status::NotFound("unknown cursor");
  if (it->second.busy) {
    return Status::FailedPrecondition("cursor in use");
  }
  if (it->second.deadline_nanos <= now) {
    cursors_.erase(it);
    ++expired_total_;
    return Status::FailedPrecondition("cursor expired");
  }
  it->second.busy = true;
  return it->second.state;
}

void CursorManager::Commit(uint64_t id, bool exhausted) {
  const int64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cursors_.find(id);
  if (it == cursors_.end()) return;
  if (exhausted) {
    cursors_.erase(it);
    return;
  }
  it->second.busy = false;
  it->second.deadline_nanos =
      now + static_cast<int64_t>(config_.ttl_ms) * 1'000'000;
}

void CursorManager::Release(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cursors_.find(id);
  if (it != cursors_.end()) it->second.busy = false;
}

bool CursorManager::Close(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return cursors_.erase(id) > 0;
}

std::shared_ptr<void> CursorManager::TakeClose(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cursors_.find(id);
  if (it == cursors_.end()) return nullptr;
  std::shared_ptr<void> state = std::move(it->second.state);
  cursors_.erase(it);
  return state;
}

std::vector<std::shared_ptr<void>> CursorManager::CloseOwned(
    uint64_t conn_id) {
  std::vector<std::shared_ptr<void>> reaped;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = cursors_.begin(); it != cursors_.end();) {
    if (it->second.conn_id == conn_id) {
      reaped.push_back(std::move(it->second.state));
      it = cursors_.erase(it);
      ++reaped_total_;
    } else {
      ++it;
    }
  }
  return reaped;
}

CursorCounters CursorManager::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CursorCounters counters;
  counters.open = cursors_.size();
  counters.opened_total = opened_total_;
  counters.expired_total = expired_total_;
  counters.reaped_total = reaped_total_;
  return counters;
}

}  // namespace secure
}  // namespace simcloud
