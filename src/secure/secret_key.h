// The secret key of the Encrypted M-Index (paper Section 4.2/4.3):
// the set of pivots + the symmetric cipher key, optionally extended with
// the distribution-hiding distance transform (Section 4.3 future work).
//
// The data owner generates the key, builds the index through it, and
// shares its serialized form with authorized clients. The server never
// sees any part of it.

#ifndef SIMCLOUD_SECURE_SECRET_KEY_H_
#define SIMCLOUD_SECURE_SECRET_KEY_H_

#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aead.h"
#include "crypto/cipher.h"
#include "metric/object.h"
#include "mindex/pivot_set.h"
#include "secure/distance_transform.h"

namespace simcloud {
namespace secure {

/// How object payloads are protected on the untrusted server.
enum class PayloadScheme : uint8_t {
  /// AES-CBC with PKCS#7 — confidentiality only, the paper's setup.
  kCbc = 0,
  /// Encrypt-then-MAC (AES-CTR + HMAC-SHA256) — confidentiality plus
  /// integrity: the client detects any server-side tampering with the
  /// candidate objects it receives.
  kAuthenticated = 1,
};

/// Pivots + AES key (+ optional distance transform). Immutable after
/// construction; safe to share across threads.
class SecretKey {
 public:
  /// Creates a key from explicit pivots and a raw AES key (16/24/32 B).
  static Result<SecretKey> Create(
      mindex::PivotSet pivots, Bytes aes_key,
      PayloadScheme scheme = PayloadScheme::kCbc);

  /// Creates a key deriving the AES-128 key from a passphrase via
  /// PBKDF2-HMAC-SHA256 (salt fixed per deployment, supplied by caller).
  static Result<SecretKey> FromPassword(mindex::PivotSet pivots,
                                        const std::string& password,
                                        const Bytes& salt,
                                        uint32_t iterations = 10000);

  /// Key hygiene: the raw AES key is wiped (overwritten with zeros, then
  /// freed) on destruction, and move operations wipe the moved-from
  /// key, so key material never lingers in freed heap memory. Copies are
  /// allowed — every copy wipes its own buffer when it dies.
  ~SecretKey();
  SecretKey(const SecretKey&) = default;
  SecretKey& operator=(const SecretKey&) = default;
  SecretKey(SecretKey&& other) noexcept;
  SecretKey& operator=(SecretKey&& other) noexcept;

  /// Adds the distribution-hiding transform (privacy level 4); distances
  /// stored on the server will be T-transformed. `domain_max` should be a
  /// generous upper bound on object-pivot distances.
  Status EnableDistanceTransform(uint64_t seed, double domain_max);

  const mindex::PivotSet& pivots() const { return pivots_; }
  size_t num_pivots() const { return pivots_.size(); }
  const crypto::Cipher& cipher() const { return *cipher_; }
  PayloadScheme scheme() const { return scheme_; }
  bool has_transform() const { return transform_.has_value(); }
  const ConcaveTransform& transform() const { return *transform_; }

  /// Derives the query-authentication MAC key shared with the server
  /// (domain-separated from the object-encryption key; see secure/auth.h).
  Bytes DeriveQueryMacKey() const;

  /// Derives the transport pre-shared key (32 bytes) the data owner
  /// provisions to the server for the secure channel; the channel
  /// derives its per-direction, per-epoch record keys from it via HKDF
  /// (see net/secure_channel.h and secure/session.h). Domain-separated
  /// from both the object-encryption and query-MAC keys.
  Bytes DeriveChannelKey() const;

  /// True while this instance still holds the raw key material (false
  /// for moved-from instances, whose buffer was wiped).
  bool has_key_material() const { return !aes_key_.empty(); }

  /// AES-encrypts a serialized MS object (Algorithm 1 line 8).
  Result<Bytes> EncryptObject(const metric::VectorObject& object) const;
  /// Decrypts and deserializes a candidate payload (Algorithm 2 line 13).
  Result<metric::VectorObject> DecryptObject(const Bytes& ciphertext) const;

  /// Serializes the whole key for distribution to authorized clients.
  Result<Bytes> Serialize() const;
  static Result<SecretKey> Deserialize(const Bytes& data);

 private:
  SecretKey(mindex::PivotSet pivots, Bytes aes_key, crypto::Cipher cipher,
            std::optional<crypto::AeadCipher> aead, PayloadScheme scheme)
      : pivots_(std::move(pivots)),
        aes_key_(std::move(aes_key)),
        cipher_(std::make_shared<crypto::Cipher>(std::move(cipher))),
        aead_(std::move(aead)),
        scheme_(scheme) {}

  mindex::PivotSet pivots_;
  Bytes aes_key_;
  std::shared_ptr<crypto::Cipher> cipher_;
  std::optional<crypto::AeadCipher> aead_;
  PayloadScheme scheme_ = PayloadScheme::kCbc;
  std::optional<ConcaveTransform> transform_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SECRET_KEY_H_
