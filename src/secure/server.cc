#include "secure/server.h"

#include <mutex>

#include "common/log.h"

namespace simcloud {
namespace secure {

Result<std::unique_ptr<EncryptedMIndexServer>> EncryptedMIndexServer::Create(
    const mindex::MIndexOptions& options) {
  // The index is created with the options untouched (validation included,
  // and snapshots keep the configured trigger), but inline triggering is
  // deferred: a delete batch returns as soon as the handles are freed,
  // and the background thread (below) runs the pass under the server's
  // readers-writer lock instead.
  SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<mindex::MIndex> index,
                            mindex::MIndex::Create(options));
  index->SetDeferredCompaction(true);
  return std::unique_ptr<EncryptedMIndexServer>(new EncryptedMIndexServer(
      std::move(index), options.compaction_trigger));
}

EncryptedMIndexServer::EncryptedMIndexServer(
    std::unique_ptr<mindex::MIndex> index, double compaction_trigger)
    : index_(std::move(index)), compaction_trigger_(compaction_trigger) {
  watch_hub_ = std::make_unique<WatchHub>(index_->mutation_bus());
  if (compaction_trigger_ > 0.0) {
    compaction_thread_ = std::thread([this] { CompactionLoop(); });
  }
}

EncryptedMIndexServer::~EncryptedMIndexServer() {
  if (compaction_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(compaction_mutex_);
      compaction_stop_ = true;
    }
    compaction_cv_.notify_all();
    compaction_thread_.join();
  }
}

void EncryptedMIndexServer::MaybeKickCompaction() {
  if (compaction_trigger_ <= 0.0) return;
  double ratio;
  {
    // The accounting is mutated under the writer lock; read it shared.
    // O(1) — this runs after every delete batch.
    std::shared_lock<std::shared_mutex> lock(index_mutex_);
    ratio = index_->GarbageRatio();
  }
  if (ratio < compaction_trigger_) return;
  {
    std::lock_guard<std::mutex> lock(compaction_mutex_);
    compaction_kick_ = true;
  }
  compaction_cv_.notify_one();
}

void EncryptedMIndexServer::CompactionLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compaction_mutex_);
      compaction_cv_.wait(
          lock, [this] { return compaction_kick_ || compaction_stop_; });
      if (compaction_stop_) return;
      compaction_kick_ = false;
    }
    // Unforced: the pass re-checks the ratio against the trigger itself,
    // so a kick that raced an explicit kCompact just no-ops. Deletes that
    // land while the pass runs set the kick flag again, and the loop
    // re-evaluates — the ratio stays bounded without ever holding the
    // writer lock for more than the begin/swap slices.
    mindex::CompactorOptions options =
        index_->DefaultCompactorOptions(/*force=*/false);
    options.garbage_threshold = compaction_trigger_;
    auto report = index_->CompactBackground(options, &index_mutex_);
    if (!report.ok()) {
      SIMCLOUD_LOG(kWarn) << "background compaction failed: "
                          << report.status().ToString();
    }
  }
}

void EncryptedMIndexServer::AccumulateStats(
    const mindex::SearchStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  total_stats_.Add(stats);
}

void EncryptedMIndexServer::AccumulateStatsBatch(
    const std::vector<mindex::SearchStats>& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (const auto& entry : stats) total_stats_.Add(entry);
}

Result<Bytes> EncryptedMIndexServer::Handle(const Bytes& request_bytes) {
  return HandleStream(request_bytes, nullptr);
}

Result<Bytes> EncryptedMIndexServer::HandleWatch(const Request& request,
                                                net::StreamContext* stream) {
  // Satellite: a legacy (bit-31-clear) connection or an in-process
  // loopback call has no push path — refuse cleanly; the connection
  // stays usable for every other opcode.
  std::shared_ptr<net::PushSink> sink;
  if (stream != nullptr) sink = stream->MakeSink();
  if (sink == nullptr) {
    return Status::FailedPrecondition(
        "kWatch needs a pipelined connection (server push is impossible "
        "on legacy framing or loopback)");
  }
  if (request.watch_resume_token.size() > 1) {
    return Status::InvalidArgument(
        "resume token covers " +
        std::to_string(request.watch_resume_token.size()) +
        " shards; this server is a single shard");
  }
  const bool has_resume = !request.watch_resume_token.empty();
  const uint64_t resume_after =
      has_resume ? request.watch_resume_token[0] : 0;
  SIMCLOUD_ASSIGN_OR_RETURN(
      WatchHub::Registration registration,
      watch_hub_->Register(request.watch_filter, has_resume, resume_after,
                           [sink](const WatchFrame& frame) {
                             return sink->TryPush(EncodeWatchFrame(frame));
                           }));
  WatchFrame ack;
  ack.kind = WatchFrame::Kind::kAck;
  ack.watch_id = registration.watch_id;
  ack.token = {registration.start_seq};
  return EncodeWatchFrame(ack);
}

Result<Bytes> EncryptedMIndexServer::HandleStream(const Bytes& request_bytes,
                                                  net::StreamContext* stream) {
  SIMCLOUD_ASSIGN_OR_RETURN(Request request, DecodeRequest(request_bytes));
  switch (request.op) {
    case Op::kInsertBatch: {
      std::unique_lock<std::shared_mutex> lock(index_mutex_);
      uint64_t inserted = 0;
      for (auto& item : request.insert_items) {
        SIMCLOUD_RETURN_NOT_OK(
            index_->Insert(item.id, std::move(item.pivot_distances),
                           std::move(item.permutation), item.payload));
        ++inserted;
      }
      return EncodeInsertResponse(inserted);
    }
    case Op::kRangeSearch: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      mindex::SearchStats stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CandidateList candidates,
          index_->RangeSearchCandidates(request.query_distances,
                                        request.radius, &stats));
      lock.unlock();
      AccumulateStats(stats);
      return EncodeCandidateResponse(candidates, stats);
    }
    case Op::kApproxKnn: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      mindex::SearchStats stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CandidateList candidates,
          index_->ApproxKnnCandidates(request.query, request.cand_size,
                                      &stats));
      lock.unlock();
      AccumulateStats(stats);
      return EncodeCandidateResponse(candidates, stats);
    }
    case Op::kRangeSearchBatch: {
      // The shared lock is taken once for the whole batch: the queries
      // share one tree traversal and one payload fetch inside the index.
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      std::vector<mindex::SearchStats> stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::BatchCandidates batch,
          index_->RangeSearchBatchCandidates(request.range_queries, &stats));
      lock.unlock();
      AccumulateStatsBatch(stats);
      return EncodeBatchCandidateResponse(batch, stats);
    }
    case Op::kApproxKnnBatch: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      std::vector<mindex::SearchStats> stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::BatchCandidates batch,
          index_->ApproxKnnBatchCandidates(request.knn_queries, &stats));
      lock.unlock();
      AccumulateStatsBatch(stats);
      return EncodeBatchCandidateResponse(batch, stats);
    }
    case Op::kGetStats: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      return EncodeStatsResponse(index_->Stats());
    }
    case Op::kDelete: {
      {
        std::unique_lock<std::shared_mutex> lock(index_mutex_);
        SIMCLOUD_RETURN_NOT_OK(index_->Delete(request.delete_id, {},
                                              request.delete_permutation));
      }
      MaybeKickCompaction();
      return EncodeInsertResponse(1);
    }
    case Op::kDeleteBatch: {
      // One exclusive lock for the whole batch; the index frees every
      // dead payload handle in one pass and evaluates the compaction
      // trigger once (mirrors kInsertBatch).
      std::vector<mindex::Deletion> deletions;
      deletions.reserve(request.delete_items.size());
      for (DeleteItem& item : request.delete_items) {
        deletions.push_back(
            mindex::Deletion{item.id, {}, std::move(item.permutation)});
      }
      uint64_t deleted;
      {
        std::unique_lock<std::shared_mutex> lock(index_mutex_);
        SIMCLOUD_ASSIGN_OR_RETURN(deleted, index_->DeleteBatch(deletions));
      }
      MaybeKickCompaction();
      return EncodeInsertResponse(deleted);
    }
    case Op::kCompact: {
      // The pass manages the index lock itself: the rewrite shares it
      // with searches and only the begin and swap+remap slices take it
      // exclusively, so this worker thread blocks on the pass while the
      // rest of the pool keeps serving. Serialized with the background
      // trigger inside CompactBackground.
      mindex::CompactorOptions options =
          index_->DefaultCompactorOptions(request.compact_force);
      // Unforced: gate on the server's configured trigger.
      options.garbage_threshold = compaction_trigger_;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CompactionReport report,
          index_->CompactBackground(options, &index_mutex_));
      return EncodeCompactResponse(report);
    }
    case Op::kPing:
      // No lock, no state: answers even while writers hold the index.
      return Bytes{};
    case Op::kWatch:
      return HandleWatch(request, stream);
    case Op::kWatchCancel:
      // The cancel response is framed AFTER every push the delivery
      // thread enqueued before Unregister returned (wire FIFO), so a
      // client that drains until this response sees a complete prefix
      // of its stream.
      return EncodeInsertResponse(
          watch_hub_->Unregister(request.watch_cancel_id) ? 1 : 0);
  }
  return Status::Corruption("unhandled opcode");
}

}  // namespace secure
}  // namespace simcloud
