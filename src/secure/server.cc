#include "secure/server.h"

#include <algorithm>
#include <mutex>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simcloud {
namespace secure {

Result<std::unique_ptr<EncryptedMIndexServer>> EncryptedMIndexServer::Create(
    const mindex::MIndexOptions& options, const CursorConfig& cursor_config) {
  // The index is created with the options untouched (validation included,
  // and snapshots keep the configured trigger), but inline triggering is
  // deferred: a delete batch returns as soon as the handles are freed,
  // and the background thread (below) runs the pass under the server's
  // readers-writer lock instead.
  SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<mindex::MIndex> index,
                            mindex::MIndex::Create(options));
  index->SetDeferredCompaction(true);
  return std::unique_ptr<EncryptedMIndexServer>(new EncryptedMIndexServer(
      std::move(index), options.compaction_trigger, cursor_config));
}

EncryptedMIndexServer::EncryptedMIndexServer(
    std::unique_ptr<mindex::MIndex> index, double compaction_trigger,
    const CursorConfig& cursor_config)
    : index_(std::move(index)), compaction_trigger_(compaction_trigger),
      cursors_(cursor_config) {
  watch_hub_ = std::make_unique<WatchHub>(index_->mutation_bus());
  if (compaction_trigger_ > 0.0) {
    compaction_thread_ = std::thread([this] { CompactionLoop(); });
  }
}

EncryptedMIndexServer::~EncryptedMIndexServer() {
  if (compaction_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(compaction_mutex_);
      compaction_stop_ = true;
    }
    compaction_cv_.notify_all();
    compaction_thread_.join();
  }
}

void EncryptedMIndexServer::MaybeKickCompaction() {
  if (compaction_trigger_ <= 0.0) return;
  double ratio;
  {
    // The accounting is mutated under the writer lock; read it shared.
    // O(1) — this runs after every delete batch.
    std::shared_lock<std::shared_mutex> lock(index_mutex_);
    ratio = index_->GarbageRatio();
  }
  if (ratio < compaction_trigger_) return;
  {
    std::lock_guard<std::mutex> lock(compaction_mutex_);
    compaction_kick_ = true;
  }
  compaction_cv_.notify_one();
}

void EncryptedMIndexServer::CompactionLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compaction_mutex_);
      compaction_cv_.wait(
          lock, [this] { return compaction_kick_ || compaction_stop_; });
      if (compaction_stop_) return;
      compaction_kick_ = false;
    }
    // Unforced: the pass re-checks the ratio against the trigger itself,
    // so a kick that raced an explicit kCompact just no-ops. Deletes that
    // land while the pass runs set the kick flag again, and the loop
    // re-evaluates — the ratio stays bounded without ever holding the
    // writer lock for more than the begin/swap slices.
    mindex::CompactorOptions options =
        index_->DefaultCompactorOptions(/*force=*/false);
    options.garbage_threshold = compaction_trigger_;
    auto report = index_->CompactBackground(options, &index_mutex_);
    if (!report.ok()) {
      SIMCLOUD_LOG(kWarn) << "background compaction failed: "
                          << report.status().ToString();
    }
  }
}

void EncryptedMIndexServer::AccumulateStats(
    const mindex::SearchStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  total_stats_.Add(stats);
}

void EncryptedMIndexServer::AccumulateStatsBatch(
    const std::vector<mindex::SearchStats>& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (const auto& entry : stats) total_stats_.Add(entry);
}

Result<Bytes> EncryptedMIndexServer::Handle(const Bytes& request_bytes) {
  return HandleStream(request_bytes, nullptr);
}

Result<Bytes> EncryptedMIndexServer::HandleWatch(const Request& request,
                                                net::StreamContext* stream) {
  // Satellite: a legacy (bit-31-clear) connection or an in-process
  // loopback call has no push path — refuse cleanly; the connection
  // stays usable for every other opcode.
  std::shared_ptr<net::PushSink> sink;
  if (stream != nullptr) sink = stream->MakeSink();
  if (sink == nullptr) {
    return Status::FailedPrecondition(
        "kWatch needs a pipelined connection (server push is impossible "
        "on legacy framing or loopback)");
  }
  if (request.watch_resume_token.size() > 1) {
    return Status::InvalidArgument(
        "resume token covers " +
        std::to_string(request.watch_resume_token.size()) +
        " shards; this server is a single shard");
  }
  const bool has_resume = !request.watch_resume_token.empty();
  const uint64_t resume_after =
      has_resume ? request.watch_resume_token[0] : 0;
  SIMCLOUD_ASSIGN_OR_RETURN(
      WatchHub::Registration registration,
      watch_hub_->Register(request.watch_filter, has_resume, resume_after,
                           [sink](const WatchFrame& frame) {
                             return sink->TryPush(EncodeWatchFrame(frame));
                           }));
  // Track the registration against its connection so a dropped client
  // reaps it eagerly (OnConnectionClosed) instead of waiting for the
  // delivery sweep to hit a dead sink.
  const uint64_t conn_id = stream->connection_id();
  if (conn_id != 0) {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_watches_[conn_id].push_back(registration.watch_id);
    watch_conns_[registration.watch_id] = conn_id;
  }
  WatchFrame ack;
  ack.kind = WatchFrame::Kind::kAck;
  ack.watch_id = registration.watch_id;
  ack.token = {registration.start_seq};
  return EncodeWatchFrame(ack);
}

Result<Bytes> EncryptedMIndexServer::HandleRangeSearchCursor(
    const Request& request, net::StreamContext* stream) {
  // Cursors are connection-scoped server state: legacy (bit-31-clear)
  // framing is the stateless compat path and is refused cleanly (the
  // connection stays usable). In-process calls (null stream) are allowed
  // — they have no connection to drop, so the TTL is the only reaper.
  if (stream != nullptr && !stream->pipelined()) {
    return Status::FailedPrecondition(
        "cursor opcodes need a pipelined connection (legacy framing is "
        "stateless)");
  }
  if (request.cursor_page_size == 0) {
    return Status::InvalidArgument("cursor page size must be > 0");
  }
  const uint64_t page_size =
      std::min(request.cursor_page_size, cursors_.config().max_page_size);

  auto cursor = std::make_shared<RangeCursor>();
  cursor->page_size = page_size;
  mindex::SearchStats stats;
  CursorPage page;
  {
    std::shared_lock<std::shared_mutex> lock(index_mutex_);
    SIMCLOUD_ASSIGN_OR_RETURN(
        cursor->ranked,
        index_->RangeSearchRankedCandidates(request.query_distances,
                                            request.radius, &stats));
    // A compaction pass cannot complete (swap+remap is exclusive) while
    // the shared lock is held, so snapshot + pass count are consistent.
    cursor->compaction_passes = index_->compaction_passes();
    cursor->next = std::min(static_cast<size_t>(request.cursor_start_offset),
                            cursor->ranked.size());
    SIMCLOUD_ASSIGN_OR_RETURN(
        page.candidates,
        index_->MaterializeRankedPage(cursor->ranked, &cursor->next,
                                      page_size));
  }
  AccumulateStats(stats);
  page.total = cursor->ranked.size();
  page.stats = stats;  // full collection stats, candidates = total
  if (cursor->next >= cursor->ranked.size()) {
    // Exhausted in one page: keep no server state, answer cursor id 0.
    return EncodeCursorPage(page);
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      page.cursor_id,
      cursors_.Open(stream != nullptr ? stream->connection_id() : 0,
                    std::move(cursor)));
  return EncodeCursorPage(page);
}

Result<Bytes> EncryptedMIndexServer::HandleCursorNext(
    const Request& request, net::StreamContext* stream) {
  if (stream != nullptr && !stream->pipelined()) {
    return Status::FailedPrecondition(
        "cursor opcodes need a pipelined connection (legacy framing is "
        "stateless)");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(std::shared_ptr<void> state,
                            cursors_.Acquire(request.cursor_id));
  auto cursor = std::static_pointer_cast<RangeCursor>(state);
  CursorPage page;
  {
    std::shared_lock<std::shared_mutex> lock(index_mutex_);
    if (index_->compaction_passes() != cursor->compaction_passes) {
      // A completed pass remapped payload handles; the snapshot's handles
      // may now point at relocated bytes. Fail explicitly — never risk
      // silently wrong payloads — and release the state.
      lock.unlock();
      cursors_.Close(request.cursor_id);
      return Status::FailedPrecondition("cursor invalidated");
    }
    Result<mindex::CandidateList> materialized = index_->MaterializeRankedPage(
        cursor->ranked, &cursor->next, cursor->page_size);
    if (!materialized.ok()) {
      lock.unlock();
      cursors_.Release(request.cursor_id);
      return materialized.status();
    }
    page.candidates = std::move(*materialized);
  }
  const bool exhausted = cursor->next >= cursor->ranked.size();
  cursors_.Commit(request.cursor_id, exhausted);
  page.cursor_id = exhausted ? 0 : request.cursor_id;
  page.total = cursor->ranked.size();
  // Continuation pages carry no collection work; only the page count.
  page.stats.candidates = page.candidates.size();
  return EncodeCursorPage(page);
}

Result<Bytes> EncryptedMIndexServer::HandleStream(const Bytes& request_bytes,
                                                  net::StreamContext* stream) {
  SIMCLOUD_ASSIGN_OR_RETURN(Request request, DecodeRequest(request_bytes));
  if (obs::TraceSpan* span = obs::TraceSpan::Current()) {
    // Batch size annotates the slow-query line; single-item ops leave 0.
    switch (request.op) {
      case Op::kInsertBatch:
        span->set_batch_size(request.insert_items.size());
        break;
      case Op::kRangeSearchBatch:
        span->set_batch_size(request.range_queries.size());
        break;
      case Op::kApproxKnnBatch:
        span->set_batch_size(request.knn_queries.size());
        break;
      case Op::kDeleteBatch:
        span->set_batch_size(request.delete_items.size());
        break;
      default:
        break;
    }
  }
  switch (request.op) {
    case Op::kInsertBatch: {
      std::unique_lock<std::shared_mutex> lock(index_mutex_);
      uint64_t inserted = 0;
      for (auto& item : request.insert_items) {
        SIMCLOUD_RETURN_NOT_OK(
            index_->Insert(item.id, std::move(item.pivot_distances),
                           std::move(item.permutation), item.payload));
        ++inserted;
      }
      return EncodeInsertResponse(inserted);
    }
    case Op::kRangeSearch: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      mindex::SearchStats stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CandidateList candidates,
          index_->RangeSearchCandidates(request.query_distances,
                                        request.radius, &stats));
      lock.unlock();
      AccumulateStats(stats);
      return EncodeCandidateResponse(candidates, stats);
    }
    case Op::kApproxKnn: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      mindex::SearchStats stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CandidateList candidates,
          index_->ApproxKnnCandidates(request.query, request.cand_size,
                                      &stats));
      lock.unlock();
      AccumulateStats(stats);
      return EncodeCandidateResponse(candidates, stats);
    }
    case Op::kRangeSearchBatch: {
      // The shared lock is taken once for the whole batch: the queries
      // share one tree traversal and one payload fetch inside the index.
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      std::vector<mindex::SearchStats> stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::BatchCandidates batch,
          index_->RangeSearchBatchCandidates(request.range_queries, &stats));
      lock.unlock();
      AccumulateStatsBatch(stats);
      return EncodeBatchCandidateResponse(batch, stats);
    }
    case Op::kApproxKnnBatch: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      std::vector<mindex::SearchStats> stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::BatchCandidates batch,
          index_->ApproxKnnBatchCandidates(request.knn_queries, &stats));
      lock.unlock();
      AccumulateStatsBatch(stats);
      return EncodeBatchCandidateResponse(batch, stats);
    }
    case Op::kGetStats: {
      mindex::IndexStats stats;
      {
        std::shared_lock<std::shared_mutex> lock(index_mutex_);
        stats = index_->Stats();
      }
      const CursorCounters cursor_counters = cursors_.counters();
      stats.cursors_open = cursor_counters.open;
      stats.cursors_opened_total = cursor_counters.opened_total;
      stats.cursors_expired_total = cursor_counters.expired_total;
      stats.cursors_reaped_total = cursor_counters.reaped_total;
      return EncodeStatsResponse(stats);
    }
    case Op::kDelete: {
      {
        std::unique_lock<std::shared_mutex> lock(index_mutex_);
        SIMCLOUD_RETURN_NOT_OK(index_->Delete(request.delete_id, {},
                                              request.delete_permutation));
      }
      MaybeKickCompaction();
      return EncodeInsertResponse(1);
    }
    case Op::kDeleteBatch: {
      // One exclusive lock for the whole batch; the index frees every
      // dead payload handle in one pass and evaluates the compaction
      // trigger once (mirrors kInsertBatch).
      std::vector<mindex::Deletion> deletions;
      deletions.reserve(request.delete_items.size());
      for (DeleteItem& item : request.delete_items) {
        deletions.push_back(
            mindex::Deletion{item.id, {}, std::move(item.permutation)});
      }
      uint64_t deleted;
      {
        std::unique_lock<std::shared_mutex> lock(index_mutex_);
        SIMCLOUD_ASSIGN_OR_RETURN(deleted, index_->DeleteBatch(deletions));
      }
      MaybeKickCompaction();
      return EncodeInsertResponse(deleted);
    }
    case Op::kCompact: {
      // The pass manages the index lock itself: the rewrite shares it
      // with searches and only the begin and swap+remap slices take it
      // exclusively, so this worker thread blocks on the pass while the
      // rest of the pool keeps serving. Serialized with the background
      // trigger inside CompactBackground.
      mindex::CompactorOptions options =
          index_->DefaultCompactorOptions(request.compact_force);
      // Unforced: gate on the server's configured trigger.
      options.garbage_threshold = compaction_trigger_;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CompactionReport report,
          index_->CompactBackground(options, &index_mutex_));
      return EncodeCompactResponse(report);
    }
    case Op::kPing:
      // No lock, no state: answers even while writers hold the index.
      return Bytes{};
    case Op::kWatch:
      return HandleWatch(request, stream);
    case Op::kWatchCancel: {
      // The cancel response is framed AFTER every push the delivery
      // thread enqueued before Unregister returned (wire FIFO), so a
      // client that drains until this response sees a complete prefix
      // of its stream.
      const bool cancelled = watch_hub_->Unregister(request.watch_cancel_id);
      if (cancelled) {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        auto it = watch_conns_.find(request.watch_cancel_id);
        if (it != watch_conns_.end()) {
          auto& ids = conn_watches_[it->second];
          ids.erase(std::remove(ids.begin(), ids.end(),
                                request.watch_cancel_id),
                    ids.end());
          if (ids.empty()) conn_watches_.erase(it->second);
          watch_conns_.erase(it);
        }
      }
      return EncodeInsertResponse(cancelled ? 1 : 0);
    }
    case Op::kRangeSearchCursor:
      return HandleRangeSearchCursor(request, stream);
    case Op::kCursorNext:
      return HandleCursorNext(request, stream);
    case Op::kCursorClose:
      // Idempotent: closing an unknown / already-expired / already-closed
      // id answers 0, never an error — the client may race the TTL.
      return EncodeInsertResponse(cursors_.Close(request.cursor_id) ? 1 : 0);
    case Op::kGetMetrics:
      // Registry counters are process-global; a snapshot is cheap but the
      // response can grow without bound with the label set, so — like the
      // cursor opcodes — the stateless legacy framing path is refused
      // cleanly (the connection stays usable). In-process calls (null
      // stream: loopback, ShardedServer fan-out) are always allowed.
      if (stream != nullptr && !stream->pipelined()) {
        return Status::FailedPrecondition(
            "kGetMetrics needs a pipelined connection (legacy framing is "
            "stateless)");
      }
      return EncodeMetricsResponse(obs::Registry::Default().Snapshot());
  }
  return Status::Corruption("unhandled opcode");
}

void EncryptedMIndexServer::OnConnectionClosed(uint64_t connection_id) {
  if (connection_id == 0) return;
  // Cursor states are plain snapshots — dropping them frees everything.
  cursors_.CloseOwned(connection_id);
  std::vector<uint64_t> watch_ids;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    auto it = conn_watches_.find(connection_id);
    if (it != conn_watches_.end()) {
      watch_ids = std::move(it->second);
      conn_watches_.erase(it);
      for (uint64_t id : watch_ids) watch_conns_.erase(id);
    }
  }
  // Unregister is bounded (it only joins the hub's registry sweep), so
  // it is safe on the transport's event thread.
  for (uint64_t id : watch_ids) watch_hub_->Unregister(id);
}

}  // namespace secure
}  // namespace simcloud
