#include "secure/server.h"

#include <mutex>

namespace simcloud {
namespace secure {

Result<std::unique_ptr<EncryptedMIndexServer>> EncryptedMIndexServer::Create(
    const mindex::MIndexOptions& options) {
  SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<mindex::MIndex> index,
                            mindex::MIndex::Create(options));
  return std::unique_ptr<EncryptedMIndexServer>(
      new EncryptedMIndexServer(std::move(index)));
}

void EncryptedMIndexServer::AccumulateStats(
    const mindex::SearchStats& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  total_stats_.Add(stats);
}

void EncryptedMIndexServer::AccumulateStatsBatch(
    const std::vector<mindex::SearchStats>& stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (const auto& entry : stats) total_stats_.Add(entry);
}

Result<Bytes> EncryptedMIndexServer::Handle(const Bytes& request_bytes) {
  SIMCLOUD_ASSIGN_OR_RETURN(Request request, DecodeRequest(request_bytes));
  switch (request.op) {
    case Op::kInsertBatch: {
      std::unique_lock<std::shared_mutex> lock(index_mutex_);
      uint64_t inserted = 0;
      for (auto& item : request.insert_items) {
        SIMCLOUD_RETURN_NOT_OK(
            index_->Insert(item.id, std::move(item.pivot_distances),
                           std::move(item.permutation), item.payload));
        ++inserted;
      }
      return EncodeInsertResponse(inserted);
    }
    case Op::kRangeSearch: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      mindex::SearchStats stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CandidateList candidates,
          index_->RangeSearchCandidates(request.query_distances,
                                        request.radius, &stats));
      lock.unlock();
      AccumulateStats(stats);
      return EncodeCandidateResponse(candidates, stats);
    }
    case Op::kApproxKnn: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      mindex::SearchStats stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::CandidateList candidates,
          index_->ApproxKnnCandidates(request.query, request.cand_size,
                                      &stats));
      lock.unlock();
      AccumulateStats(stats);
      return EncodeCandidateResponse(candidates, stats);
    }
    case Op::kRangeSearchBatch: {
      // The shared lock is taken once for the whole batch: the queries
      // share one tree traversal and one payload fetch inside the index.
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      std::vector<mindex::SearchStats> stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::BatchCandidates batch,
          index_->RangeSearchBatchCandidates(request.range_queries, &stats));
      lock.unlock();
      AccumulateStatsBatch(stats);
      return EncodeBatchCandidateResponse(batch, stats);
    }
    case Op::kApproxKnnBatch: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      std::vector<mindex::SearchStats> stats;
      SIMCLOUD_ASSIGN_OR_RETURN(
          mindex::BatchCandidates batch,
          index_->ApproxKnnBatchCandidates(request.knn_queries, &stats));
      lock.unlock();
      AccumulateStatsBatch(stats);
      return EncodeBatchCandidateResponse(batch, stats);
    }
    case Op::kGetStats: {
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      return EncodeStatsResponse(index_->Stats());
    }
    case Op::kDelete: {
      std::unique_lock<std::shared_mutex> lock(index_mutex_);
      SIMCLOUD_RETURN_NOT_OK(
          index_->Delete(request.delete_id, {}, request.delete_permutation));
      return EncodeInsertResponse(1);
    }
    case Op::kDeleteBatch: {
      // One exclusive lock for the whole batch; the index frees every
      // dead payload handle in one pass and evaluates the compaction
      // trigger once (mirrors kInsertBatch).
      std::vector<mindex::Deletion> deletions;
      deletions.reserve(request.delete_items.size());
      for (DeleteItem& item : request.delete_items) {
        deletions.push_back(
            mindex::Deletion{item.id, {}, std::move(item.permutation)});
      }
      std::unique_lock<std::shared_mutex> lock(index_mutex_);
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t deleted,
                                index_->DeleteBatch(deletions));
      return EncodeInsertResponse(deleted);
    }
    case Op::kCompact: {
      // Compaction rewrites the payload log and remaps handles, so it is
      // a writer like insert/delete: searches wait, then resume against
      // the compacted log.
      std::unique_lock<std::shared_mutex> lock(index_mutex_);
      mindex::CompactionOptions options;
      options.force = request.compact_force;
      // Unforced: MIndex::Compact gates on the configured trigger.
      SIMCLOUD_ASSIGN_OR_RETURN(mindex::CompactionReport report,
                                index_->Compact(options));
      return EncodeCompactResponse(report);
    }
    case Op::kPing:
      // No lock, no state: answers even while writers hold the index.
      return Bytes{};
  }
  return Status::Corruption("unhandled opcode");
}

}  // namespace secure
}  // namespace simcloud
