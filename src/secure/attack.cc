#include "secure/attack.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/rng.h"

namespace simcloud {
namespace secure {

Result<LeakedServerView> ExtractServerView(const mindex::MIndex& index) {
  LeakedServerView view;
  view.entries.reserve(index.size());
  SIMCLOUD_RETURN_NOT_OK(index.ForEachEntry(
      [&view](const mindex::Entry& entry, const Bytes& payload) -> Status {
        LeakedEntry leaked;
        leaked.id = entry.id;
        leaked.permutation = entry.permutation;
        leaked.pivot_distances = entry.pivot_distances;
        leaked.payload_size = payload.size();
        view.entries.push_back(std::move(leaked));
        return Status::OK();
      }));
  return view;
}

double KolmogorovSmirnovStatistic(std::vector<double> a,
                                  std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0;
  size_t ib = 0;
  double max_diff = 0.0;
  while (ia < a.size() && ib < b.size()) {
    // Advance both CDFs past the smaller current value; ties advance both
    // at once so equal samples contribute zero difference.
    const double threshold = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] <= threshold) ++ia;
    while (ib < b.size() && b[ib] <= threshold) ++ib;
    const double fa = static_cast<double>(ia) / a.size();
    const double fb = static_cast<double>(ib) / b.size();
    max_diff = std::max(max_diff, std::fabs(fa - fb));
  }
  return max_diff;
}

namespace {

/// Average ranks (1-based, ties share the mean rank).
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return values[x] < values[y]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mean_rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = a.size();
  double mean_a = 0;
  double mean_b = 0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0;
  double var_a = 0;
  double var_b = 0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0 || var_b <= 0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace

double SpearmanRankCorrelation(const std::vector<double>& a,
                               const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

double ShannonEntropyBits(const std::vector<size_t>& values) {
  if (values.empty()) return 0.0;
  std::unordered_map<size_t, size_t> counts;
  for (size_t v : values) counts[v]++;
  double entropy = 0.0;
  const double n = static_cast<double>(values.size());
  for (const auto& [value, count] : counts) {
    const double p = count / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

Result<AttackReport> EvaluateLeakage(
    const LeakedServerView& view,
    const std::vector<metric::VectorObject>& objects,
    const metric::DistanceFunction& metric, const mindex::PivotSet& pivots,
    uint64_t seed) {
  if (view.entries.empty()) {
    return Status::InvalidArgument("leaked view is empty");
  }
  if (pivots.size() == 0) {
    return Status::InvalidArgument("ground-truth pivot set is empty");
  }
  std::unordered_map<metric::ObjectId, const metric::VectorObject*> by_id;
  by_id.reserve(objects.size());
  for (const auto& object : objects) by_id[object.id()] = &object;

  AttackReport report;

  // ---- distance-marginal attacks (first pivot, precise strategy only).
  std::vector<double> leaked_values;
  std::vector<double> true_values;
  for (const LeakedEntry& entry : view.entries) {
    if (entry.pivot_distances.empty()) continue;
    auto it = by_id.find(entry.id);
    if (it == by_id.end()) {
      return Status::InvalidArgument(
          "leaked entry id not found in ground-truth objects");
    }
    leaked_values.push_back(entry.pivot_distances[0]);
    true_values.push_back(metric.Distance(*it->second, pivots.pivot(0)));
  }
  report.distances_leaked = !leaked_values.empty();
  if (report.distances_leaked) {
    report.distance_ks_statistic =
        KolmogorovSmirnovStatistic(leaked_values, true_values);
    report.rank_correlation =
        SpearmanRankCorrelation(leaked_values, true_values);
  }

  // ---- co-cell proximity inference from permutations.
  std::map<uint32_t, std::vector<const metric::VectorObject*>> cells;
  for (const LeakedEntry& entry : view.entries) {
    if (entry.permutation.empty()) continue;
    auto it = by_id.find(entry.id);
    if (it == by_id.end()) continue;
    cells[entry.permutation[0]].push_back(it->second);
  }
  Rng rng(seed);
  const size_t kPairSamples = 2000;
  double same_cell_sum = 0.0;
  size_t same_cell_count = 0;
  std::vector<const std::vector<const metric::VectorObject*>*> big_cells;
  for (const auto& [pivot, members] : cells) {
    if (members.size() >= 2) big_cells.push_back(&members);
  }
  if (!big_cells.empty()) {
    for (size_t s = 0; s < kPairSamples; ++s) {
      const auto& members =
          *big_cells[rng.NextBounded(big_cells.size())];
      const size_t i = rng.NextBounded(members.size());
      size_t j = rng.NextBounded(members.size());
      if (i == j) continue;
      same_cell_sum += metric.Distance(*members[i], *members[j]);
      ++same_cell_count;
    }
  }
  double random_sum = 0.0;
  size_t random_count = 0;
  for (size_t s = 0; s < kPairSamples; ++s) {
    const size_t i = rng.NextBounded(objects.size());
    const size_t j = rng.NextBounded(objects.size());
    if (i == j) continue;
    random_sum += metric.Distance(objects[i], objects[j]);
    ++random_count;
  }
  if (same_cell_count > 0 && random_count > 0 && random_sum > 0) {
    report.same_cell_distance_ratio =
        (same_cell_sum / same_cell_count) / (random_sum / random_count);
  }

  // ---- ciphertext-size side channel.
  std::vector<size_t> sizes;
  sizes.reserve(view.entries.size());
  for (const LeakedEntry& entry : view.entries) {
    sizes.push_back(entry.payload_size);
  }
  report.payload_size_entropy_bits = ShannonEntropyBits(sizes);
  std::sort(sizes.begin(), sizes.end());
  report.distinct_payload_sizes =
      std::unique(sizes.begin(), sizes.end()) - sizes.begin();
  return report;
}

}  // namespace secure
}  // namespace simcloud
