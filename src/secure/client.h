// The encryption client — the authorized client of the similarity cloud
// (paper Section 4.2, Algorithms 1 and 2).
//
// The client holds the secret key (pivots + AES key). For inserts it
// computes object-pivot distances, encrypts objects, and ships only
// {distances | permutation, ciphertext}. For searches it sends only the
// query's pivot distances or permutation, receives a pre-ranked candidate
// set of ciphertexts, then decrypts and refines locally. The query object
// and the pivots never leave the client.
//
// Every operation feeds the cost accounting the paper's evaluation is
// built on: encryption/decryption time, distance-computation time, and
// client processing overhead (ClientCosts), plus the transport's
// server/communication split (net::TransportCosts).

#ifndef SIMCLOUD_SECURE_CLIENT_H_
#define SIMCLOUD_SECURE_CLIENT_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "metric/dataset.h"
#include "metric/distance.h"
#include "metric/neighbor.h"
#include "net/transport.h"
#include "secure/protocol.h"
#include "secure/secret_key.h"

namespace simcloud {
namespace secure {

/// What routing metadata accompanies an encrypted object (Algorithm 1
/// lines 3-7).
enum class InsertStrategy {
  /// Store distances to all pivots: enables precise range/k-NN search and
  /// server-side pivot filtering.
  kPrecise,
  /// Store only the pivot permutation: smaller server footprint, supports
  /// the approximate strategy only.
  kPermutationOnly,
};

/// Client-side cost components (paper Tables 3, 5, 6, 9).
struct ClientCosts {
  int64_t encryption_nanos = 0;  ///< AES encryption of inserted objects
  int64_t decryption_nanos = 0;  ///< decrypt + deserialize candidates
  int64_t distance_nanos = 0;    ///< object-pivot + refine distances
  int64_t overhead_nanos = 0;    ///< serialization & bookkeeping
  uint64_t distance_computations = 0;
  uint64_t objects_encrypted = 0;
  uint64_t candidates_decrypted = 0;

  /// Total client computation time ("Client time" table rows).
  int64_t TotalNanos() const {
    return encryption_nanos + decryption_nanos + distance_nanos +
           overhead_nanos;
  }
  void Clear() { *this = ClientCosts{}; }
};

/// A pipelined query batch in flight: created by a Submit* call, resolved
/// by the matching Collect* call (exactly once). The struct snapshots the
/// plaintext queries so refinement can run when the response arrives.
struct PendingQueryBatch {
  uint64_t ticket = 0;
  bool live = false;  ///< true between Submit and Collect
  std::vector<metric::VectorObject> queries;
  double radius = 0;     ///< range batches
  size_t k = 0;          ///< k-NN batches
};

/// A pipelined delete batch in flight.
struct PendingDeleteBatch {
  uint64_t ticket = 0;
  bool live = false;
  size_t count = 0;  ///< objects the batch asked to delete
};

/// One decrypted change-stream event (EncryptionClient::Watch).
struct WatchEvent {
  enum class Kind {
    kInsert,  ///< `object` holds the decrypted inserted object
    kDelete,  ///< `id` names the removed object
    kLost,    ///< the server's replay ring overflowed: re-run the query
              ///< and re-register fresh; `message` says why
  };
  Kind kind = Kind::kInsert;
  metric::ObjectId id = 0;
  metric::VectorObject object;
  /// Token that resumes the stream right AFTER this event (pass to
  /// Watch/WatchAll on reconnect).
  std::vector<uint64_t> resume_token;
  std::string message;
};

class EncryptionClient;

/// A live change-stream subscription, created by EncryptionClient::Watch.
/// Frames arrive as server pushes on a parked pipelined request id;
/// Next() surfaces them decrypted and in stream order. Call from the
/// owning client's thread only (the client is not thread-safe).
///
/// Lifecycle: Cancel() tells the server to drop the subscription, drains
/// the frames that were already in flight, and closes the stream; the
/// destructor just closes the stream (a client that lost its connection
/// reconnects and re-registers with resume_token()).
class WatchStream {
 public:
  ~WatchStream();
  WatchStream(const WatchStream&) = delete;
  WatchStream& operator=(const WatchStream&) = delete;

  /// Blocks up to `timeout_ms` for the next event. DeadlineExceeded when
  /// nothing arrived (the stream stays live); NetworkError when the
  /// connection died (re-register with resume_token()). After a kLost
  /// event (or Cancel) the stream is finished and Next returns
  /// FailedPrecondition.
  Result<WatchEvent> Next(int timeout_ms);

  /// Cancels the subscription server-side and drains in-flight frames.
  /// The stream is finished afterwards; resume_token() stays valid.
  Status Cancel();

  /// Token resuming right after the last event Next() returned (the
  /// registration baseline before any event).
  const std::vector<uint64_t>& resume_token() const { return token_; }
  uint64_t watch_id() const { return watch_id_; }
  /// True once the stream is finished (kLost delivered or cancelled).
  bool finished() const { return finished_; }

 private:
  friend class EncryptionClient;
  WatchStream(EncryptionClient* client, net::PipelinedTransport* transport,
              uint64_t ticket, uint64_t watch_id,
              std::vector<uint64_t> token)
      : client_(client), transport_(transport), ticket_(ticket),
        watch_id_(watch_id), token_(std::move(token)) {}

  /// Converts a decoded frame into a client event (decrypts inserts).
  Result<WatchEvent> ToEvent(const WatchFrame& frame);

  EncryptionClient* client_;
  net::PipelinedTransport* transport_;
  uint64_t ticket_ = 0;
  uint64_t watch_id_ = 0;
  std::vector<uint64_t> token_;
  /// Pushes that arrived before the registration ack (the delivery
  /// thread can outrun the response) — drained by Next() first.
  std::deque<WatchFrame> early_;
  bool finished_ = false;
};

/// A paged range-query retrieval, created by
/// EncryptionClient::OpenRangeCursor. The server keeps the ranked
/// candidate snapshot; Next() pulls one page at a time, decrypts it, and
/// refines it with the true metric — client memory stays O(page) no
/// matter how many candidates the query admits. Call from the owning
/// client's thread only (the client is not thread-safe).
///
/// The concatenation of all pages' candidates is byte-identical to what
/// the one-shot RangeSearch would have fetched; each page is refined and
/// sorted locally, so the per-page NeighborLists are sorted within the
/// page, not globally.
///
/// Lifecycle: Close() releases the server-side cursor (idempotent; a
/// cursor that finished on its own needs no close — the server already
/// dropped it). The destructor closes best-effort. An expired or
/// invalidated cursor surfaces as an explicit error from Next(), never a
/// silent empty page.
class CursorStream {
 public:
  ~CursorStream();
  CursorStream(const CursorStream&) = delete;
  CursorStream& operator=(const CursorStream&) = delete;

  /// Fetches, decrypts, and refines the next page. Check exhausted()
  /// for the end of the stream — a non-final page may still refine to an
  /// empty list when none of its candidates pass the true-distance
  /// filter. Errors pass through from the server: "cursor expired"
  /// (TTL), "cursor invalidated" (compaction moved payloads), "unknown
  /// cursor".
  Result<metric::NeighborList> Next();

  /// Releases the server-side cursor state. Idempotent.
  Status Close();

  /// True when every page was delivered (Next() returns empty lists).
  bool exhausted() const { return !first_pending_ && cursor_id_ == 0; }
  /// Server-side cursor id; 0 once exhausted or closed.
  uint64_t cursor_id() const { return cursor_id_; }
  /// Ranked candidate total the server snapshotted at open (the number
  /// of CANDIDATES to be paged, before true-distance refinement).
  uint64_t total_candidates() const { return total_; }

 private:
  friend class EncryptionClient;
  CursorStream(EncryptionClient* client, net::PipelinedTransport* transport,
               metric::VectorObject query, double radius, CursorPage first)
      : client_(client), transport_(transport), query_(std::move(query)),
        radius_(radius), cursor_id_(first.cursor_id), total_(first.total),
        first_page_(std::move(first)) {}

  EncryptionClient* client_;
  net::PipelinedTransport* transport_;
  metric::VectorObject query_;  ///< plaintext query for refinement
  double radius_ = 0;           ///< plaintext radius for refinement
  uint64_t cursor_id_ = 0;
  uint64_t total_ = 0;
  /// The open response's page, returned by the first Next().
  CursorPage first_page_;
  bool first_pending_ = true;
  bool closed_ = false;
};

/// Authorized client of an Encrypted M-Index server.
class EncryptionClient {
 public:
  /// `metric` must be the distance the data owner chose for the data set;
  /// `transport` connects to an EncryptedMIndexServer and must outlive
  /// the client.
  EncryptionClient(SecretKey key,
                   std::shared_ptr<metric::DistanceFunction> metric,
                   net::Transport* transport)
      : key_(std::move(key)), metric_(std::move(metric)),
        transport_(transport) {}

  /// Inserts one object (Algorithm 1).
  Status Insert(const metric::VectorObject& object, InsertStrategy strategy);

  /// Inserts objects in bulks of `bulk_size` (the paper uses bulks of
  /// 1,000 in the construction experiments).
  Status InsertBulk(const std::vector<metric::VectorObject>& objects,
                    InsertStrategy strategy, size_t bulk_size = 1000);

  /// Deletes one object. The client recomputes the routing permutation
  /// from the object and its secret pivots, so the request carries no
  /// more information than the original insert did. NotFound if the
  /// object is not indexed.
  Status Delete(const metric::VectorObject& object);

  /// Deletes objects in bulks of `bulk_size` (kDeleteBatch, the mirror of
  /// InsertBulk): each bulk travels in one request and the server removes
  /// it under one lock acquisition with one handle-free pass. NotFound if
  /// any object was not indexed (the indexed ones are still deleted).
  Status DeleteBatch(const std::vector<metric::VectorObject>& objects,
                     size_t bulk_size = 1000);

  /// Admin: compacts the server's payload log(s) (kCompact; per-shard in
  /// a sharded deployment). `force` compacts whenever dead bytes exist;
  /// otherwise the server's configured compaction_trigger decides.
  /// Returns the (shard-aggregated) compaction report.
  Result<mindex::CompactionReport> Compact(bool force = true);

  /// Precise range query R(q, r) (Algorithm 2, precise branch). Returns
  /// exactly the objects within `radius`, sorted by distance.
  Result<metric::NeighborList> RangeSearch(const metric::VectorObject& query,
                                           double radius);

  /// Paged precise range query: like RangeSearch, but the server keeps
  /// the ranked candidate snapshot and the client pulls `page_size`
  /// candidates per Next() — an unbounded result set never materializes
  /// on either side. Requires a pipelined transport (cursors are
  /// connection-scoped server state; legacy framing is refused). The
  /// returned stream borrows this client and its transport.
  Result<std::unique_ptr<CursorStream>> OpenRangeCursor(
      const metric::VectorObject& query, double radius, uint64_t page_size);

  /// Approximate k-NN (Algorithm 2, approximate branch): asks the server
  /// for `cand_size` pre-ranked candidates, decrypts and refines them.
  Result<metric::NeighborList> ApproxKnn(const metric::VectorObject& query,
                                         size_t k, size_t cand_size);

  /// Batched precise range search: all queries travel in ONE request
  /// (kRangeSearchBatch), the server evaluates them in one pass, and the
  /// client decrypts and refines every candidate set under a single
  /// cost-accounting pass. `results[i]` answers `queries[i]` and equals
  /// what RangeSearch(queries[i], radius) would return.
  Result<std::vector<metric::NeighborList>> RangeSearchBatch(
      const std::vector<metric::VectorObject>& queries, double radius);

  /// Batched approximate k-NN: one kApproxKnnBatch round trip for the
  /// whole query set; per-query answers equal ApproxKnn's.
  Result<std::vector<metric::NeighborList>> ApproxKnnBatch(
      const std::vector<metric::VectorObject>& queries, size_t k,
      size_t cand_size);

  // -------------------------------------------------------------------
  // Pipelined submit/collect API. Requires a net::PipelinedTransport
  // (TcpTransport or LoopbackTransport): several batches can be in
  // flight on ONE connection at once, overlapping client-side
  // refinement, the wire, and the server — ShardedServer uses the same
  // mechanism to overlap its per-shard fan-out. Each Submit must be
  // resolved by exactly one matching Collect; batches pipelined
  // together may execute in any order on the server, so do not pipeline
  // requests that depend on each other's effects. The client object is
  // not thread-safe: submit and collect from one thread (use one client
  // per thread for concurrency). Collect* returns exactly what the
  // synchronous call over the same index state would.
  // -------------------------------------------------------------------

  /// Pipelined RangeSearchBatch (`queries.size()` <= kMaxBatchQueries).
  /// `queries` is taken by value and moved into the pending batch: pass
  /// an rvalue for a zero-copy submit.
  Result<PendingQueryBatch> SubmitRangeSearchBatch(
      std::vector<metric::VectorObject> queries, double radius);
  Result<std::vector<metric::NeighborList>> CollectRangeSearchBatch(
      PendingQueryBatch* pending);

  /// Pipelined ApproxKnnBatch (`queries.size()` <= kMaxBatchQueries).
  Result<PendingQueryBatch> SubmitApproxKnnBatch(
      std::vector<metric::VectorObject> queries, size_t k,
      size_t cand_size);
  Result<std::vector<metric::NeighborList>> CollectApproxKnnBatch(
      PendingQueryBatch* pending);

  /// Pipelined delete of ONE bulk (`objects.size()` <= kMaxBatchQueries).
  Result<PendingDeleteBatch> SubmitDeleteBatch(
      const std::vector<metric::VectorObject>& objects);
  /// NotFound if some objects were not indexed (the rest are deleted),
  /// like DeleteBatch.
  Status CollectDeleteBatch(PendingDeleteBatch* pending);

  /// Round trip with no server-side work: health check / pure-RTT probe.
  Status Ping();
  Result<uint64_t> SubmitPing();
  Status CollectPing(uint64_t ticket);

  /// Approximate k-NN restricted to the single most promising Voronoi
  /// cell (the paper's Table 9 / Section 5.4 setup): the server returns
  /// that one whole cell as the candidate set.
  Result<metric::NeighborList> ApproxKnnSingleCell(
      const metric::VectorObject& query, size_t k);

  /// Approximate k-NN with early-stopping refinement — the optimization
  /// the paper sketches in Section 5.3: "S_C retrieved from the server is
  /// pre-ranked, therefore the client can choose to decrypt and compute
  /// distances only for candidates with the highest rank". The query is
  /// sent WITH pivot distances so the server pre-ranks candidates by
  /// their pivot-filtering lower bound on d(q, o); the client refines in
  /// rank order and stops decrypting once the next lower bound cannot
  /// beat the current k-th best distance. Returns exactly the same
  /// answer as ApproxKnn over the same candidate set (the stop rule is
  /// sound), with fewer decryptions. Requires precise-strategy inserts
  /// (stored pivot distances).
  Result<metric::NeighborList> ApproxKnnEarlyStop(
      const metric::VectorObject& query, size_t k, size_t cand_size);

  /// Precise k-NN: approximate k-NN determines rho_k, then a precise
  /// range query R(q, rho_k) guarantees the exact answer (Section 4.2).
  Result<metric::NeighborList> PreciseKnn(const metric::VectorObject& query,
                                          size_t k);

  /// Fetches index statistics from the server.
  Result<mindex::IndexStats> GetServerStats();

  /// Scrapes the server's metrics registry (per-opcode latency
  /// histograms, byte counters, cache/compaction/failover telemetry —
  /// see docs/observability.md). Against a ShardedServer the snapshot
  /// is the bucket-correct merge of every shard registry. The server
  /// refuses legacy (bit-31-clear) framing for this opcode; use a
  /// pipelined transport.
  Result<obs::MetricsSnapshot> GetMetrics();

  /// Registers a live change stream scoped to the range query R(query,
  /// radius): the server pushes every insert whose pivot-filtering lower
  /// bound admits it into the radius (a superset of the true matches,
  /// like range search candidates — refine client-side if exactness
  /// matters) and every delete. Requires a pipelined transport with
  /// server push (TCP). Pass a previous event's resume_token to resume
  /// after it — OutOfRange-flavoured "watch lost" when the server's
  /// replay ring no longer covers the token (re-run the query, register
  /// fresh). The returned stream borrows this client and its transport.
  Result<std::unique_ptr<WatchStream>> Watch(
      const metric::VectorObject& query, double radius,
      const std::vector<uint64_t>& resume_token = {});

  /// Unfiltered change stream: every insert and delete.
  Result<std::unique_ptr<WatchStream>> WatchAll(
      const std::vector<uint64_t>& resume_token = {});

  /// True when `status` carries the server's explicit watch-lost signal
  /// (matched by substring: remote error codes do not survive the wire).
  static bool IsWatchLost(const Status& status);

  const ClientCosts& costs() const { return costs_; }
  void ResetCosts() { costs_.Clear(); }
  const SecretKey& key() const { return key_; }

 private:
  /// WatchStream decrypts pushed payloads through DecryptCandidate so
  /// watch decryptions land in the same cost accounting as candidates.
  friend class WatchStream;
  /// CursorStream refines pages through RefineCandidates under the same
  /// cost accounting as one-shot searches.
  friend class CursorStream;

  /// Computes (and counts) distances from `object` to all pivots, applying
  /// the distribution-hiding transform when enabled.
  std::vector<float> ComputePivotDistances(const metric::VectorObject& object,
                                           bool apply_transform);

  /// The transport as a pipelined transport, or FailedPrecondition.
  Result<net::PipelinedTransport*> PipelinedOrFail() const;

  /// Shared Watch/WatchAll body: submits the registration, waits for the
  /// ack (stashing pushes that outran it), builds the stream.
  Result<std::unique_ptr<WatchStream>> OpenWatch(
      const WatchFilter& filter, const std::vector<uint64_t>& resume_token);

  /// Encodes a kRangeSearchBatch request (pivot distances under cost
  /// accounting; radius already transformed by the caller's contract).
  Result<Bytes> BuildRangeSearchBatchRequest(
      const std::vector<metric::VectorObject>& queries, double radius);
  /// Decodes + refines a kRangeSearchBatch response against `queries`.
  Result<std::vector<metric::NeighborList>> FinishRangeSearchBatch(
      const Bytes& response_bytes,
      const std::vector<metric::VectorObject>& queries, double radius);

  /// Encodes a kApproxKnnBatch request.
  Result<Bytes> BuildApproxKnnBatchRequest(
      const std::vector<metric::VectorObject>& queries, size_t k,
      size_t cand_size);
  /// Decodes + refines a kApproxKnnBatch response against `queries`.
  Result<std::vector<metric::NeighborList>> FinishApproxKnnBatch(
      const Bytes& response_bytes,
      const std::vector<metric::VectorObject>& queries, size_t k);

  /// Decrypts one candidate payload under decryption-cost accounting.
  Result<metric::VectorObject> DecryptCandidate(const Bytes& payload);

  /// One true-metric evaluation under distance-cost accounting.
  double MeasuredDistance(const metric::VectorObject& query,
                          const metric::VectorObject& object);

  /// Decrypts candidates and evaluates true distances (Alg. 2 lines 11-16),
  /// keeping those satisfying `predicate`.
  Result<metric::NeighborList> RefineCandidates(
      const mindex::CandidateList& candidates,
      const metric::VectorObject& query);

  /// Batch refinement: decrypts each distinct payload of the batch
  /// dictionary ONCE (candidates shared between queries — overlapping or
  /// repeated hot queries — cost one decryption), then evaluates true
  /// distances per query. `results[i]` refines `queries[i]`.
  Result<std::vector<metric::NeighborList>> RefineBatch(
      const BatchCandidateResponse& response,
      const std::vector<metric::VectorObject>& queries);

  SecretKey key_;
  std::shared_ptr<metric::DistanceFunction> metric_;
  net::Transport* transport_;
  ClientCosts costs_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_CLIENT_H_
