// Sharded similarity cloud: the Encrypted M-Index distributed over
// multiple server nodes.
//
// The paper deploys the M-Index as a "disk-efficient, parallel,
// potentially distributed" server (Section 6) — the similarity *cloud* of
// the title. This module provides that deployment shape: N independent
// M-Index shards behind one RequestHandler facade. Placement follows the
// recursive Voronoi partitioning itself — an object lives on the shard
// owning its first permutation element (its closest secret pivot), so
// each top-level Voronoi cell is wholly on one node and cell-local
// operations never cross shards.
//
//   * insert / delete  — routed to the owning shard by permutation[0];
//   * range search     — fanned out to every shard in parallel (each
//     prunes its own subtree), candidate lists concatenated; the same
//     superset-of-true-results guarantee as the single-node index;
//   * approximate k-NN — fanned out with the full budget, merged by
//     pre-rank score, trimmed to the budget;
//   * stats            — aggregated.
//
// Privacy is unchanged: every shard stores exactly what the single
// untrusted server stored (permutations / transformed distances and
// ciphertext). Authorized clients connect through the facade without
// modification — EncryptionClient works against a ShardedServer as-is.

#ifndef SIMCLOUD_SECURE_SHARDED_SERVER_H_
#define SIMCLOUD_SECURE_SHARDED_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "mindex/mindex.h"
#include "net/secure_channel.h"
#include "net/transport.h"
#include "secure/protocol.h"
#include "secure/server.h"

namespace simcloud {
namespace secure {

/// One shard's request channel. Submit() hands a request to the shard
/// without waiting; Collect() blocks for that ticket's response — so a
/// fan-out submits to every shard first and all shards work in parallel,
/// with no per-request thread spawning. Implementations are persistent
/// (a small worker pool for an in-process shard; a pipelined TCP
/// connection for a remote one) and safe for concurrent Submit/Collect.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;
  virtual Result<uint64_t> Submit(const Bytes& request) = 0;
  virtual Result<Bytes> Collect(uint64_t ticket) = 0;
  /// Synchronous convenience: Submit + Collect.
  Result<Bytes> Call(const Bytes& request);
};

/// Address of a remote shard server (an EncryptedMIndexServer behind a
/// net::TcpServer).
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

/// A fleet of Encrypted M-Index shards behind one request handler —
/// in-process (Create) or remote over persistent pipelined TCP
/// connections (Connect). Handle() is safe for concurrent calls in both
/// modes, so a TcpServer worker pool can drive the facade directly.
class ShardedServer : public net::RequestHandler {
 public:
  /// Creates `num_shards` (>= 1) identically-configured in-process
  /// shards. The per-shard options are `options` with the disk path
  /// suffixed by the shard number (when disk storage is configured).
  static Result<std::unique_ptr<ShardedServer>> Create(
      const mindex::MIndexOptions& options, size_t num_shards);

  /// Connects to already-running shard servers, one persistent pipelined
  /// connection per endpoint; fan-outs overlap across those connections
  /// instead of paying serial round trips. `num_pivots` must match the
  /// shards' index configuration (it validates delete routing). With
  /// ChannelPolicy::kSecure every shard channel runs the PSK handshake
  /// and speaks AEAD records (the shard servers must be configured with
  /// the same PSK).
  static Result<std::unique_ptr<ShardedServer>> Connect(
      const std::vector<ShardEndpoint>& endpoints, size_t num_pivots,
      net::ChannelPolicy policy = net::ChannelPolicy::kPlaintext,
      const net::SecureChannelOptions& secure = net::SecureChannelOptions());

  Result<Bytes> Handle(const Bytes& request) override;

  size_t num_shards() const { return channels_.size(); }
  /// True when the shards live in this process (Create); Connect
  /// deployments have no white-box access.
  bool is_local() const { return !shards_.empty(); }
  /// Direct access for white-box tests. Local deployments only.
  const EncryptedMIndexServer& shard(size_t i) const { return *shards_[i]; }

  /// Total object count across shards (a kGetStats fan-out when remote;
  /// 0 if a remote shard is unreachable).
  uint64_t TotalObjects() const;

 private:
  ShardedServer(std::vector<std::unique_ptr<EncryptedMIndexServer>> shards,
                std::vector<std::unique_ptr<ShardChannel>> channels,
                size_t num_pivots)
      : shards_(std::move(shards)), channels_(std::move(channels)),
        num_pivots_(num_pivots) {}

  /// Shard owning a routing permutation: permutation[0] mod num_shards.
  /// Objects of one top-level Voronoi cell always land together.
  size_t OwnerOf(const mindex::Permutation& permutation) const;

  /// Runs the request on every shard (overlapped) and concatenates the
  /// candidate responses (merged stats), trimming to `limit` by score
  /// when limit > 0.
  Result<Bytes> FanOut(const Bytes& request, size_t limit);

  /// Batch variant: ONE fan-out carries the whole batch; each shard
  /// evaluates every query, then the per-query candidate lists are
  /// merged by score across shards and trimmed to `limits[q]` (0 = no
  /// trim), exactly like `limits.size()` FanOut calls would.
  Result<Bytes> FanOutBatch(const Bytes& request,
                            const std::vector<size_t>& limits);

  /// Submits the request to every shard, then collects: all shards work
  /// concurrently while this thread waits (shared by FanOut / FanOutBatch
  /// / stats / compaction).
  std::vector<Result<Bytes>> CallAllShards(const Bytes& request) const;

  /// Submits per-shard sub-requests (empty entries are skipped), collects
  /// the acknowledged counts, and returns their sum (inserts / deletes).
  Result<uint64_t> ScatterCounted(const std::vector<Bytes>& per_shard) const;

  std::vector<std::unique_ptr<EncryptedMIndexServer>> shards_;  // local only
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  size_t num_pivots_ = 0;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SHARDED_SERVER_H_
