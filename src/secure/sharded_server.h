// Sharded similarity cloud: the Encrypted M-Index distributed over
// multiple server nodes.
//
// The paper deploys the M-Index as a "disk-efficient, parallel,
// potentially distributed" server (Section 6) — the similarity *cloud* of
// the title. This module provides that deployment shape: N independent
// M-Index shards behind one RequestHandler facade. Placement follows the
// recursive Voronoi partitioning itself — an object lives on the shard
// owning its first permutation element (its closest secret pivot), so
// each top-level Voronoi cell is wholly on one node and cell-local
// operations never cross shards.
//
//   * insert / delete  — routed to the owning shard by permutation[0];
//   * range search     — fanned out to every shard in parallel (each
//     prunes its own subtree), candidate lists concatenated; the same
//     superset-of-true-results guarantee as the single-node index;
//   * approximate k-NN — fanned out with the full budget, merged by
//     pre-rank score, trimmed to the budget;
//   * stats            — aggregated.
//
// Privacy is unchanged: every shard stores exactly what the single
// untrusted server stored (permutations / transformed distances and
// ciphertext). Authorized clients connect through the facade without
// modification — EncryptionClient works against a ShardedServer as-is.

#ifndef SIMCLOUD_SECURE_SHARDED_SERVER_H_
#define SIMCLOUD_SECURE_SHARDED_SERVER_H_

#include <memory>
#include <vector>

#include "mindex/mindex.h"
#include "net/transport.h"
#include "secure/protocol.h"
#include "secure/server.h"

namespace simcloud {
namespace secure {

/// A fleet of EncryptedMIndexServer shards behind one request handler.
class ShardedServer : public net::RequestHandler {
 public:
  /// Creates `num_shards` (>= 1) identically-configured shards. The
  /// per-shard options are `options` with the disk path suffixed by the
  /// shard number (when disk storage is configured).
  static Result<std::unique_ptr<ShardedServer>> Create(
      const mindex::MIndexOptions& options, size_t num_shards);

  Result<Bytes> Handle(const Bytes& request) override;

  size_t num_shards() const { return shards_.size(); }
  /// Direct access for white-box tests.
  const EncryptedMIndexServer& shard(size_t i) const { return *shards_[i]; }

  /// Total object count across shards.
  uint64_t TotalObjects() const;

 private:
  explicit ShardedServer(
      std::vector<std::unique_ptr<EncryptedMIndexServer>> shards)
      : shards_(std::move(shards)) {}

  /// Shard owning a routing permutation: permutation[0] mod num_shards.
  /// Objects of one top-level Voronoi cell always land together.
  size_t OwnerOf(const mindex::Permutation& permutation) const;

  /// Runs `op(shard)` on every shard concurrently and concatenates the
  /// candidate responses (merged stats), trimming to `limit` by score
  /// when limit > 0.
  Result<Bytes> FanOut(const Bytes& request, size_t limit);

  /// Batch variant: ONE fan-out round trip carries the whole batch; each
  /// shard evaluates every query, then the per-query candidate lists are
  /// merged by score across shards and trimmed to `limits[q]` (0 = no
  /// trim), exactly like `limits.size()` FanOut calls would.
  Result<Bytes> FanOutBatch(const Bytes& request,
                            const std::vector<size_t>& limits);

  /// Dispatches the batch request concurrently to all shards and returns
  /// the raw per-shard responses (shared by FanOut / FanOutBatch).
  std::vector<Result<Bytes>> CallAllShards(const Bytes& request);

  std::vector<std::unique_ptr<EncryptedMIndexServer>> shards_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SHARDED_SERVER_H_
