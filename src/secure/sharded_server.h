// Sharded similarity cloud: the Encrypted M-Index distributed over
// multiple server nodes.
//
// The paper deploys the M-Index as a "disk-efficient, parallel,
// potentially distributed" server (Section 6) — the similarity *cloud* of
// the title. This module provides that deployment shape: N independent
// M-Index shards behind one RequestHandler facade. Placement follows the
// recursive Voronoi partitioning itself — an object lives on the shard
// owning its first permutation element (its closest secret pivot), so
// each top-level Voronoi cell is wholly on one node and cell-local
// operations never cross shards.
//
//   * insert / delete  — routed to the owning shard by permutation[0];
//   * range search     — fanned out to every shard in parallel (each
//     prunes its own subtree), candidate lists concatenated; the same
//     superset-of-true-results guarantee as the single-node index;
//   * approximate k-NN — fanned out with the full budget, merged by
//     pre-rank score, trimmed to the budget;
//   * stats            — aggregated, including per-shard health.
//
// Remote deployments are replica-aware: each shard can be a replica SET
// (identical data behind several endpoints), a background
// TopologyMonitor health-probes every connection, and the facade fails
// reads over / buffers writes for replay when a replica dies — see
// secure/topology.h for the state machine.
//
// Privacy is unchanged: every shard stores exactly what the single
// untrusted server stored (permutations / transformed distances and
// ciphertext). Authorized clients connect through the facade without
// modification — EncryptionClient works against a ShardedServer as-is.

#ifndef SIMCLOUD_SECURE_SHARDED_SERVER_H_
#define SIMCLOUD_SECURE_SHARDED_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mindex/mindex.h"
#include "net/secure_channel.h"
#include "net/transport.h"
#include "secure/cursor.h"
#include "secure/protocol.h"
#include "secure/server.h"
#include "secure/topology.h"

namespace simcloud {
namespace secure {

/// In-process shard channel: a small pool of persistent worker threads
/// executes the shard's Handle() calls, so a fan-out keeps every shard
/// busy without spawning threads per request, and concurrent facade
/// calls still overlap on one shard (EncryptedMIndexServer's
/// readers-writer lock lets its searches run in parallel; writes
/// serialize on that lock regardless of submission order).
class LocalShardChannel : public ShardChannel {
 public:
  explicit LocalShardChannel(net::RequestHandler* handler,
                             size_t num_workers = 2);
  ~LocalShardChannel() override;

  /// FailedPrecondition after Stop(): a stopped channel must never issue
  /// a ticket no worker will run (a racing Collect would block forever).
  Result<uint64_t> Submit(const Bytes& request) override;
  Result<Bytes> Collect(uint64_t ticket) override;

  /// Stops the channel: in-flight handler calls finish and their tickets
  /// stay collectable; queued-but-unstarted tickets fail immediately
  /// with FailedPrecondition; new Submits are rejected. Idempotent (the
  /// destructor calls it).
  void Stop();

 private:
  void WorkerLoop();

  net::RequestHandler* handler_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::pair<uint64_t, Bytes>> queue_;
  std::map<uint64_t, Result<Bytes>> ready_;
  uint64_t next_ticket_ = 1;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// A fleet of Encrypted M-Index shards behind one request handler —
/// in-process (Create) or remote over persistent pipelined TCP
/// connections (Connect). Handle() is safe for concurrent calls in both
/// modes, so a TcpServer worker pool can drive the facade directly.
class ShardedServer : public net::RequestHandler {
 public:
  /// Creates `num_shards` (>= 1) identically-configured in-process
  /// shards. The per-shard options are `options` with the disk path
  /// suffixed by the shard number (when disk storage is configured).
  static Result<std::unique_ptr<ShardedServer>> Create(
      const mindex::MIndexOptions& options, size_t num_shards,
      const CursorConfig& cursor_config = CursorConfig{});

  /// Connects to already-running shard servers, one persistent pipelined
  /// connection per endpoint; fan-outs overlap across those connections
  /// instead of paying serial round trips. `num_pivots` must match the
  /// shards' index configuration (it validates delete routing). With
  /// ChannelPolicy::kSecure every shard channel runs the PSK handshake
  /// and speaks AEAD records (the shard servers must be configured with
  /// the same PSK). Equivalent to the replica-set overload with
  /// single-replica shards: the topology monitor probes and reconnects
  /// these connections too.
  static Result<std::unique_ptr<ShardedServer>> Connect(
      const std::vector<ShardEndpoint>& endpoints, size_t num_pivots,
      net::ChannelPolicy policy = net::ChannelPolicy::kPlaintext,
      const net::SecureChannelOptions& secure = net::SecureChannelOptions());

  /// Replica-aware Connect: `replica_sets[i]` lists the endpoints of
  /// shard i's replicas, each holding an identical copy of the shard.
  /// Reads route to any live replica (rotating; retried on another when
  /// one fails mid-request); writes fan out to every replica in one
  /// serialized order; a background TopologyMonitor probes every
  /// connection over kPing and redials dead replicas with jittered
  /// backoff, replaying the writes they missed. The facade keeps
  /// serving through a replica loss as long as one replica per shard
  /// lives. On a partial connect failure every already-established
  /// transport is shut down orderly and the Status names the failing
  /// endpoint as host:port.
  static Result<std::unique_ptr<ShardedServer>> Connect(
      const std::vector<std::vector<ShardEndpoint>>& replica_sets,
      size_t num_pivots,
      net::ChannelPolicy policy = net::ChannelPolicy::kPlaintext,
      const net::SecureChannelOptions& secure = net::SecureChannelOptions(),
      const TopologyOptions& topology = TopologyOptions(),
      const CursorConfig& cursor_config = CursorConfig{});

  ~ShardedServer() override;

  Result<Bytes> Handle(const Bytes& request) override;

  /// Streaming entry point: kWatch fans one client subscription out to
  /// every shard and merges the per-shard streams into one push stream
  /// with a COMPOSITE resume token (one sequence per shard, shard
  /// order). Local shards are tapped through their WatchHubs; remote
  /// shards get a per-shard pump thread holding a kWatch stream on a
  /// live replica — when that replica dies the pump re-registers on
  /// another with the shard's resume token automatically (the PR 7
  /// failover machinery reports/redials underneath). Every other opcode
  /// behaves exactly like Handle().
  Result<Bytes> HandleStream(const Bytes& request,
                             net::StreamContext* stream) override;

  /// Eager reap of the dropped connection's composite cursors and watch
  /// fanouts. The actual teardown (joining pump threads, closing
  /// per-shard cursors on remote replicas) does I/O, so it is deferred
  /// to the facade's reaper thread — this call only unlinks the state
  /// and returns.
  void OnConnectionClosed(uint64_t connection_id) override;

  /// The composite-cursor table (tests assert counts and reap counters).
  const CursorManager& cursors() const { return cursors_; }

  /// Live composite watch fanouts (tests assert disconnect reaping).
  size_t open_watches() const {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    return watches_.size();
  }

  size_t num_shards() const { return channels_.size(); }
  /// True when the shards live in this process (Create); Connect
  /// deployments have no white-box access.
  bool is_local() const { return !shards_.empty(); }
  /// Direct access for white-box tests. Local deployments only.
  const EncryptedMIndexServer& shard(size_t i) const { return *shards_[i]; }

  /// Per-shard topology snapshots (remote deployments; empty for local
  /// ones): replica health, reconnect counts, replay depth.
  std::vector<ShardTopologyStatus> TopologySnapshot() const;

  /// Total object count across shards (a kGetStats fan-out when remote;
  /// 0 if a remote shard is unreachable).
  uint64_t TotalObjects() const;

 private:
  ShardedServer(std::vector<std::unique_ptr<EncryptedMIndexServer>> shards,
                std::vector<std::unique_ptr<ShardChannel>> channels,
                size_t num_pivots, const CursorConfig& cursor_config);

  /// Shard owning a routing permutation: permutation[0] mod num_shards.
  /// Objects of one top-level Voronoi cell always land together.
  size_t OwnerOf(const mindex::Permutation& permutation) const;

  /// Runs the request on every shard (overlapped) and concatenates the
  /// candidate responses (merged stats), trimming to `limit` by score
  /// when limit > 0.
  Result<Bytes> FanOut(const Bytes& request, size_t limit);

  /// Batch variant: ONE fan-out carries the whole batch; each shard
  /// evaluates every query, then the per-query candidate lists are
  /// merged by score across shards and trimmed to `limits[q]` (0 = no
  /// trim), exactly like `limits.size()` FanOut calls would.
  Result<Bytes> FanOutBatch(const Bytes& request,
                            const std::vector<size_t>& limits);

  /// Submits the request to every shard, then collects: all shards work
  /// concurrently while this thread waits (shared by FanOut / FanOutBatch
  /// / stats / compaction).
  std::vector<Result<Bytes>> CallAllShards(const Bytes& request) const;

  /// Submits per-shard sub-requests (empty entries are skipped), collects
  /// the acknowledged counts, and returns their sum (inserts / deletes).
  Result<uint64_t> ScatterCounted(const std::vector<Bytes>& per_shard) const;

  /// One client watch fanned out over every shard: the shared composite
  /// token state the per-shard producers (local hub adapters or remote
  /// pump threads) serialize on. Held by shared_ptr so producers stay
  /// safe after the facade forgets the watch.
  struct WatchFanout {
    std::mutex mutex;  ///< guards token, lost
    uint64_t watch_id = 0;        ///< facade-visible id
    /// Connection that registered the watch (0 = untracked): the
    /// disconnect reaper stops fanouts by this key so an orphaned watch
    /// no longer lingers until the next delivery sweep hits a dead sink.
    uint64_t conn_id = 0;
    std::vector<uint64_t> token;  ///< per-shard cursors, shard order
    std::shared_ptr<net::PushSink> sink;
    /// A kWatchLost was forwarded: every other producer must stop.
    bool lost = false;
    std::atomic<bool> stop{false};
    /// Local mode: (shard, hub watch id) registrations to unregister.
    std::vector<std::pair<size_t, uint64_t>> local_regs;
    /// Remote mode: one pump thread per shard.
    std::vector<std::thread> pumps;
  };

  /// One open kWatch stream on a remote shard replica.
  struct ShardWatchLeg {
    size_t replica = 0;
    std::shared_ptr<net::TcpTransport> transport;
    uint64_t ticket = 0;         ///< the parked stream request id
    uint64_t shard_watch_id = 0;  ///< id on the shard server (cancel)
    uint64_t start_seq = 0;      ///< shard cursor acknowledged
  };

  /// One shard's leg of a composite cursor: the shard-side cursor id,
  /// the pinned replica transport (remote mode; a cursor must keep
  /// hitting the replica that holds its state), the buffered head of the
  /// shard's stream, and how many candidates were pulled so far (the
  /// positional start_offset a failover reopen resumes at).
  struct CursorLeg {
    uint64_t shard_cursor_id = 0;  ///< 0 = no state left on the shard
    std::shared_ptr<net::TcpTransport> transport;  ///< remote mode only
    size_t replica = 0;
    uint64_t fetched = 0;  ///< candidates pulled off this shard so far
    std::deque<mindex::Candidate> buffer;
    bool exhausted = false;
  };

  /// Facade-side state of one composite cursor: the query (replayed on
  /// failover reopens) and one leg per shard. The k-way merge pulls a
  /// shard's next page only when that shard's buffered head is consumed.
  struct CompositeCursor {
    std::vector<float> query_distances;
    double radius = 0;
    uint64_t page_size = 0;
    uint64_t total = 0;  ///< sum of per-shard ranked totals at open
    /// Summed per-shard collection stats from the leg opens: the open
    /// page reports them exactly like a one-shot fan-out would.
    mindex::SearchStats stats;
    std::vector<CursorLeg> legs;
  };

  Result<Bytes> HandleWatch(const Request& request,
                            net::StreamContext* stream);
  Result<Bytes> HandleWatchCancel(const Request& request);

  Result<Bytes> HandleRangeSearchCursor(const Request& request,
                                        net::StreamContext* stream);
  Result<Bytes> HandleCursorNext(const Request& request,
                                 net::StreamContext* stream);
  /// Opens (or failover-reopens, start_offset > 0) shard `shard`'s leg.
  /// Remote mode pins a live replica (kUp first, then kDegraded) exactly
  /// like watch legs; a remote REJECTION (the shard answered an error)
  /// propagates, a broken transport marks the replica over and tries the
  /// next. The decoded first page lands in the leg's buffer.
  Status OpenCursorLeg(CompositeCursor* cursor, size_t shard,
                       uint64_t start_offset);
  /// Pulls the next page of shard `shard` into its leg's buffer,
  /// reopening on a surviving replica (positional resume at
  /// `leg.fetched`) when the pinned one died mid-cursor.
  Status RefillCursorLeg(CompositeCursor* cursor, size_t shard);
  /// Merges up to `cursor->page_size` candidates: repeatedly pops the
  /// lowest (score, shard index) head, refilling an empty leg only when
  /// its head is actually needed. Byte-compatible with the one-shot
  /// concat + stable-sort merge.
  Result<mindex::CandidateList> MergeNextPage(CompositeCursor* cursor);
  /// Best-effort close of every leg's remaining shard-side cursor.
  void CloseCursorLegs(const std::shared_ptr<CompositeCursor>& cursor);
  /// Hands a teardown closure to the reaper thread (disconnect path —
  /// the transport's event loop must not block on shard I/O).
  void EnqueueReap(std::function<void()> task);
  void ReaperLoop();
  /// Forwards one shard frame to the client with the composite token
  /// (commits the token only when the push was accepted).
  static Status PushComposite(const std::shared_ptr<WatchFanout>& fanout,
                              size_t shard, const WatchFrame& frame);
  /// Opens a kWatch stream on some live replica of `shard` (kUp first,
  /// then kDegraded), marking stream failures over. `has_resume` false
  /// registers fresh; true resumes after `resume_after`.
  Result<ShardWatchLeg> OpenShardWatch(size_t shard,
                                       const WatchFilter& filter,
                                       bool has_resume,
                                       uint64_t resume_after);
  /// Remote pump: collects push frames off `leg`, forwards them, and
  /// re-registers on another replica (with the shard's resume token)
  /// when the stream breaks.
  void PumpShardWatch(std::shared_ptr<WatchFanout> fanout, size_t shard,
                      WatchFilter filter, ShardWatchLeg leg);
  /// Stops every live watch (cancel path + destructor).
  void StopWatch(const std::shared_ptr<WatchFanout>& fanout);

  std::vector<std::unique_ptr<EncryptedMIndexServer>> shards_;  // local only
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  /// Borrowed views of channels_ when they are replica groups (remote).
  std::vector<ReplicaGroupChannel*> groups_;
  size_t num_pivots_ = 0;
  /// Live client watches (composite streams). Guarded by watch_mutex_.
  mutable std::mutex watch_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<WatchFanout>> watches_;
  uint64_t next_watch_id_ = 1;
  /// Open composite cursors (states are CompositeCursor).
  CursorManager cursors_;
  /// Deferred-teardown worker: disconnect reaps enqueue here (joining
  /// watch pumps and closing remote shard cursors both do I/O).
  std::thread reaper_;
  std::mutex reap_mutex_;
  std::condition_variable reap_cv_;
  std::deque<std::function<void()>> reap_queue_;
  bool reap_stop_ = false;
  /// Probes/reconnects the groups_; declared last so it stops before
  /// the channels it watches are destroyed.
  std::unique_ptr<TopologyMonitor> monitor_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SHARDED_SERVER_H_
