// Query authentication for the similarity cloud.
//
// Paper Section 4.3 observes that "an attacker can query the server index
// using an arbitrarily chosen pivot permutation" — the base protocol
// accepts requests from anyone, and although the responses are encrypted,
// each answered probe leaks candidate-set structure. This layer closes
// that hole with a shared-secret request MAC:
//
//   authenticated request := nonce (8 B) || tag (32 B) || request
//   tag := HMAC-SHA256(mac_key, nonce || request)
//
// The data owner derives the MAC key from the secret key
// (SecretKey::DeriveQueryMacKey) and provisions it to the server when the
// service is set up. The server can then verify that a request was built
// by an authorized client, and a bounded nonce cache rejects replays of
// captured requests. Note the trust model: this authenticates *clients to
// the server*; a fully compromised server obviously holds the MAC key and
// could issue its own queries — what it still cannot do is decrypt
// payloads or learn pivots.
//
// Both wrappers are drop-in decorators: AuthenticatingTransport in front
// of any net::Transport on the client, AuthenticatingHandler around any
// net::RequestHandler on the server.

#ifndef SIMCLOUD_SECURE_AUTH_H_
#define SIMCLOUD_SECURE_AUTH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>

#include "common/bytes.h"
#include "common/status.h"
#include "net/transport.h"
#include "secure/secret_key.h"

namespace simcloud {
namespace secure {

/// Server-side decorator: verifies and strips the authentication header,
/// rejects bad tags and replayed nonces, forwards the inner request.
/// Thread-safe (the nonce cache is internally locked).
class AuthenticatingHandler : public net::RequestHandler {
 public:
  static constexpr size_t kNonceSize = 8;
  static constexpr size_t kTagSize = 32;

  /// `inner` must outlive the handler. `replay_window` bounds the nonce
  /// cache; 0 disables replay detection.
  AuthenticatingHandler(Bytes mac_key, net::RequestHandler* inner,
                        size_t replay_window = 4096)
      : mac_key_(std::move(mac_key)),
        inner_(inner),
        replay_window_(replay_window) {}

  Result<Bytes> Handle(const Bytes& request) override;
  /// Verifies, then forwards the stream context unchanged — watch and
  /// cursor opcodes work through the decorator exactly as without it.
  Result<Bytes> HandleStream(const Bytes& request,
                             net::StreamContext* stream) override;
  /// Connection-scoped state (cursors, watches) lives in the inner
  /// handler; pass the reap notification through.
  void OnConnectionClosed(uint64_t connection_id) override {
    inner_->OnConnectionClosed(connection_id);
  }

  /// Requests rejected so far (bad frame, bad tag, or replay).
  uint64_t rejected_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
  }

 private:
  Bytes mac_key_;
  net::RequestHandler* inner_;
  size_t replay_window_;

  mutable std::mutex mutex_;
  uint64_t rejected_ = 0;
  std::set<Bytes> seen_nonces_;
  std::deque<Bytes> nonce_order_;  // eviction order for the bounded cache
};

/// Client-side decorator: prepends nonce + HMAC tag to every request.
/// Implements the pipelined API too, so it composes with request-id
/// (bit-31) framing: each Submit authenticates its own request body —
/// the auth header travels inside the frame body, the transport below
/// owns the frame header — and tickets pass through unchanged. Submit/
/// Collect are as thread-safe as the inner transport's (the nonce
/// counter is atomic); Call serializes like the inner Call.
class AuthenticatingTransport : public net::PipelinedTransport {
 public:
  /// `inner` must outlive the transport. Submit/Collect additionally
  /// require `inner` to be a net::PipelinedTransport (TcpTransport,
  /// LoopbackTransport); they fail with FailedPrecondition otherwise.
  AuthenticatingTransport(Bytes mac_key, net::Transport* inner)
      : mac_key_(std::move(mac_key)),
        inner_(inner),
        pipelined_inner_(dynamic_cast<net::PipelinedTransport*>(inner)) {}

  /// Key hygiene: the MAC key is wiped on destruction.
  ~AuthenticatingTransport() override;

  Result<Bytes> Call(const Bytes& request) override;

  /// Pipelined pass-through: authenticates the request, submits it as a
  /// pipelined (bit-31) frame on the inner transport, returns its
  /// ticket.
  Result<uint64_t> Submit(const Bytes& request) override;
  Result<Bytes> Collect(uint64_t ticket) override;

  const net::TransportCosts& costs() const override {
    return inner_->costs();
  }
  void ResetCosts() override { inner_->ResetCosts(); }

 private:
  /// nonce || tag || request (the wire shape AuthenticatingHandler
  /// strips).
  Result<Bytes> Authenticate(const Bytes& request);

  Bytes mac_key_;
  net::Transport* inner_;
  net::PipelinedTransport* pipelined_inner_;  ///< null when not pipelined
  std::atomic<uint64_t> counter_{0};  // mixed into nonces for uniqueness
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_AUTH_H_
