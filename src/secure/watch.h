// WatchHub: the server-side registry of live change-stream subscriptions
// over one MIndex's MutationBus.
//
// One delivery thread per hub follows the bus: for every subscription it
// replays events after the subscription's cursor, filters them against
// the standing predicate, and hands matching events to the
// subscription's push callback (for a TCP server: EncodeWatchFrame ->
// PushSink::TryPush on the parked request id). Delivery is strictly
// in-order per subscription — the cursor only advances when a frame was
// accepted.
//
// Backpressure and loss are explicit, never silent:
//  * A push that returns FailedPrecondition (the connection's bounded
//    output queue is full) parks the subscription at its cursor; the
//    next sweep retries. A slow watcher therefore costs one parked
//    cursor, not a growing queue — and never stalls other watchers.
//  * When the parked cursor falls off the bus's replay ring, the
//    subscription is LOST: a kWatchLost frame is delivered (itself
//    retried under backpressure) and the subscription is dropped. The
//    client re-runs its query and re-registers fresh.
//  * A push that returns NetworkError means the connection is gone; the
//    subscription is dropped silently (the client knows its own socket
//    died).
//
// The push callback indirection (rather than PushSink directly) lets a
// ShardedServer register facade-side adapters that rewrite per-shard
// tokens into composite tokens before forwarding to the client's sink.

#ifndef SIMCLOUD_SECURE_WATCH_H_
#define SIMCLOUD_SECURE_WATCH_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "mindex/mutation_bus.h"
#include "secure/protocol.h"

namespace simcloud {
namespace secure {

class WatchHub {
 public:
  /// `bus` must outlive the hub (it lives in the MIndex the hub serves).
  explicit WatchHub(const mindex::MutationBus* bus);
  /// Stops the delivery thread; undelivered events are simply dropped
  /// (clients re-register against the next server with their tokens).
  ~WatchHub();

  WatchHub(const WatchHub&) = delete;
  WatchHub& operator=(const WatchHub&) = delete;

  struct Registration {
    uint64_t watch_id = 0;
    /// The stream's starting point: events with seq > start_seq will be
    /// delivered. This is the ack's resume token.
    uint64_t start_seq = 0;
  };

  /// Registers a subscription. Without a resume token (`has_resume`
  /// false) the stream starts at the bus's current sequence — future
  /// events only. With one, the stream resumes after `resume_after`;
  /// OutOfRange ("watch lost: ...") when the replay ring no longer
  /// covers that point — the client must re-run its query. `push` is
  /// called from the delivery thread only, with frames in stream order;
  /// it must be callable until Unregister returns or the hub is
  /// destroyed.
  Result<Registration> Register(
      const WatchFilter& filter, bool has_resume, uint64_t resume_after,
      std::function<Status(const WatchFrame&)> push);

  /// Drops a subscription. Returns false for an unknown id. After this
  /// returns, `push` will never be called again for the id — delivery
  /// sweeps hold the same mutex.
  bool Unregister(uint64_t watch_id);

  /// Live subscriptions (tests).
  size_t active() const;

  /// Whether an insert with `pivot_distances` matches `filter` — the
  /// same conservative pivot-filtering lower bound the range search
  /// prunes with (exposed for the sharded facade and tests). Events
  /// without usable distances match conservatively.
  static bool MatchesInsert(const WatchFilter& filter,
                            const std::vector<float>& pivot_distances);

 private:
  struct Subscription {
    uint64_t id = 0;
    WatchFilter filter;
    /// Last sequence delivered (or skipped as non-matching); the next
    /// frame is the first event beyond it.
    uint64_t cursor = 0;
    std::function<Status(const WatchFrame&)> push;
    /// The subscription fell off the replay ring; only the kWatchLost
    /// frame remains to deliver (retried under backpressure).
    bool lost = false;
    std::string lost_message;
  };

  void DeliveryLoop();
  /// One delivery attempt for one subscription. Returns false when the
  /// subscription is dead (lost frame delivered, or connection gone).
  /// Sets *parked when a frame was refused for backpressure.
  bool DeliverTo(Subscription* sub, bool* parked, bool* progressed);

  const mindex::MutationBus* bus_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;  ///< wakes the idle (sub-less) loop
  std::map<uint64_t, Subscription> subs_;
  uint64_t next_watch_id_ = 1;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_WATCH_H_
