// Server side of the Encrypted M-Index: an M-Index behind the wire
// protocol. The server holds no secret — it sees only pivot permutations
// / (optionally transformed) pivot distances and AES ciphertexts, and
// implements Algorithms 3 and 4 of the paper.

#ifndef SIMCLOUD_SECURE_SERVER_H_
#define SIMCLOUD_SECURE_SERVER_H_

#include <condition_variable>
#include <memory>
#include <shared_mutex>
#include <thread>

#include "mindex/mindex.h"
#include "net/transport.h"
#include "secure/protocol.h"
#include "secure/watch.h"

namespace simcloud {
namespace secure {

/// Request handler wrapping a server-side M-Index.
///
/// Handle() is safe for concurrent calls: mutating requests (insert,
/// delete) take an exclusive lock, searches and stats take a shared lock,
/// so a multi-client TcpServer can drive one instance from many
/// connection threads (paper: "parallel, potentially distributed").
///
/// Compaction is a BACKGROUND service here: the index defers its inline
/// trigger to the server, and once the garbage ratio passes the
/// configured `compaction_trigger` a dedicated thread runs an incremental
/// pass (MIndex::CompactBackground) that shares the index lock with
/// searches and takes it exclusively only for the microsecond begin and
/// swap+remap slices — deletes never pay for a rewrite, and queries keep
/// flowing while the log is compacted underneath them. The kCompact
/// opcode drives the same machinery inline on its worker thread
/// (serialized with the background pass), so its response still carries
/// the finished report.
class EncryptedMIndexServer : public net::RequestHandler {
 public:
  /// Creates the server with an empty index configured by `options`.
  static Result<std::unique_ptr<EncryptedMIndexServer>> Create(
      const mindex::MIndexOptions& options);

  /// Joins the background compaction thread (in-flight pass finishes).
  ~EncryptedMIndexServer() override;

  Result<Bytes> Handle(const Bytes& request) override;

  /// Streaming entry point: kWatch registers a change-stream subscription
  /// pushing frames through `stream` (FailedPrecondition when the
  /// transport cannot push — legacy framing, loopback); every other
  /// opcode behaves exactly like Handle().
  Result<Bytes> HandleStream(const Bytes& request,
                             net::StreamContext* stream) override;

  /// Direct access for white-box tests and stats.
  const mindex::MIndex& index() const { return *index_; }

  /// The change-stream hub (the sharded facade registers adapters here
  /// in local mode; tests inspect `active()`).
  WatchHub* watch_hub() { return watch_hub_.get(); }

  /// Search statistics accumulated over all handled queries.
  mindex::SearchStats total_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return total_stats_;
  }

 private:
  EncryptedMIndexServer(std::unique_ptr<mindex::MIndex> index,
                        double compaction_trigger);

  void AccumulateStats(const mindex::SearchStats& stats);
  /// One lock acquisition for a whole batch of per-query stats.
  void AccumulateStatsBatch(const std::vector<mindex::SearchStats>& stats);

  /// Wakes the background thread if the garbage ratio passed the trigger
  /// (called after mutations, without the index lock held).
  void MaybeKickCompaction();
  void CompactionLoop();

  Result<Bytes> HandleWatch(const Request& request,
                            net::StreamContext* stream);

  std::unique_ptr<mindex::MIndex> index_;
  /// Readers-writer lock over the index: searches run concurrently,
  /// inserts/deletes exclusively.
  mutable std::shared_mutex index_mutex_;
  mutable std::mutex stats_mutex_;  // guards total_stats_ only
  mindex::SearchStats total_stats_;

  /// The configured trigger; the index defers inline triggering
  /// (SetDeferredCompaction) so the pass runs here, not under a delete.
  const double compaction_trigger_;
  std::thread compaction_thread_;
  std::mutex compaction_mutex_;  // guards the two flags below
  std::condition_variable compaction_cv_;
  bool compaction_kick_ = false;
  bool compaction_stop_ = false;

  /// Declared after index_ so the delivery thread stops before the
  /// index (and its mutation bus) is torn down.
  std::unique_ptr<WatchHub> watch_hub_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SERVER_H_
