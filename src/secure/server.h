// Server side of the Encrypted M-Index: an M-Index behind the wire
// protocol. The server holds no secret — it sees only pivot permutations
// / (optionally transformed) pivot distances and AES ciphertexts, and
// implements Algorithms 3 and 4 of the paper.

#ifndef SIMCLOUD_SECURE_SERVER_H_
#define SIMCLOUD_SECURE_SERVER_H_

#include <condition_variable>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mindex/mindex.h"
#include "net/transport.h"
#include "secure/cursor.h"
#include "secure/protocol.h"
#include "secure/watch.h"

namespace simcloud {
namespace secure {

/// Request handler wrapping a server-side M-Index.
///
/// Handle() is safe for concurrent calls: mutating requests (insert,
/// delete) take an exclusive lock, searches and stats take a shared lock,
/// so a multi-client TcpServer can drive one instance from many
/// connection threads (paper: "parallel, potentially distributed").
///
/// Compaction is a BACKGROUND service here: the index defers its inline
/// trigger to the server, and once the garbage ratio passes the
/// configured `compaction_trigger` a dedicated thread runs an incremental
/// pass (MIndex::CompactBackground) that shares the index lock with
/// searches and takes it exclusively only for the microsecond begin and
/// swap+remap slices — deletes never pay for a rewrite, and queries keep
/// flowing while the log is compacted underneath them. The kCompact
/// opcode drives the same machinery inline on its worker thread
/// (serialized with the background pass), so its response still carries
/// the finished report.
class EncryptedMIndexServer : public net::RequestHandler {
 public:
  /// Creates the server with an empty index configured by `options`.
  /// `cursor_config` bounds the server-side cursor table (defaults are
  /// production-sized; tests shrink the TTL / cursor cap).
  static Result<std::unique_ptr<EncryptedMIndexServer>> Create(
      const mindex::MIndexOptions& options,
      const CursorConfig& cursor_config = CursorConfig{});

  /// Joins the background compaction thread (in-flight pass finishes).
  ~EncryptedMIndexServer() override;

  Result<Bytes> Handle(const Bytes& request) override;

  /// Streaming entry point: kWatch registers a change-stream subscription
  /// pushing frames through `stream` (FailedPrecondition when the
  /// transport cannot push — legacy framing, loopback); every other
  /// opcode behaves exactly like Handle().
  Result<Bytes> HandleStream(const Bytes& request,
                             net::StreamContext* stream) override;

  /// Eager reap of connection-scoped state: open cursors and watch
  /// registrations of the dropped connection are released immediately
  /// instead of lingering until TTL / delivery-sweep. Non-blocking
  /// (called from the transport's event loop).
  void OnConnectionClosed(uint64_t connection_id) override;

  /// Direct access for white-box tests and stats.
  const mindex::MIndex& index() const { return *index_; }

  /// The cursor table (tests assert open counts and reap counters).
  const CursorManager& cursors() const { return cursors_; }

  /// The change-stream hub (the sharded facade registers adapters here
  /// in local mode; tests inspect `active()`).
  WatchHub* watch_hub() { return watch_hub_.get(); }

  /// Search statistics accumulated over all handled queries.
  mindex::SearchStats total_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return total_stats_;
  }

 private:
  EncryptedMIndexServer(std::unique_ptr<mindex::MIndex> index,
                        double compaction_trigger,
                        const CursorConfig& cursor_config);

  /// Server-side state of one open range cursor: the ranked snapshot
  /// (ids, scores, payload handles — no payload bytes) plus the paging
  /// position. `compaction_passes` guards against handle remapping: a
  /// completed pass since the open invalidates the cursor.
  struct RangeCursor {
    mindex::RankedCandidates ranked;
    size_t next = 0;
    uint64_t page_size = 0;
    uint64_t compaction_passes = 0;
  };

  void AccumulateStats(const mindex::SearchStats& stats);
  /// One lock acquisition for a whole batch of per-query stats.
  void AccumulateStatsBatch(const std::vector<mindex::SearchStats>& stats);

  /// Wakes the background thread if the garbage ratio passed the trigger
  /// (called after mutations, without the index lock held).
  void MaybeKickCompaction();
  void CompactionLoop();

  Result<Bytes> HandleWatch(const Request& request,
                            net::StreamContext* stream);

  Result<Bytes> HandleRangeSearchCursor(const Request& request,
                                        net::StreamContext* stream);
  Result<Bytes> HandleCursorNext(const Request& request,
                                 net::StreamContext* stream);

  std::unique_ptr<mindex::MIndex> index_;
  /// Readers-writer lock over the index: searches run concurrently,
  /// inserts/deletes exclusively.
  mutable std::shared_mutex index_mutex_;
  mutable std::mutex stats_mutex_;  // guards total_stats_ only
  mindex::SearchStats total_stats_;

  /// The configured trigger; the index defers inline triggering
  /// (SetDeferredCompaction) so the pass runs here, not under a delete.
  const double compaction_trigger_;
  std::thread compaction_thread_;
  std::mutex compaction_mutex_;  // guards the two flags below
  std::condition_variable compaction_cv_;
  bool compaction_kick_ = false;
  bool compaction_stop_ = false;

  /// Declared after index_ so the delivery thread stops before the
  /// index (and its mutation bus) is torn down.
  std::unique_ptr<WatchHub> watch_hub_;

  /// Open server-side cursors (states are RangeCursor snapshots).
  CursorManager cursors_;

  /// Connection <-> watch bookkeeping for the disconnect reap: which
  /// watch ids each pipelined connection registered. Guarded by
  /// conn_mutex_; ids registered through a context without identity
  /// (connection_id 0) are not tracked and rely on explicit cancel.
  std::mutex conn_mutex_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> conn_watches_;
  std::unordered_map<uint64_t, uint64_t> watch_conns_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SERVER_H_
