// Server side of the Encrypted M-Index: an M-Index behind the wire
// protocol. The server holds no secret — it sees only pivot permutations
// / (optionally transformed) pivot distances and AES ciphertexts, and
// implements Algorithms 3 and 4 of the paper.

#ifndef SIMCLOUD_SECURE_SERVER_H_
#define SIMCLOUD_SECURE_SERVER_H_

#include <memory>
#include <shared_mutex>

#include "mindex/mindex.h"
#include "net/transport.h"
#include "secure/protocol.h"

namespace simcloud {
namespace secure {

/// Request handler wrapping a server-side M-Index.
///
/// Handle() is safe for concurrent calls: mutating requests (insert,
/// delete) take an exclusive lock, searches and stats take a shared lock,
/// so a multi-client TcpServer can drive one instance from many
/// connection threads (paper: "parallel, potentially distributed").
class EncryptedMIndexServer : public net::RequestHandler {
 public:
  /// Creates the server with an empty index configured by `options`.
  static Result<std::unique_ptr<EncryptedMIndexServer>> Create(
      const mindex::MIndexOptions& options);

  Result<Bytes> Handle(const Bytes& request) override;

  /// Direct access for white-box tests and stats.
  const mindex::MIndex& index() const { return *index_; }

  /// Search statistics accumulated over all handled queries.
  mindex::SearchStats total_search_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return total_stats_;
  }

 private:
  explicit EncryptedMIndexServer(std::unique_ptr<mindex::MIndex> index)
      : index_(std::move(index)) {}

  void AccumulateStats(const mindex::SearchStats& stats);
  /// One lock acquisition for a whole batch of per-query stats.
  void AccumulateStatsBatch(const std::vector<mindex::SearchStats>& stats);

  std::unique_ptr<mindex::MIndex> index_;
  /// Readers-writer lock over the index: searches run concurrently,
  /// inserts/deletes exclusively.
  mutable std::shared_mutex index_mutex_;
  mutable std::mutex stats_mutex_;  // guards total_stats_ only
  mindex::SearchStats total_stats_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_SERVER_H_
