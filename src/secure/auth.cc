#include "secure/auth.h"

#include "crypto/hmac.h"
#include "crypto/secure_random.h"

namespace simcloud {
namespace secure {

namespace {

Bytes ComputeTag(const Bytes& mac_key, const uint8_t* nonce,
                 const Bytes& request) {
  Bytes message;
  message.reserve(AuthenticatingHandler::kNonceSize + request.size());
  message.insert(message.end(), nonce,
                 nonce + AuthenticatingHandler::kNonceSize);
  message.insert(message.end(), request.begin(), request.end());
  return crypto::HmacSha256(mac_key, message);
}

}  // namespace

Result<Bytes> AuthenticatingHandler::Handle(const Bytes& request) {
  return HandleStream(request, nullptr);
}

Result<Bytes> AuthenticatingHandler::HandleStream(const Bytes& request,
                                                  net::StreamContext* stream) {
  constexpr size_t kHeader = kNonceSize + kTagSize;
  auto reject = [this](const char* reason) -> Status {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    return Status::PermissionDenied(reason);
  };
  if (request.size() < kHeader) {
    return reject("request too short for authentication header");
  }
  const Bytes tag(request.begin() + kNonceSize,
                  request.begin() + kHeader);
  const Bytes inner_request(request.begin() + kHeader, request.end());
  const Bytes expected = ComputeTag(mac_key_, request.data(), inner_request);
  if (!ConstantTimeEquals(tag, expected)) {
    return reject("request MAC verification failed");
  }
  if (replay_window_ > 0) {
    Bytes nonce(request.begin(), request.begin() + kNonceSize);
    std::lock_guard<std::mutex> lock(mutex_);
    if (seen_nonces_.count(nonce) > 0) {
      ++rejected_;
      return Status::PermissionDenied("replayed request nonce");
    }
    seen_nonces_.insert(nonce);
    nonce_order_.push_back(std::move(nonce));
    while (nonce_order_.size() > replay_window_) {
      seen_nonces_.erase(nonce_order_.front());
      nonce_order_.pop_front();
    }
  }
  return inner_->HandleStream(inner_request, stream);
}

AuthenticatingTransport::~AuthenticatingTransport() {
  WipeBytes(&mac_key_);
}

Result<Bytes> AuthenticatingTransport::Authenticate(const Bytes& request) {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes nonce,
                            crypto::SecureRandom::Generate(
                                AuthenticatingHandler::kNonceSize));
  // Mix a local counter into the nonce so even a broken entropy source
  // cannot repeat nonces within one client.
  const uint64_t counter = counter_.fetch_add(1);
  for (size_t i = 0; i < sizeof(counter) && i < nonce.size(); ++i) {
    nonce[i] ^= static_cast<uint8_t>(counter >> (8 * i));
  }
  const Bytes tag = ComputeTag(mac_key_, nonce.data(), request);

  Bytes framed;
  framed.reserve(nonce.size() + tag.size() + request.size());
  framed.insert(framed.end(), nonce.begin(), nonce.end());
  framed.insert(framed.end(), tag.begin(), tag.end());
  framed.insert(framed.end(), request.begin(), request.end());
  return framed;
}

Result<Bytes> AuthenticatingTransport::Call(const Bytes& request) {
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes framed, Authenticate(request));
  return inner_->Call(framed);
}

Result<uint64_t> AuthenticatingTransport::Submit(const Bytes& request) {
  if (pipelined_inner_ == nullptr) {
    return Status::FailedPrecondition(
        "inner transport does not support pipelining");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes framed, Authenticate(request));
  return pipelined_inner_->Submit(framed);
}

Result<Bytes> AuthenticatingTransport::Collect(uint64_t ticket) {
  if (pipelined_inner_ == nullptr) {
    return Status::FailedPrecondition(
        "inner transport does not support pipelining");
  }
  return pipelined_inner_->Collect(ticket);
}

}  // namespace secure
}  // namespace simcloud
