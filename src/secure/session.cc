#include "secure/session.h"

namespace simcloud {
namespace secure {

net::SecureChannelOptions SecureSessionOptions(const SecretKey& key) {
  return SecureSessionOptions(key.DeriveChannelKey());
}

net::SecureChannelOptions SecureSessionOptions(Bytes psk) {
  net::SecureChannelOptions options;
  options.psk = std::move(psk);
  return options;
}

Result<std::unique_ptr<net::TcpTransport>> ConnectSecure(
    const std::string& host, uint16_t port, const SecretKey& key) {
  return net::TcpTransport::Connect(host, port, net::ChannelPolicy::kSecure,
                                    SecureSessionOptions(key));
}

}  // namespace secure
}  // namespace simcloud
