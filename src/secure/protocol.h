// Wire protocol between the encryption client and the M-Index server.
//
// Every request starts with a one-byte opcode; bodies are BinaryWriter
// encodings of the structures below. The protocol deliberately carries
// only what the paper's Algorithms 1-4 exchange: routing metadata
// (permutations / pivot distances), opaque payloads, radii and candidate
// set sizes — never plaintext objects or pivots.

#ifndef SIMCLOUD_SECURE_PROTOCOL_H_
#define SIMCLOUD_SECURE_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"
#include "mindex/entry.h"

namespace simcloud {
namespace secure {

/// Maximum queries per batch request the server accepts; a larger batch
/// is rejected at decode time (bounds per-request server work).
inline constexpr uint64_t kMaxBatchQueries = 4096;

/// Opcodes of the encrypted M-Index service.
enum class Op : uint8_t {
  kInsertBatch = 1,       ///< bulk insert of encrypted objects (Alg. 1)
  kRangeSearch = 2,       ///< precise range candidates (Alg. 3)
  kApproxKnn = 3,         ///< pre-ranked approximate candidates (Alg. 4)
  kGetStats = 4,          ///< index statistics
  kDelete = 5,            ///< remove one object by id + routing permutation
  kRangeSearchBatch = 6,  ///< many range queries, one round trip
  kApproxKnnBatch = 7,    ///< many approximate queries, one round trip
  kDeleteBatch = 8,       ///< bulk delete, one lock + one free pass
  kCompact = 9,           ///< admin: compact the payload log(s)
  kPing = 10,             ///< no-op health check / pure-RTT probe
};

/// One insert item: exactly the encrypted object `e` of Algorithm 1.
struct InsertItem {
  metric::ObjectId id = 0;
  std::vector<float> pivot_distances;  ///< precise strategy (may be empty)
  mindex::Permutation permutation;     ///< approx strategy (may be empty)
  Bytes payload;                       ///< AES ciphertext
};

/// One item of a batched delete: the id plus the routing permutation the
/// insert used — exactly what the single kDelete opcode carries, so the
/// batch leaks nothing more.
struct DeleteItem {
  metric::ObjectId id = 0;
  mindex::Permutation permutation;
};

/// Serialized requests.
Bytes EncodeInsertBatchRequest(const std::vector<InsertItem>& items);
Bytes EncodeRangeSearchRequest(const std::vector<float>& query_distances,
                               double radius);
Bytes EncodeApproxKnnRequest(const mindex::QuerySignature& query,
                             uint64_t cand_size);
Bytes EncodeGetStatsRequest();
Bytes EncodeDeleteRequest(metric::ObjectId id,
                          const mindex::Permutation& permutation);
Bytes EncodeRangeSearchBatchRequest(
    const std::vector<mindex::RangeQuery>& queries);
Bytes EncodeApproxKnnBatchRequest(const std::vector<mindex::KnnQuery>& queries);
Bytes EncodeDeleteBatchRequest(const std::vector<DeleteItem>& items);
/// `force` compacts whenever any dead bytes exist; otherwise the server's
/// configured `compaction_trigger` decides.
Bytes EncodeCompactRequest(bool force);
/// Touches no index state; the empty response measures pure transport
/// cost (and, pipelined, transport overlap) in benches and tests.
Bytes EncodePingRequest();

/// Decoded request (server side).
struct Request {
  Op op;
  std::vector<InsertItem> insert_items;      // kInsertBatch
  std::vector<float> query_distances;        // kRangeSearch
  double radius = 0;                         // kRangeSearch
  mindex::QuerySignature query;              // kApproxKnn
  uint64_t cand_size = 0;                    // kApproxKnn
  metric::ObjectId delete_id = 0;            // kDelete
  mindex::Permutation delete_permutation;    // kDelete
  std::vector<mindex::RangeQuery> range_queries;  // kRangeSearchBatch
  std::vector<mindex::KnnQuery> knn_queries;      // kApproxKnnBatch
  std::vector<DeleteItem> delete_items;           // kDeleteBatch
  bool compact_force = false;                     // kCompact
};
Result<Request> DecodeRequest(const Bytes& data);

/// Candidate-set response (kRangeSearch / kApproxKnn).
Bytes EncodeCandidateResponse(const mindex::CandidateList& candidates,
                              const mindex::SearchStats& stats);
struct CandidateResponse {
  mindex::CandidateList candidates;
  mindex::SearchStats stats;
};
Result<CandidateResponse> DecodeCandidateResponse(const Bytes& data);

/// Batched candidate-set response (kRangeSearchBatch / kApproxKnnBatch).
/// Dictionary-encoded: the deduplicated payload bytes are shipped once,
/// followed by per-query blocks of (stats, ranked candidate references).
/// Overlapping or repeated queries therefore cost one payload transfer
/// per distinct ciphertext, not per candidate. Materialize(q) expands a
/// query into the exact CandidateResponse the single-query opcode would
/// have produced.
Bytes EncodeBatchCandidateResponse(const mindex::BatchCandidates& batch,
                                   const std::vector<mindex::SearchStats>& stats);
struct BatchCandidateResponse {
  mindex::BatchCandidates batch;
  std::vector<mindex::SearchStats> stats;

  size_t query_count() const { return batch.per_query.size(); }
  CandidateResponse Materialize(size_t q) const {
    return CandidateResponse{batch.MaterializeQuery(q), stats[q]};
  }
};
Result<BatchCandidateResponse> DecodeBatchCandidateResponse(const Bytes& data);

/// Insert acknowledgement.
Bytes EncodeInsertResponse(uint64_t inserted);
Result<uint64_t> DecodeInsertResponse(const Bytes& data);

/// Index statistics response.
Bytes EncodeStatsResponse(const mindex::IndexStats& stats);
Result<mindex::IndexStats> DecodeStatsResponse(const Bytes& data);

/// Compaction report response (kCompact). Sharded deployments aggregate
/// per-shard reports before encoding.
Bytes EncodeCompactResponse(const mindex::CompactionReport& report);
Result<mindex::CompactionReport> DecodeCompactResponse(const Bytes& data);

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_PROTOCOL_H_
