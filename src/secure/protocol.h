// Wire protocol between the encryption client and the M-Index server.
//
// Every request starts with a one-byte opcode; bodies are BinaryWriter
// encodings of the structures below. The protocol deliberately carries
// only what the paper's Algorithms 1-4 exchange: routing metadata
// (permutations / pivot distances), opaque payloads, radii and candidate
// set sizes — never plaintext objects or pivots.

#ifndef SIMCLOUD_SECURE_PROTOCOL_H_
#define SIMCLOUD_SECURE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/serialize.h"
#include "common/status.h"
#include "mindex/entry.h"
#include "obs/metrics.h"

namespace simcloud {
namespace secure {

/// Maximum queries per batch request the server accepts; a larger batch
/// is rejected at decode time (bounds per-request server work).
inline constexpr uint64_t kMaxBatchQueries = 4096;

/// Opcodes of the encrypted M-Index service.
enum class Op : uint8_t {
  kInsertBatch = 1,       ///< bulk insert of encrypted objects (Alg. 1)
  kRangeSearch = 2,       ///< precise range candidates (Alg. 3)
  kApproxKnn = 3,         ///< pre-ranked approximate candidates (Alg. 4)
  kGetStats = 4,          ///< index statistics
  kDelete = 5,            ///< remove one object by id + routing permutation
  kRangeSearchBatch = 6,  ///< many range queries, one round trip
  kApproxKnnBatch = 7,    ///< many approximate queries, one round trip
  kDeleteBatch = 8,       ///< bulk delete, one lock + one free pass
  kCompact = 9,           ///< admin: compact the payload log(s)
  kPing = 10,             ///< no-op health check / pure-RTT probe
  kWatch = 11,            ///< register a standing change-stream subscription
  kWatchCancel = 12,      ///< tear down a subscription by watch id
  kRangeSearchCursor = 13,  ///< open a paged range search: first page + id
  kCursorNext = 14,         ///< next page of an open cursor
  kCursorClose = 15,        ///< release a cursor's server-side state
  kGetMetrics = 16,         ///< admin: observability registry snapshot
};

/// One insert item: exactly the encrypted object `e` of Algorithm 1.
struct InsertItem {
  metric::ObjectId id = 0;
  std::vector<float> pivot_distances;  ///< precise strategy (may be empty)
  mindex::Permutation permutation;     ///< approx strategy (may be empty)
  Bytes payload;                       ///< AES ciphertext
};

/// One item of a batched delete: the id plus the routing permutation the
/// insert used — exactly what the single kDelete opcode carries, so the
/// batch leaks nothing more.
struct DeleteItem {
  metric::ObjectId id = 0;
  mindex::Permutation permutation;
};

/// Standing predicate of a kWatch subscription. kAll streams every
/// mutation. kRange streams inserts whose pivot-filtering lower bound
/// (max_i |q_i - o_i| over the insert's pivot distances) is <= radius —
/// the same conservative bound the range search prunes with, so the
/// stream never misses a true match; deletes are always delivered (the
/// server no longer holds the object, so it cannot evaluate the
/// predicate — the client drops ids it never matched). Like every query,
/// the filter carries only transformed pivot distances, never plaintext.
struct WatchFilter {
  enum class Kind : uint8_t { kAll = 0, kRange = 1 };
  Kind kind = Kind::kAll;
  std::vector<float> query_distances;  ///< kRange only
  double radius = 0;                   ///< kRange only (transformed)
};

/// One frame of a change stream, flowing server -> client as a push on
/// the watch's request id. The first byte tags the frame kind so the
/// registration acknowledgement and pushed events share one decoder —
/// the hub may legitimately enqueue an event push before the worker's
/// ack lands on the same id, and the client just stashes early events
/// until the ack arrives.
struct WatchFrame {
  enum class Kind : uint8_t {
    kAck = 0,     ///< registration accepted; watch_id + baseline token
    kInsert = 1,  ///< object inserted: object_id + payload + token
    kDelete = 2,  ///< object deleted: object_id + token
    kLost = 3,    ///< replay ring overflowed; stream is dead, see message
  };
  Kind kind = Kind::kAck;
  uint64_t watch_id = 0;  ///< kAck: the handle kWatchCancel takes
  /// Resume token: one per-shard sequence number per shard, in shard
  /// order (size 1 on a single server, shard count on a facade). The
  /// token on an event resumes the stream immediately after that event;
  /// the ack's token is the stream's starting point.
  std::vector<uint64_t> token;
  metric::ObjectId object_id = 0;  ///< kInsert / kDelete
  Bytes payload;                   ///< kInsert: the opaque ciphertext
  std::string message;             ///< kLost: human-readable reason
};

/// Serialized requests.
Bytes EncodeInsertBatchRequest(const std::vector<InsertItem>& items);
Bytes EncodeRangeSearchRequest(const std::vector<float>& query_distances,
                               double radius);
Bytes EncodeApproxKnnRequest(const mindex::QuerySignature& query,
                             uint64_t cand_size);
Bytes EncodeGetStatsRequest();
Bytes EncodeDeleteRequest(metric::ObjectId id,
                          const mindex::Permutation& permutation);
Bytes EncodeRangeSearchBatchRequest(
    const std::vector<mindex::RangeQuery>& queries);
Bytes EncodeApproxKnnBatchRequest(const std::vector<mindex::KnnQuery>& queries);
Bytes EncodeDeleteBatchRequest(const std::vector<DeleteItem>& items);
/// `force` compacts whenever any dead bytes exist; otherwise the server's
/// configured `compaction_trigger` decides.
Bytes EncodeCompactRequest(bool force);
/// Touches no index state; the empty response measures pure transport
/// cost (and, pipelined, transport overlap) in benches and tests.
Bytes EncodePingRequest();
/// Registers a change-stream subscription. An empty `resume_token` starts
/// the stream at the shard's current sequence (deliver the future only);
/// a non-empty token resumes after the given per-shard sequences and is
/// rejected with OutOfRange ("watch lost") when the replay ring no longer
/// covers them. Requires the pipelined framing — a legacy connection gets
/// a clean FailedPrecondition error.
Bytes EncodeWatchRequest(const WatchFilter& filter,
                         const std::vector<uint64_t>& resume_token);
/// Tears down the subscription `watch_id` (from the ack frame). After
/// the cancel response every frame for that id has already been sent —
/// responses and pushes share one FIFO per connection.
Bytes EncodeWatchCancelRequest(uint64_t watch_id);

/// Stream frames (the kWatch response body and every push on its id).
Bytes EncodeWatchFrame(const WatchFrame& frame);
Result<WatchFrame> DecodeWatchFrame(const Bytes& data);

/// Opens a server-side cursor over a precise range search: the server
/// runs the same collect + rank pass as kRangeSearch, pins the ranked
/// snapshot, and answers with the first page plus a cursor id. Requires
/// the pipelined framing (like kWatch); legacy connections get a clean
/// FailedPrecondition. `start_offset` skips that many ranked candidates
/// before the first page — 0 for a fresh cursor; a sharded facade uses it
/// to reopen a shard leg on a surviving replica after failover.
Bytes EncodeRangeSearchCursorRequest(
    const std::vector<float>& query_distances, double radius,
    uint64_t page_size, uint64_t start_offset = 0);
/// Next page of cursor `cursor_id` (page size fixed at open). Errors:
/// NotFound "unknown cursor" (garbage/already-closed id),
/// FailedPrecondition "cursor expired" (TTL passed — never a silent empty
/// page) or "cursor invalidated" (a compaction pass remapped payload
/// handles since the open).
Bytes EncodeCursorNextRequest(uint64_t cursor_id);
/// Releases cursor state. Idempotent: closing an unknown/expired id
/// succeeds with 0, a live one with 1 (EncodeInsertResponse ack).
Bytes EncodeCursorCloseRequest(uint64_t cursor_id);

/// One page of an open cursor (the kRangeSearchCursor and kCursorNext
/// response body). `cursor_id` echoes the open cursor, or 0 when the
/// server kept NO state — the page that exhausts the result set (possibly
/// the first) releases the cursor eagerly, so a well-behaved client never
/// needs kCursorClose on a drained stream. `total` is the ranked
/// candidate count at open (what kRangeSearch's stats.candidates would
/// report). The open page carries the full collection stats; later pages
/// carry zeros except stats.candidates = page size.
struct CursorPage {
  uint64_t cursor_id = 0;  ///< 0: exhausted, no server state remains
  uint64_t total = 0;      ///< ranked candidates pinned at open
  mindex::SearchStats stats;
  mindex::CandidateList candidates;

  bool exhausted() const { return cursor_id == 0; }
};
Bytes EncodeCursorPage(const CursorPage& page);
Result<CursorPage> DecodeCursorPage(const Bytes& data);

/// Decoded request (server side).
struct Request {
  Op op;
  std::vector<InsertItem> insert_items;      // kInsertBatch
  std::vector<float> query_distances;        // kRangeSearch
  double radius = 0;                         // kRangeSearch
  mindex::QuerySignature query;              // kApproxKnn
  uint64_t cand_size = 0;                    // kApproxKnn
  metric::ObjectId delete_id = 0;            // kDelete
  mindex::Permutation delete_permutation;    // kDelete
  std::vector<mindex::RangeQuery> range_queries;  // kRangeSearchBatch
  std::vector<mindex::KnnQuery> knn_queries;      // kApproxKnnBatch
  std::vector<DeleteItem> delete_items;           // kDeleteBatch
  bool compact_force = false;                     // kCompact
  WatchFilter watch_filter;                       // kWatch
  std::vector<uint64_t> watch_resume_token;       // kWatch (empty = fresh)
  uint64_t watch_cancel_id = 0;                   // kWatchCancel
  uint64_t cursor_page_size = 0;     // kRangeSearchCursor (query fields
                                     // reuse query_distances / radius)
  uint64_t cursor_start_offset = 0;  // kRangeSearchCursor (failover reopen)
  uint64_t cursor_id = 0;            // kCursorNext / kCursorClose
};
Result<Request> DecodeRequest(const Bytes& data);

/// Candidate-set response (kRangeSearch / kApproxKnn).
Bytes EncodeCandidateResponse(const mindex::CandidateList& candidates,
                              const mindex::SearchStats& stats);
struct CandidateResponse {
  mindex::CandidateList candidates;
  mindex::SearchStats stats;
};
Result<CandidateResponse> DecodeCandidateResponse(const Bytes& data);

/// Batched candidate-set response (kRangeSearchBatch / kApproxKnnBatch).
/// Dictionary-encoded: the deduplicated payload bytes are shipped once,
/// followed by per-query blocks of (stats, ranked candidate references).
/// Overlapping or repeated queries therefore cost one payload transfer
/// per distinct ciphertext, not per candidate. Materialize(q) expands a
/// query into the exact CandidateResponse the single-query opcode would
/// have produced.
Bytes EncodeBatchCandidateResponse(const mindex::BatchCandidates& batch,
                                   const std::vector<mindex::SearchStats>& stats);
struct BatchCandidateResponse {
  mindex::BatchCandidates batch;
  std::vector<mindex::SearchStats> stats;

  size_t query_count() const { return batch.per_query.size(); }
  CandidateResponse Materialize(size_t q) const {
    return CandidateResponse{batch.MaterializeQuery(q), stats[q]};
  }
};
Result<BatchCandidateResponse> DecodeBatchCandidateResponse(const Bytes& data);

/// Insert acknowledgement.
Bytes EncodeInsertResponse(uint64_t inserted);
Result<uint64_t> DecodeInsertResponse(const Bytes& data);

/// Index statistics response.
Bytes EncodeStatsResponse(const mindex::IndexStats& stats);
Result<mindex::IndexStats> DecodeStatsResponse(const Bytes& data);

/// Compaction report response (kCompact). Sharded deployments aggregate
/// per-shard reports before encoding.
Bytes EncodeCompactResponse(const mindex::CompactionReport& report);
Result<mindex::CompactionReport> DecodeCompactResponse(const Bytes& data);

/// Observability scrape (kGetMetrics): an empty-bodied request — any
/// trailing bytes are rejected, so a misframed opcode-16 frame can never
/// leak a registry snapshot. Requires the pipelined framing on the wire
/// (legacy connections get a clean FailedPrecondition; in-process calls
/// are allowed). The response is the append-only metrics wire block of
/// obs::EncodeMetricsSnapshot — a ShardedServer answers with the
/// bucket-correct merge of its shards' snapshots.
Bytes EncodeGetMetricsRequest();
Bytes EncodeMetricsResponse(const obs::MetricsSnapshot& snapshot);
Result<obs::MetricsSnapshot> DecodeMetricsResponse(const Bytes& data);

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_PROTOCOL_H_
