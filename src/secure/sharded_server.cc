#include "secure/sharded_server.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "mindex/permutation.h"
#include "net/tcp.h"

namespace simcloud {
namespace secure {

Result<Bytes> ShardChannel::Call(const Bytes& request) {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t ticket, Submit(request));
  return Collect(ticket);
}

namespace {

/// In-process shard channel: a small pool of persistent worker threads
/// executes the shard's Handle() calls, so a fan-out keeps every shard
/// busy without spawning threads per request, and concurrent facade
/// calls still overlap on one shard (EncryptedMIndexServer's
/// readers-writer lock lets its searches run in parallel; writes
/// serialize on that lock regardless of submission order).
class LocalShardChannel : public ShardChannel {
 public:
  explicit LocalShardChannel(net::RequestHandler* handler,
                             size_t num_workers = 2)
      : handler_(handler) {
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back(&LocalShardChannel::WorkerLoop, this);
    }
  }

  ~LocalShardChannel() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  Result<uint64_t> Submit(const Bytes& request) override {
    uint64_t ticket;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ticket = next_ticket_++;
      queue_.emplace_back(ticket, request);
    }
    cv_.notify_all();
    return ticket;
  }

  Result<Bytes> Collect(uint64_t ticket) override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return ready_.count(ticket) != 0; });
    Result<Bytes> response = std::move(ready_.at(ticket));
    ready_.erase(ticket);
    return response;
  }

 private:
  void WorkerLoop() {
    for (;;) {
      uint64_t ticket;
      Bytes request;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        ticket = queue_.front().first;
        request = std::move(queue_.front().second);
        queue_.pop_front();
      }
      Result<Bytes> response = handler_->Handle(request);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ready_.emplace(ticket, std::move(response));
      }
      cv_.notify_all();
    }
  }

  net::RequestHandler* handler_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::pair<uint64_t, Bytes>> queue_;
  std::map<uint64_t, Result<Bytes>> ready_;
  uint64_t next_ticket_ = 1;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Remote shard channel: one persistent pipelined TCP connection. The
/// transport's Submit/Collect are thread-safe, so concurrent fan-outs
/// share the connection.
class TransportShardChannel : public ShardChannel {
 public:
  explicit TransportShardChannel(std::unique_ptr<net::TcpTransport> transport)
      : transport_(std::move(transport)) {}

  Result<uint64_t> Submit(const Bytes& request) override {
    return transport_->Submit(request);
  }
  Result<Bytes> Collect(uint64_t ticket) override {
    return transport_->Collect(ticket);
  }

 private:
  std::unique_ptr<net::TcpTransport> transport_;
};

}  // namespace

Result<std::unique_ptr<ShardedServer>> ShardedServer::Create(
    const mindex::MIndexOptions& options, size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::vector<std::unique_ptr<EncryptedMIndexServer>> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    mindex::MIndexOptions shard_options = options;
    if (!shard_options.disk_path.empty()) {
      shard_options.disk_path += "." + std::to_string(i);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<EncryptedMIndexServer> shard,
                              EncryptedMIndexServer::Create(shard_options));
    shards.push_back(std::move(shard));
  }
  std::vector<std::unique_ptr<ShardChannel>> channels;
  channels.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    channels.push_back(std::make_unique<LocalShardChannel>(shards[i].get()));
  }
  return std::unique_ptr<ShardedServer>(new ShardedServer(
      std::move(shards), std::move(channels), options.num_pivots));
}

Result<std::unique_ptr<ShardedServer>> ShardedServer::Connect(
    const std::vector<ShardEndpoint>& endpoints, size_t num_pivots,
    net::ChannelPolicy policy, const net::SecureChannelOptions& secure) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("need at least one shard endpoint");
  }
  if (num_pivots == 0) {
    return Status::InvalidArgument("num_pivots must match the shards'");
  }
  std::vector<std::unique_ptr<ShardChannel>> channels;
  channels.reserve(endpoints.size());
  for (const ShardEndpoint& endpoint : endpoints) {
    SIMCLOUD_ASSIGN_OR_RETURN(
        std::unique_ptr<net::TcpTransport> transport,
        net::TcpTransport::Connect(endpoint.host, endpoint.port, policy,
                                   secure));
    channels.push_back(
        std::make_unique<TransportShardChannel>(std::move(transport)));
  }
  return std::unique_ptr<ShardedServer>(
      new ShardedServer({}, std::move(channels), num_pivots));
}

size_t ShardedServer::OwnerOf(const mindex::Permutation& permutation) const {
  return permutation.empty() ? 0 : permutation[0] % channels_.size();
}

namespace {

/// First permutation element of an insert item: the stored permutation's
/// head, or the closest pivot derived from the distances (ties to the
/// lower index, matching DistancesToPermutation).
uint32_t FirstPivotOf(const InsertItem& item) {
  if (!item.permutation.empty()) return item.permutation[0];
  uint32_t best = 0;
  for (uint32_t i = 1; i < item.pivot_distances.size(); ++i) {
    if (item.pivot_distances[i] < item.pivot_distances[best]) best = i;
  }
  return best;
}

}  // namespace

uint64_t ShardedServer::TotalObjects() const {
  if (is_local()) {
    uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->index().size();
    return total;
  }
  uint64_t total = 0;
  for (const Result<Bytes>& response :
       CallAllShards(EncodeGetStatsRequest())) {
    if (!response.ok()) return 0;
    auto stats = DecodeStatsResponse(*response);
    if (!stats.ok()) return 0;
    total += stats->object_count;
  }
  return total;
}

std::vector<Result<Bytes>> ShardedServer::CallAllShards(
    const Bytes& request) const {
  // Submit to every shard before collecting from any: the shards (local
  // worker threads or remote servers) all run concurrently while this
  // thread blocks on the earliest un-collected response.
  std::vector<Result<uint64_t>> tickets;
  tickets.reserve(channels_.size());
  for (const auto& channel : channels_) {
    tickets.push_back(channel->Submit(request));
  }
  std::vector<Result<Bytes>> responses;
  responses.reserve(channels_.size());
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (tickets[i].ok()) {
      responses.push_back(channels_[i]->Collect(*tickets[i]));
    } else {
      responses.push_back(tickets[i].status());
    }
  }
  return responses;
}

Result<uint64_t> ShardedServer::ScatterCounted(
    const std::vector<Bytes>& per_shard) const {
  std::vector<std::pair<size_t, uint64_t>> tickets;  // shard -> ticket
  Status submit_failure = Status::OK();
  for (size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].empty()) continue;
    Result<uint64_t> ticket = channels_[i]->Submit(per_shard[i]);
    if (!ticket.ok()) {
      // Keep collecting what was already submitted so no response is
      // left orphaned on a shared channel, then report the failure.
      if (submit_failure.ok()) submit_failure = ticket.status();
      continue;
    }
    tickets.emplace_back(i, *ticket);
  }
  uint64_t count = 0;
  Status failure = submit_failure;
  for (const auto& [shard, ticket] : tickets) {
    Result<Bytes> response = channels_[shard]->Collect(ticket);
    if (!response.ok()) {
      if (failure.ok()) failure = response.status();
      continue;
    }
    Result<uint64_t> acknowledged = DecodeInsertResponse(*response);
    if (!acknowledged.ok()) {
      if (failure.ok()) failure = acknowledged.status();
      continue;
    }
    count += *acknowledged;
  }
  SIMCLOUD_RETURN_NOT_OK(failure);
  return count;
}

namespace {

/// Merges one query's per-shard results: concatenated candidates sorted
/// by score (stable across shard order), trimmed to `limit` when > 0.
void MergeShardResults(std::vector<CandidateResponse>&& shard_results,
                       size_t limit, mindex::CandidateList* merged,
                       mindex::SearchStats* stats) {
  for (auto& decoded : shard_results) {
    stats->Add(decoded.stats);
    for (auto& candidate : decoded.candidates) {
      merged->push_back(std::move(candidate));
    }
  }
  std::stable_sort(merged->begin(), merged->end(),
                   [](const mindex::Candidate& a, const mindex::Candidate& b) {
                     return a.score < b.score;
                   });
  if (limit > 0 && merged->size() > limit) merged->resize(limit);
  stats->candidates = merged->size();
}

}  // namespace

Result<Bytes> ShardedServer::FanOut(const Bytes& request, size_t limit) {
  std::vector<Result<Bytes>> responses = CallAllShards(request);

  std::vector<CandidateResponse> shard_results;
  shard_results.reserve(responses.size());
  for (const auto& response : responses) {
    SIMCLOUD_RETURN_NOT_OK(response.status());
    SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse decoded,
                              DecodeCandidateResponse(*response));
    shard_results.push_back(std::move(decoded));
  }
  mindex::CandidateList merged;
  mindex::SearchStats stats;
  MergeShardResults(std::move(shard_results), limit, &merged, &stats);
  return EncodeCandidateResponse(merged, stats);
}

Result<Bytes> ShardedServer::FanOutBatch(const Bytes& request,
                                         const std::vector<size_t>& limits) {
  std::vector<Result<Bytes>> responses = CallAllShards(request);

  std::vector<BatchCandidateResponse> decoded;
  decoded.reserve(responses.size());
  for (const auto& response : responses) {
    SIMCLOUD_RETURN_NOT_OK(response.status());
    SIMCLOUD_ASSIGN_OR_RETURN(BatchCandidateResponse batch,
                              DecodeBatchCandidateResponse(*response));
    if (batch.query_count() != limits.size()) {
      return Status::Internal("shard answered " +
                              std::to_string(batch.query_count()) + " of " +
                              std::to_string(limits.size()) +
                              " batched queries");
    }
    decoded.push_back(std::move(batch));
  }

  // Shard dictionaries are disjoint (an object lives on exactly one
  // shard), so the combined dictionary is their concatenation; per-shard
  // payload indices shift by the shard's offset.
  size_t total_payloads = 0;
  std::vector<uint32_t> shard_offset(decoded.size());
  for (size_t s = 0; s < decoded.size(); ++s) {
    shard_offset[s] = static_cast<uint32_t>(total_payloads);
    total_payloads += decoded[s].batch.payloads.size();
  }
  std::vector<Bytes*> flat(total_payloads);
  for (size_t s = 0; s < decoded.size(); ++s) {
    for (size_t i = 0; i < decoded[s].batch.payloads.size(); ++i) {
      flat[shard_offset[s] + i] = &decoded[s].batch.payloads[i];
    }
  }

  mindex::BatchCandidates merged;
  merged.per_query.resize(limits.size());
  std::vector<mindex::SearchStats> stats(limits.size());
  for (size_t q = 0; q < limits.size(); ++q) {
    std::vector<mindex::BatchCandidateRef>& refs = merged.per_query[q];
    for (size_t s = 0; s < decoded.size(); ++s) {
      stats[q].Add(decoded[s].stats[q]);
      for (const auto& ref : decoded[s].batch.per_query[q]) {
        refs.push_back(mindex::BatchCandidateRef{
            ref.id, ref.score, ref.payload_index + shard_offset[s]});
      }
    }
    std::stable_sort(refs.begin(), refs.end(),
                     [](const mindex::BatchCandidateRef& a,
                        const mindex::BatchCandidateRef& b) {
                       return a.score < b.score;
                     });
    if (limits[q] > 0 && refs.size() > limits[q]) refs.resize(limits[q]);
    stats[q].candidates = refs.size();
  }

  // Compact the dictionary to payloads that survived trimming.
  constexpr uint32_t kUnmapped = ~0u;
  std::vector<uint32_t> remap(total_payloads, kUnmapped);
  for (auto& refs : merged.per_query) {
    for (auto& ref : refs) {
      if (remap[ref.payload_index] == kUnmapped) {
        remap[ref.payload_index] =
            static_cast<uint32_t>(merged.payloads.size());
        merged.payloads.push_back(std::move(*flat[ref.payload_index]));
      }
      ref.payload_index = remap[ref.payload_index];
    }
  }
  return EncodeBatchCandidateResponse(merged, stats);
}

Result<Bytes> ShardedServer::Handle(const Bytes& request_bytes) {
  SIMCLOUD_ASSIGN_OR_RETURN(Request request, DecodeRequest(request_bytes));
  switch (request.op) {
    case Op::kInsertBatch: {
      // Partition the batch by owning shard, then scatter the sub-batches
      // so every shard ingests its share concurrently.
      std::vector<std::vector<InsertItem>> per_shard(channels_.size());
      for (auto& item : request.insert_items) {
        per_shard[FirstPivotOf(item) % channels_.size()].push_back(
            std::move(item));
      }
      std::vector<Bytes> sub_requests(channels_.size());
      for (size_t i = 0; i < channels_.size(); ++i) {
        if (per_shard[i].empty()) continue;
        sub_requests[i] = EncodeInsertBatchRequest(per_shard[i]);
      }
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t inserted,
                                ScatterCounted(sub_requests));
      return EncodeInsertResponse(inserted);
    }
    case Op::kRangeSearch:
      // Every shard prunes its own subtrees; the union of the per-shard
      // candidate supersets is a superset for the whole collection.
      return FanOut(request_bytes, /*limit=*/0);
    case Op::kApproxKnn:
      // Each shard contributes up to the full budget; the merge keeps
      // the globally best-ranked cand_size candidates. Whole-cell
      // queries return the union of per-shard best cells untrimmed.
      return FanOut(request_bytes,
                    request.query.whole_cells ? 0 : request.cand_size);
    case Op::kRangeSearchBatch: {
      // One fan-out carries every query to every shard.
      std::vector<size_t> limits(request.range_queries.size(), 0);
      return FanOutBatch(request_bytes, limits);
    }
    case Op::kApproxKnnBatch: {
      std::vector<size_t> limits(request.knn_queries.size());
      for (size_t q = 0; q < request.knn_queries.size(); ++q) {
        limits[q] = request.knn_queries[q].signature.whole_cells
                        ? 0
                        : static_cast<size_t>(
                              request.knn_queries[q].cand_size);
      }
      return FanOutBatch(request_bytes, limits);
    }
    case Op::kGetStats: {
      std::vector<Result<Bytes>> responses =
          CallAllShards(EncodeGetStatsRequest());
      mindex::IndexStats total;
      for (const auto& response : responses) {
        SIMCLOUD_RETURN_NOT_OK(response.status());
        SIMCLOUD_ASSIGN_OR_RETURN(mindex::IndexStats stats,
                                  DecodeStatsResponse(*response));
        total.object_count += stats.object_count;
        total.leaf_count += stats.leaf_count;
        total.inner_count += stats.inner_count;
        total.max_depth = std::max(total.max_depth, stats.max_depth);
        total.storage_bytes += stats.storage_bytes;
        total.live_storage_bytes += stats.live_storage_bytes;
        total.dead_storage_bytes += stats.dead_storage_bytes;
        // Compaction telemetry: counts sum (active reports how many
        // shards are mid-pass); pauses report the worst shard, since the
        // shards compact concurrently.
        total.compaction_passes += stats.compaction_passes;
        total.compaction_active += stats.compaction_active;
        total.compaction_progress_payloads +=
            stats.compaction_progress_payloads;
        total.compaction_last_pause_nanos =
            std::max(total.compaction_last_pause_nanos,
                     stats.compaction_last_pause_nanos);
        total.compaction_max_pause_nanos =
            std::max(total.compaction_max_pause_nanos,
                     stats.compaction_max_pause_nanos);
      }
      return EncodeStatsResponse(total);
    }
    case Op::kDelete:
      return channels_[OwnerOf(request.delete_permutation)]->Call(
          request_bytes);
    case Op::kDeleteBatch: {
      // Validate the WHOLE batch before forwarding anything: a malformed
      // item must reject the batch with no shard mutated, matching the
      // all-or-nothing contract of the single-index path (per-item
      // NotFound still just skips inside the shards).
      for (const DeleteItem& item : request.delete_items) {
        if (item.permutation.empty() ||
            !mindex::IsValidPermutation(item.permutation, num_pivots_)) {
          return Status::InvalidArgument(
              "delete batch carries an invalid routing permutation");
        }
      }
      // Partition by owning shard (same placement rule as inserts) and
      // scatter the sub-batches; each shard takes its writer lock once.
      std::vector<std::vector<DeleteItem>> per_shard(channels_.size());
      for (DeleteItem& item : request.delete_items) {
        per_shard[OwnerOf(item.permutation)].push_back(std::move(item));
      }
      std::vector<Bytes> sub_requests(channels_.size());
      for (size_t i = 0; i < channels_.size(); ++i) {
        if (per_shard[i].empty()) continue;
        sub_requests[i] = EncodeDeleteBatchRequest(per_shard[i]);
      }
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t deleted,
                                ScatterCounted(sub_requests));
      return EncodeInsertResponse(deleted);
    }
    case Op::kCompact: {
      // Every shard compacts its own log concurrently; the merged report
      // sums the per-shard byte movements.
      std::vector<Result<Bytes>> responses = CallAllShards(request_bytes);
      mindex::CompactionReport total;
      for (const auto& response : responses) {
        SIMCLOUD_RETURN_NOT_OK(response.status());
        SIMCLOUD_ASSIGN_OR_RETURN(mindex::CompactionReport report,
                                  DecodeCompactResponse(*response));
        total.Add(report);
      }
      return EncodeCompactResponse(total);
    }
    case Op::kPing:
      // Answered by the facade itself: the probe measures the facade's
      // transport, not the shard fleet.
      return Bytes{};
  }
  return Status::Corruption("unhandled opcode");
}

}  // namespace secure
}  // namespace simcloud
