#include "secure/sharded_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "mindex/permutation.h"
#include "net/tcp.h"

namespace simcloud {
namespace secure {

LocalShardChannel::LocalShardChannel(net::RequestHandler* handler,
                                     size_t num_workers)
    : handler_(handler) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back(&LocalShardChannel::WorkerLoop, this);
  }
}

LocalShardChannel::~LocalShardChannel() {
  Stop();
  for (std::thread& worker : workers_) worker.join();
}

void LocalShardChannel::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
    // Fail queued-but-unstarted tickets NOW: no worker will dequeue them
    // once the pool drains, and a collector parked on one must not wait
    // forever. In-flight handler calls complete normally and their
    // responses stay collectable.
    while (!queue_.empty()) {
      ready_.emplace(queue_.front().first,
                     Status::FailedPrecondition("shard channel stopped"));
      queue_.pop_front();
    }
  }
  cv_.notify_all();
}

Result<uint64_t> LocalShardChannel::Submit(const Bytes& request) {
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      // A post-stop ticket would never run: the workers are draining (or
      // gone) and a racing Collect would block forever.
      return Status::FailedPrecondition("shard channel stopped");
    }
    ticket = next_ticket_++;
    queue_.emplace_back(ticket, request);
  }
  cv_.notify_all();
  return ticket;
}

Result<Bytes> LocalShardChannel::Collect(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return ready_.count(ticket) != 0; });
  Result<Bytes> response = std::move(ready_.at(ticket));
  ready_.erase(ticket);
  return response;
}

void LocalShardChannel::WorkerLoop() {
  for (;;) {
    uint64_t ticket;
    Bytes request;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      ticket = queue_.front().first;
      request = std::move(queue_.front().second);
      queue_.pop_front();
    }
    Result<Bytes> response = handler_->Handle(request);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ready_.emplace(ticket, std::move(response));
    }
    cv_.notify_all();
  }
}

ShardedServer::ShardedServer(
    std::vector<std::unique_ptr<EncryptedMIndexServer>> shards,
    std::vector<std::unique_ptr<ShardChannel>> channels, size_t num_pivots,
    const CursorConfig& cursor_config)
    : shards_(std::move(shards)), channels_(std::move(channels)),
      num_pivots_(num_pivots), cursors_(cursor_config) {
  reaper_ = std::thread([this] { ReaperLoop(); });
}

Result<std::unique_ptr<ShardedServer>> ShardedServer::Create(
    const mindex::MIndexOptions& options, size_t num_shards,
    const CursorConfig& cursor_config) {
  if (num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::vector<std::unique_ptr<EncryptedMIndexServer>> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    mindex::MIndexOptions shard_options = options;
    if (!shard_options.disk_path.empty()) {
      shard_options.disk_path += "." + std::to_string(i);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(
        std::unique_ptr<EncryptedMIndexServer> shard,
        EncryptedMIndexServer::Create(shard_options, cursor_config));
    shards.push_back(std::move(shard));
  }
  std::vector<std::unique_ptr<ShardChannel>> channels;
  channels.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    channels.push_back(std::make_unique<LocalShardChannel>(shards[i].get()));
  }
  return std::unique_ptr<ShardedServer>(
      new ShardedServer(std::move(shards), std::move(channels),
                        options.num_pivots, cursor_config));
}

namespace {

/// Re-raises `status` with `prefix` prepended to the message, keeping
/// the code for the categories a connect can fail with (Status's
/// code+message constructor is private to the factories).
Status AnnotateStatus(const Status& status, const std::string& prefix) {
  switch (status.code()) {
    case StatusCode::kNetworkError:
      return Status::NetworkError(prefix + status.message());
    case StatusCode::kPermissionDenied:
      return Status::PermissionDenied(prefix + status.message());
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(prefix + status.message());
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(prefix + status.message());
    default:
      return Status::NetworkError(prefix + status.ToString());
  }
}

}  // namespace

Result<std::unique_ptr<ShardedServer>> ShardedServer::Connect(
    const std::vector<ShardEndpoint>& endpoints, size_t num_pivots,
    net::ChannelPolicy policy, const net::SecureChannelOptions& secure) {
  std::vector<std::vector<ShardEndpoint>> replica_sets;
  replica_sets.reserve(endpoints.size());
  for (const ShardEndpoint& endpoint : endpoints) {
    replica_sets.push_back({endpoint});
  }
  return Connect(replica_sets, num_pivots, policy, secure, TopologyOptions());
}

Result<std::unique_ptr<ShardedServer>> ShardedServer::Connect(
    const std::vector<std::vector<ShardEndpoint>>& replica_sets,
    size_t num_pivots, net::ChannelPolicy policy,
    const net::SecureChannelOptions& secure, const TopologyOptions& topology,
    const CursorConfig& cursor_config) {
  if (replica_sets.empty()) {
    return Status::InvalidArgument("need at least one shard endpoint");
  }
  for (const auto& replicas : replica_sets) {
    if (replicas.empty()) {
      return Status::InvalidArgument("every shard needs >= 1 replica");
    }
  }
  if (num_pivots == 0) {
    return Status::InvalidArgument("num_pivots must match the shards'");
  }
  // Establish every connection before constructing any channel, so a
  // partial failure can tear the finished ones down deterministically:
  // each gets an orderly Abort (flush + FIN — a secure peer sees a clean
  // EOF, not a reset mid-record) before its fd closes.
  std::vector<std::vector<std::shared_ptr<net::TcpTransport>>> transports(
      replica_sets.size());
  for (size_t shard = 0; shard < replica_sets.size(); ++shard) {
    for (const ShardEndpoint& endpoint : replica_sets[shard]) {
      auto dialed =
          net::TcpTransport::Connect(endpoint.host, endpoint.port, policy,
                                     secure);
      if (!dialed.ok()) {
        Status failure = AnnotateStatus(
            dialed.status(),
            "shard " + std::to_string(shard) + " replica " +
                endpoint.ToString() + ": ");
        for (auto& established : transports) {
          for (auto& transport : established) {
            transport->Abort(Status::NetworkError(
                "sibling endpoint " + endpoint.ToString() +
                " failed to connect"));
          }
        }
        return failure;
      }
      transports[shard].push_back(std::move(dialed).value());
    }
  }
  std::vector<std::unique_ptr<ShardChannel>> channels;
  std::vector<ReplicaGroupChannel*> groups;
  channels.reserve(replica_sets.size());
  groups.reserve(replica_sets.size());
  for (size_t shard = 0; shard < replica_sets.size(); ++shard) {
    std::vector<std::unique_ptr<ReplicaChannel>> replicas;
    replicas.reserve(replica_sets[shard].size());
    for (size_t r = 0; r < replica_sets[shard].size(); ++r) {
      auto replica = std::make_unique<ReplicaChannel>(
          replica_sets[shard][r], policy, secure, topology);
      replica->AdoptTransport(std::move(transports[shard][r]));
      replicas.push_back(std::move(replica));
    }
    auto group =
        std::make_unique<ReplicaGroupChannel>(std::move(replicas), topology);
    groups.push_back(group.get());
    channels.push_back(std::move(group));
  }
  auto server = std::unique_ptr<ShardedServer>(
      new ShardedServer({}, std::move(channels), num_pivots, cursor_config));
  server->groups_ = std::move(groups);
  server->monitor_ =
      std::make_unique<TopologyMonitor>(server->groups_, topology);
  return server;
}

ShardedServer::~ShardedServer() {
  // Watches first: local adapters push into shard hubs that die with
  // shards_, remote pumps read through groups_ the monitor keeps alive.
  std::vector<std::shared_ptr<WatchFanout>> live;
  {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    for (auto& entry : watches_) live.push_back(entry.second);
    watches_.clear();
  }
  for (const auto& fanout : live) StopWatch(fanout);
  // Deferred disconnect teardowns still queued must run while shards_ /
  // channels_ are alive: the reaper drains its queue, then exits.
  {
    std::lock_guard<std::mutex> lock(reap_mutex_);
    reap_stop_ = true;
  }
  reap_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
  // The monitor probes through groups_; stop it before channels_ die.
  if (monitor_) monitor_->Stop();
}

std::vector<ShardTopologyStatus> ShardedServer::TopologySnapshot() const {
  std::vector<ShardTopologyStatus> snapshot;
  snapshot.reserve(groups_.size());
  for (const ReplicaGroupChannel* group : groups_) {
    snapshot.push_back(group->Snapshot());
  }
  return snapshot;
}

size_t ShardedServer::OwnerOf(const mindex::Permutation& permutation) const {
  return permutation.empty() ? 0 : permutation[0] % channels_.size();
}

namespace {

/// First permutation element of an insert item: the stored permutation's
/// head, or the closest pivot derived from the distances (ties to the
/// lower index, matching DistancesToPermutation).
uint32_t FirstPivotOf(const InsertItem& item) {
  if (!item.permutation.empty()) return item.permutation[0];
  uint32_t best = 0;
  for (uint32_t i = 1; i < item.pivot_distances.size(); ++i) {
    if (item.pivot_distances[i] < item.pivot_distances[best]) best = i;
  }
  return best;
}

}  // namespace

uint64_t ShardedServer::TotalObjects() const {
  if (is_local()) {
    uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->index().size();
    return total;
  }
  uint64_t total = 0;
  for (const Result<Bytes>& response :
       CallAllShards(EncodeGetStatsRequest())) {
    if (!response.ok()) return 0;
    auto stats = DecodeStatsResponse(*response);
    if (!stats.ok()) return 0;
    total += stats->object_count;
  }
  return total;
}

std::vector<Result<Bytes>> ShardedServer::CallAllShards(
    const Bytes& request) const {
  // Submit to every shard before collecting from any: the shards (local
  // worker threads or remote servers) all run concurrently while this
  // thread blocks on the earliest un-collected response.
  std::vector<Result<uint64_t>> tickets;
  tickets.reserve(channels_.size());
  for (const auto& channel : channels_) {
    tickets.push_back(channel->Submit(request));
  }
  std::vector<Result<Bytes>> responses;
  responses.reserve(channels_.size());
  for (size_t i = 0; i < channels_.size(); ++i) {
    if (tickets[i].ok()) {
      responses.push_back(channels_[i]->Collect(*tickets[i]));
    } else {
      responses.push_back(tickets[i].status());
    }
  }
  return responses;
}

Result<uint64_t> ShardedServer::ScatterCounted(
    const std::vector<Bytes>& per_shard) const {
  std::vector<std::pair<size_t, uint64_t>> tickets;  // shard -> ticket
  Status submit_failure = Status::OK();
  for (size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].empty()) continue;
    Result<uint64_t> ticket = channels_[i]->Submit(per_shard[i]);
    if (!ticket.ok()) {
      // Keep collecting what was already submitted so no response is
      // left orphaned on a shared channel, then report the failure.
      if (submit_failure.ok()) submit_failure = ticket.status();
      continue;
    }
    tickets.emplace_back(i, *ticket);
  }
  uint64_t count = 0;
  Status failure = submit_failure;
  for (const auto& [shard, ticket] : tickets) {
    Result<Bytes> response = channels_[shard]->Collect(ticket);
    if (!response.ok()) {
      if (failure.ok()) failure = response.status();
      continue;
    }
    Result<uint64_t> acknowledged = DecodeInsertResponse(*response);
    if (!acknowledged.ok()) {
      if (failure.ok()) failure = acknowledged.status();
      continue;
    }
    count += *acknowledged;
  }
  SIMCLOUD_RETURN_NOT_OK(failure);
  return count;
}

namespace {

/// Merges one query's per-shard results: concatenated candidates sorted
/// by score (stable across shard order), trimmed to `limit` when > 0.
void MergeShardResults(std::vector<CandidateResponse>&& shard_results,
                       size_t limit, mindex::CandidateList* merged,
                       mindex::SearchStats* stats) {
  for (auto& decoded : shard_results) {
    stats->Add(decoded.stats);
    for (auto& candidate : decoded.candidates) {
      merged->push_back(std::move(candidate));
    }
  }
  std::stable_sort(merged->begin(), merged->end(),
                   [](const mindex::Candidate& a, const mindex::Candidate& b) {
                     return a.score < b.score;
                   });
  if (limit > 0 && merged->size() > limit) merged->resize(limit);
  stats->candidates = merged->size();
}

}  // namespace

Result<Bytes> ShardedServer::FanOut(const Bytes& request, size_t limit) {
  std::vector<Result<Bytes>> responses = CallAllShards(request);

  std::vector<CandidateResponse> shard_results;
  shard_results.reserve(responses.size());
  for (const auto& response : responses) {
    SIMCLOUD_RETURN_NOT_OK(response.status());
    SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse decoded,
                              DecodeCandidateResponse(*response));
    shard_results.push_back(std::move(decoded));
  }
  mindex::CandidateList merged;
  mindex::SearchStats stats;
  MergeShardResults(std::move(shard_results), limit, &merged, &stats);
  return EncodeCandidateResponse(merged, stats);
}

Result<Bytes> ShardedServer::FanOutBatch(const Bytes& request,
                                         const std::vector<size_t>& limits) {
  std::vector<Result<Bytes>> responses = CallAllShards(request);

  std::vector<BatchCandidateResponse> decoded;
  decoded.reserve(responses.size());
  for (const auto& response : responses) {
    SIMCLOUD_RETURN_NOT_OK(response.status());
    SIMCLOUD_ASSIGN_OR_RETURN(BatchCandidateResponse batch,
                              DecodeBatchCandidateResponse(*response));
    if (batch.query_count() != limits.size()) {
      return Status::Internal("shard answered " +
                              std::to_string(batch.query_count()) + " of " +
                              std::to_string(limits.size()) +
                              " batched queries");
    }
    decoded.push_back(std::move(batch));
  }

  // Shard dictionaries are disjoint (an object lives on exactly one
  // shard), so the combined dictionary is their concatenation; per-shard
  // payload indices shift by the shard's offset.
  size_t total_payloads = 0;
  std::vector<uint32_t> shard_offset(decoded.size());
  for (size_t s = 0; s < decoded.size(); ++s) {
    shard_offset[s] = static_cast<uint32_t>(total_payloads);
    total_payloads += decoded[s].batch.payloads.size();
  }
  std::vector<Bytes*> flat(total_payloads);
  for (size_t s = 0; s < decoded.size(); ++s) {
    for (size_t i = 0; i < decoded[s].batch.payloads.size(); ++i) {
      flat[shard_offset[s] + i] = &decoded[s].batch.payloads[i];
    }
  }

  mindex::BatchCandidates merged;
  merged.per_query.resize(limits.size());
  std::vector<mindex::SearchStats> stats(limits.size());
  for (size_t q = 0; q < limits.size(); ++q) {
    std::vector<mindex::BatchCandidateRef>& refs = merged.per_query[q];
    for (size_t s = 0; s < decoded.size(); ++s) {
      stats[q].Add(decoded[s].stats[q]);
      for (const auto& ref : decoded[s].batch.per_query[q]) {
        refs.push_back(mindex::BatchCandidateRef{
            ref.id, ref.score, ref.payload_index + shard_offset[s]});
      }
    }
    std::stable_sort(refs.begin(), refs.end(),
                     [](const mindex::BatchCandidateRef& a,
                        const mindex::BatchCandidateRef& b) {
                       return a.score < b.score;
                     });
    if (limits[q] > 0 && refs.size() > limits[q]) refs.resize(limits[q]);
    stats[q].candidates = refs.size();
  }

  // Compact the dictionary to payloads that survived trimming.
  constexpr uint32_t kUnmapped = ~0u;
  std::vector<uint32_t> remap(total_payloads, kUnmapped);
  for (auto& refs : merged.per_query) {
    for (auto& ref : refs) {
      if (remap[ref.payload_index] == kUnmapped) {
        remap[ref.payload_index] =
            static_cast<uint32_t>(merged.payloads.size());
        merged.payloads.push_back(std::move(*flat[ref.payload_index]));
      }
      ref.payload_index = remap[ref.payload_index];
    }
  }
  return EncodeBatchCandidateResponse(merged, stats);
}

Result<Bytes> ShardedServer::Handle(const Bytes& request_bytes) {
  return HandleStream(request_bytes, nullptr);
}

Result<Bytes> ShardedServer::HandleStream(const Bytes& request_bytes,
                                          net::StreamContext* stream) {
  SIMCLOUD_ASSIGN_OR_RETURN(Request request, DecodeRequest(request_bytes));
  switch (request.op) {
    case Op::kInsertBatch: {
      // Partition the batch by owning shard, then scatter the sub-batches
      // so every shard ingests its share concurrently.
      std::vector<std::vector<InsertItem>> per_shard(channels_.size());
      for (auto& item : request.insert_items) {
        per_shard[FirstPivotOf(item) % channels_.size()].push_back(
            std::move(item));
      }
      std::vector<Bytes> sub_requests(channels_.size());
      for (size_t i = 0; i < channels_.size(); ++i) {
        if (per_shard[i].empty()) continue;
        sub_requests[i] = EncodeInsertBatchRequest(per_shard[i]);
      }
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t inserted,
                                ScatterCounted(sub_requests));
      return EncodeInsertResponse(inserted);
    }
    case Op::kRangeSearch:
      // Every shard prunes its own subtrees; the union of the per-shard
      // candidate supersets is a superset for the whole collection.
      return FanOut(request_bytes, /*limit=*/0);
    case Op::kApproxKnn:
      // Each shard contributes up to the full budget; the merge keeps
      // the globally best-ranked cand_size candidates. Whole-cell
      // queries return the union of per-shard best cells untrimmed.
      return FanOut(request_bytes,
                    request.query.whole_cells ? 0 : request.cand_size);
    case Op::kRangeSearchBatch: {
      // One fan-out carries every query to every shard.
      std::vector<size_t> limits(request.range_queries.size(), 0);
      return FanOutBatch(request_bytes, limits);
    }
    case Op::kApproxKnnBatch: {
      std::vector<size_t> limits(request.knn_queries.size());
      for (size_t q = 0; q < request.knn_queries.size(); ++q) {
        limits[q] = request.knn_queries[q].signature.whole_cells
                        ? 0
                        : static_cast<size_t>(
                              request.knn_queries[q].cand_size);
      }
      return FanOutBatch(request_bytes, limits);
    }
    case Op::kGetStats: {
      std::vector<Result<Bytes>> responses =
          CallAllShards(EncodeGetStatsRequest());
      mindex::IndexStats total;
      for (const auto& response : responses) {
        SIMCLOUD_RETURN_NOT_OK(response.status());
        SIMCLOUD_ASSIGN_OR_RETURN(mindex::IndexStats stats,
                                  DecodeStatsResponse(*response));
        total.object_count += stats.object_count;
        total.leaf_count += stats.leaf_count;
        total.inner_count += stats.inner_count;
        total.max_depth = std::max(total.max_depth, stats.max_depth);
        total.storage_bytes += stats.storage_bytes;
        total.live_storage_bytes += stats.live_storage_bytes;
        total.dead_storage_bytes += stats.dead_storage_bytes;
        // Compaction telemetry: counts sum (active reports how many
        // shards are mid-pass); pauses report the worst shard, since the
        // shards compact concurrently.
        total.compaction_passes += stats.compaction_passes;
        total.compaction_active += stats.compaction_active;
        total.compaction_progress_payloads +=
            stats.compaction_progress_payloads;
        total.compaction_last_pause_nanos =
            std::max(total.compaction_last_pause_nanos,
                     stats.compaction_last_pause_nanos);
        total.compaction_max_pause_nanos =
            std::max(total.compaction_max_pause_nanos,
                     stats.compaction_max_pause_nanos);
        // Shard-side cursors (the legs of composite cursors plus any
        // opened directly on a shard) sum under the facade's own table.
        total.cursors_open += stats.cursors_open;
        total.cursors_opened_total += stats.cursors_opened_total;
        total.cursors_expired_total += stats.cursors_expired_total;
        total.cursors_reaped_total += stats.cursors_reaped_total;
      }
      const CursorCounters facade_cursors = cursors_.counters();
      total.cursors_open += facade_cursors.open;
      total.cursors_opened_total += facade_cursors.opened_total;
      total.cursors_expired_total += facade_cursors.expired_total;
      total.cursors_reaped_total += facade_cursors.reaped_total;
      // Topology health: a shard counts as its healthiest replica (one
      // kUp replica keeps it fully serving). In-process shards are
      // always up.
      total.shards_total = channels_.size();
      if (groups_.empty()) {
        total.shards_up = channels_.size();
      } else {
        for (const ReplicaGroupChannel* group : groups_) {
          const ShardTopologyStatus shard_status = group->Snapshot();
          switch (shard_status.health()) {
            case ShardHealth::kUp: ++total.shards_up; break;
            case ShardHealth::kDegraded: ++total.shards_degraded; break;
            case ShardHealth::kDown: ++total.shards_down; break;
          }
          // A stale replica (replay overflow: permanently out of the
          // rotation) is otherwise invisible on the wire — the shard
          // still counts as up through its healthy siblings.
          for (const ReplicaStatus& replica : shard_status.replicas) {
            if (replica.stale) {
              ++total.shards_stale;
              break;
            }
          }
        }
      }
      return EncodeStatsResponse(total);
    }
    case Op::kDelete:
      return channels_[OwnerOf(request.delete_permutation)]->Call(
          request_bytes);
    case Op::kDeleteBatch: {
      // Validate the WHOLE batch before forwarding anything: a malformed
      // item must reject the batch with no shard mutated, matching the
      // all-or-nothing contract of the single-index path (per-item
      // NotFound still just skips inside the shards).
      for (const DeleteItem& item : request.delete_items) {
        if (item.permutation.empty() ||
            !mindex::IsValidPermutation(item.permutation, num_pivots_)) {
          return Status::InvalidArgument(
              "delete batch carries an invalid routing permutation");
        }
      }
      // Partition by owning shard (same placement rule as inserts) and
      // scatter the sub-batches; each shard takes its writer lock once.
      std::vector<std::vector<DeleteItem>> per_shard(channels_.size());
      for (DeleteItem& item : request.delete_items) {
        per_shard[OwnerOf(item.permutation)].push_back(std::move(item));
      }
      std::vector<Bytes> sub_requests(channels_.size());
      for (size_t i = 0; i < channels_.size(); ++i) {
        if (per_shard[i].empty()) continue;
        sub_requests[i] = EncodeDeleteBatchRequest(per_shard[i]);
      }
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t deleted,
                                ScatterCounted(sub_requests));
      return EncodeInsertResponse(deleted);
    }
    case Op::kCompact: {
      // Every shard compacts its own log concurrently; the merged report
      // sums the per-shard byte movements.
      std::vector<Result<Bytes>> responses = CallAllShards(request_bytes);
      mindex::CompactionReport total;
      for (const auto& response : responses) {
        SIMCLOUD_RETURN_NOT_OK(response.status());
        SIMCLOUD_ASSIGN_OR_RETURN(mindex::CompactionReport report,
                                  DecodeCompactResponse(*response));
        total.Add(report);
      }
      return EncodeCompactResponse(total);
    }
    case Op::kPing:
      // Answered by the facade itself: the probe measures the facade's
      // transport, not the shard fleet.
      return Bytes{};
    case Op::kWatch:
      return HandleWatch(request, stream);
    case Op::kWatchCancel:
      return HandleWatchCancel(request);
    case Op::kRangeSearchCursor:
      return HandleRangeSearchCursor(request, stream);
    case Op::kCursorNext:
      return HandleCursorNext(request, stream);
    case Op::kCursorClose: {
      // Idempotent: take the composite state (if any), tear its shard
      // legs down inline (worker thread — shard I/O is fine here), ack
      // whether state was actually released.
      std::shared_ptr<void> state = cursors_.TakeClose(request.cursor_id);
      if (state == nullptr) return EncodeInsertResponse(0);
      CloseCursorLegs(std::static_pointer_cast<CompositeCursor>(state));
      return EncodeInsertResponse(1);
    }
    case Op::kGetMetrics: {
      // Same legacy-framing refusal as the shard handler (cheap probe
      // loops must opt into the unbounded response via pipelining).
      if (stream != nullptr && !stream->pipelined()) {
        return Status::FailedPrecondition(
            "kGetMetrics needs a pipelined connection (legacy framing is "
            "stateless)");
      }
      // The merge covers the SHARD registries only — the facade's own
      // registry is excluded so the aggregate equals the sum of the
      // per-shard scrapes exactly (histograms merge bucket-by-bucket on
      // the shared log grid). In-process deployments share one global
      // registry, so every shard answers identically and the merge
      // multiplies counters by the shard count; scrape shards directly
      // when that matters.
      std::vector<Result<Bytes>> responses =
          CallAllShards(EncodeGetMetricsRequest());
      obs::MetricsSnapshot merged;
      for (const auto& response : responses) {
        SIMCLOUD_RETURN_NOT_OK(response.status());
        SIMCLOUD_ASSIGN_OR_RETURN(obs::MetricsSnapshot snapshot,
                                  DecodeMetricsResponse(*response));
        merged.Merge(snapshot);
      }
      return EncodeMetricsResponse(merged);
    }
  }
  return Status::Corruption("unhandled opcode");
}

namespace {

/// How long a remote pump blocks per CollectStream before re-checking
/// its stop flag.
constexpr int kPumpTickMs = 100;
/// Client-side backpressure pacing for remote pumps (a frame that the
/// client's output queue refused is held and retried).
constexpr int kPumpRetryMs = 10;
/// Waiting for a replica to come back before re-registering a watch.
constexpr int kPumpReacquireMs = 100;
/// Registration handshake timeout per replica attempt.
constexpr int kWatchAckTimeoutMs = 5000;

/// True when a stream-call Status is a REMOTE REJECTION (the shard
/// server answered with an error) rather than a broken stream: the
/// transport wrapped it as "remote error: ...", so the connection
/// itself is healthy and must not be failed over.
bool IsRemoteRejection(const Status& status) {
  return status.message().find("remote error:") != std::string::npos;
}

/// True when a Status carries the shard's explicit watch-lost signal
/// (ring overflow / token out of range). Matched by substring because
/// status codes do not survive the wire.
bool IsWatchLost(const Status& status) {
  return status.message().find("watch lost") != std::string::npos;
}

}  // namespace

Status ShardedServer::PushComposite(
    const std::shared_ptr<WatchFanout>& fanout, size_t shard,
    const WatchFrame& frame) {
  std::lock_guard<std::mutex> lock(fanout->mutex);
  if (fanout->lost) {
    // Another shard already reported loss; the stream is over. Return
    // NetworkError so local hub adapters drop their subscription.
    return Status::NetworkError("watch already lost");
  }
  WatchFrame out = frame;
  out.watch_id = fanout->watch_id;
  std::vector<uint64_t> token = fanout->token;
  if (!frame.token.empty()) token[shard] = frame.token[0];
  out.token = token;
  Status pushed = fanout->sink->TryPush(EncodeWatchFrame(out));
  if (pushed.ok()) {
    // Commit the composite cursor only for a delivered frame, so a
    // resume with the client's last token replays exactly the refused
    // suffix.
    fanout->token = std::move(token);
    if (frame.kind == WatchFrame::Kind::kLost) fanout->lost = true;
  }
  return pushed;
}

Result<ShardedServer::ShardWatchLeg> ShardedServer::OpenShardWatch(
    size_t shard, const WatchFilter& filter, bool has_resume,
    uint64_t resume_after) {
  std::vector<uint64_t> token;
  if (has_resume) token.push_back(resume_after);
  const Bytes request = EncodeWatchRequest(filter, token);
  ReplicaGroupChannel* group = groups_[shard];
  Status last_error = Status::NetworkError("no live replica");
  // Two routing passes, like reads: kUp replicas first, then kDegraded.
  for (int pass = 0; pass < 2; ++pass) {
    const bool degraded_ok = pass == 1;
    for (size_t r = 0; r < group->replica_count(); ++r) {
      ReplicaChannel* replica = group->replica(r);
      std::shared_ptr<net::TcpTransport> transport =
          replica->AcquireForRead(degraded_ok);
      if (transport == nullptr) continue;
      if (degraded_ok && replica->health() == ShardHealth::kUp) {
        continue;  // already tried in pass 0
      }
      Result<uint64_t> ticket = transport->SubmitStream(request);
      if (!ticket.ok()) {
        replica->MarkFailure(transport, ticket.status());
        last_error = ticket.status();
        continue;
      }
      Result<Bytes> ack_bytes =
          transport->CollectStream(*ticket, kWatchAckTimeoutMs);
      if (!ack_bytes.ok()) {
        transport->CloseStream(*ticket);
        if (IsRemoteRejection(ack_bytes.status())) {
          // The shard answered: a stale resume token (or bad filter) is
          // the client's problem, not a failover trigger.
          return ack_bytes.status();
        }
        replica->MarkFailure(transport, ack_bytes.status());
        last_error = ack_bytes.status();
        continue;
      }
      Result<WatchFrame> ack = DecodeWatchFrame(*ack_bytes);
      if (!ack.ok() || ack->kind != WatchFrame::Kind::kAck ||
          ack->token.size() != 1) {
        transport->CloseStream(*ticket);
        return Status::Corruption("shard " + std::to_string(shard) +
                                  " answered kWatch without a valid ack");
      }
      ShardWatchLeg leg;
      leg.replica = r;
      leg.transport = std::move(transport);
      leg.ticket = *ticket;
      leg.shard_watch_id = ack->watch_id;
      leg.start_seq = ack->token[0];
      return leg;
    }
  }
  return last_error;
}

void ShardedServer::PumpShardWatch(std::shared_ptr<WatchFanout> fanout,
                                   size_t shard, WatchFilter filter,
                                   ShardWatchLeg leg) {
  // Forwards `frame` with the composite token, absorbing client
  // backpressure by holding the frame. False when the pump must exit
  // (client gone, watch lost, or stop requested while parked).
  auto forward = [&](const WatchFrame& frame) {
    for (;;) {
      Status pushed = PushComposite(fanout, shard, frame);
      if (pushed.ok()) return frame.kind != WatchFrame::Kind::kLost;
      if (pushed.code() != StatusCode::kFailedPrecondition) return false;
      if (fanout->stop) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(kPumpRetryMs));
    }
  };
  auto forward_lost = [&](const std::string& message) {
    WatchFrame lost;
    lost.kind = WatchFrame::Kind::kLost;
    lost.token = {0};  // PushComposite overwrites with the composite
    lost.message = message;
    forward(lost);
  };

  while (!fanout->stop) {
    Result<Bytes> frame_bytes =
        leg.transport->CollectStream(leg.ticket, kPumpTickMs);
    if (!frame_bytes.ok()) {
      if (frame_bytes.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // soft tick: nothing pushed yet
      }
      // The replica died under the stream: report the failure (the
      // monitor starts redialing) and re-register elsewhere with the
      // shard's resume token — the client stream continues seamlessly.
      groups_[shard]->replica(leg.replica)->MarkFailure(
          leg.transport, frame_bytes.status());
      leg.transport->CloseStream(leg.ticket);
      uint64_t resume;
      {
        std::lock_guard<std::mutex> lock(fanout->mutex);
        resume = fanout->token[shard];
      }
      bool reopened = false;
      while (!fanout->stop) {
        Result<ShardWatchLeg> next =
            OpenShardWatch(shard, filter, /*has_resume=*/true, resume);
        if (next.ok()) {
          leg = std::move(next).value();
          reopened = true;
          break;
        }
        if (IsWatchLost(next.status())) {
          // The surviving replica's ring no longer covers our cursor:
          // the stream is genuinely lost — tell the client to re-run.
          forward_lost(next.status().message());
          return;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kPumpReacquireMs));
      }
      if (!reopened) break;  // stop requested
      continue;
    }
    Result<WatchFrame> frame = DecodeWatchFrame(*frame_bytes);
    if (!frame.ok()) {
      forward_lost("watch lost: undecodable frame from shard " +
                   std::to_string(shard) + ": " + frame.status().message());
      return;
    }
    switch (frame->kind) {
      case WatchFrame::Kind::kAck:
        continue;  // late ack duplicate; the registration already took it
      case WatchFrame::Kind::kInsert:
      case WatchFrame::Kind::kDelete:
        if (!forward(*frame)) return;
        continue;
      case WatchFrame::Kind::kLost:
        forward(*frame);
        return;
    }
  }
  // Orderly stop (cancel / shutdown): best-effort cancel on the shard
  // so its hub drops the subscription now rather than on disconnect.
  Result<uint64_t> cancel =
      leg.transport->Submit(EncodeWatchCancelRequest(leg.shard_watch_id));
  if (cancel.ok()) leg.transport->Collect(*cancel).status();
  leg.transport->CloseStream(leg.ticket);
}

void ShardedServer::StopWatch(const std::shared_ptr<WatchFanout>& fanout) {
  fanout->stop = true;
  for (auto& pump : fanout->pumps) {
    if (pump.joinable()) pump.join();
  }
  for (const auto& [shard, hub_id] : fanout->local_regs) {
    shards_[shard]->watch_hub()->Unregister(hub_id);
  }
}

Result<Bytes> ShardedServer::HandleWatch(const Request& request,
                                         net::StreamContext* stream) {
  std::shared_ptr<net::PushSink> sink;
  if (stream != nullptr) sink = stream->MakeSink();
  if (sink == nullptr) {
    return Status::FailedPrecondition(
        "kWatch needs a pipelined connection (server push is impossible "
        "on legacy framing or loopback)");
  }
  const size_t shard_count = channels_.size();
  if (!request.watch_resume_token.empty() &&
      request.watch_resume_token.size() != shard_count) {
    return Status::InvalidArgument(
        "resume token covers " +
        std::to_string(request.watch_resume_token.size()) +
        " shards; this deployment has " + std::to_string(shard_count));
  }
  const bool has_resume = !request.watch_resume_token.empty();

  auto fanout = std::make_shared<WatchFanout>();
  fanout->sink = std::move(sink);
  // A sink implies a live pipelined connection: record its id so the
  // disconnect reaper can stop this fanout eagerly instead of letting
  // it linger until the next delivery hits the dead sink.
  fanout->conn_id = stream->connection_id();
  fanout->token = has_resume ? request.watch_resume_token
                             : std::vector<uint64_t>(shard_count, 0);
  {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    fanout->watch_id = next_watch_id_++;
  }

  if (is_local()) {
    for (size_t s = 0; s < shard_count; ++s) {
      // The adapter runs on shard s's hub delivery thread; it captures
      // only shared state, so it stays safe after the facade forgets
      // the watch (the hub drops it on the first NetworkError).
      auto adapter = [fanout, s](const WatchFrame& frame) {
        return PushComposite(fanout, s, frame);
      };
      Result<WatchHub::Registration> registration =
          shards_[s]->watch_hub()->Register(request.watch_filter, has_resume,
                                            fanout->token[s], adapter);
      if (!registration.ok()) {
        StopWatch(fanout);
        return registration.status();
      }
      fanout->local_regs.emplace_back(s, registration->watch_id);
      std::lock_guard<std::mutex> lock(fanout->mutex);
      fanout->token[s] = registration->start_seq;
    }
  } else {
    for (size_t s = 0; s < shard_count; ++s) {
      Result<ShardWatchLeg> leg = OpenShardWatch(
          s, request.watch_filter, has_resume, fanout->token[s]);
      if (!leg.ok()) {
        StopWatch(fanout);
        return leg.status();
      }
      {
        std::lock_guard<std::mutex> lock(fanout->mutex);
        fanout->token[s] = leg->start_seq;
      }
      fanout->pumps.emplace_back([this, fanout, s,
                                  filter = request.watch_filter,
                                  moved = std::move(*leg)]() mutable {
        PumpShardWatch(fanout, s, filter, std::move(moved));
      });
    }
  }

  {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    watches_.emplace(fanout->watch_id, fanout);
  }
  WatchFrame ack;
  ack.kind = WatchFrame::Kind::kAck;
  ack.watch_id = fanout->watch_id;
  {
    std::lock_guard<std::mutex> lock(fanout->mutex);
    ack.token = fanout->token;
  }
  return EncodeWatchFrame(ack);
}

Result<Bytes> ShardedServer::HandleWatchCancel(const Request& request) {
  std::shared_ptr<WatchFanout> fanout;
  {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    auto it = watches_.find(request.watch_cancel_id);
    if (it != watches_.end()) {
      fanout = it->second;
      watches_.erase(it);
    }
  }
  if (fanout == nullptr) return EncodeInsertResponse(0);
  StopWatch(fanout);
  return EncodeInsertResponse(1);
}

Status ShardedServer::OpenCursorLeg(CompositeCursor* cursor, size_t shard,
                                    uint64_t start_offset) {
  const Bytes request = EncodeRangeSearchCursorRequest(
      cursor->query_distances, cursor->radius, cursor->page_size,
      start_offset);
  CursorLeg& leg = cursor->legs[shard];
  Result<Bytes> response = Status::NetworkError("no live replica");
  if (groups_.empty()) {
    // Local mode: the shard channel is the pin — its workers outlive
    // every cursor.
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t ticket,
                              channels_[shard]->Submit(request));
    response = channels_[shard]->Collect(ticket);
    SIMCLOUD_RETURN_NOT_OK(response.status());
  } else {
    // Pin a live replica exactly like watch legs: kUp first, then
    // kDegraded. The leg must keep hitting the replica that holds its
    // shard-side cursor state, so the transport is remembered.
    ReplicaGroupChannel* group = groups_[shard];
    Status last_error = Status::NetworkError("no live replica");
    bool opened = false;
    for (int pass = 0; pass < 2 && !opened; ++pass) {
      const bool degraded_ok = pass == 1;
      for (size_t r = 0; r < group->replica_count(); ++r) {
        ReplicaChannel* replica = group->replica(r);
        std::shared_ptr<net::TcpTransport> transport =
            replica->AcquireForRead(degraded_ok);
        if (transport == nullptr) continue;
        if (degraded_ok && replica->health() == ShardHealth::kUp) {
          continue;  // already tried in pass 0
        }
        Result<uint64_t> ticket = transport->Submit(request);
        if (!ticket.ok()) {
          replica->MarkFailure(transport, ticket.status());
          last_error = ticket.status();
          continue;
        }
        Result<Bytes> collected = transport->Collect(*ticket);
        if (!collected.ok()) {
          if (IsRemoteRejection(collected.status())) {
            // The shard answered with an error (too many cursors, bad
            // page size): the client's problem, not a failover trigger.
            return collected.status();
          }
          replica->MarkFailure(transport, collected.status());
          last_error = collected.status();
          continue;
        }
        leg.transport = std::move(transport);
        leg.replica = r;
        response = std::move(collected);
        opened = true;
        break;
      }
    }
    if (!opened) return last_error;
  }
  SIMCLOUD_ASSIGN_OR_RETURN(CursorPage page, DecodeCursorPage(*response));
  leg.shard_cursor_id = page.cursor_id;
  leg.exhausted = page.exhausted();
  leg.fetched = start_offset + page.candidates.size();
  for (auto& candidate : page.candidates) {
    leg.buffer.push_back(std::move(candidate));
  }
  // A reopen (start_offset > 0) replays a query whose ranked total and
  // collection stats were already counted at the original open.
  if (start_offset == 0) {
    cursor->total += page.total;
    cursor->stats.Add(page.stats);
  }
  return Status::OK();
}

Status ShardedServer::RefillCursorLeg(CompositeCursor* cursor, size_t shard) {
  CursorLeg& leg = cursor->legs[shard];
  if (leg.exhausted || !leg.buffer.empty()) return Status::OK();
  const Bytes request = EncodeCursorNextRequest(leg.shard_cursor_id);
  Result<Bytes> response = Status::NetworkError("no live replica");
  if (groups_.empty()) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t ticket,
                              channels_[shard]->Submit(request));
    response = channels_[shard]->Collect(ticket);
    SIMCLOUD_RETURN_NOT_OK(response.status());
  } else {
    Result<uint64_t> ticket = leg.transport->Submit(request);
    Result<Bytes> collected =
        ticket.ok() ? leg.transport->Collect(*ticket)
                    : Result<Bytes>(ticket.status());
    if (!collected.ok()) {
      if (IsRemoteRejection(collected.status())) {
        // The shard rejected the next (expired / invalidated): surface
        // it — the composite cursor is over, not the replica.
        return collected.status();
      }
      // The pinned replica died mid-cursor and took the shard-side state
      // with it. Reopen positionally on a survivor: identical data plus
      // the deterministic ranking make `fetched` a portable resume
      // point — this is the cursor analogue of a watch resume token.
      groups_[shard]->replica(leg.replica)->MarkFailure(leg.transport,
                                                        collected.status());
      leg.transport = nullptr;
      leg.shard_cursor_id = 0;
      return OpenCursorLeg(cursor, shard, leg.fetched);
    }
    response = std::move(collected);
  }
  SIMCLOUD_ASSIGN_OR_RETURN(CursorPage page, DecodeCursorPage(*response));
  leg.shard_cursor_id = page.cursor_id;
  leg.exhausted = page.exhausted();
  leg.fetched += page.candidates.size();
  for (auto& candidate : page.candidates) {
    leg.buffer.push_back(std::move(candidate));
  }
  return Status::OK();
}

Result<mindex::CandidateList> ShardedServer::MergeNextPage(
    CompositeCursor* cursor) {
  mindex::CandidateList page;
  while (page.size() < cursor->page_size) {
    // Pick the lowest-score head across shards (tie: lowest shard
    // index), refilling a shard only when its buffer is actually empty —
    // a shard's pages are pulled on demand, never ahead of need. The
    // strict < over ascending shard order reproduces the one-shot
    // concat + stable-sort merge byte for byte.
    size_t best = cursor->legs.size();
    for (size_t s = 0; s < cursor->legs.size(); ++s) {
      CursorLeg& leg = cursor->legs[s];
      if (leg.buffer.empty() && !leg.exhausted) {
        SIMCLOUD_RETURN_NOT_OK(RefillCursorLeg(cursor, s));
      }
      if (leg.buffer.empty()) continue;  // exhausted shard
      if (best == cursor->legs.size() ||
          leg.buffer.front().score < cursor->legs[best].buffer.front().score) {
        best = s;
      }
    }
    if (best == cursor->legs.size()) break;  // every shard drained
    page.push_back(std::move(cursor->legs[best].buffer.front()));
    cursor->legs[best].buffer.pop_front();
  }
  return page;
}

void ShardedServer::CloseCursorLegs(
    const std::shared_ptr<CompositeCursor>& cursor) {
  for (size_t s = 0; s < cursor->legs.size(); ++s) {
    CursorLeg& leg = cursor->legs[s];
    if (leg.shard_cursor_id == 0) continue;
    const Bytes request = EncodeCursorCloseRequest(leg.shard_cursor_id);
    if (groups_.empty()) {
      Result<uint64_t> ticket = channels_[s]->Submit(request);
      if (ticket.ok()) channels_[s]->Collect(*ticket).status();
    } else if (leg.transport != nullptr) {
      // Best effort on the pinned replica; if it died, its cursor died
      // with the connection (the shard reaps on disconnect) and the TTL
      // covers any race.
      Result<uint64_t> ticket = leg.transport->Submit(request);
      if (ticket.ok()) leg.transport->Collect(*ticket).status();
    }
    leg.shard_cursor_id = 0;
  }
}

Result<Bytes> ShardedServer::HandleRangeSearchCursor(
    const Request& request, net::StreamContext* stream) {
  // Same taxonomy as the single server: legacy framing is the stateless
  // compat path; in-process calls (null stream) rely on the TTL reaper.
  if (stream != nullptr && !stream->pipelined()) {
    return Status::FailedPrecondition(
        "cursor opcodes need a pipelined connection (legacy framing is "
        "stateless)");
  }
  if (request.cursor_page_size == 0) {
    return Status::InvalidArgument("cursor page size must be > 0");
  }
  const uint64_t page_size =
      std::min(request.cursor_page_size, cursors_.config().max_page_size);

  auto cursor = std::make_shared<CompositeCursor>();
  cursor->query_distances = request.query_distances;
  cursor->radius = request.radius;
  cursor->page_size = page_size;
  cursor->legs.resize(channels_.size());
  for (size_t s = 0; s < channels_.size(); ++s) {
    Status opened = OpenCursorLeg(cursor.get(), s, 0);
    if (!opened.ok()) {
      CloseCursorLegs(cursor);
      return opened;
    }
  }
  // The facade-level start_offset is a GLOBAL offset into the merged
  // stream; per-shard offsets cannot express it, so the merge discards
  // the prefix. Only reopen paths pay this (normal opens pass 0).
  uint64_t discard = request.cursor_start_offset;
  while (discard > 0) {
    const uint64_t chunk = std::min(discard, page_size);
    uint64_t saved_page_size = cursor->page_size;
    cursor->page_size = chunk;
    Result<mindex::CandidateList> skipped = MergeNextPage(cursor.get());
    cursor->page_size = saved_page_size;
    if (!skipped.ok()) {
      CloseCursorLegs(cursor);
      return skipped.status();
    }
    if (skipped->empty()) break;  // offset beyond the result set
    discard -= skipped->size();
  }

  CursorPage page;
  page.total = cursor->total;
  Result<mindex::CandidateList> merged = MergeNextPage(cursor.get());
  if (!merged.ok()) {
    CloseCursorLegs(cursor);
    return merged.status();
  }
  page.candidates = std::move(*merged);
  // The open page carries the summed fan-out stats, candidates pinned to
  // the merged total — exactly what MergeShardResults reports one-shot.
  page.stats = cursor->stats;
  page.stats.candidates = cursor->total;

  bool drained = true;
  for (const CursorLeg& leg : cursor->legs) {
    if (!leg.exhausted || !leg.buffer.empty()) {
      drained = false;
      break;
    }
  }
  if (drained) {
    // Exhausted in one page: no facade state, no shard-side state (an
    // exhausted shard cursor already self-closed), cursor id 0.
    return EncodeCursorPage(page);
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      page.cursor_id,
      cursors_.Open(stream != nullptr ? stream->connection_id() : 0,
                    std::move(cursor)));
  return EncodeCursorPage(page);
}

Result<Bytes> ShardedServer::HandleCursorNext(const Request& request,
                                              net::StreamContext* stream) {
  if (stream != nullptr && !stream->pipelined()) {
    return Status::FailedPrecondition(
        "cursor opcodes need a pipelined connection (legacy framing is "
        "stateless)");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(std::shared_ptr<void> state,
                            cursors_.Acquire(request.cursor_id));
  auto cursor = std::static_pointer_cast<CompositeCursor>(state);
  Result<mindex::CandidateList> merged = MergeNextPage(cursor.get());
  if (!merged.ok()) {
    // A failed merge (shard cursor expired / invalidated / no live
    // replica) ends the composite cursor: release the facade slot and
    // the surviving legs, surface the shard's error untouched.
    cursors_.Close(request.cursor_id);
    CloseCursorLegs(cursor);
    return merged.status();
  }
  CursorPage page;
  page.candidates = std::move(*merged);
  page.total = cursor->total;
  page.stats.candidates = page.candidates.size();
  bool drained = true;
  for (const CursorLeg& leg : cursor->legs) {
    if (!leg.exhausted || !leg.buffer.empty()) {
      drained = false;
      break;
    }
  }
  cursors_.Commit(request.cursor_id, drained);
  page.cursor_id = drained ? 0 : request.cursor_id;
  return EncodeCursorPage(page);
}

void ShardedServer::EnqueueReap(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(reap_mutex_);
    if (!reap_stop_) {
      reap_queue_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task != nullptr) {
    // Shutting down: the destructor already joined (or is joining) the
    // reaper — run the teardown on this thread instead of dropping it.
    task();
    return;
  }
  reap_cv_.notify_all();
}

void ShardedServer::ReaperLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(reap_mutex_);
      reap_cv_.wait(lock, [&] { return reap_stop_ || !reap_queue_.empty(); });
      if (reap_queue_.empty()) return;  // stop requested and drained
      task = std::move(reap_queue_.front());
      reap_queue_.pop_front();
    }
    task();
  }
}

void ShardedServer::OnConnectionClosed(uint64_t connection_id) {
  if (connection_id == 0) return;
  // Unlink everything the dropped connection owned NOW (so stats and
  // admission see it gone), but defer the teardown I/O — joining pump
  // threads and closing shard-side cursors must not run on the
  // transport's event loop.
  std::vector<std::shared_ptr<void>> cursors = cursors_.CloseOwned(connection_id);
  std::vector<std::shared_ptr<WatchFanout>> fanouts;
  {
    std::lock_guard<std::mutex> lock(watch_mutex_);
    for (auto it = watches_.begin(); it != watches_.end();) {
      if (it->second->conn_id == connection_id) {
        fanouts.push_back(it->second);
        it = watches_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (cursors.empty() && fanouts.empty()) return;
  for (auto& fanout : fanouts) fanout->stop = true;  // pumps exit promptly
  EnqueueReap([this, cursors = std::move(cursors),
               fanouts = std::move(fanouts)] {
    for (const auto& state : cursors) {
      CloseCursorLegs(std::static_pointer_cast<CompositeCursor>(state));
    }
    for (const auto& fanout : fanouts) StopWatch(fanout);
  });
}

}  // namespace secure
}  // namespace simcloud
