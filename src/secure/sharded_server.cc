#include "secure/sharded_server.h"

#include <algorithm>
#include <thread>

namespace simcloud {
namespace secure {

Result<std::unique_ptr<ShardedServer>> ShardedServer::Create(
    const mindex::MIndexOptions& options, size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::vector<std::unique_ptr<EncryptedMIndexServer>> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    mindex::MIndexOptions shard_options = options;
    if (!shard_options.disk_path.empty()) {
      shard_options.disk_path += "." + std::to_string(i);
    }
    SIMCLOUD_ASSIGN_OR_RETURN(std::unique_ptr<EncryptedMIndexServer> shard,
                              EncryptedMIndexServer::Create(shard_options));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedServer>(new ShardedServer(std::move(shards)));
}

size_t ShardedServer::OwnerOf(const mindex::Permutation& permutation) const {
  return permutation.empty() ? 0 : permutation[0] % shards_.size();
}

namespace {

/// First permutation element of an insert item: the stored permutation's
/// head, or the closest pivot derived from the distances (ties to the
/// lower index, matching DistancesToPermutation).
uint32_t FirstPivotOf(const InsertItem& item) {
  if (!item.permutation.empty()) return item.permutation[0];
  uint32_t best = 0;
  for (uint32_t i = 1; i < item.pivot_distances.size(); ++i) {
    if (item.pivot_distances[i] < item.pivot_distances[best]) best = i;
  }
  return best;
}

}  // namespace

uint64_t ShardedServer::TotalObjects() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index().size();
  return total;
}

Result<Bytes> ShardedServer::FanOut(const Bytes& request, size_t limit) {
  std::vector<Result<Bytes>> responses(shards_.size(),
                                       Status::Internal("not run"));
  {
    std::vector<std::thread> threads;
    threads.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      threads.emplace_back([this, i, &request, &responses] {
        responses[i] = shards_[i]->Handle(request);
      });
    }
    for (auto& thread : threads) thread.join();
  }

  mindex::CandidateList merged;
  mindex::SearchStats stats;
  for (const auto& response : responses) {
    SIMCLOUD_RETURN_NOT_OK(response.status());
    SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse decoded,
                              DecodeCandidateResponse(*response));
    stats.cells_visited += decoded.stats.cells_visited;
    stats.cells_pruned += decoded.stats.cells_pruned;
    stats.entries_scanned += decoded.stats.entries_scanned;
    stats.entries_filtered += decoded.stats.entries_filtered;
    for (auto& candidate : decoded.candidates) {
      merged.push_back(std::move(candidate));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const mindex::Candidate& a, const mindex::Candidate& b) {
                     return a.score < b.score;
                   });
  if (limit > 0 && merged.size() > limit) merged.resize(limit);
  stats.candidates = merged.size();
  return EncodeCandidateResponse(merged, stats);
}

Result<Bytes> ShardedServer::Handle(const Bytes& request_bytes) {
  SIMCLOUD_ASSIGN_OR_RETURN(Request request, DecodeRequest(request_bytes));
  switch (request.op) {
    case Op::kInsertBatch: {
      // Partition the batch by owning shard, forward sub-batches.
      std::vector<std::vector<InsertItem>> per_shard(shards_.size());
      for (auto& item : request.insert_items) {
        per_shard[FirstPivotOf(item) % shards_.size()].push_back(
            std::move(item));
      }
      uint64_t inserted = 0;
      for (size_t i = 0; i < shards_.size(); ++i) {
        if (per_shard[i].empty()) continue;
        SIMCLOUD_ASSIGN_OR_RETURN(
            Bytes response,
            shards_[i]->Handle(EncodeInsertBatchRequest(per_shard[i])));
        SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count,
                                  DecodeInsertResponse(response));
        inserted += count;
      }
      return EncodeInsertResponse(inserted);
    }
    case Op::kRangeSearch:
      // Every shard prunes its own subtrees; the union of the per-shard
      // candidate supersets is a superset for the whole collection.
      return FanOut(request_bytes, /*limit=*/0);
    case Op::kApproxKnn:
      // Each shard contributes up to the full budget; the merge keeps
      // the globally best-ranked cand_size candidates. Whole-cell
      // queries return the union of per-shard best cells untrimmed.
      return FanOut(request_bytes,
                    request.query.whole_cells ? 0 : request.cand_size);
    case Op::kGetStats: {
      mindex::IndexStats total;
      for (const auto& shard : shards_) {
        const mindex::IndexStats stats = shard->index().Stats();
        total.object_count += stats.object_count;
        total.leaf_count += stats.leaf_count;
        total.inner_count += stats.inner_count;
        total.max_depth = std::max(total.max_depth, stats.max_depth);
        total.storage_bytes += stats.storage_bytes;
      }
      return EncodeStatsResponse(total);
    }
    case Op::kDelete:
      return shards_[OwnerOf(request.delete_permutation)]->Handle(
          request_bytes);
  }
  return Status::Corruption("unhandled opcode");
}

}  // namespace secure
}  // namespace simcloud
