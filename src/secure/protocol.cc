#include "secure/protocol.h"

namespace simcloud {
namespace secure {

namespace {

void WriteSearchStats(BinaryWriter* writer, const mindex::SearchStats& stats) {
  writer->WriteVarint(stats.cells_visited);
  writer->WriteVarint(stats.cells_pruned);
  writer->WriteVarint(stats.entries_scanned);
  writer->WriteVarint(stats.entries_filtered);
  writer->WriteVarint(stats.candidates);
}

Result<mindex::SearchStats> ReadSearchStats(BinaryReader* reader) {
  mindex::SearchStats stats;
  SIMCLOUD_ASSIGN_OR_RETURN(stats.cells_visited, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.cells_pruned, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.entries_scanned, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.entries_filtered, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.candidates, reader->ReadVarint());
  return stats;
}

/// One candidate-set block: stats, then the ranked candidates. Shared by
/// the single response and each per-query block of a batch response.
void WriteCandidateBlock(BinaryWriter* writer,
                         const mindex::CandidateList& candidates,
                         const mindex::SearchStats& stats) {
  WriteSearchStats(writer, stats);
  writer->WriteVarint(candidates.size());
  for (const auto& candidate : candidates) {
    writer->WriteVarint(candidate.id);
    writer->WriteDouble(candidate.score);
    writer->WriteBytes(candidate.payload);
  }
}

Result<CandidateResponse> ReadCandidateBlock(BinaryReader* reader) {
  CandidateResponse response;
  SIMCLOUD_ASSIGN_OR_RETURN(response.stats, ReadSearchStats(reader));
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
  response.candidates.reserve(reader->BoundedCount(count));
  for (uint64_t i = 0; i < count; ++i) {
    mindex::Candidate candidate;
    SIMCLOUD_ASSIGN_OR_RETURN(candidate.id, reader->ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(candidate.score, reader->ReadDouble());
    SIMCLOUD_ASSIGN_OR_RETURN(candidate.payload, reader->ReadBytes());
    response.candidates.push_back(std::move(candidate));
  }
  return response;
}

void WriteQuerySignature(BinaryWriter* writer,
                         const mindex::QuerySignature& query) {
  writer->WriteFloatVector(query.pivot_distances);
  writer->WriteU32Vector(query.permutation);
  writer->WriteBool(query.whole_cells);
}

Result<mindex::QuerySignature> ReadQuerySignature(BinaryReader* reader) {
  mindex::QuerySignature query;
  SIMCLOUD_ASSIGN_OR_RETURN(query.pivot_distances, reader->ReadFloatVector());
  SIMCLOUD_ASSIGN_OR_RETURN(query.permutation, reader->ReadU32Vector());
  SIMCLOUD_ASSIGN_OR_RETURN(query.whole_cells, reader->ReadBool());
  return query;
}

}  // namespace

Bytes EncodeInsertBatchRequest(const std::vector<InsertItem>& items) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kInsertBatch));
  writer.WriteVarint(items.size());
  for (const auto& item : items) {
    writer.WriteVarint(item.id);
    writer.WriteFloatVector(item.pivot_distances);
    writer.WriteU32Vector(item.permutation);
    writer.WriteBytes(item.payload);
  }
  return writer.TakeBuffer();
}

Bytes EncodeRangeSearchRequest(const std::vector<float>& query_distances,
                               double radius) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kRangeSearch));
  writer.WriteFloatVector(query_distances);
  writer.WriteDouble(radius);
  return writer.TakeBuffer();
}

Bytes EncodeApproxKnnRequest(const mindex::QuerySignature& query,
                             uint64_t cand_size) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kApproxKnn));
  WriteQuerySignature(&writer, query);
  writer.WriteVarint(cand_size);
  return writer.TakeBuffer();
}

Bytes EncodeRangeSearchBatchRequest(
    const std::vector<mindex::RangeQuery>& queries) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kRangeSearchBatch));
  writer.WriteVarint(queries.size());
  for (const auto& query : queries) {
    writer.WriteFloatVector(query.pivot_distances);
    writer.WriteDouble(query.radius);
  }
  return writer.TakeBuffer();
}

Bytes EncodeApproxKnnBatchRequest(
    const std::vector<mindex::KnnQuery>& queries) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kApproxKnnBatch));
  writer.WriteVarint(queries.size());
  for (const auto& query : queries) {
    WriteQuerySignature(&writer, query.signature);
    writer.WriteVarint(query.cand_size);
  }
  return writer.TakeBuffer();
}

Bytes EncodeGetStatsRequest() {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kGetStats));
  return writer.TakeBuffer();
}

Bytes EncodeDeleteRequest(metric::ObjectId id,
                          const mindex::Permutation& permutation) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kDelete));
  writer.WriteVarint(id);
  writer.WriteU32Vector(permutation);
  return writer.TakeBuffer();
}

Bytes EncodeDeleteBatchRequest(const std::vector<DeleteItem>& items) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kDeleteBatch));
  writer.WriteVarint(items.size());
  for (const DeleteItem& item : items) {
    writer.WriteVarint(item.id);
    writer.WriteU32Vector(item.permutation);
  }
  return writer.TakeBuffer();
}

Bytes EncodeCompactRequest(bool force) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kCompact));
  writer.WriteBool(force);
  return writer.TakeBuffer();
}

Bytes EncodePingRequest() {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kPing));
  return writer.TakeBuffer();
}

Bytes EncodeWatchRequest(const WatchFilter& filter,
                         const std::vector<uint64_t>& resume_token) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kWatch));
  writer.WriteU8(static_cast<uint8_t>(filter.kind));
  if (filter.kind == WatchFilter::Kind::kRange) {
    writer.WriteFloatVector(filter.query_distances);
    writer.WriteDouble(filter.radius);
  }
  writer.WriteVarint(resume_token.size());
  for (uint64_t seq : resume_token) writer.WriteVarint(seq);
  return writer.TakeBuffer();
}

Bytes EncodeWatchCancelRequest(uint64_t watch_id) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kWatchCancel));
  writer.WriteVarint(watch_id);
  return writer.TakeBuffer();
}

Bytes EncodeWatchFrame(const WatchFrame& frame) {
  BinaryWriter writer;
  writer.Reserve(frame.payload.size() + frame.message.size() +
                 16 * frame.token.size() + 32);
  writer.WriteU8(static_cast<uint8_t>(frame.kind));
  writer.WriteVarint(frame.token.size());
  for (uint64_t seq : frame.token) writer.WriteVarint(seq);
  switch (frame.kind) {
    case WatchFrame::Kind::kAck:
      writer.WriteVarint(frame.watch_id);
      break;
    case WatchFrame::Kind::kInsert:
      writer.WriteVarint(frame.object_id);
      writer.WriteBytes(frame.payload);
      break;
    case WatchFrame::Kind::kDelete:
      writer.WriteVarint(frame.object_id);
      break;
    case WatchFrame::Kind::kLost:
      writer.WriteString(frame.message);
      break;
  }
  return writer.TakeBuffer();
}

Result<WatchFrame> DecodeWatchFrame(const Bytes& data) {
  BinaryReader reader(data);
  WatchFrame frame;
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t kind_byte, reader.ReadU8());
  if (kind_byte > static_cast<uint8_t>(WatchFrame::Kind::kLost)) {
    return Status::Corruption("unknown watch frame kind " +
                              std::to_string(kind_byte));
  }
  frame.kind = static_cast<WatchFrame::Kind>(kind_byte);
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t token_size, reader.ReadVarint());
  frame.token.reserve(reader.BoundedCount(token_size));
  for (uint64_t i = 0; i < token_size; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t seq, reader.ReadVarint());
    frame.token.push_back(seq);
  }
  switch (frame.kind) {
    case WatchFrame::Kind::kAck: {
      SIMCLOUD_ASSIGN_OR_RETURN(frame.watch_id, reader.ReadVarint());
      break;
    }
    case WatchFrame::Kind::kInsert: {
      SIMCLOUD_ASSIGN_OR_RETURN(frame.object_id, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(frame.payload, reader.ReadBytes());
      break;
    }
    case WatchFrame::Kind::kDelete: {
      SIMCLOUD_ASSIGN_OR_RETURN(frame.object_id, reader.ReadVarint());
      break;
    }
    case WatchFrame::Kind::kLost: {
      SIMCLOUD_ASSIGN_OR_RETURN(frame.message, reader.ReadString());
      break;
    }
  }
  return frame;
}

Bytes EncodeRangeSearchCursorRequest(
    const std::vector<float>& query_distances, double radius,
    uint64_t page_size, uint64_t start_offset) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kRangeSearchCursor));
  writer.WriteFloatVector(query_distances);
  writer.WriteDouble(radius);
  writer.WriteVarint(page_size);
  writer.WriteVarint(start_offset);
  return writer.TakeBuffer();
}

Bytes EncodeCursorNextRequest(uint64_t cursor_id) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kCursorNext));
  writer.WriteVarint(cursor_id);
  return writer.TakeBuffer();
}

Bytes EncodeCursorCloseRequest(uint64_t cursor_id) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kCursorClose));
  writer.WriteVarint(cursor_id);
  return writer.TakeBuffer();
}

Bytes EncodeCursorPage(const CursorPage& page) {
  BinaryWriter writer;
  size_t payload_bytes = 0;
  for (const auto& candidate : page.candidates) {
    payload_bytes += candidate.payload.size() + 24;
  }
  writer.Reserve(payload_bytes + 80);
  writer.WriteVarint(page.cursor_id);
  writer.WriteVarint(page.total);
  WriteCandidateBlock(&writer, page.candidates, page.stats);
  return writer.TakeBuffer();
}

Result<CursorPage> DecodeCursorPage(const Bytes& data) {
  BinaryReader reader(data);
  CursorPage page;
  SIMCLOUD_ASSIGN_OR_RETURN(page.cursor_id, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(page.total, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse block,
                            ReadCandidateBlock(&reader));
  page.stats = block.stats;
  page.candidates = std::move(block.candidates);
  return page;
}

Result<Request> DecodeRequest(const Bytes& data) {
  BinaryReader reader(data);
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  Request request;
  request.op = static_cast<Op>(op_byte);
  switch (request.op) {
    case Op::kInsertBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      request.insert_items.reserve(reader.BoundedCount(count));
      for (uint64_t i = 0; i < count; ++i) {
        InsertItem item;
        SIMCLOUD_ASSIGN_OR_RETURN(item.id, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(item.pivot_distances,
                                  reader.ReadFloatVector());
        SIMCLOUD_ASSIGN_OR_RETURN(item.permutation, reader.ReadU32Vector());
        SIMCLOUD_ASSIGN_OR_RETURN(item.payload, reader.ReadBytes());
        request.insert_items.push_back(std::move(item));
      }
      return request;
    }
    case Op::kRangeSearch: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.query_distances,
                                reader.ReadFloatVector());
      SIMCLOUD_ASSIGN_OR_RETURN(request.radius, reader.ReadDouble());
      return request;
    }
    case Op::kApproxKnn: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.query, ReadQuerySignature(&reader));
      SIMCLOUD_ASSIGN_OR_RETURN(request.cand_size, reader.ReadVarint());
      return request;
    }
    case Op::kGetStats:
      return request;
    case Op::kDelete: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.delete_id, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(request.delete_permutation,
                                reader.ReadU32Vector());
      return request;
    }
    case Op::kRangeSearchBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      if (count > kMaxBatchQueries) {
        return Status::InvalidArgument(
            "batch of " + std::to_string(count) + " queries exceeds the " +
            std::to_string(kMaxBatchQueries) + "-query limit");
      }
      request.range_queries.reserve(reader.BoundedCount(count));
      for (uint64_t i = 0; i < count; ++i) {
        mindex::RangeQuery query;
        SIMCLOUD_ASSIGN_OR_RETURN(query.pivot_distances,
                                  reader.ReadFloatVector());
        SIMCLOUD_ASSIGN_OR_RETURN(query.radius, reader.ReadDouble());
        request.range_queries.push_back(std::move(query));
      }
      return request;
    }
    case Op::kApproxKnnBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      if (count > kMaxBatchQueries) {
        return Status::InvalidArgument(
            "batch of " + std::to_string(count) + " queries exceeds the " +
            std::to_string(kMaxBatchQueries) + "-query limit");
      }
      request.knn_queries.reserve(reader.BoundedCount(count));
      for (uint64_t i = 0; i < count; ++i) {
        mindex::KnnQuery query;
        SIMCLOUD_ASSIGN_OR_RETURN(query.signature,
                                  ReadQuerySignature(&reader));
        SIMCLOUD_ASSIGN_OR_RETURN(query.cand_size, reader.ReadVarint());
        request.knn_queries.push_back(std::move(query));
      }
      return request;
    }
    case Op::kDeleteBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      if (count > kMaxBatchQueries) {
        return Status::InvalidArgument(
            "batch of " + std::to_string(count) + " deletes exceeds the " +
            std::to_string(kMaxBatchQueries) + "-item limit");
      }
      request.delete_items.reserve(reader.BoundedCount(count));
      for (uint64_t i = 0; i < count; ++i) {
        DeleteItem item;
        SIMCLOUD_ASSIGN_OR_RETURN(item.id, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(item.permutation, reader.ReadU32Vector());
        request.delete_items.push_back(std::move(item));
      }
      return request;
    }
    case Op::kCompact: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.compact_force, reader.ReadBool());
      return request;
    }
    case Op::kPing:
      return request;
    case Op::kWatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint8_t filter_kind, reader.ReadU8());
      if (filter_kind > static_cast<uint8_t>(WatchFilter::Kind::kRange)) {
        return Status::InvalidArgument("unknown watch filter kind " +
                                       std::to_string(filter_kind));
      }
      request.watch_filter.kind = static_cast<WatchFilter::Kind>(filter_kind);
      if (request.watch_filter.kind == WatchFilter::Kind::kRange) {
        SIMCLOUD_ASSIGN_OR_RETURN(request.watch_filter.query_distances,
                                  reader.ReadFloatVector());
        SIMCLOUD_ASSIGN_OR_RETURN(request.watch_filter.radius,
                                  reader.ReadDouble());
      }
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t token_size, reader.ReadVarint());
      if (token_size > kMaxBatchQueries) {
        return Status::InvalidArgument(
            "watch resume token of " + std::to_string(token_size) +
            " shards exceeds the " + std::to_string(kMaxBatchQueries) +
            "-entry limit");
      }
      request.watch_resume_token.reserve(reader.BoundedCount(token_size));
      for (uint64_t i = 0; i < token_size; ++i) {
        SIMCLOUD_ASSIGN_OR_RETURN(uint64_t seq, reader.ReadVarint());
        request.watch_resume_token.push_back(seq);
      }
      return request;
    }
    case Op::kWatchCancel: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.watch_cancel_id, reader.ReadVarint());
      return request;
    }
    case Op::kRangeSearchCursor: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.query_distances,
                                reader.ReadFloatVector());
      SIMCLOUD_ASSIGN_OR_RETURN(request.radius, reader.ReadDouble());
      SIMCLOUD_ASSIGN_OR_RETURN(request.cursor_page_size, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(request.cursor_start_offset,
                                reader.ReadVarint());
      return request;
    }
    case Op::kCursorNext:
    case Op::kCursorClose: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.cursor_id, reader.ReadVarint());
      return request;
    }
    case Op::kGetMetrics:
      // Strictly empty-bodied: a torn or garbage frame that happens to
      // start with opcode 16 must never read as a valid scrape.
      if (!reader.AtEnd()) {
        return Status::InvalidArgument(
            "kGetMetrics request carries unexpected body bytes");
      }
      return request;
  }
  return Status::Corruption("unknown opcode " + std::to_string(op_byte));
}

Bytes EncodeCandidateResponse(const mindex::CandidateList& candidates,
                              const mindex::SearchStats& stats) {
  BinaryWriter writer;
  size_t payload_bytes = 0;
  for (const auto& candidate : candidates) {
    payload_bytes += candidate.payload.size() + 24;
  }
  writer.Reserve(payload_bytes + 64);
  WriteCandidateBlock(&writer, candidates, stats);
  return writer.TakeBuffer();
}

Result<CandidateResponse> DecodeCandidateResponse(const Bytes& data) {
  BinaryReader reader(data);
  return ReadCandidateBlock(&reader);
}

Bytes EncodeBatchCandidateResponse(
    const mindex::BatchCandidates& batch,
    const std::vector<mindex::SearchStats>& stats) {
  BinaryWriter writer;
  size_t payload_bytes = 0;
  for (const Bytes& payload : batch.payloads) {
    payload_bytes += payload.size() + 8;
  }
  size_t ref_count = 0;
  for (const auto& refs : batch.per_query) ref_count += refs.size();
  writer.Reserve(payload_bytes + 24 * ref_count +
                 64 * batch.per_query.size() + 32);

  writer.WriteVarint(batch.payloads.size());
  for (const Bytes& payload : batch.payloads) writer.WriteBytes(payload);
  writer.WriteVarint(batch.per_query.size());
  for (size_t q = 0; q < batch.per_query.size(); ++q) {
    WriteSearchStats(&writer, stats[q]);
    writer.WriteVarint(batch.per_query[q].size());
    for (const mindex::BatchCandidateRef& ref : batch.per_query[q]) {
      writer.WriteVarint(ref.id);
      writer.WriteDouble(ref.score);
      writer.WriteVarint(ref.payload_index);
    }
  }
  return writer.TakeBuffer();
}

Result<BatchCandidateResponse> DecodeBatchCandidateResponse(
    const Bytes& data) {
  BinaryReader reader(data);
  BatchCandidateResponse response;
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t payload_count, reader.ReadVarint());
  response.batch.payloads.reserve(reader.BoundedCount(payload_count));
  for (uint64_t i = 0; i < payload_count; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes payload, reader.ReadBytes());
    response.batch.payloads.push_back(std::move(payload));
  }
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t query_count, reader.ReadVarint());
  response.batch.per_query.reserve(reader.BoundedCount(query_count));
  response.stats.reserve(reader.BoundedCount(query_count));
  for (uint64_t q = 0; q < query_count; ++q) {
    SIMCLOUD_ASSIGN_OR_RETURN(mindex::SearchStats stats,
                              ReadSearchStats(&reader));
    response.stats.push_back(stats);
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    std::vector<mindex::BatchCandidateRef> refs;
    refs.reserve(reader.BoundedCount(count));
    for (uint64_t i = 0; i < count; ++i) {
      mindex::BatchCandidateRef ref;
      SIMCLOUD_ASSIGN_OR_RETURN(ref.id, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(ref.score, reader.ReadDouble());
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t index, reader.ReadVarint());
      if (index >= response.batch.payloads.size()) {
        return Status::Corruption("batch candidate payload index " +
                                  std::to_string(index) + " out of range");
      }
      ref.payload_index = static_cast<uint32_t>(index);
      refs.push_back(ref);
    }
    response.batch.per_query.push_back(std::move(refs));
  }
  return response;
}

Bytes EncodeInsertResponse(uint64_t inserted) {
  BinaryWriter writer;
  writer.WriteVarint(inserted);
  return writer.TakeBuffer();
}

Result<uint64_t> DecodeInsertResponse(const Bytes& data) {
  BinaryReader reader(data);
  return reader.ReadVarint();
}

Bytes EncodeStatsResponse(const mindex::IndexStats& stats) {
  BinaryWriter writer;
  writer.WriteVarint(stats.object_count);
  writer.WriteVarint(stats.leaf_count);
  writer.WriteVarint(stats.inner_count);
  writer.WriteVarint(stats.max_depth);
  writer.WriteVarint(stats.storage_bytes);
  writer.WriteVarint(stats.live_storage_bytes);
  writer.WriteVarint(stats.dead_storage_bytes);
  // Compaction telemetry block, appended with this protocol revision;
  // the decoder treats it as optional so pre-revision responses decode.
  writer.WriteVarint(stats.compaction_passes);
  writer.WriteVarint(stats.compaction_active);
  writer.WriteVarint(stats.compaction_progress_payloads);
  writer.WriteVarint(stats.compaction_last_pause_nanos);
  writer.WriteVarint(stats.compaction_max_pause_nanos);
  // Topology health block, appended with the failover revision; also
  // optional on decode.
  writer.WriteVarint(stats.shards_total);
  writer.WriteVarint(stats.shards_up);
  writer.WriteVarint(stats.shards_degraded);
  writer.WriteVarint(stats.shards_down);
  // Appended with the change-stream revision (optional on decode): a
  // replay-overflowed replica previously hid inside shards_down/degraded
  // with no distinct wire signal.
  writer.WriteVarint(stats.shards_stale);
  // Appended with the server-side cursor revision (optional on decode):
  // open/lifetime cursor counters.
  writer.WriteVarint(stats.cursors_open);
  writer.WriteVarint(stats.cursors_opened_total);
  writer.WriteVarint(stats.cursors_expired_total);
  writer.WriteVarint(stats.cursors_reaped_total);
  return writer.TakeBuffer();
}

Result<mindex::IndexStats> DecodeStatsResponse(const Bytes& data) {
  BinaryReader reader(data);
  mindex::IndexStats stats;
  SIMCLOUD_ASSIGN_OR_RETURN(stats.object_count, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.leaf_count, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.inner_count, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.max_depth, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.storage_bytes, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.live_storage_bytes, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.dead_storage_bytes, reader.ReadVarint());
  if (!reader.AtEnd()) {
    SIMCLOUD_ASSIGN_OR_RETURN(stats.compaction_passes, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.compaction_active, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.compaction_progress_payloads,
                              reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.compaction_last_pause_nanos,
                              reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.compaction_max_pause_nanos,
                              reader.ReadVarint());
  }
  if (!reader.AtEnd()) {
    SIMCLOUD_ASSIGN_OR_RETURN(stats.shards_total, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.shards_up, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.shards_degraded, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.shards_down, reader.ReadVarint());
  }
  if (!reader.AtEnd()) {
    SIMCLOUD_ASSIGN_OR_RETURN(stats.shards_stale, reader.ReadVarint());
  }
  if (!reader.AtEnd()) {
    SIMCLOUD_ASSIGN_OR_RETURN(stats.cursors_open, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.cursors_opened_total, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.cursors_expired_total,
                              reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(stats.cursors_reaped_total, reader.ReadVarint());
  }
  return stats;
}

Bytes EncodeCompactResponse(const mindex::CompactionReport& report) {
  BinaryWriter writer;
  writer.WriteBool(report.compacted);
  writer.WriteVarint(report.bytes_before);
  writer.WriteVarint(report.bytes_after);
  writer.WriteVarint(report.payloads_moved);
  writer.WriteVarint(report.reclaimed_bytes);
  // Appended with this protocol revision (optional on decode): the
  // writer-lock pause the pass cost, segments released in place, and
  // which pass mode ran.
  writer.WriteVarint(report.pause_nanos);
  writer.WriteVarint(report.segments_released);
  writer.WriteU8(static_cast<uint8_t>(report.mode));
  return writer.TakeBuffer();
}

Result<mindex::CompactionReport> DecodeCompactResponse(const Bytes& data) {
  BinaryReader reader(data);
  mindex::CompactionReport report;
  SIMCLOUD_ASSIGN_OR_RETURN(report.compacted, reader.ReadBool());
  SIMCLOUD_ASSIGN_OR_RETURN(report.bytes_before, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(report.bytes_after, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(report.payloads_moved, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(report.reclaimed_bytes, reader.ReadVarint());
  if (!reader.AtEnd()) {
    SIMCLOUD_ASSIGN_OR_RETURN(report.pause_nanos, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(report.segments_released, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(uint8_t mode, reader.ReadU8());
    report.mode = mode == 1 ? mindex::CompactionMode::kPartial
                            : mindex::CompactionMode::kFull;
  }
  return report;
}

Bytes EncodeGetMetricsRequest() {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kGetMetrics));
  return writer.TakeBuffer();
}

Bytes EncodeMetricsResponse(const obs::MetricsSnapshot& snapshot) {
  // The snapshot codec IS the response body: it is already append-only
  // (obs/metrics.h), so the protocol layer adds nothing to strip.
  return obs::EncodeMetricsSnapshot(snapshot);
}

Result<obs::MetricsSnapshot> DecodeMetricsResponse(const Bytes& data) {
  return obs::DecodeMetricsSnapshot(data);
}

}  // namespace secure
}  // namespace simcloud
