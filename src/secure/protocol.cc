#include "secure/protocol.h"

namespace simcloud {
namespace secure {

namespace {

void WriteSearchStats(BinaryWriter* writer, const mindex::SearchStats& stats) {
  writer->WriteVarint(stats.cells_visited);
  writer->WriteVarint(stats.cells_pruned);
  writer->WriteVarint(stats.entries_scanned);
  writer->WriteVarint(stats.entries_filtered);
  writer->WriteVarint(stats.candidates);
}

Result<mindex::SearchStats> ReadSearchStats(BinaryReader* reader) {
  mindex::SearchStats stats;
  SIMCLOUD_ASSIGN_OR_RETURN(stats.cells_visited, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.cells_pruned, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.entries_scanned, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.entries_filtered, reader->ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.candidates, reader->ReadVarint());
  return stats;
}

}  // namespace

Bytes EncodeInsertBatchRequest(const std::vector<InsertItem>& items) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kInsertBatch));
  writer.WriteVarint(items.size());
  for (const auto& item : items) {
    writer.WriteVarint(item.id);
    writer.WriteFloatVector(item.pivot_distances);
    writer.WriteU32Vector(item.permutation);
    writer.WriteBytes(item.payload);
  }
  return writer.TakeBuffer();
}

Bytes EncodeRangeSearchRequest(const std::vector<float>& query_distances,
                               double radius) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kRangeSearch));
  writer.WriteFloatVector(query_distances);
  writer.WriteDouble(radius);
  return writer.TakeBuffer();
}

Bytes EncodeApproxKnnRequest(const mindex::QuerySignature& query,
                             uint64_t cand_size) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kApproxKnn));
  writer.WriteFloatVector(query.pivot_distances);
  writer.WriteU32Vector(query.permutation);
  writer.WriteBool(query.whole_cells);
  writer.WriteVarint(cand_size);
  return writer.TakeBuffer();
}

Bytes EncodeGetStatsRequest() {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kGetStats));
  return writer.TakeBuffer();
}

Bytes EncodeDeleteRequest(metric::ObjectId id,
                          const mindex::Permutation& permutation) {
  BinaryWriter writer;
  writer.WriteU8(static_cast<uint8_t>(Op::kDelete));
  writer.WriteVarint(id);
  writer.WriteU32Vector(permutation);
  return writer.TakeBuffer();
}

Result<Request> DecodeRequest(const Bytes& data) {
  BinaryReader reader(data);
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t op_byte, reader.ReadU8());
  Request request;
  request.op = static_cast<Op>(op_byte);
  switch (request.op) {
    case Op::kInsertBatch: {
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
      request.insert_items.reserve(reader.BoundedCount(count));
      for (uint64_t i = 0; i < count; ++i) {
        InsertItem item;
        SIMCLOUD_ASSIGN_OR_RETURN(item.id, reader.ReadVarint());
        SIMCLOUD_ASSIGN_OR_RETURN(item.pivot_distances,
                                  reader.ReadFloatVector());
        SIMCLOUD_ASSIGN_OR_RETURN(item.permutation, reader.ReadU32Vector());
        SIMCLOUD_ASSIGN_OR_RETURN(item.payload, reader.ReadBytes());
        request.insert_items.push_back(std::move(item));
      }
      return request;
    }
    case Op::kRangeSearch: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.query_distances,
                                reader.ReadFloatVector());
      SIMCLOUD_ASSIGN_OR_RETURN(request.radius, reader.ReadDouble());
      return request;
    }
    case Op::kApproxKnn: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.query.pivot_distances,
                                reader.ReadFloatVector());
      SIMCLOUD_ASSIGN_OR_RETURN(request.query.permutation,
                                reader.ReadU32Vector());
      SIMCLOUD_ASSIGN_OR_RETURN(request.query.whole_cells, reader.ReadBool());
      SIMCLOUD_ASSIGN_OR_RETURN(request.cand_size, reader.ReadVarint());
      return request;
    }
    case Op::kGetStats:
      return request;
    case Op::kDelete: {
      SIMCLOUD_ASSIGN_OR_RETURN(request.delete_id, reader.ReadVarint());
      SIMCLOUD_ASSIGN_OR_RETURN(request.delete_permutation,
                                reader.ReadU32Vector());
      return request;
    }
  }
  return Status::Corruption("unknown opcode " + std::to_string(op_byte));
}

Bytes EncodeCandidateResponse(const mindex::CandidateList& candidates,
                              const mindex::SearchStats& stats) {
  BinaryWriter writer;
  WriteSearchStats(&writer, stats);
  writer.WriteVarint(candidates.size());
  for (const auto& candidate : candidates) {
    writer.WriteVarint(candidate.id);
    writer.WriteDouble(candidate.score);
    writer.WriteBytes(candidate.payload);
  }
  return writer.TakeBuffer();
}

Result<CandidateResponse> DecodeCandidateResponse(const Bytes& data) {
  BinaryReader reader(data);
  CandidateResponse response;
  SIMCLOUD_ASSIGN_OR_RETURN(response.stats, ReadSearchStats(&reader));
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  response.candidates.reserve(reader.BoundedCount(count));
  for (uint64_t i = 0; i < count; ++i) {
    mindex::Candidate candidate;
    SIMCLOUD_ASSIGN_OR_RETURN(candidate.id, reader.ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(candidate.score, reader.ReadDouble());
    SIMCLOUD_ASSIGN_OR_RETURN(candidate.payload, reader.ReadBytes());
    response.candidates.push_back(std::move(candidate));
  }
  return response;
}

Bytes EncodeInsertResponse(uint64_t inserted) {
  BinaryWriter writer;
  writer.WriteVarint(inserted);
  return writer.TakeBuffer();
}

Result<uint64_t> DecodeInsertResponse(const Bytes& data) {
  BinaryReader reader(data);
  return reader.ReadVarint();
}

Bytes EncodeStatsResponse(const mindex::IndexStats& stats) {
  BinaryWriter writer;
  writer.WriteVarint(stats.object_count);
  writer.WriteVarint(stats.leaf_count);
  writer.WriteVarint(stats.inner_count);
  writer.WriteVarint(stats.max_depth);
  writer.WriteVarint(stats.storage_bytes);
  return writer.TakeBuffer();
}

Result<mindex::IndexStats> DecodeStatsResponse(const Bytes& data) {
  BinaryReader reader(data);
  mindex::IndexStats stats;
  SIMCLOUD_ASSIGN_OR_RETURN(stats.object_count, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.leaf_count, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.inner_count, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.max_depth, reader.ReadVarint());
  SIMCLOUD_ASSIGN_OR_RETURN(stats.storage_bytes, reader.ReadVarint());
  return stats;
}

}  // namespace secure
}  // namespace simcloud
