// Generic encryption client: the Encrypted M-Index for ANY metric-space
// object type.
//
// Paper Section 4 notes the technique "can be generalized
// straightforwardly to any other member of this class of metric indexes";
// symmetrically, the server side of OUR stack is already object-agnostic
// (it routes by permutations / float distances and stores opaque
// ciphertext), so generalizing the system to new object types requires
// generalizing only the CLIENT. This template does that: instantiate it
// with any object type + metric functor and the same untrusted
// EncryptedMIndexServer serves it unchanged — encrypted gene sequences
// under edit distance, encrypted vectors under Lp, etc.
//
// ObjectTraits contract (see metric::SequenceObject for a model):
//   Object        — default-constructible, movable;
//   object.id()   — metric::ObjectId;
//   object.Serialize(BinaryWriter*) / static Object::Deserialize(reader)
//                 — self-describing binary codec.
// Distance contract: `double operator()(const Object&, const Object&)`,
// a metric (the index's pruning correctness depends on the triangle
// inequality).

#ifndef SIMCLOUD_SECURE_GENERIC_CLIENT_H_
#define SIMCLOUD_SECURE_GENERIC_CLIENT_H_

#include <algorithm>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "crypto/cipher.h"
#include "metric/neighbor.h"
#include "mindex/permutation.h"
#include "net/transport.h"
#include "secure/protocol.h"

namespace simcloud {
namespace secure {

/// The authorized client of an Encrypted M-Index over an arbitrary object
/// type. Holds the secret (pivot objects + AES key) exactly as
/// EncryptionClient does for vectors.
template <typename Object, typename Distance>
class GenericEncryptionClient {
 public:
  /// `transport` must outlive the client and connect to an
  /// EncryptedMIndexServer whose options.num_pivots == pivots.size().
  GenericEncryptionClient(std::vector<Object> pivots, crypto::Cipher cipher,
                          Distance distance, net::Transport* transport)
      : pivots_(std::move(pivots)),
        cipher_(std::move(cipher)),
        distance_(std::move(distance)),
        transport_(transport) {}

  size_t num_pivots() const { return pivots_.size(); }

  /// Inserts objects in bulks (Algorithm 1, permutation-only strategy is
  /// `precise = false`).
  Status InsertBulk(const std::vector<Object>& objects, bool precise,
                    size_t bulk_size = 1000) {
    if (bulk_size == 0) {
      return Status::InvalidArgument("bulk size must be > 0");
    }
    size_t offset = 0;
    while (offset < objects.size()) {
      const size_t batch = std::min(bulk_size, objects.size() - offset);
      std::vector<InsertItem> items;
      items.reserve(batch);
      for (size_t i = 0; i < batch; ++i) {
        const Object& object = objects[offset + i];
        InsertItem item;
        item.id = object.id();
        std::vector<float> distances = PivotDistances(object);
        if (precise) {
          item.pivot_distances = std::move(distances);
        } else {
          item.permutation = mindex::DistancesToPermutation(distances);
        }
        SIMCLOUD_ASSIGN_OR_RETURN(item.payload, Encrypt(object));
        items.push_back(std::move(item));
      }
      SIMCLOUD_ASSIGN_OR_RETURN(
          Bytes response, transport_->Call(EncodeInsertBatchRequest(items)));
      SIMCLOUD_ASSIGN_OR_RETURN(uint64_t inserted,
                                DecodeInsertResponse(response));
      if (inserted != batch) {
        return Status::Internal("server acknowledged wrong batch size");
      }
      offset += batch;
    }
    return Status::OK();
  }

  /// Precise range query R(q, r): candidates from the server, refined
  /// with true distances client-side (Algorithm 2). Requires precise
  /// inserts. Returns (id, distance) pairs sorted by distance.
  Result<metric::NeighborList> RangeSearch(const Object& query,
                                           double radius) {
    if (radius < 0) {
      return Status::InvalidArgument("radius must be >= 0");
    }
    const std::vector<float> distances = PivotDistances(query);
    SIMCLOUD_ASSIGN_OR_RETURN(
        Bytes response,
        transport_->Call(EncodeRangeSearchRequest(distances, radius)));
    SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse candidates,
                              DecodeCandidateResponse(response));
    metric::NeighborList answer;
    for (const auto& candidate : candidates.candidates) {
      SIMCLOUD_ASSIGN_OR_RETURN(Object object, Decrypt(candidate.payload));
      const double d = distance_(query, object);
      if (d <= radius) answer.push_back({object.id(), d});
    }
    std::sort(answer.begin(), answer.end());
    return answer;
  }

  /// Approximate k-NN with a candidate budget (Algorithm 2, approximate
  /// branch; permutation-only request).
  Result<metric::NeighborList> ApproxKnn(const Object& query, size_t k,
                                         size_t cand_size) {
    if (k == 0 || cand_size < k) {
      return Status::InvalidArgument("need k >= 1 and cand_size >= k");
    }
    mindex::QuerySignature signature;
    signature.permutation =
        mindex::DistancesToPermutation(PivotDistances(query));
    SIMCLOUD_ASSIGN_OR_RETURN(
        Bytes response,
        transport_->Call(EncodeApproxKnnRequest(signature, cand_size)));
    SIMCLOUD_ASSIGN_OR_RETURN(CandidateResponse candidates,
                              DecodeCandidateResponse(response));
    metric::NeighborList answer;
    answer.reserve(candidates.candidates.size());
    for (const auto& candidate : candidates.candidates) {
      SIMCLOUD_ASSIGN_OR_RETURN(Object object, Decrypt(candidate.payload));
      answer.push_back({object.id(), distance_(query, object)});
    }
    std::sort(answer.begin(), answer.end());
    if (answer.size() > k) answer.resize(k);
    return answer;
  }

 private:
  std::vector<float> PivotDistances(const Object& object) const {
    std::vector<float> distances(pivots_.size());
    for (size_t i = 0; i < pivots_.size(); ++i) {
      distances[i] = static_cast<float>(distance_(object, pivots_[i]));
    }
    return distances;
  }

  Result<Bytes> Encrypt(const Object& object) const {
    BinaryWriter writer;
    object.Serialize(&writer);
    return cipher_.Encrypt(writer.buffer());
  }

  Result<Object> Decrypt(const Bytes& ciphertext) const {
    SIMCLOUD_ASSIGN_OR_RETURN(Bytes plaintext, cipher_.Decrypt(ciphertext));
    BinaryReader reader(plaintext);
    return Object::Deserialize(&reader);
  }

  std::vector<Object> pivots_;
  crypto::Cipher cipher_;
  Distance distance_;
  net::Transport* transport_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_GENERIC_CLIENT_H_
