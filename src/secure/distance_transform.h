// Distribution-hiding distance transformation (the paper's Section 4.3 /
// future-work direction, here implemented as an optional extension).
//
// A strictly increasing, concave function T with T(0) = 0 is subadditive:
//   T(x + y) <= T(x) + T(y),   |T(a) - T(b)| <= T(|a - b|).
// If the client stores T(d(o, p_i)) instead of d(o, p_i) and queries with
// T(d(q, p_i)) and transformed radius T(r), every server-side constraint
// the M-Index applies remains *sound* (it may prune less):
//
//  * pivot filtering:    |T(qd_i) - T(od_i)| > T(r)      ==> d(q,o) > r
//  * range-pivot:        T(qd) - T(max) > T(r)           ==> safe prune
//  * double-pivot:       T(qd_ik) > T(qd_j) + 2 T(r)     ==> safe prune
//
// so precise range search still returns a superset of the true result and
// the client refine step keeps correctness, while the server now observes
// only nonlinearly distorted distances — hiding the data distribution
// (privacy level 4 of the paper's taxonomy, Section 2.3).
//
// The transform is part of the secret key: a piecewise-linear concave
// function with knots and strictly decreasing positive slopes derived
// deterministically from a seed.

#ifndef SIMCLOUD_SECURE_DISTANCE_TRANSFORM_H_
#define SIMCLOUD_SECURE_DISTANCE_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace simcloud {
namespace secure {

/// Secret monotone concave distance transform T : [0, inf) -> [0, inf).
class ConcaveTransform {
 public:
  ConcaveTransform() = default;

  /// Builds a transform with `num_knots` segments covering [0,
  /// domain_max]; beyond domain_max the last (smallest) slope continues,
  /// preserving monotonicity and concavity on the whole half-line.
  static Result<ConcaveTransform> FromSeed(uint64_t seed, double domain_max,
                                           size_t num_knots = 32);

  /// Evaluates T(x) for x >= 0 (monotone increasing, concave, T(0)=0).
  double Apply(double x) const;

  /// Transforms a whole distance vector.
  std::vector<float> ApplyAll(const std::vector<float>& values) const;

  bool empty() const { return slopes_.empty(); }
  double domain_max() const { return domain_max_; }

  void Serialize(BinaryWriter* writer) const;
  static Result<ConcaveTransform> Deserialize(BinaryReader* reader);

 private:
  double domain_max_ = 0;
  double knot_width_ = 0;
  std::vector<double> slopes_;       // strictly decreasing, positive
  std::vector<double> cum_values_;   // T at each knot boundary
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_DISTANCE_TRANSFORM_H_
