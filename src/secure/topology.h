// Topology monitoring and replica failover for the sharded similarity
// cloud (ROADMAP open item 1).
//
// A remote deployment of ShardedServer used to be only as available as
// its least reliable TCP connection: one dropped peer turned the
// transport sticky-broken and every later fan-out failed until the whole
// facade was rebuilt by hand. This module makes the fan-out survive a
// dead peer:
//
//   * Every shard is a REPLICA SET (>= 1 endpoints holding identical
//     data). Reads route to any live replica, rotating for balance and
//     retrying on another replica when one fails mid-request. Writes fan
//     out to every replica in one serialized order, so replicas stay
//     byte-identical.
//   * Each replica runs a per-connection health state machine:
//       kUp ──probe timeout / stream failure──▶ kDegraded ──▶ kDown
//        ▲                                                      │
//        └──── reconnect (full handshake) + write replay ◀──────┘
//     kDegraded still serves (reads prefer kUp replicas); kDown replicas
//     buffer writes for replay and take no traffic.
//   * A background TopologyMonitor thread probes every replica over the
//     kPing opcode on the shared data connection (a probe is just one
//     more pipelined frame) and redials kDown replicas with jittered
//     exponential backoff, redoing the PSK handshake under
//     ChannelPolicy::kSecure. Once the dial succeeds, the buffered
//     writes replay — in order, before any new traffic — and the replica
//     returns to kUp.
//
// Consistency model: write replay is at-least-once. A write whose
// response was lost with its connection is replayed on reconnect, so
// write opcodes must tolerate re-application (kDeleteBatch skips
// NotFound per item; kInsertBatch of the same ids overwrites). Reads
// retried on another replica are safe unconditionally — every replica
// holds the same index.
//
// See docs/protocol.md § "Topology & failover" for the wire-visible
// contract.

#ifndef SIMCLOUD_SECURE_TOPOLOGY_H_
#define SIMCLOUD_SECURE_TOPOLOGY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/secure_channel.h"
#include "net/tcp.h"

namespace simcloud {
namespace secure {

/// One shard's request channel. Submit() hands a request to the shard
/// without waiting; Collect() blocks for that ticket's response — so a
/// fan-out submits to every shard first and all shards work in parallel,
/// with no per-request thread spawning. Implementations are persistent
/// (a small worker pool for an in-process shard; a pipelined TCP
/// connection or replica group for a remote one) and safe for concurrent
/// Submit/Collect.
class ShardChannel {
 public:
  virtual ~ShardChannel() = default;
  virtual Result<uint64_t> Submit(const Bytes& request) = 0;
  virtual Result<Bytes> Collect(uint64_t ticket) = 0;
  /// Synchronous convenience: Submit + Collect.
  Result<Bytes> Call(const Bytes& request);
};

/// Address of a remote shard server (an EncryptedMIndexServer behind a
/// net::TcpServer).
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;

  /// "host:port", the form failure Statuses use.
  std::string ToString() const;
};

/// Health of one replica connection.
enum class ShardHealth : uint8_t {
  kUp = 0,        ///< probes pass; serves reads and writes
  kDegraded = 1,  ///< probe failures below the down threshold; still serves
  kDown = 2,      ///< connection dead; writes buffered, reconnect pending
};

/// "up" / "degraded" / "down".
const char* ShardHealthName(ShardHealth health);

/// Tuning knobs of the monitor and failover machinery. Defaults suit the
/// in-tree tests and benches (loopback, millisecond faults); production
/// deployments would scale the cadences up.
struct TopologyOptions {
  /// Monitor wake cadence: every replica is probed (kUp/kDegraded) or
  /// considered for reconnect (kDown) this often.
  int probe_interval_ms = 200;
  /// A probe unanswered after this long counts as a failure. Timeouts do
  /// not poison the shared data connection (the ticket stays parked);
  /// only the kDown transition aborts it.
  int probe_timeout_ms = 1000;
  /// Consecutive probe failures before kDegraded hardens to kDown.
  int failures_to_down = 2;
  /// Reconnect backoff: initial delay, doubling per failed dial, capped.
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
  /// Multiplicative jitter on every backoff delay: the delay is drawn
  /// uniformly from [delay*(1-jitter), delay*(1+jitter)] so replicas
  /// that died together do not redial in lockstep.
  double backoff_jitter = 0.25;
  /// Per-replica timeout for one replayed write on a fresh connection.
  int replay_timeout_ms = 5000;
  /// Cap on buffered replay bytes per down replica. Beyond it the
  /// replica is marked stale and never rejoins (its data has diverged
  /// past what replay can fix); rebuild the facade to replace it.
  size_t max_replay_bytes = 64u << 20;
  /// Seed for the backoff jitter stream (deterministic tests).
  uint64_t jitter_seed = 0x746f706f;  // "topo"
};

/// Point-in-time health of one replica (monitor snapshot).
struct ReplicaStatus {
  ShardEndpoint endpoint;
  ShardHealth health = ShardHealth::kUp;
  /// True when the replay buffer overflowed: the replica is permanently
  /// out of the rotation (health stays kDown).
  bool stale = false;
  uint64_t reconnects = 0;      ///< successful redials since Connect
  uint64_t probe_failures = 0;  ///< lifetime probe failures
  size_t replay_queued = 0;     ///< writes waiting for replay
};

/// Point-in-time health of one shard's replica set.
struct ShardTopologyStatus {
  std::vector<ReplicaStatus> replicas;

  /// Best replica health: a shard is as healthy as its healthiest
  /// replica (one kUp replica keeps the shard fully serving).
  ShardHealth health() const;
};

/// One replica connection's lifecycle: the live transport, the health
/// state machine, the write-replay buffer, and the reconnect schedule.
/// Thread-safe; the monitor thread and fan-out threads race freely.
class ReplicaChannel {
 public:
  ReplicaChannel(ShardEndpoint endpoint, net::ChannelPolicy policy,
                 net::SecureChannelOptions secure, TopologyOptions options);

  /// Installs the initial transport (Connect-time). health becomes kUp.
  void AdoptTransport(std::shared_ptr<net::TcpTransport> transport);

  /// The live transport for a read, or null. `degraded_ok` admits
  /// kDegraded replicas (second-pass routing); kDown never serves.
  std::shared_ptr<net::TcpTransport> AcquireForRead(bool degraded_ok) const;

  /// Write-path decision, atomic against the reconnect replay drain:
  /// either the live transport to submit on, or null with the request
  /// queued for replay (kDown), or null without queueing (stale).
  std::shared_ptr<net::TcpTransport> BeginWrite(const Bytes& request);

  /// Queues a write for replay after a live submit/collect failed with a
  /// broken stream (at-least-once: the write may or may not have
  /// reached the peer before it died).
  void EnqueueReplay(const Bytes& request);

  /// Records a fatal stream failure on `transport`: aborts it, drops it,
  /// health -> kDown, reconnect scheduled. Ignored when `transport` is
  /// no longer this replica's live transport (a stale failure report
  /// must not kill a fresh connection).
  void MarkFailure(const std::shared_ptr<net::TcpTransport>& transport,
                   const Status& reason);

  /// Monitor entry: one kPing probe over the live transport (no-op when
  /// kDown). Timeouts degrade; `failures_to_down` of them harden to
  /// kDown; stream errors go straight to kDown.
  void Probe();

  /// Monitor entry: true when kDown, not stale, and the backoff delay
  /// has elapsed.
  bool ReconnectDue() const;

  /// Monitor entry: redial + handshake, verify with one probe, replay
  /// the buffered writes in order, then atomically go kUp. On any
  /// failure the backoff doubles and the replica stays kDown.
  void TryReconnect();

  /// Permanently removes the replica from rotation (replay overflow or
  /// facade shutdown).
  void MarkStale();

  ShardHealth health() const;
  const ShardEndpoint& endpoint() const { return endpoint_; }
  ReplicaStatus Snapshot() const;

 private:
  /// Applies one replayed write on `transport`. OK / retry-later /
  /// applied-but-rejected are distinguished via the stream status.
  Status ReplayOne(const std::shared_ptr<net::TcpTransport>& transport,
                   const Bytes& request);
  /// Schedules the next reconnect attempt and doubles the backoff.
  /// Caller holds mutex_.
  void ScheduleReconnectLocked();

  const ShardEndpoint endpoint_;
  const net::ChannelPolicy policy_;
  const net::SecureChannelOptions secure_;
  const TopologyOptions options_;

  mutable std::mutex mutex_;
  std::shared_ptr<net::TcpTransport> transport_;  ///< null when kDown
  ShardHealth health_ = ShardHealth::kDown;
  bool stale_ = false;
  int consecutive_probe_failures_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t probe_failures_total_ = 0;
  std::deque<Bytes> replay_;
  size_t replay_bytes_ = 0;
  int backoff_ms_;
  std::chrono::steady_clock::time_point next_reconnect_;
  Rng jitter_;  ///< guarded by mutex_
};

/// ShardChannel over a replica set: reads rotate across live replicas
/// (retrying on another when one dies mid-request), writes fan out to
/// every replica in one group-serialized order. The channel stays usable
/// as long as one replica lives.
class ReplicaGroupChannel : public ShardChannel {
 public:
  ReplicaGroupChannel(std::vector<std::unique_ptr<ReplicaChannel>> replicas,
                      TopologyOptions options);
  ~ReplicaGroupChannel() override;

  Result<uint64_t> Submit(const Bytes& request) override;
  Result<Bytes> Collect(uint64_t ticket) override;

  size_t replica_count() const { return replicas_.size(); }
  ReplicaChannel* replica(size_t i) { return replicas_[i].get(); }
  ShardTopologyStatus Snapshot() const;

 private:
  /// A read submitted to one replica; Collect retries the request on
  /// another replica when this one's stream breaks.
  struct PendingRead {
    Bytes request;
    size_t replica = 0;
    std::shared_ptr<net::TcpTransport> transport;
    uint64_t inner = 0;
  };
  /// A write fanned out to every live replica; Collect returns the
  /// first successful response and requeues the request for replay on
  /// replicas whose stream broke.
  struct PendingWrite {
    Bytes request;
    struct Leg {
      size_t replica = 0;
      std::shared_ptr<net::TcpTransport> transport;
      uint64_t inner = 0;
    };
    std::vector<Leg> legs;
    /// Whether this write replays on replicas whose stream broke
    /// (kCompact fans out but is never replayed).
    bool replay = true;
    /// Replicas that were kDown at submit time (request already queued
    /// for their replay).
    size_t queued_for_replay = 0;
  };

  /// True for opcodes that mutate the index (fan to all replicas and
  /// replay on reconnect).
  static bool IsWriteOp(const Bytes& request);
  /// True for kCompact: fans to all live replicas but is NOT replayed
  /// (compaction is a maintenance hint, not state).
  static bool IsCompactOp(const Bytes& request);

  Result<uint64_t> SubmitRead(const Bytes& request);
  Result<uint64_t> SubmitFanned(const Bytes& request, bool replay_on_down);
  Result<Bytes> CollectRead(PendingRead pending);
  Result<Bytes> CollectWrite(PendingWrite pending);

  /// Submits `request` on some live replica (two passes: kUp first,
  /// then kDegraded), marking failures over. Returns the filled
  /// PendingRead or the last error.
  Result<PendingRead> RouteRead(const Bytes& request);

  const TopologyOptions options_;
  std::vector<std::unique_ptr<ReplicaChannel>> replicas_;

  mutable std::mutex mutex_;  ///< tickets_ + read rotation
  uint64_t next_ticket_ = 1;
  size_t rr_next_ = 0;  ///< read rotation cursor
  std::unordered_map<uint64_t, PendingRead> reads_;
  std::unordered_map<uint64_t, PendingWrite> writes_;

  /// Serializes write fan-outs so every replica applies writes in the
  /// same order (replicas stay byte-identical).
  std::mutex write_mutex_;
};

/// Background health-probe / reconnect thread over a set of replica
/// groups. Owns no replicas — the groups do — so it must be destroyed
/// (or stopped) before them.
class TopologyMonitor {
 public:
  TopologyMonitor(std::vector<ReplicaGroupChannel*> groups,
                  TopologyOptions options);
  ~TopologyMonitor();

  /// Joins the monitor thread. Idempotent.
  void Stop();

 private:
  void Loop();

  const TopologyOptions options_;
  std::vector<ReplicaGroupChannel*> groups_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_TOPOLOGY_H_
