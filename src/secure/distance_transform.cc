#include "secure/distance_transform.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace simcloud {
namespace secure {

Result<ConcaveTransform> ConcaveTransform::FromSeed(uint64_t seed,
                                                    double domain_max,
                                                    size_t num_knots) {
  if (domain_max <= 0) {
    return Status::InvalidArgument("transform domain_max must be > 0");
  }
  if (num_knots == 0) {
    return Status::InvalidArgument("transform needs at least one knot");
  }

  Rng rng(seed);
  ConcaveTransform t;
  t.domain_max_ = domain_max;
  t.knot_width_ = domain_max / static_cast<double>(num_knots);

  // Positive random slopes, sorted descending => concave. A random global
  // scale keeps the codomain from trivially revealing the domain.
  t.slopes_.resize(num_knots);
  const double scale = rng.NextUniform(0.5, 2.0);
  for (auto& s : t.slopes_) s = scale * (0.05 + rng.NextExponential(1.0));
  std::sort(t.slopes_.begin(), t.slopes_.end(), std::greater<double>());

  t.cum_values_.resize(num_knots + 1);
  t.cum_values_[0] = 0.0;
  for (size_t i = 0; i < num_knots; ++i) {
    t.cum_values_[i + 1] = t.cum_values_[i] + t.slopes_[i] * t.knot_width_;
  }
  return t;
}

double ConcaveTransform::Apply(double x) const {
  if (slopes_.empty() || x <= 0.0) return std::max(0.0, x);
  if (x >= domain_max_) {
    // Continue with the final (smallest) slope: still concave + increasing.
    return cum_values_.back() + slopes_.back() * (x - domain_max_);
  }
  const size_t segment =
      std::min(static_cast<size_t>(x / knot_width_), slopes_.size() - 1);
  const double base = cum_values_[segment];
  return base + slopes_[segment] * (x - static_cast<double>(segment) *
                                            knot_width_);
}

std::vector<float> ConcaveTransform::ApplyAll(
    const std::vector<float>& values) const {
  std::vector<float> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<float>(Apply(static_cast<double>(values[i])));
  }
  return out;
}

void ConcaveTransform::Serialize(BinaryWriter* writer) const {
  writer->WriteDouble(domain_max_);
  writer->WriteDouble(knot_width_);
  writer->WriteVarint(slopes_.size());
  for (double s : slopes_) writer->WriteDouble(s);
}

Result<ConcaveTransform> ConcaveTransform::Deserialize(BinaryReader* reader) {
  ConcaveTransform t;
  SIMCLOUD_ASSIGN_OR_RETURN(t.domain_max_, reader->ReadDouble());
  SIMCLOUD_ASSIGN_OR_RETURN(t.knot_width_, reader->ReadDouble());
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
  t.slopes_.resize(n);
  for (auto& s : t.slopes_) {
    SIMCLOUD_ASSIGN_OR_RETURN(s, reader->ReadDouble());
  }
  t.cum_values_.resize(n + 1);
  t.cum_values_[0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    t.cum_values_[i + 1] = t.cum_values_[i] + t.slopes_[i] * t.knot_width_;
  }
  return t;
}

}  // namespace secure
}  // namespace simcloud
