#include "secure/secret_key.h"

#include "common/serialize.h"
#include "crypto/hmac.h"

namespace simcloud {
namespace secure {

Result<SecretKey> SecretKey::Create(mindex::PivotSet pivots, Bytes aes_key,
                                    PayloadScheme scheme) {
  if (pivots.size() == 0) {
    return Status::InvalidArgument("secret key needs at least one pivot");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(
      crypto::Cipher cipher,
      crypto::Cipher::Create(aes_key, crypto::CipherMode::kCbc));
  std::optional<crypto::AeadCipher> aead;
  if (scheme == PayloadScheme::kAuthenticated) {
    SIMCLOUD_ASSIGN_OR_RETURN(crypto::AeadCipher a,
                              crypto::AeadCipher::Create(aes_key));
    aead = std::move(a);
  }
  return SecretKey(std::move(pivots), std::move(aes_key), std::move(cipher),
                   std::move(aead), scheme);
}

Result<SecretKey> SecretKey::FromPassword(mindex::PivotSet pivots,
                                          const std::string& password,
                                          const Bytes& salt,
                                          uint32_t iterations) {
  SIMCLOUD_ASSIGN_OR_RETURN(
      Bytes aes_key,
      crypto::Pbkdf2Sha256(Bytes(password.begin(), password.end()), salt,
                           iterations, 16));
  return Create(std::move(pivots), std::move(aes_key));
}

Status SecretKey::EnableDistanceTransform(uint64_t seed, double domain_max) {
  SIMCLOUD_ASSIGN_OR_RETURN(ConcaveTransform t,
                            ConcaveTransform::FromSeed(seed, domain_max));
  transform_ = std::move(t);
  return Status::OK();
}

SecretKey::~SecretKey() { WipeBytes(&aes_key_); }

SecretKey::SecretKey(SecretKey&& other) noexcept
    : pivots_(std::move(other.pivots_)),
      aes_key_(std::move(other.aes_key_)),
      cipher_(std::move(other.cipher_)),
      aead_(std::move(other.aead_)),
      scheme_(other.scheme_),
      transform_(std::move(other.transform_)) {
  WipeBytes(&other.aes_key_);
}

SecretKey& SecretKey::operator=(SecretKey&& other) noexcept {
  if (this != &other) {
    WipeBytes(&aes_key_);
    pivots_ = std::move(other.pivots_);
    aes_key_ = std::move(other.aes_key_);
    cipher_ = std::move(other.cipher_);
    aead_ = std::move(other.aead_);
    scheme_ = other.scheme_;
    transform_ = std::move(other.transform_);
    WipeBytes(&other.aes_key_);
  }
  return *this;
}

Bytes SecretKey::DeriveQueryMacKey() const {
  const char* label = "simcloud-query-auth";
  return crypto::HmacSha256(aes_key_,
                            Bytes(label, label + std::strlen(label)));
}

Bytes SecretKey::DeriveChannelKey() const {
  const char* label = "simcloud-channel-psk";
  return crypto::HmacSha256(aes_key_,
                            Bytes(label, label + std::strlen(label)));
}

Result<Bytes> SecretKey::EncryptObject(
    const metric::VectorObject& object) const {
  BinaryWriter writer;
  object.Serialize(&writer);
  if (scheme_ == PayloadScheme::kAuthenticated) {
    return aead_->Seal(writer.buffer());
  }
  return cipher_->Encrypt(writer.buffer());
}

Result<metric::VectorObject> SecretKey::DecryptObject(
    const Bytes& ciphertext) const {
  Bytes plaintext;
  if (scheme_ == PayloadScheme::kAuthenticated) {
    SIMCLOUD_ASSIGN_OR_RETURN(plaintext, aead_->Open(ciphertext));
  } else {
    SIMCLOUD_ASSIGN_OR_RETURN(plaintext, cipher_->Decrypt(ciphertext));
  }
  BinaryReader reader(plaintext);
  return metric::VectorObject::Deserialize(&reader);
}

Result<Bytes> SecretKey::Serialize() const {
  BinaryWriter writer;
  writer.WriteU32(0x534B4559);  // "SKEY"
  writer.WriteU8(static_cast<uint8_t>(scheme_));
  writer.WriteBytes(aes_key_);
  pivots_.Serialize(&writer);
  writer.WriteBool(transform_.has_value());
  if (transform_.has_value()) transform_->Serialize(&writer);
  return writer.TakeBuffer();
}

Result<SecretKey> SecretKey::Deserialize(const Bytes& data) {
  BinaryReader reader(data);
  SIMCLOUD_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != 0x534B4559) {
    return Status::Corruption("bad secret key magic");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t scheme_byte, reader.ReadU8());
  if (scheme_byte > static_cast<uint8_t>(PayloadScheme::kAuthenticated)) {
    return Status::Corruption("unknown payload scheme in secret key");
  }
  SIMCLOUD_ASSIGN_OR_RETURN(Bytes aes_key, reader.ReadBytes());
  SIMCLOUD_ASSIGN_OR_RETURN(mindex::PivotSet pivots,
                            mindex::PivotSet::Deserialize(&reader));
  SIMCLOUD_ASSIGN_OR_RETURN(
      SecretKey key, Create(std::move(pivots), std::move(aes_key),
                            static_cast<PayloadScheme>(scheme_byte)));
  SIMCLOUD_ASSIGN_OR_RETURN(bool has_transform, reader.ReadBool());
  if (has_transform) {
    SIMCLOUD_ASSIGN_OR_RETURN(ConcaveTransform t,
                              ConcaveTransform::Deserialize(&reader));
    key.transform_ = std::move(t);
  }
  return key;
}

}  // namespace secure
}  // namespace simcloud
