#include "secure/watch.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

namespace simcloud {
namespace secure {

namespace {

/// Backpressure pacing: when a sweep left some subscription parked (its
/// connection's output queue was full) the loop sleeps this long before
/// retrying instead of spinning on the already-satisfied WaitBeyond.
constexpr int kParkedRetryMs = 20;
/// How long the loop blocks on the bus waiting for fresh events. Bounded
/// so stop requests are honoured promptly.
constexpr int kWaitTickMs = 100;

}  // namespace

WatchHub::WatchHub(const mindex::MutationBus* bus) : bus_(bus) {
  thread_ = std::thread([this] { DeliveryLoop(); });
}

WatchHub::~WatchHub() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Result<WatchHub::Registration> WatchHub::Register(
    const WatchFilter& filter, bool has_resume, uint64_t resume_after,
    std::function<Status(const WatchFrame&)> push) {
  uint64_t cursor = 0;
  if (has_resume) {
    // Validate the token against the ring NOW so a stale client gets an
    // explicit registration error instead of a stream that opens and
    // immediately reports loss. The probe result is discarded; the
    // delivery thread replays for real from the cursor.
    std::vector<mindex::MutationEvent> probe;
    Status replay = bus_->ReplayAfter(resume_after, &probe);
    if (!replay.ok()) {
      return Status::OutOfRange("watch lost: " + replay.message());
    }
    cursor = resume_after;
  } else {
    cursor = bus_->last_seq();
  }

  Registration registration;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return Status::FailedPrecondition("watch hub is stopped");
    Subscription sub;
    sub.id = next_watch_id_++;
    sub.filter = filter;
    sub.cursor = cursor;
    sub.push = std::move(push);
    registration.watch_id = sub.id;
    registration.start_seq = cursor;
    subs_.emplace(sub.id, std::move(sub));
  }
  cv_.notify_all();
  return registration;
}

bool WatchHub::Unregister(uint64_t watch_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return subs_.erase(watch_id) > 0;
}

size_t WatchHub::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subs_.size();
}

bool WatchHub::MatchesInsert(const WatchFilter& filter,
                             const std::vector<float>& pivot_distances) {
  if (filter.kind == WatchFilter::Kind::kAll) return true;
  // kRange: the pivot-space Chebyshev bound max_i |q_i - o_i| is a lower
  // bound on the metric distance under the permutation mapping — exactly
  // what range search prunes with. When the event carries no distances
  // (or a mismatched count) we cannot prune, so we deliver.
  if (pivot_distances.empty() ||
      pivot_distances.size() != filter.query_distances.size()) {
    return true;
  }
  double lower_bound = 0;
  for (size_t i = 0; i < pivot_distances.size(); ++i) {
    lower_bound = std::max(
        lower_bound, std::abs(static_cast<double>(filter.query_distances[i]) -
                              static_cast<double>(pivot_distances[i])));
  }
  return lower_bound <= filter.radius;
}

bool WatchHub::DeliverTo(Subscription* sub, bool* parked, bool* progressed) {
  if (sub->lost) {
    WatchFrame frame;
    frame.kind = WatchFrame::Kind::kLost;
    frame.watch_id = sub->id;
    frame.token = {sub->cursor};
    frame.message = sub->lost_message;
    Status pushed = sub->push(frame);
    if (pushed.ok()) return false;  // loss reported; drop the subscription
    if (pushed.code() == StatusCode::kFailedPrecondition) {
      *parked = true;
      return true;  // retry the lost frame next sweep
    }
    return false;  // connection gone
  }

  std::vector<mindex::MutationEvent> events;
  Status replay = bus_->ReplayAfter(sub->cursor, &events);
  if (!replay.ok()) {
    // The cursor fell off the replay ring (the watcher was parked or the
    // sweep lagged far behind the writers). Switch to loss reporting.
    sub->lost = true;
    sub->lost_message = "watch lost: " + replay.message();
    return DeliverTo(sub, parked, progressed);
  }

  for (const mindex::MutationEvent& event : events) {
    const bool is_insert = event.kind == mindex::MutationKind::kInsert;
    // Deletes always flow: the watcher may hold the object from before
    // the filter was registered, and delete events carry no distances.
    if (is_insert && !MatchesInsert(sub->filter, event.pivot_distances)) {
      sub->cursor = event.seq;
      *progressed = true;
      continue;
    }
    WatchFrame frame;
    frame.kind = is_insert ? WatchFrame::Kind::kInsert
                           : WatchFrame::Kind::kDelete;
    frame.watch_id = sub->id;
    frame.token = {event.seq};
    frame.object_id = event.id;
    if (is_insert) frame.payload = event.payload;
    Status pushed = sub->push(frame);
    if (pushed.ok()) {
      sub->cursor = event.seq;
      *progressed = true;
      continue;
    }
    if (pushed.code() == StatusCode::kFailedPrecondition) {
      *parked = true;  // output queue full: hold the cursor, retry later
      return true;
    }
    return false;  // connection gone
  }
  return true;
}

void WatchHub::DeliveryLoop() {
  while (true) {
    uint64_t min_cursor = 0;
    bool parked_any = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stop_) return;
      if (subs_.empty()) {
        // Nothing to deliver: sleep until a registration (or stop).
        cv_.wait_for(lock, std::chrono::milliseconds(kWaitTickMs));
        continue;
      }

      // Sweep every subscription. The hub mutex is held across pushes —
      // TryPush never blocks, and holding it gives Unregister its
      // guarantee (no push after Unregister returns).
      bool progressed = false;
      std::vector<uint64_t> dead;
      for (auto& entry : subs_) {
        bool parked = false;
        if (!DeliverTo(&entry.second, &parked, &progressed)) {
          dead.push_back(entry.first);
        }
        parked_any = parked_any || parked;
      }
      for (uint64_t id : dead) subs_.erase(id);
      (void)progressed;

      min_cursor = bus_->last_seq();
      for (const auto& entry : subs_) {
        min_cursor = std::min(min_cursor, entry.second.cursor);
      }
    }

    if (parked_any) {
      // WaitBeyond(min_cursor) is already satisfied while a parked
      // cursor trails the bus — pace the retries instead of spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(kParkedRetryMs));
      continue;
    }
    bus_->WaitBeyond(min_cursor, kWaitTickMs);
  }
}

}  // namespace secure
}  // namespace simcloud
