// Server-side cursor registry: bounded, TTL'd per-server cursor state.
//
// A cursor pins whatever snapshot its owner needs to page a result set —
// an EncryptedMIndexServer stores the ranked (id, score, handle) tuples
// of one range search; a ShardedServer facade stores a composite of
// per-shard cursors. The manager is deliberately type-erased (the state
// is a shared_ptr<void>) so both reuse one lifecycle implementation:
//
//  * Open      — admits a cursor if the table has room (max_open_cursors,
//                FailedPrecondition "too many open cursors" otherwise)
//                and sweeps already-expired entries first, so expiry is
//                observable via stats without a background thread.
//  * Acquire   — checks out the state for one kCursorNext. An expired
//                cursor is erased and reported as FailedPrecondition
//                "cursor expired" — never a silent empty page; an unknown
//                id is NotFound "unknown cursor". While checked out the
//                cursor is busy: a concurrent Acquire on the same id gets
//                FailedPrecondition "cursor in use" instead of racing.
//  * Commit    — returns the checkout, refreshing the TTL deadline, or
//                erases the cursor when the page exhausted it.
//  * Release   — returns the checkout without refresh (error paths).
//  * Close     — idempotent explicit close (kCursorClose): true if state
//                was actually released.
//  * CloseOwned — reaps every cursor opened on one connection (the
//                disconnect hook); returns the states so the owner can
//                tear down remote legs outside the manager's lock.
//
// TTL uses the monotonic clock (common/clock.h), so wall-clock jumps
// never expire or immortalize a cursor.

#ifndef SIMCLOUD_SECURE_CURSOR_H_
#define SIMCLOUD_SECURE_CURSOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace simcloud {
namespace secure {

/// Cursor lifecycle tunables.
struct CursorConfig {
  /// Cursors the server keeps open at once; an open past this is rejected
  /// with FailedPrecondition (the client can fall back to one-shot).
  uint64_t max_open_cursors = 1024;
  /// Idle lifetime: a cursor untouched for this long is expired. Every
  /// successful open/next refreshes the deadline.
  uint64_t ttl_ms = 60'000;
  /// Cap on the per-page candidate count; larger open requests are
  /// clamped, not rejected (paging stays correct at any page size).
  uint64_t max_page_size = 65'536;
};

/// Monotonic counters mirrored into IndexStats by kGetStats.
struct CursorCounters {
  uint64_t open = 0;           ///< currently open
  uint64_t opened_total = 0;   ///< lifetime opens admitted
  uint64_t expired_total = 0;  ///< TTL evictions (lazy or sweep)
  uint64_t reaped_total = 0;   ///< closed by connection drop
};

/// Thread-safe cursor table. All methods take an internal mutex; the
/// type-erased states are only touched outside it (callers own the
/// checkout between Acquire and Commit/Release).
class CursorManager {
 public:
  explicit CursorManager(CursorConfig config) : config_(config) {}

  const CursorConfig& config() const { return config_; }

  /// Admits a new cursor owned by connection `conn_id` (0 = in-process /
  /// loopback: no disconnect reaping, TTL only). Sweeps expired entries,
  /// then enforces max_open_cursors. Ids are monotonic from 1; 0 is the
  /// wire's "no cursor" sentinel and never allocated.
  Result<uint64_t> Open(uint64_t conn_id, std::shared_ptr<void> state);

  /// Checks the cursor out for one page. See file comment for the error
  /// taxonomy.
  Result<std::shared_ptr<void>> Acquire(uint64_t id);

  /// Returns a checkout: refreshes the TTL, or erases the cursor when
  /// `exhausted`. No-op if the cursor vanished meanwhile (explicit close
  /// and disconnect reap don't wait for checkouts).
  void Commit(uint64_t id, bool exhausted);

  /// Returns a checkout after a failed page without refreshing the TTL.
  void Release(uint64_t id);

  /// Erases the cursor if present (idempotent). Busy cursors are erased
  /// too — the in-flight checkout finishes on its own copy of the state
  /// and its Commit/Release becomes a no-op.
  bool Close(uint64_t id);

  /// Close() that also returns the state (null when absent) — owners
  /// that must tear down derived resources (per-shard cursors on remote
  /// replicas) take it here instead of losing it to the erase.
  std::shared_ptr<void> TakeClose(uint64_t id);

  /// Erases every cursor owned by `conn_id`, returning their states so
  /// the caller can release derived resources (e.g. per-shard cursors on
  /// remote replicas) outside the lock. Counted as reaped, not expired.
  std::vector<std::shared_ptr<void>> CloseOwned(uint64_t conn_id);

  CursorCounters counters() const;

 private:
  struct Slot {
    std::shared_ptr<void> state;
    uint64_t conn_id = 0;
    int64_t deadline_nanos = 0;  ///< monotonic
    bool busy = false;           ///< checked out by an in-flight next
  };

  /// Erases expired slots; `mutex_` must be held.
  void SweepExpiredLocked(int64_t now_nanos);

  CursorConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, Slot> cursors_;
  uint64_t next_id_ = 1;
  uint64_t opened_total_ = 0;
  uint64_t expired_total_ = 0;
  uint64_t reaped_total_ = 0;
};

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_CURSOR_H_
