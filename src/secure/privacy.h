// The paper's taxonomy of privacy levels in similarity clouds
// (Section 2.3), as a first-class library concept. Used by the privacy
// audit example and by documentation to position each index/baseline.

#ifndef SIMCLOUD_SECURE_PRIVACY_H_
#define SIMCLOUD_SECURE_PRIVACY_H_

#include <string>

namespace simcloud {
namespace secure {

/// Levels of privacy of an outsourced similarity-search deployment,
/// ordered from weakest to strongest.
enum class PrivacyLevel : int {
  /// Level 1 — "No encryption": everything is stored and searched in the
  /// clear; maximal efficiency, no protection.
  kNoEncryption = 1,
  /// Level 2 — "Raw data encryption": MS objects and the index are plain,
  /// only the raw payloads are encrypted in the data storage.
  kRawDataEncryption = 2,
  /// Level 3 — "MS objects encryption": MS objects are encrypted; the
  /// server keeps only routing metadata (pivot permutations / distances).
  /// This is the Encrypted M-Index's level.
  kMsObjectEncryption = 3,
  /// Level 4 — "MS objects and their distribution encryption": also the
  /// distance information visible to the server is transformed so the
  /// data distribution is hidden (EHI/MPT of Yiu et al.; our
  /// ConcaveTransform extension).
  kDistributionHiding = 4,
};

/// Human-readable name of a privacy level.
inline const char* PrivacyLevelName(PrivacyLevel level) {
  switch (level) {
    case PrivacyLevel::kNoEncryption: return "no-encryption";
    case PrivacyLevel::kRawDataEncryption: return "raw-data-encryption";
    case PrivacyLevel::kMsObjectEncryption: return "ms-object-encryption";
    case PrivacyLevel::kDistributionHiding: return "distribution-hiding";
  }
  return "unknown";
}

/// What an attacker who compromises the server learns at each level
/// (paper Sections 2.3 and 4.3).
inline const char* AttackerView(PrivacyLevel level) {
  switch (level) {
    case PrivacyLevel::kNoEncryption:
      return "full data set, metric, and index structure";
    case PrivacyLevel::kRawDataEncryption:
      return "all MS objects and their distances; raw payloads encrypted";
    case PrivacyLevel::kMsObjectEncryption:
      return "encrypted objects plus pivot permutations / pivot distances; "
             "pivots and metric unknown";
    case PrivacyLevel::kDistributionHiding:
      return "encrypted objects plus nonlinearly transformed routing "
             "metadata; distance distribution hidden";
  }
  return "unknown";
}

}  // namespace secure
}  // namespace simcloud

#endif  // SIMCLOUD_SECURE_PRIVACY_H_
