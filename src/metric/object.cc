#include "metric/object.h"

namespace simcloud {
namespace metric {

namespace {
size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
}  // namespace

size_t VectorObject::SerializedSize() const {
  return VarintSize(id_) + VarintSize(values_.size()) +
         values_.size() * sizeof(float);
}

}  // namespace metric
}  // namespace simcloud
