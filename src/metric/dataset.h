// In-memory data set: a named collection of MS objects plus the metric
// they are compared with, with binary save/load and query sampling.

#ifndef SIMCLOUD_METRIC_DATASET_H_
#define SIMCLOUD_METRIC_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "metric/distance.h"
#include "metric/object.h"

namespace simcloud {
namespace metric {

/// A collection of MS objects together with its distance function.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::vector<VectorObject> objects,
          std::shared_ptr<DistanceFunction> distance)
      : name_(std::move(name)),
        objects_(std::move(objects)),
        distance_(std::move(distance)) {}

  const std::string& name() const { return name_; }
  const std::vector<VectorObject>& objects() const { return objects_; }
  std::vector<VectorObject>& mutable_objects() { return objects_; }
  const std::shared_ptr<DistanceFunction>& distance() const {
    return distance_;
  }
  size_t size() const { return objects_.size(); }
  /// Dimensionality of the first object (0 if empty).
  size_t dimension() const {
    return objects_.empty() ? 0 : objects_[0].dimension();
  }

  /// Computes d(a, b) with this data set's metric.
  double Distance(const VectorObject& a, const VectorObject& b) const {
    return distance_->Distance(a, b);
  }

  /// Removes `count` random objects from the data set and returns them as a
  /// query workload (the paper excludes 1-NN query objects from the indexed
  /// set, Section 5.4). Deterministic given `seed`.
  std::vector<VectorObject> ExtractQueries(size_t count, uint64_t seed);

  /// Samples `count` objects (without removal) as a query workload, as in
  /// the paper's 30-NN experiments ("query objects randomly chosen from the
  /// data set"). Deterministic given `seed`.
  std::vector<VectorObject> SampleQueries(size_t count, uint64_t seed) const;

  /// Saves objects to a binary file (the distance is not persisted).
  Status SaveToFile(const std::string& path) const;

  /// Loads objects previously written by SaveToFile; the caller supplies
  /// the matching distance function.
  static Result<Dataset> LoadFromFile(
      const std::string& path, std::string name,
      std::shared_ptr<DistanceFunction> distance);

 private:
  std::string name_;
  std::vector<VectorObject> objects_;
  std::shared_ptr<DistanceFunction> distance_;
};

}  // namespace metric
}  // namespace simcloud

#endif  // SIMCLOUD_METRIC_DATASET_H_
