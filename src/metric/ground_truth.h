// Exact linear-scan search. Serves two purposes: ground truth for recall
// measurements (paper Section 4.1) and the scan core of the trivial
// download-everything baseline (paper Section 3).

#ifndef SIMCLOUD_METRIC_GROUND_TRUTH_H_
#define SIMCLOUD_METRIC_GROUND_TRUTH_H_

#include <vector>

#include "metric/dataset.h"
#include "metric/neighbor.h"

namespace simcloud {
namespace metric {

/// Exact range query R(q, r) over `objects`: all objects within distance r
/// of q, sorted by ascending distance.
NeighborList LinearRangeSearch(const std::vector<VectorObject>& objects,
                               const DistanceFunction& distance,
                               const VectorObject& query, double radius);

/// Exact k-NN(q) over `objects`: the k closest objects, sorted by ascending
/// distance (fewer if the collection is smaller than k).
NeighborList LinearKnnSearch(const std::vector<VectorObject>& objects,
                             const DistanceFunction& distance,
                             const VectorObject& query, size_t k);

/// Convenience overloads operating on a Dataset.
NeighborList LinearRangeSearch(const Dataset& dataset,
                               const VectorObject& query, double radius);
NeighborList LinearKnnSearch(const Dataset& dataset, const VectorObject& query,
                             size_t k);

}  // namespace metric
}  // namespace simcloud

#endif  // SIMCLOUD_METRIC_GROUND_TRUTH_H_
