#include "metric/sequence.h"

#include <algorithm>
#include <vector>

namespace simcloud {
namespace metric {

size_t LevenshteinDistance(const std::string& a, const std::string& b) {
  // Keep the shorter string in the inner dimension for O(min) space.
  const std::string& s = a.size() <= b.size() ? a : b;
  const std::string& t = a.size() <= b.size() ? b : a;
  if (s.empty()) return t.size();

  std::vector<size_t> row(s.size() + 1);
  for (size_t j = 0; j <= s.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= t.size(); ++i) {
    size_t diagonal = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= s.size(); ++j) {
      const size_t above = row[j];  // D[i-1][j]
      const size_t substitution = diagonal + (t[i - 1] != s[j - 1] ? 1 : 0);
      row[j] = std::min({row[j - 1] + 1, above + 1, substitution});
      diagonal = above;
    }
  }
  return row[s.size()];
}

size_t BoundedLevenshteinDistance(const std::string& a, const std::string& b,
                                  size_t bound) {
  const std::string& s = a.size() <= b.size() ? a : b;
  const std::string& t = a.size() <= b.size() ? b : a;
  // The length difference alone forces at least that many edits.
  if (t.size() - s.size() > bound) return bound + 1;
  if (s.empty()) return t.size();

  // Banded DP: cells further than `bound` off the diagonal can never come
  // back under the bound. kInf marks cells outside the band.
  constexpr size_t kInf = static_cast<size_t>(-1) / 2;
  std::vector<size_t> row(s.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(s.size(), bound); ++j) row[j] = j;

  for (size_t i = 1; i <= t.size(); ++i) {
    const size_t band_lo = i > bound ? i - bound : 0;
    const size_t band_hi = std::min(s.size(), i + bound);
    size_t diagonal = row[band_lo == 0 ? 0 : band_lo - 1];
    size_t new_first = kInf;
    if (band_lo == 0) {
      new_first = i;
    }
    size_t prev = new_first;  // D[i][band_lo-1] equivalent within band
    if (band_lo > 0) {
      prev = kInf;
      diagonal = row[band_lo - 1];
    }
    size_t row_min = kInf;
    for (size_t j = std::max<size_t>(band_lo, 1); j <= band_hi; ++j) {
      const size_t above = row[j];
      const size_t substitution =
          diagonal == kInf ? kInf
                           : diagonal + (t[i - 1] != s[j - 1] ? 1 : 0);
      size_t best = substitution;
      if (prev != kInf) best = std::min(best, prev + 1);
      if (above != kInf) best = std::min(best, above + 1);
      diagonal = above;
      row[j] = best;
      prev = best;
      row_min = std::min(row_min, best);
    }
    if (band_lo == 0) {
      row[0] = new_first;
      row_min = std::min(row_min, new_first);
    } else if (band_lo >= 1) {
      row[band_lo - 1] = kInf;  // left edge leaves the band
    }
    if (row_min > bound) return bound + 1;  // whole band exceeded the bound
  }
  return row[s.size()] <= bound ? row[s.size()] : bound + 1;
}

}  // namespace metric
}  // namespace simcloud
