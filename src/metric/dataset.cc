#include "metric/dataset.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "common/serialize.h"

namespace simcloud {
namespace metric {

std::vector<VectorObject> Dataset::ExtractQueries(size_t count,
                                                  uint64_t seed) {
  Rng rng(seed);
  count = std::min(count, objects_.size());
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(objects_.size(), count);
  std::vector<VectorObject> queries;
  queries.reserve(count);
  for (size_t idx : picked) queries.push_back(objects_[idx]);

  // Remove the picked objects (descending index order keeps indices valid).
  std::sort(picked.begin(), picked.end(), std::greater<size_t>());
  for (size_t idx : picked) {
    objects_[idx] = std::move(objects_.back());
    objects_.pop_back();
  }
  return queries;
}

std::vector<VectorObject> Dataset::SampleQueries(size_t count,
                                                 uint64_t seed) const {
  Rng rng(seed);
  count = std::min(count, objects_.size());
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(objects_.size(), count);
  std::vector<VectorObject> queries;
  queries.reserve(count);
  for (size_t idx : picked) queries.push_back(objects_[idx]);
  return queries;
}

Status Dataset::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU32(0x53434453);  // "SCDS" magic
  writer.WriteVarint(objects_.size());
  for (const auto& obj : objects_) obj.Serialize(&writer);

  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  const Bytes& buf = writer.buffer();
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (written != buf.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

Result<Dataset> Dataset::LoadFromFile(
    const std::string& path, std::string name,
    std::shared_ptr<DistanceFunction> distance) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes buf(static_cast<size_t>(size));
  const size_t read = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::IoError("short read from " + path);

  BinaryReader reader(buf);
  SIMCLOUD_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != 0x53434453) {
    return Status::Corruption("bad dataset magic in " + path);
  }
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
  std::vector<VectorObject> objects;
  objects.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(VectorObject obj,
                              VectorObject::Deserialize(&reader));
    objects.push_back(std::move(obj));
  }
  return Dataset(std::move(name), std::move(objects), std::move(distance));
}

}  // namespace metric
}  // namespace simcloud
