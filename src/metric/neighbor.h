// Search-result types shared by every index and baseline in simcloud.

#ifndef SIMCLOUD_METRIC_NEIGHBOR_H_
#define SIMCLOUD_METRIC_NEIGHBOR_H_

#include <vector>

#include "metric/object.h"

namespace simcloud {
namespace metric {

/// One search hit: an object id plus its distance to the query.
struct Neighbor {
  ObjectId id = 0;
  double distance = 0.0;

  /// Orders by distance, ties broken by id for deterministic results.
  bool operator<(const Neighbor& other) const {
    if (distance != other.distance) return distance < other.distance;
    return id < other.id;
  }
  bool operator==(const Neighbor& other) const {
    return id == other.id && distance == other.distance;
  }
};

/// Result of a query: hits sorted by ascending distance.
using NeighborList = std::vector<Neighbor>;

/// Recall of `answer` against the exact answer `exact`:
/// |answer ∩ exact| / |exact| * 100, matching the paper's definition
/// (Section 4.1). Membership is by object id. Returns 100 for empty exact.
double RecallPercent(const NeighborList& answer, const NeighborList& exact);

}  // namespace metric
}  // namespace simcloud

#endif  // SIMCLOUD_METRIC_NEIGHBOR_H_
