// Sequence metric-space objects and the Levenshtein (edit) distance.
//
// The paper's introduction names gene sequences as the case where "the
// raw data and the MS objects are identical" — the sensitive payload IS
// the descriptor, so MS-object encryption (privacy level 3) is the only
// way to outsource the index at all. This module supplies the sequence
// object type and edit-distance metric used to demonstrate that the
// Encrypted M-Index generalizes beyond vectors: the server-side index and
// wire protocol are payload-agnostic, so the same untrusted server can
// host encrypted sequences (see secure/generic_client.h and the
// gene_sequence_search example).

#ifndef SIMCLOUD_METRIC_SEQUENCE_H_
#define SIMCLOUD_METRIC_SEQUENCE_H_

#include <cstdint>
#include <string>

#include "common/serialize.h"
#include "common/status.h"
#include "metric/object.h"

namespace simcloud {
namespace metric {

/// A metric-space object holding a byte sequence (gene string, word, ...).
class SequenceObject {
 public:
  SequenceObject() = default;
  SequenceObject(ObjectId id, std::string sequence)
      : id_(id), sequence_(std::move(sequence)) {}

  ObjectId id() const { return id_; }
  const std::string& sequence() const { return sequence_; }
  size_t length() const { return sequence_.size(); }

  /// Serializes as {varint id, length-prefixed bytes}.
  void Serialize(BinaryWriter* writer) const {
    writer->WriteVarint(id_);
    writer->WriteString(sequence_);
  }

  /// Parses an object previously written by Serialize().
  static Result<SequenceObject> Deserialize(BinaryReader* reader) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader->ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(std::string sequence, reader->ReadString());
    return SequenceObject(id, std::move(sequence));
  }

  bool operator==(const SequenceObject& other) const {
    return id_ == other.id_ && sequence_ == other.sequence_;
  }

 private:
  ObjectId id_ = 0;
  std::string sequence_;
};

/// Levenshtein distance: minimum number of single-character insertions,
/// deletions, and substitutions turning `a` into `b`. A proper metric
/// (non-negative, identity, symmetric, triangle inequality). O(|a|·|b|)
/// time, O(min(|a|,|b|)) space.
size_t LevenshteinDistance(const std::string& a, const std::string& b);

/// Levenshtein with early exit: returns an (exact) value if it is
/// <= `bound`, otherwise any value > bound. Banded DP in
/// O(bound · min(|a|,|b|)) time — the standard trick for range queries
/// with small radii.
size_t BoundedLevenshteinDistance(const std::string& a, const std::string& b,
                                  size_t bound);

/// DistanceFunction-style functor over SequenceObject for generic code.
struct EditDistance {
  double operator()(const SequenceObject& a, const SequenceObject& b) const {
    return static_cast<double>(
        LevenshteinDistance(a.sequence(), b.sequence()));
  }
};

}  // namespace metric
}  // namespace simcloud

#endif  // SIMCLOUD_METRIC_SEQUENCE_H_
