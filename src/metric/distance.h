// Metric distance functions over VectorObject descriptors.
//
// All functions here satisfy the metric postulates (non-negativity,
// identity of indiscernibles, symmetry, triangle inequality); the property
// test suite verifies this on random inputs. Distances are the only
// data-dependent operation the M-Index needs, and in the Encrypted
// M-Index they are computed exclusively by the key-holding client.
//
// Provided metrics (matching the paper's data sets, Table 1):
//  * L1 (Manhattan)            — YEAST / HUMAN gene-expression matrices
//  * L2 (Euclidean), Lp, L∞    — general-purpose
//  * SegmentedLpDistance       — CoPhIR-style weighted combination of Lp
//                                distances over descriptor segments

#ifndef SIMCLOUD_METRIC_DISTANCE_H_
#define SIMCLOUD_METRIC_DISTANCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "metric/object.h"

namespace simcloud {
namespace metric {

namespace internal {
/// Observability bridge (distance.cc): bumps the process-global
/// simcloud_distance_computations_total counter and attributes the
/// evaluation to the current request trace span, if any. Out of line so
/// this header does not pull in obs/.
void RecordDistanceEvaluation();
}  // namespace internal

/// Abstract total distance function d : D x D -> R satisfying the metric
/// postulates. Implementations must be thread-safe and stateless apart
/// from the global evaluation counter.
class DistanceFunction {
 public:
  DistanceFunction() = default;
  virtual ~DistanceFunction() = default;
  // Copying a distance function starts a fresh evaluation counter.
  DistanceFunction(const DistanceFunction&) : evaluations_(0) {}
  DistanceFunction& operator=(const DistanceFunction&) { return *this; }

  /// Computes d(a, b). Both objects must have the same dimensionality.
  double Distance(const VectorObject& a, const VectorObject& b) const {
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    internal::RecordDistanceEvaluation();
    return DistanceImpl(a, b);
  }

  /// Short identifier ("L1", "L2", "Lp(0.5)", "cophir", ...).
  virtual std::string Name() const = 0;

  /// Number of Distance() evaluations since construction or ResetCounter().
  /// The paper's cost model counts distance computations as the dominant
  /// client-side search cost; benches read this counter.
  uint64_t evaluation_count() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  void ResetCounter() const {
    evaluations_.store(0, std::memory_order_relaxed);
  }

 protected:
  virtual double DistanceImpl(const VectorObject& a,
                              const VectorObject& b) const = 0;

 private:
  mutable std::atomic<uint64_t> evaluations_{0};
};

/// Manhattan distance: sum_i |a_i - b_i|.
class L1Distance : public DistanceFunction {
 public:
  std::string Name() const override { return "L1"; }

 protected:
  double DistanceImpl(const VectorObject& a,
                      const VectorObject& b) const override;
};

/// Euclidean distance: sqrt(sum_i (a_i - b_i)^2).
class L2Distance : public DistanceFunction {
 public:
  std::string Name() const override { return "L2"; }

 protected:
  double DistanceImpl(const VectorObject& a,
                      const VectorObject& b) const override;
};

/// Chebyshev distance: max_i |a_i - b_i|.
class LInfDistance : public DistanceFunction {
 public:
  std::string Name() const override { return "Linf"; }

 protected:
  double DistanceImpl(const VectorObject& a,
                      const VectorObject& b) const override;
};

/// Minkowski distance with parameter p >= 1.
class LpDistance : public DistanceFunction {
 public:
  /// p must be >= 1 for the triangle inequality to hold.
  explicit LpDistance(double p) : p_(p) {}

  std::string Name() const override;
  double p() const { return p_; }

 protected:
  double DistanceImpl(const VectorObject& a,
                      const VectorObject& b) const override;

 private:
  double p_;
};

/// Weighted combination of per-segment Lp distances, modelling the CoPhIR
/// aggregate over five MPEG-7 descriptors. The vector is partitioned into
/// contiguous segments; d(a,b) = sum_s w_s * Lp_s(a_s, b_s). A non-negative
/// weighted sum of metrics over projections is itself a metric.
class SegmentedLpDistance : public DistanceFunction {
 public:
  struct Segment {
    size_t length;   ///< number of dimensions in this segment
    double p;        ///< Minkowski parameter (>= 1)
    double weight;   ///< non-negative combination weight
  };

  /// Validates segment parameters (lengths > 0, p >= 1, weights >= 0).
  static Result<SegmentedLpDistance> Create(std::vector<Segment> segments);

  std::string Name() const override { return "segmented-lp"; }
  const std::vector<Segment>& segments() const { return segments_; }
  /// Total dimensionality covered by the segments.
  size_t TotalDimension() const;

 protected:
  double DistanceImpl(const VectorObject& a,
                      const VectorObject& b) const override;

 private:
  explicit SegmentedLpDistance(std::vector<Segment> segments)
      : segments_(std::move(segments)) {}

  std::vector<Segment> segments_;
};

/// Angular distance: the angle arccos(<a,b> / (|a||b|)) in [0, pi].
/// A metric on *directions* (the unit sphere) — the natural choice for
/// normalized embedding descriptors. Note the identity postulate holds up
/// to positive scaling only (d(a, 2a) = 0); use it for collections of
/// normalized vectors. Zero vectors are rejected as NaN-free by mapping
/// to the maximal angle pi.
class AngularDistance : public DistanceFunction {
 public:
  std::string Name() const override { return "angular"; }

 protected:
  double DistanceImpl(const VectorObject& a,
                      const VectorObject& b) const override;
};

/// Creates the standard distance function for a given name:
/// "L1", "L2", "Linf", "angular", or "Lp:<p>". Used by config/CLI
/// plumbing.
Result<std::shared_ptr<DistanceFunction>> MakeDistanceByName(
    const std::string& name);

}  // namespace metric
}  // namespace simcloud

#endif  // SIMCLOUD_METRIC_DISTANCE_H_
