#include "metric/neighbor.h"

#include <algorithm>
#include <unordered_set>

namespace simcloud {
namespace metric {

double RecallPercent(const NeighborList& answer, const NeighborList& exact) {
  if (exact.empty()) return 100.0;
  std::unordered_set<ObjectId> exact_ids;
  exact_ids.reserve(exact.size());
  for (const auto& n : exact) exact_ids.insert(n.id);
  size_t hits = 0;
  for (const auto& n : answer) {
    if (exact_ids.count(n.id) != 0) ++hits;
  }
  return 100.0 * static_cast<double>(hits) /
         static_cast<double>(exact.size());
}

}  // namespace metric
}  // namespace simcloud
