#include "metric/distance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace simcloud {
namespace metric {

namespace internal {

void RecordDistanceEvaluation() {
  static obs::Counter* const counter = obs::Registry::Default().GetCounter(
      "simcloud_distance_computations_total");
  counter->Add(1);
  obs::TraceSpan* span = obs::TraceSpan::Current();
  if (span != nullptr) span->AddDistanceComputations(1);
}

}  // namespace internal

double L1Distance::DistanceImpl(const VectorObject& a,
                                const VectorObject& b) const {
  assert(a.dimension() == b.dimension());
  const auto& x = a.values();
  const auto& y = b.values();
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += std::fabs(static_cast<double>(x[i]) - static_cast<double>(y[i]));
  }
  return sum;
}

double L2Distance::DistanceImpl(const VectorObject& a,
                                const VectorObject& b) const {
  assert(a.dimension() == b.dimension());
  const auto& x = a.values();
  const auto& y = b.values();
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double diff =
        static_cast<double>(x[i]) - static_cast<double>(y[i]);
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double LInfDistance::DistanceImpl(const VectorObject& a,
                                  const VectorObject& b) const {
  assert(a.dimension() == b.dimension());
  const auto& x = a.values();
  const auto& y = b.values();
  double best = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double diff =
        std::fabs(static_cast<double>(x[i]) - static_cast<double>(y[i]));
    if (diff > best) best = diff;
  }
  return best;
}

std::string LpDistance::Name() const {
  return "Lp:" + std::to_string(p_);
}

double LpDistance::DistanceImpl(const VectorObject& a,
                                const VectorObject& b) const {
  assert(a.dimension() == b.dimension());
  const auto& x = a.values();
  const auto& y = b.values();
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double diff =
        std::fabs(static_cast<double>(x[i]) - static_cast<double>(y[i]));
    sum += std::pow(diff, p_);
  }
  return std::pow(sum, 1.0 / p_);
}

Result<SegmentedLpDistance> SegmentedLpDistance::Create(
    std::vector<Segment> segments) {
  if (segments.empty()) {
    return Status::InvalidArgument("segment list must be non-empty");
  }
  for (const auto& seg : segments) {
    if (seg.length == 0) {
      return Status::InvalidArgument("segment length must be > 0");
    }
    if (seg.p < 1.0) {
      return Status::InvalidArgument("segment p must be >= 1");
    }
    if (seg.weight < 0.0) {
      return Status::InvalidArgument("segment weight must be >= 0");
    }
  }
  return SegmentedLpDistance(std::move(segments));
}

size_t SegmentedLpDistance::TotalDimension() const {
  size_t total = 0;
  for (const auto& seg : segments_) total += seg.length;
  return total;
}

double SegmentedLpDistance::DistanceImpl(const VectorObject& a,
                                         const VectorObject& b) const {
  assert(a.dimension() == b.dimension());
  assert(a.dimension() == TotalDimension());
  const auto& x = a.values();
  const auto& y = b.values();
  double total = 0.0;
  size_t offset = 0;
  for (const auto& seg : segments_) {
    double sum = 0.0;
    if (seg.p == 1.0) {
      for (size_t i = offset; i < offset + seg.length; ++i) {
        sum += std::fabs(static_cast<double>(x[i]) - static_cast<double>(y[i]));
      }
    } else if (seg.p == 2.0) {
      for (size_t i = offset; i < offset + seg.length; ++i) {
        const double diff =
            static_cast<double>(x[i]) - static_cast<double>(y[i]);
        sum += diff * diff;
      }
      sum = std::sqrt(sum);
    } else {
      for (size_t i = offset; i < offset + seg.length; ++i) {
        const double diff =
            std::fabs(static_cast<double>(x[i]) - static_cast<double>(y[i]));
        sum += std::pow(diff, seg.p);
      }
      sum = std::pow(sum, 1.0 / seg.p);
    }
    total += seg.weight * sum;
    offset += seg.length;
  }
  return total;
}

double AngularDistance::DistanceImpl(const VectorObject& a,
                                     const VectorObject& b) const {
  const auto& va = a.values();
  const auto& vb = b.values();
  double dot = 0;
  double norm_a = 0;
  double norm_b = 0;
  const size_t n = std::min(va.size(), vb.size());
  for (size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(va[i]) * vb[i];
    norm_a += static_cast<double>(va[i]) * va[i];
    norm_b += static_cast<double>(vb[i]) * vb[i];
  }
  if (norm_a <= 0 || norm_b <= 0) return M_PI;  // zero vector: max angle
  const double cosine =
      std::clamp(dot / std::sqrt(norm_a * norm_b), -1.0, 1.0);
  return std::acos(cosine);
}

Result<std::shared_ptr<DistanceFunction>> MakeDistanceByName(
    const std::string& name) {
  if (name == "L1") return std::shared_ptr<DistanceFunction>(new L1Distance());
  if (name == "L2") return std::shared_ptr<DistanceFunction>(new L2Distance());
  if (name == "Linf") {
    return std::shared_ptr<DistanceFunction>(new LInfDistance());
  }
  if (name == "angular") {
    return std::shared_ptr<DistanceFunction>(new AngularDistance());
  }
  if (name.rfind("Lp:", 0) == 0) {
    const double p = std::stod(name.substr(3));
    if (p < 1.0) return Status::InvalidArgument("Lp requires p >= 1");
    return std::shared_ptr<DistanceFunction>(new LpDistance(p));
  }
  return Status::InvalidArgument("unknown distance function: " + name);
}

}  // namespace metric
}  // namespace simcloud
