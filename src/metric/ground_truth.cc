#include "metric/ground_truth.h"

#include <algorithm>
#include <queue>

namespace simcloud {
namespace metric {

NeighborList LinearRangeSearch(const std::vector<VectorObject>& objects,
                               const DistanceFunction& distance,
                               const VectorObject& query, double radius) {
  NeighborList result;
  for (const auto& obj : objects) {
    const double d = distance.Distance(query, obj);
    if (d <= radius) result.push_back({obj.id(), d});
  }
  std::sort(result.begin(), result.end());
  return result;
}

NeighborList LinearKnnSearch(const std::vector<VectorObject>& objects,
                             const DistanceFunction& distance,
                             const VectorObject& query, size_t k) {
  if (k == 0) return {};
  // Max-heap of the k best seen so far.
  std::priority_queue<Neighbor> heap;
  for (const auto& obj : objects) {
    const double d = distance.Distance(query, obj);
    if (heap.size() < k) {
      heap.push({obj.id(), d});
    } else if (Neighbor{obj.id(), d} < heap.top()) {
      heap.pop();
      heap.push({obj.id(), d});
    }
  }
  NeighborList result(heap.size());
  for (size_t i = heap.size(); i > 0; --i) {
    result[i - 1] = heap.top();
    heap.pop();
  }
  return result;
}

NeighborList LinearRangeSearch(const Dataset& dataset,
                               const VectorObject& query, double radius) {
  return LinearRangeSearch(dataset.objects(), *dataset.distance(), query,
                           radius);
}

NeighborList LinearKnnSearch(const Dataset& dataset, const VectorObject& query,
                             size_t k) {
  return LinearKnnSearch(dataset.objects(), *dataset.distance(), query, k);
}

}  // namespace metric
}  // namespace simcloud
