// Metric-space objects: fixed-dimension float vectors with an identifier.
//
// In the paper's terminology these are the "MS objects" — descriptors
// extracted from raw data. The id is the reference back to the raw object
// held in (encrypted) raw-data storage.

#ifndef SIMCLOUD_METRIC_OBJECT_H_
#define SIMCLOUD_METRIC_OBJECT_H_

#include <cstdint>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace simcloud {
namespace metric {

/// Identifier referring to the raw data object behind an MS object.
using ObjectId = uint64_t;

/// A metric-space object: an id plus a dense float vector descriptor.
class VectorObject {
 public:
  VectorObject() = default;
  VectorObject(ObjectId id, std::vector<float> values)
      : id_(id), values_(std::move(values)) {}

  ObjectId id() const { return id_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }
  size_t dimension() const { return values_.size(); }

  /// Serializes as {varint id, float vector}.
  void Serialize(BinaryWriter* writer) const {
    writer->WriteVarint(id_);
    writer->WriteFloatVector(values_);
  }

  /// Parses an object previously written by Serialize().
  static Result<VectorObject> Deserialize(BinaryReader* reader) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t id, reader->ReadVarint());
    SIMCLOUD_ASSIGN_OR_RETURN(std::vector<float> values,
                              reader->ReadFloatVector());
    return VectorObject(id, std::move(values));
  }

  /// Serialized size in bytes (used by communication-cost accounting).
  size_t SerializedSize() const;

  bool operator==(const VectorObject& other) const {
    return id_ == other.id_ && values_ == other.values_;
  }

 private:
  ObjectId id_ = 0;
  std::vector<float> values_;
};

}  // namespace metric
}  // namespace simcloud

#endif  // SIMCLOUD_METRIC_OBJECT_H_
