#include "common/rng.h"

#include <cassert>

namespace simcloud {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exactness.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher-Yates over an index array.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace simcloud
