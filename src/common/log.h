// Minimal leveled logger. Off by default for benchmarks; level settable via
// code or the SIMCLOUD_LOG_LEVEL environment variable (ERROR|WARN|INFO|DEBUG;
// anything else warns and defaults to WARN). Each line carries a monotonic
// timestamp, level tag, and thread id, and is emitted through a single
// write(2) so concurrent threads never interleave partial lines.

#ifndef SIMCLOUD_COMMON_LOG_H_
#define SIMCLOUD_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace simcloud {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global log threshold; messages above it are dropped.
void SetLogLevel(LogLevel level);
/// Current global log threshold.
LogLevel GetLogLevel();
/// Emits one line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {
/// Stream-style one-line log emitter; flushes in the destructor.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace simcloud

#define SIMCLOUD_LOG(level) \
  ::simcloud::internal::LogLine(::simcloud::LogLevel::level)

#endif  // SIMCLOUD_COMMON_LOG_H_
