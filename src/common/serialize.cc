#include "common/serialize.h"

namespace simcloud {

void BinaryWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteBytes(const Bytes& b) {
  WriteVarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void BinaryWriter::WriteRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteVarint(v.size());
  for (float f : v) WriteFloat(f);
}

void BinaryWriter::WriteU32Vector(const std::vector<uint32_t>& v) {
  WriteVarint(v.size());
  for (uint32_t x : v) WriteVarint(x);
}

Result<uint8_t> BinaryReader::ReadU8() { return ReadLittleEndian<uint8_t>(); }
Result<uint16_t> BinaryReader::ReadU16() { return ReadLittleEndian<uint16_t>(); }
Result<uint32_t> BinaryReader::ReadU32() { return ReadLittleEndian<uint32_t>(); }
Result<uint64_t> BinaryReader::ReadU64() { return ReadLittleEndian<uint64_t>(); }

Result<int32_t> BinaryReader::ReadI32() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> BinaryReader::ReadI64() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<uint64_t> BinaryReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) return Status::Corruption("varint too long");
    SIMCLOUD_ASSIGN_OR_RETURN(uint8_t byte, ReadU8());
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<float> BinaryReader::ReadFloat() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint32_t bits, ReadU32());
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

Result<double> BinaryReader::ReadDouble() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<bool> BinaryReader::ReadBool() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint8_t b, ReadU8());
  if (b > 1) return Status::Corruption("invalid bool byte");
  return b == 1;
}

Result<std::string> BinaryReader::ReadString() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  SIMCLOUD_RETURN_NOT_OK(Require(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<Bytes> BinaryReader::ReadBytes() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  SIMCLOUD_RETURN_NOT_OK(Require(n));
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

Result<std::vector<float>> BinaryReader::ReadFloatVector() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  if (n > remaining() / sizeof(float)) {
    return Status::Corruption("float vector length exceeds remaining input");
  }
  std::vector<float> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(float f, ReadFloat());
    v.push_back(f);
  }
  return v;
}

Result<std::vector<uint32_t>> BinaryReader::ReadU32Vector() {
  SIMCLOUD_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  if (n > remaining()) {
    return Status::Corruption("u32 vector length exceeds remaining input");
  }
  std::vector<uint32_t> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SIMCLOUD_ASSIGN_OR_RETURN(uint64_t x, ReadVarint());
    if (x > UINT32_MAX) return Status::Corruption("u32 vector element overflow");
    v.push_back(static_cast<uint32_t>(x));
  }
  return v;
}

}  // namespace simcloud
