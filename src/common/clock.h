// Wall-clock timing utilities used by the cost-accounting layer.
//
// The paper's evaluation decomposes every operation into client /
// encryption / distance-computation / server / communication time.
// Stopwatch measures one interval; CostAccumulator sums named intervals.

#ifndef SIMCLOUD_COMMON_CLOCK_H_
#define SIMCLOUD_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace simcloud {

/// Nanoseconds on the process-wide monotonic clock (steady_clock). The
/// absolute value is meaningless; differences are wall time unaffected by
/// clock adjustments — what TTL deadlines (server-side cursors) compare.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - start_)
        .count();
  }
  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }
  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }

 private:
  using Clock = std::chrono::steady_clock;
  static Clock::time_point Now() { return Clock::now(); }
  Clock::time_point start_;
};

/// Accumulates named durations and counters across many operations,
/// e.g. total "encryption" time over a 100-query batch.
class CostAccumulator {
 public:
  /// Adds `nanos` to the named duration bucket.
  void AddNanos(const std::string& name, int64_t nanos) {
    nanos_[name] += nanos;
  }
  /// Adds `count` to the named counter (e.g. bytes transferred).
  void AddCount(const std::string& name, int64_t count) {
    counts_[name] += count;
  }

  /// Total seconds accumulated under `name` (0 if absent).
  double Seconds(const std::string& name) const {
    auto it = nanos_.find(name);
    return it == nanos_.end() ? 0.0 : it->second * 1e-9;
  }
  /// Total count accumulated under `name` (0 if absent).
  int64_t Count(const std::string& name) const {
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Merges another accumulator into this one.
  void Merge(const CostAccumulator& other) {
    for (const auto& [k, v] : other.nanos_) nanos_[k] += v;
    for (const auto& [k, v] : other.counts_) counts_[k] += v;
  }

  void Clear() {
    nanos_.clear();
    counts_.clear();
  }

  const std::map<std::string, int64_t>& durations_nanos() const {
    return nanos_;
  }
  const std::map<std::string, int64_t>& counts() const { return counts_; }

 private:
  std::map<std::string, int64_t> nanos_;
  std::map<std::string, int64_t> counts_;
};

/// RAII guard adding the elapsed time of its scope to an accumulator bucket.
class ScopedTimer {
 public:
  ScopedTimer(CostAccumulator* acc, std::string name)
      : acc_(acc), name_(std::move(name)) {}
  ~ScopedTimer() {
    if (acc_ != nullptr) acc_->AddNanos(name_, watch_.ElapsedNanos());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  CostAccumulator* acc_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace simcloud

#endif  // SIMCLOUD_COMMON_CLOCK_H_
