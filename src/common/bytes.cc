#include "common/bytes.h"

namespace simcloud {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  return out;
}

std::string ToHex(const Bytes& data) { return ToHex(data.data(), data.size()); }

Result<Bytes> FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("invalid hex digit in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void WipeBytes(Bytes* data) {
  if (data == nullptr || data->empty()) {
    if (data != nullptr) data->clear();
    return;
  }
  volatile uint8_t* p = data->data();
  for (size_t i = 0; i < data->size(); ++i) p[i] = 0;
  data->clear();
}

}  // namespace simcloud
