// Binary (de)serialization primitives: little-endian fixed-width integers,
// varints, floats, strings, and vectors, over a growable byte buffer.
//
// Wire format notes:
//  * all fixed-width integers are little-endian;
//  * unsigned varints use LEB128 (7 bits per byte, MSB = continuation);
//  * strings and byte blobs are length-prefixed with a varint;
//  * floats/doubles are bit-cast to their IEEE-754 representation.

#ifndef SIMCLOUD_COMMON_SERIALIZE_H_
#define SIMCLOUD_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace simcloud {

/// Appends primitive values to a byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v) { WriteLittleEndian(v); }
  void WriteU32(uint32_t v) { WriteLittleEndian(v); }
  void WriteU64(uint64_t v) { WriteLittleEndian(v); }
  void WriteI32(int32_t v) { WriteLittleEndian(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteLittleEndian(static_cast<uint64_t>(v)); }

  /// LEB128 unsigned varint (1-10 bytes).
  void WriteVarint(uint64_t v);

  void WriteFloat(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU32(bits);
  }
  void WriteDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// Varint length prefix followed by raw bytes.
  void WriteString(const std::string& s);
  void WriteBytes(const Bytes& b);
  /// Raw bytes with no length prefix (caller manages framing).
  void WriteRaw(const uint8_t* data, size_t len);

  /// Varint count followed by each float.
  void WriteFloatVector(const std::vector<float>& v);
  /// Varint count followed by each varint value.
  void WriteU32Vector(const std::vector<uint32_t>& v);

  /// Pre-allocates room for `n` more bytes (large messages — e.g. batch
  /// candidate responses — avoid repeated reallocation of a buffer that
  /// can reach tens of megabytes).
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  const Bytes& buffer() const { return buf_; }
  Bytes TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void WriteLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads primitive values sequentially from a byte span. All reads are
/// bounds-checked and report Corruption on truncated input.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit BinaryReader(const Bytes& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<uint64_t> ReadVarint();
  Result<float> ReadFloat();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<Bytes> ReadBytes();
  Result<std::vector<float>> ReadFloatVector();
  Result<std::vector<uint32_t>> ReadU32Vector();

  /// Bytes not yet consumed.
  size_t remaining() const { return len_ - pos_; }

  /// Safe pre-allocation hint for a decoded element count: a hostile
  /// count cannot force an allocation larger than the input could
  /// possibly encode (>= 1 byte per element). Decode loops still stop at
  /// the real end of input.
  size_t BoundedCount(uint64_t count) const {
    return count < remaining() ? static_cast<size_t>(count) : remaining();
  }
  bool AtEnd() const { return pos_ == len_; }
  size_t position() const { return pos_; }

 private:
  Status Require(size_t n) {
    if (pos_ + n > len_) {
      return Status::Corruption("truncated input: need " + std::to_string(n) +
                                " bytes at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  template <typename T>
  Result<T> ReadLittleEndian() {
    SIMCLOUD_RETURN_NOT_OK(Require(sizeof(T)));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace simcloud

#endif  // SIMCLOUD_COMMON_SERIALIZE_H_
